/// Regenerates Figure 7(a): cumulative distribution of message delays
/// for the first 12 hours, for each DTN routing policy plugged into
/// the replication substrate, plus the unmodified substrate.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 7(a)",
      "CDF of message delays, 0-12 hours, per routing policy");
  std::printf("%-12s %8s %8s\n", "policy", "delay(h)", "%deliv");
  for (const auto& policy : dtn::known_policies()) {
    auto config = bench::figure_config();
    config.policy = policy;
    const auto result = sim::run_experiment(config);
    sim::print_delay_cdf(policy, result.metrics, 12.0, 13);
  }
  std::printf(
      "\nExpected shape: epidemic = maxprop fastest, spray close, "
      "prophet next, cimbiosys lowest.\n");
  return 0;
}
