#pragma once

/// \file bench_util.hpp
/// Shared scaffolding for the figure-reproduction benches: consistent
/// headers, the paper-scale configuration, and an optional
/// PFRDTN_BENCH_SCALE environment variable (0 < scale <= 1) to run
/// reduced-scale versions of every figure for quick iteration.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/experiment.hpp"

namespace pfrdtn::bench {

/// The figure benches' base configuration: paper scale unless
/// PFRDTN_BENCH_SCALE shrinks it.
inline sim::EmulationConfig figure_config(std::uint64_t seed = 4) {
  const char* scale_env = std::getenv("PFRDTN_BENCH_SCALE");
  if (scale_env != nullptr) {
    const double scale = std::atof(scale_env);
    if (scale > 0.0 && scale < 1.0) return sim::small_config(scale, seed);
  }
  return sim::paper_config(seed);
}

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("Paper: Gilbert et al., \"Peer-to-peer Data Replication "
              "Meets Delay Tolerant Networking\", ICDCS 2011\n");
  std::printf("==================================================\n");
}

inline void print_run_summary(const std::string& label,
                              const sim::EmulationResult& result) {
  const auto delays = result.metrics.delay_distribution();
  std::printf(
      "%-12s delivered %3zu/%3zu  mean %6.1f h  median %6.1f h  "
      "max %5.1f d  copies@delivery %5.2f  copies@end %5.2f\n",
      label.c_str(), result.metrics.delivered_count(),
      result.metrics.injected_count(),
      delays.count() ? delays.mean() : 0.0,
      delays.count() ? delays.quantile(0.5) : 0.0,
      result.metrics.max_delay_hours() / 24.0,
      result.metrics.mean_copies_at_delivery(),
      result.metrics.mean_copies_at_end());
}

}  // namespace pfrdtn::bench
