/// Seed robustness: the figure benches run one calibrated trace (seed
/// 4), like the paper ran one DieselNet trace. This bench repeats the
/// headline Figure 7 measurements across several independent trace
/// seeds and reports mean and spread, so readers can judge which
/// conclusions are trace-stable and which are single-draw artifacts.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header("Seed robustness",
                      "Figure 7 headline metrics across trace seeds");
  const std::uint64_t seeds[] = {1, 4, 8, 11, 13};

  std::printf("%-12s %-18s %-18s %-16s %-14s\n", "policy",
              "delivered (mean)", "within-12h (%)", "mean delay (h)",
              "worst (days)");
  for (const auto& policy : dtn::known_policies()) {
    Summary delivered;
    Summary within_12h;
    Summary mean_delay;
    Summary worst_days;
    for (const std::uint64_t seed : seeds) {
      auto config = bench::figure_config(seed);
      config.policy = policy;
      const auto result = sim::run_experiment(config);
      delivered.add(
          static_cast<double>(result.metrics.delivered_count()));
      within_12h.add(result.metrics.delivered_within_hours(12));
      const auto delays = result.metrics.delay_distribution();
      mean_delay.add(delays.count() ? delays.mean() : 0.0);
      worst_days.add(result.metrics.max_delay_hours() / 24.0);
    }
    std::printf(
        "%-12s %6.1f ± %-8.1f %7.1f ± %-8.1f %6.1f ± %-7.1f %5.1f ± %-5.1f\n",
        policy.c_str(), delivered.mean(), delivered.stddev(),
        within_12h.mean(), within_12h.stddev(), mean_delay.mean(),
        mean_delay.stddev(), worst_days.mean(), worst_days.stddev());
  }
  std::printf(
      "\nReading: the policy ordering (flooding < spray < cimbiosys on "
      "delay; cimbiosys lowest on copies) holds on every seed; the "
      "exact worst-case day counts move by a day or two between "
      "traces.\n");
  return 0;
}
