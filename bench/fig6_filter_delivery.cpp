/// Regenerates Figure 6: percentage of messages delivered within 12
/// hours as a host's filter includes the addresses of k other hosts
/// (the delivery rate messages with bounded lifetimes would see).

#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

void run_row(const std::string& label, pfrdtn::dtn::FilterStrategy strategy,
             std::size_t k) {
  using namespace pfrdtn;
  auto config = bench::figure_config();
  config.policy = "cimbiosys";
  config.strategy = strategy;
  config.filter_k = k;
  const auto result = sim::run_experiment(config);
  std::printf("%-10s %-10s %6.1f%%\n", label.c_str(),
              strategy == dtn::FilterStrategy::SelfOnly
                  ? "-"
                  : dtn::filter_strategy_name(strategy),
              result.metrics.delivered_within_hours(12));
}

}  // namespace

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 6",
      "% messages delivered within 12 hours vs addresses in filter");
  std::printf("%-10s %-10s %-10s\n", "k", "strategy", "within-12h");

  run_row("Self", dtn::FilterStrategy::SelfOnly, 0);
  for (const auto strategy :
       {dtn::FilterStrategy::Random, dtn::FilterStrategy::Selected}) {
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      run_row("+" + std::to_string(k), strategy, k);
    }
  }
  std::printf(
      "\nExpected shape: delivery within 12 h improves with k; "
      "`selected` above `random` at small k.\n");
  return 0;
}
