/// Ablations of protocol mechanics the paper fixes by fiat:
///  - two syncs per encounter (the paper's procedure) vs one;
///  - never deleting messages (the paper's runs) vs tombstoning on
///    delivery;
///  - MaxProp acknowledgement flooding on/off (the one protocol
///    mechanism the paper chose not to exercise).

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header("Ablation: sync mechanics",
                      "encounter procedure and buffer clearing");

  std::printf("--- syncs per encounter (epidemic) ---\n");
  for (const bool single : {false, true}) {
    auto config = bench::figure_config();
    config.policy = "epidemic";
    config.single_sync_per_encounter = single;
    const auto result = sim::run_experiment(config);
    bench::print_run_summary(single ? "one-sync" : "two-syncs", result);
  }

  std::printf("\n--- delete after delivery (epidemic) ---\n");
  for (const bool del : {false, true}) {
    auto config = bench::figure_config();
    config.policy = "epidemic";
    config.delete_after_delivery = del;
    const auto result = sim::run_experiment(config);
    bench::print_run_summary(del ? "tombstone" : "never-delete", result);
  }

  std::printf("\n--- MaxProp acknowledgement flooding ---\n");
  for (const bool acks : {false, true}) {
    auto config = bench::figure_config();
    config.policy = "maxprop";
    if (acks) config.policy_params["ack_flooding"] = 1.0;
    const auto result = sim::run_experiment(config);
    bench::print_run_summary(acks ? "acks-on" : "acks-off", result);
  }

  std::printf(
      "\nReading: one sync halves per-encounter opportunity; "
      "tombstoning and ack flooding both cut end-of-experiment copies "
      "without hurting delivery.\n");
  return 0;
}
