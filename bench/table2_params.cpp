/// Regenerates Table II: "DTN protocol parameters" — the defaults the
/// experiments run with, printed from the live parameter structs.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/epidemic.hpp"
#include "dtn/maxprop.hpp"
#include "dtn/prophet.hpp"
#include "dtn/spray_wait.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header("Table II", "DTN protocol parameters");
  const dtn::EpidemicParams epidemic;
  const dtn::SprayWaitParams spray;
  const dtn::ProphetParams prophet;
  const dtn::MaxPropParams maxprop;
  std::printf("Epidemic    TTL = %lld\n",
              static_cast<long long>(epidemic.initial_ttl));
  std::printf("Spray&Wait  copies per message = %lld (%s spray)\n",
              static_cast<long long>(spray.copies),
              spray.binary ? "binary" : "vanilla");
  std::printf(
      "PROPHET     Pinit = %.2f, beta = %.2f, gamma = %.2f "
      "(aging unit %llds)\n",
      prophet.p_init, prophet.beta, prophet.gamma,
      static_cast<long long>(prophet.aging_unit_s));
  std::printf("MaxProp     hopcount priority threshold = %lld\n",
              static_cast<long long>(maxprop.hop_threshold));
  return 0;
}
