/// Regenerates Figure 8: average number of copies of each message
/// stored in the network at the time the message was delivered and at
/// the end of the experiment, for each routing policy — the
/// delay/storage trade-off the paper quantifies.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 8",
      "avg copies of messages stored per policy (delivery / end)");
  std::printf("%-12s %-16s %-16s\n", "policy", "at-delivery",
              "at-end-of-exp");
  for (const auto& policy : dtn::known_policies()) {
    auto config = bench::figure_config();
    config.policy = policy;
    const auto result = sim::run_experiment(config);
    std::printf("%-12s %-16.2f %-16.2f\n", policy.c_str(),
                result.metrics.mean_copies_at_delivery(),
                result.metrics.mean_copies_at_end());
  }
  std::printf(
      "\nExpected shape: cimbiosys ~2 copies at delivery (sender + "
      "receiver); spray bounded by its copy budget; epidemic/maxprop "
      "flood toward fleet size by the end.\n");
  return 0;
}
