/// Regenerates Figure 9: delay CDF (0-12 h) when network bandwidth is
/// constrained to a single message exchanged per encounter — the
/// regime where MaxProp's transmission ordering and Spray and Wait's
/// copy limits actually matter.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 9",
      "delay CDF, 0-12 h, one message exchanged per encounter");
  std::printf("%-12s %8s %8s\n", "policy", "delay(h)", "%deliv");
  for (const auto& policy : dtn::known_policies()) {
    auto config = bench::figure_config();
    config.policy = policy;
    config.encounter_budget = 1;
    const auto result = sim::run_experiment(config);
    sim::print_delay_cdf(policy, result.metrics, 12.0, 13);
    std::printf("%-12s items transferred: %zu over %zu encounters\n",
                policy.c_str(), result.metrics.traffic().items_sent,
                result.metrics.encounter_count());
  }
  std::printf(
      "\nExpected shape: overall delivery drops versus Figure 7(a); "
      "DTN policies still clearly above basic cimbiosys.\n");
  return 0;
}
