/// Regenerates Figure 10: delay CDF (0-12 h) when each node may store
/// at most 2 relayed messages (FIFO eviction), excluding messages the
/// node itself sent or is a destination of. Basic Cimbiosys is
/// unaffected — it never relays — while the DTN policies lose part of
/// their advantage.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 10",
      "delay CDF, 0-12 h, max 2 relayed messages stored per node");
  std::printf("%-12s %8s %8s\n", "policy", "delay(h)", "%deliv");
  for (const auto& policy : dtn::known_policies()) {
    auto config = bench::figure_config();
    config.policy = policy;
    config.relay_capacity = 2;
    const auto result = sim::run_experiment(config);
    sim::print_delay_cdf(policy, result.metrics, 12.0, 13);
  }
  std::printf(
      "\nExpected shape: cimbiosys identical to its unconstrained "
      "curve; DTN policies reduced but still ahead of cimbiosys.\n");
  return 0;
}
