/// Google-benchmark micro-benchmarks of the replication substrate:
/// pairwise sync cost vs store size, knowledge operations, filter
/// evaluation and wire-format round trips. These are not paper
/// figures; they quantify the substrate costs the figures rest on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <thread>
#include <vector>

#include "dtn/epidemic.hpp"
#include "net/server.hpp"
#include "net/session.hpp"
#include "net/tcp.hpp"
#include "repl/sync.hpp"
#include "util/rng.hpp"

namespace {

using namespace pfrdtn;
using namespace pfrdtn::repl;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{meta::kDest, std::to_string(dest)}};
}

SyncOptions summary_on() {
  SyncOptions options;
  options.summary_mode = SummaryMode::On;
  return options;
}

/// Source with n items; fresh empty target per iteration.
void BM_SyncColdTarget(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Replica source(ReplicaId(1), Filter::addresses({HostId(1)}));
  for (std::uint64_t i = 0; i < n; ++i)
    source.create(to(2), std::vector<std::uint8_t>(64, 'x'));
  for (auto _ : state) {
    Replica target(ReplicaId(2), Filter::addresses({HostId(2)}));
    const auto result =
        run_sync(source, target, nullptr, nullptr, SimTime(0));
    benchmark::DoNotOptimize(result.stats.items_sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_SyncColdTarget)->Arg(16)->Arg(128)->Arg(512);

/// Cold sync opened with a summary: the empty target's bloom hits
/// nothing, so the source streams the batch directly off the summary
/// round — same payload bytes as the exact path, one round trip less.
void BM_SyncColdTargetSummary(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Replica source(ReplicaId(1), Filter::addresses({HostId(1)}));
  for (std::uint64_t i = 0; i < n; ++i)
    source.create(to(2), std::vector<std::uint8_t>(64, 'x'));
  for (auto _ : state) {
    Replica target(ReplicaId(2), Filter::addresses({HostId(2)}));
    const auto result = run_sync(source, target, nullptr, nullptr,
                                 SimTime(0), summary_on());
    benchmark::DoNotOptimize(result.stats.items_sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_SyncColdTargetSummary)->Arg(16)->Arg(128)->Arg(512);

/// Steady-state no-op sync: everything already known at the target.
/// The wire_bytes counter grows with n (the exact request re-ships the
/// sparse knowledge every sync) — the contrast the summary variant
/// below removes. Setup mirrors BM_SyncNothingNewSummary exactly so
/// the two rows differ only in protocol.
void BM_SyncNothingNew(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Replica source(ReplicaId(1), Filter::addresses({HostId(1)}));
  Replica target(ReplicaId(2), Filter::addresses({HostId(2)}));
  for (std::uint64_t i = 0; i < n; ++i)
    source.create(to(2), std::vector<std::uint8_t>(64, 'x'));
  for (std::uint64_t i = 0; i < n; ++i) {
    const Version heard{ReplicaId(100 + i % 13), 2 * i + 2, 1};
    source.knowledge_mutable().add_exact(heard);
    target.knowledge_mutable().add_exact(heard);
  }
  run_sync(source, target, nullptr, nullptr, SimTime(0));
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const auto result =
        run_sync(source, target, nullptr, nullptr, SimTime(1));
    wire_bytes = result.stats.request_bytes + result.stats.batch_bytes;
    benchmark::DoNotOptimize(result.stats.items_sent);
  }
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_SyncNothingNew)->Arg(16)->Arg(128)->Arg(512);

/// Steady-state no-op sync over the summary fast path: the converged
/// peers' digests match and the exchange ends in O(1) wire bytes
/// independent of n. Many sparse authors make the knowledge genuinely
/// large so the constant wire_bytes counter is a real claim, not an
/// artifact of prefix compaction.
void BM_SyncNothingNewSummary(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Replica source(ReplicaId(1), Filter::addresses({HostId(1)}));
  Replica target(ReplicaId(2), Filter::addresses({HostId(2)}));
  for (std::uint64_t i = 0; i < n; ++i)
    source.create(to(2), std::vector<std::uint8_t>(64, 'x'));
  // Sparse third-party events give the knowledge real wire size; the
  // exact request would ship every one of them each repeat sync.
  for (std::uint64_t i = 0; i < n; ++i) {
    const Version heard{ReplicaId(100 + i % 13), 2 * i + 2, 1};
    source.knowledge_mutable().add_exact(heard);
    target.knowledge_mutable().add_exact(heard);
  }
  run_sync(source, target, nullptr, nullptr, SimTime(0));
  std::size_t wire_bytes = 0;
  for (auto _ : state) {
    const auto result = run_sync(source, target, nullptr, nullptr,
                                 SimTime(1), summary_on());
    wire_bytes = result.stats.request_bytes + result.stats.batch_bytes;
    benchmark::DoNotOptimize(result.stats.items_sent);
  }
  state.counters["wire_bytes"] = static_cast<double>(wire_bytes);
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_SyncNothingNewSummary)->Arg(16)->Arg(128)->Arg(512);

/// Sync with a flooding policy forwarding out-of-filter items.
void BM_SyncEpidemicRelay(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Replica source(ReplicaId(1), Filter::addresses({HostId(1)}));
  for (std::uint64_t i = 0; i < n; ++i)
    source.create(to(99), std::vector<std::uint8_t>(64, 'x'));
  dtn::EpidemicPolicy policy;
  for (auto _ : state) {
    Replica target(ReplicaId(2), Filter::addresses({HostId(2)}));
    const auto result =
        run_sync(source, target, &policy, &policy, SimTime(0));
    benchmark::DoNotOptimize(result.stats.items_sent);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_SyncEpidemicRelay)->Arg(16)->Arg(128);

Item relay_item(std::uint64_t id, std::uint64_t dest) {
  return Item(ItemId(id), Version{ReplicaId(1), id, 1}, to(dest), {});
}

/// Steady-state eviction: a relay store at capacity absorbing a stream
/// of new relay items, one eviction per put. Victim selection reads the
/// evictable index (O(log n)) instead of rescanning the arrival order,
/// so the cost no longer grows with capacity.
void BM_StoreEvictionAtCapacity(benchmark::State& state) {
  const auto cap = static_cast<std::size_t>(state.range(0));
  ItemStore store(ItemStore::Config{cap, EvictionOrder::Fifo});
  std::uint64_t next = 1;
  for (std::size_t i = 0; i < cap; ++i)
    store.put(relay_item(next++, 2), false, false);
  for (auto _ : state) {
    const auto evicted = store.put(relay_item(next++, 2), false, false);
    benchmark::DoNotOptimize(evicted.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreEvictionAtCapacity)->Arg(256)->Arg(4096);

/// Full refilter of an n-item store where every entry flips sides —
/// the worst-case filter change, exercising the incremental index
/// maintenance on every entry.
void BM_StoreRefilter(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  ItemStore store;
  for (std::uint64_t i = 1; i <= n; ++i)
    store.put(relay_item(i, 2 + i % 2), /*in_filter=*/i % 2 == 0, false);
  bool phase = false;
  std::vector<Item> evicted;
  for (auto _ : state) {
    phase = !phase;
    const HostId want(phase ? 3 : 2);
    auto fresh = store.refilter(
        [&](const Item& item) {
          const auto& dests = item.dest_addresses();
          return !dests.empty() && dests[0] == want;
        },
        evicted);
    benchmark::DoNotOptimize(fresh.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_StoreRefilter)->Arg(256)->Arg(4096);

/// Candidate enumeration through the dest inverted index: the cost
/// tracks the matching set (n/64 items here), not the store size.
void BM_StoreFilterIndexed(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  ItemStore store;
  for (std::uint64_t i = 1; i <= n; ++i)
    store.put(relay_item(i, i % 64), true, false);
  const Filter filter = Filter::addresses({HostId(7)});
  for (auto _ : state) {
    int matches = 0;
    store.for_filter_matches(filter, [&](const ItemStore::Entry&) {
      ++matches;
      return true;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_StoreFilterIndexed)->Arg(1024)->Arg(8192);

/// The same result set selected by a filter no index covers (a
/// meta-equals predicate), forcing the full-scan fallback: the cost
/// tracks the store size. Contrast with BM_StoreFilterIndexed.
void BM_StoreFilterScan(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  ItemStore store;
  for (std::uint64_t i = 1; i <= n; ++i)
    store.put(relay_item(i, i % 64), true, false);
  const Filter filter = Filter::meta_equals(meta::kDest, "7");
  for (auto _ : state) {
    int matches = 0;
    store.for_filter_matches(filter, [&](const ItemStore::Entry&) {
      ++matches;
      return true;
    });
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_StoreFilterScan)->Arg(1024)->Arg(8192);

void BM_KnowledgeAddAndQuery(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Item probe(ItemId(1), Version{ReplicaId(1), 1, 1}, to(1), {});
  for (auto _ : state) {
    Knowledge knowledge;
    for (std::uint64_t i = 1; i <= n; ++i)
      knowledge.add_exact(Version{ReplicaId(1 + i % 7), i, 1});
    bool known = false;
    for (std::uint64_t i = 1; i <= n; ++i) {
      known ^= knowledge.knows(probe, Version{ReplicaId(1 + i % 7), i, 1});
    }
    benchmark::DoNotOptimize(known);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_KnowledgeAddAndQuery)->Arg(64)->Arg(1024);

void BM_KnowledgeSerialize(benchmark::State& state) {
  Knowledge knowledge;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    knowledge.add_exact(
        Version{ReplicaId(1 + rng.below(40)), 1 + rng.below(400), 1});
  }
  for (auto _ : state) {
    ByteWriter writer;
    knowledge.serialize(writer);
    ByteReader reader(writer.bytes());
    const auto copy = Knowledge::deserialize(reader);
    benchmark::DoNotOptimize(copy.weight());
  }
}
BENCHMARK(BM_KnowledgeSerialize);

void BM_FilterMatch(benchmark::State& state) {
  std::set<HostId> addrs;
  for (std::uint64_t i = 0; i < 32; ++i) addrs.insert(HostId(i * 3));
  const Filter filter = Filter::addresses(std::move(addrs));
  std::vector<Item> items;
  Rng rng(5);
  for (std::uint64_t i = 0; i < 256; ++i) {
    items.emplace_back(ItemId(i), Version{ReplicaId(1), i + 1, 1},
                       to(rng.below(96)), std::vector<std::uint8_t>{});
  }
  for (auto _ : state) {
    int matches = 0;
    for (const Item& item : items) {
      matches += filter.matches(item) ? 1 : 0;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(256 * state.iterations());
}
BENCHMARK(BM_FilterMatch);

void BM_ItemWireRoundTrip(benchmark::State& state) {
  Item item(ItemId(7), Version{ReplicaId(3), 9, 1}, to(5),
            std::vector<std::uint8_t>(static_cast<std::size_t>(
                                          state.range(0)),
                                      'b'));
  item.set_transient_int("ttl", 9);
  for (auto _ : state) {
    ByteWriter writer;
    item.serialize(writer);
    ByteReader reader(writer.bytes());
    const Item copy = Item::deserialize(reader);
    benchmark::DoNotOptimize(copy.id());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ItemWireRoundTrip)->Arg(64)->Arg(1024);

void BM_VersionSetCompaction(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    VersionSet vs;
    // Worst case: insert in reverse so everything sits in extras until
    // the final insert folds the whole prefix.
    for (std::uint64_t c = n; c >= 1; --c) vs.add(ReplicaId(1), c);
    benchmark::DoNotOptimize(vs.extras_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n) *
                          state.iterations());
}
BENCHMARK(BM_VersionSetCompaction)->Arg(128)->Arg(2048);

/// End-to-end serve throughput on the epoll event loop: one in-process
/// SyncServer (2 workers), `range(0)` concurrent push clients per
/// iteration over real loopback TCP. Each client pushes the same item
/// every time, so after the first iteration the sessions are
/// steady-state (stale push, store bounded) and the number measures
/// session machinery — accept, hello, frames, quarantine bookkeeping —
/// not store growth. sessions_per_second is the headline counter.
void BM_ServeConcurrentSessions(benchmark::State& state) {
  const auto clients = static_cast<std::size_t>(state.range(0));
  Replica server_replica(ReplicaId(1),
                         Filter::addresses({HostId(9)}));
  dtn::EpidemicPolicy server_policy;
  net::SyncServerOptions options;
  options.workers = 2;
  net::SyncServer server(server_replica, &server_policy, options);
  const std::uint16_t port = server.port();
  std::thread serving([&server] { server.run(); });

  std::size_t sessions = 0;
  for (auto _ : state) {
    std::vector<std::thread> pushers;
    pushers.reserve(clients);
    std::atomic<std::size_t> failed{0};
    for (std::size_t i = 0; i < clients; ++i) {
      pushers.emplace_back([i, port, &failed] {
        Replica self(ReplicaId(100 + i),
                     Filter::addresses({HostId(100 + i)}));
        self.create(to(9), {static_cast<std::uint8_t>(i)});
        dtn::EpidemicPolicy policy;
        try {
          const auto connection = net::tcp_connect("127.0.0.1", port);
          const auto outcome = net::run_client_session(
              *connection, self, &policy, net::SyncMode::Push,
              SimTime(0));
          if (outcome.transport_failed) failed.fetch_add(1);
        } catch (const net::TransportError&) {
          failed.fetch_add(1);
        }
      });
    }
    for (std::thread& pusher : pushers) pusher.join();
    if (failed.load() != 0) state.SkipWithError("push sessions failed");
    sessions += clients;
  }
  server.shutdown();
  serving.join();

  state.SetItemsProcessed(static_cast<std::int64_t>(sessions));
  state.counters["sessions_per_second"] = benchmark::Counter(
      static_cast<double>(sessions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ServeConcurrentSessions)->Arg(8)->Arg(32)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
