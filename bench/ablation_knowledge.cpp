/// Ablation: the substrate's "compact metadata" claim, quantified.
/// Compares knowledge metadata size and duplicate-transmission
/// suppression with and without scoped knowledge learning (merging a
/// partner's knowledge after complete syncs). Without learning, each
/// replica knows only events it received directly, so sync requests
/// stay smaller but carry less dedup information.

#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Ablation: knowledge learning",
      "metadata bytes & duplicate suppression, epidemic policy");
  std::printf("%-18s %-14s %-14s %-12s %-12s\n", "variant",
              "know-bytes(avg)", "know-bytes(max)", "items-sent",
              "stale-dups");
  for (const bool learn : {true, false}) {
    auto config = bench::figure_config();
    config.policy = "epidemic";
    config.learn_knowledge = learn;
    const auto result = sim::run_experiment(config);
    std::printf("%-18s %-14.0f %-14.0f %-12zu %-12zu\n",
                learn ? "scoped-learning" : "exact-only",
                result.metrics.knowledge_bytes().mean(),
                result.metrics.knowledge_bytes().max(),
                result.metrics.traffic().items_sent,
                result.metrics.traffic().items_stale);
  }
  std::printf(
      "\nReading: scoped learning may enlarge per-replica knowledge "
      "but never causes duplicate deliveries; both variants suppress "
      "duplicate transmissions entirely (stale-dups = 0).\n");
  return 0;
}
