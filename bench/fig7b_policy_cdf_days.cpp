/// Regenerates Figure 7(b): cumulative distribution of message delays
/// beyond 12 hours (1-10 days). The paper's headline observation:
/// every policy eventually reaches ~100% delivery — guaranteed by the
/// substrate's eventual filter consistency — and the DTN policies
/// compress the worst-case delay from many days to a few.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 7(b)",
      "CDF of message delays in days (1-10), per routing policy");
  std::printf("%-12s %8s %8s\n", "policy", "delay(d)", "%deliv");
  for (const auto& policy : dtn::known_policies()) {
    auto config = bench::figure_config();
    config.policy = policy;
    const auto result = sim::run_experiment(config);
    for (int day = 1; day <= 10; ++day) {
      std::printf("%-12s %8d %8.2f\n", policy.c_str(), day,
                  result.metrics.delivered_within_hours(day * 24.0));
    }
    std::printf("%-12s worst-case delay: %.1f days, delivered %zu/%zu\n",
                policy.c_str(), result.metrics.max_delay_hours() / 24.0,
                result.metrics.delivered_count(),
                result.metrics.injected_count());
  }
  std::printf(
      "\nExpected shape: all policies approach 100%%; cimbiosys needs "
      "many more days than epidemic/maxprop/spray; prophet between.\n");
  return 0;
}
