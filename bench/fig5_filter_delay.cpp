/// Regenerates Figure 5: average message delay of the simple DTN
/// application (unmodified substrate) as a host's filter includes the
/// addresses of k other hosts, for the `random` and `selected`
/// population strategies. k = 0 ("Self") is basic Cimbiosys.

#include <cstdio>
#include <string>

#include "bench_util.hpp"

namespace {

void run_row(const std::string& label, pfrdtn::dtn::FilterStrategy strategy,
             std::size_t k) {
  using namespace pfrdtn;
  auto config = bench::figure_config();
  config.policy = "cimbiosys";
  config.strategy = strategy;
  config.filter_k = k;
  const auto result = sim::run_experiment(config);
  const auto delays = result.metrics.delay_distribution();
  std::printf("%-10s %-10s %-14.1f %zu/%zu\n", label.c_str(),
              strategy == dtn::FilterStrategy::SelfOnly
                  ? "-"
                  : dtn::filter_strategy_name(strategy),
              delays.count() ? delays.mean() : 0.0,
              result.metrics.delivered_count(),
              result.metrics.injected_count());
}

}  // namespace

int main() {
  using namespace pfrdtn;
  bench::print_header(
      "Figure 5",
      "average message delay vs addresses in filter (hours)");
  std::printf("%-10s %-10s %-14s %-12s\n", "k", "strategy",
              "avg-delay(h)", "delivered");

  run_row("Self", dtn::FilterStrategy::SelfOnly, 0);
  for (const auto strategy :
       {dtn::FilterStrategy::Random, dtn::FilterStrategy::Selected}) {
    for (const std::size_t k : {1u, 2u, 4u, 8u, 16u}) {
      run_row("+" + std::to_string(k), strategy, k);
    }
  }
  std::printf(
      "\nExpected shape: delay falls steeply as k grows; `selected` "
      "beats `random` at small k; both converge for large k.\n");
  return 0;
}
