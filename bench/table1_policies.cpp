/// Regenerates Table I: "Summary of policies for DTN routing
/// protocols" — each registered policy's routing state, sync-request
/// payload and source forwarding rule, printed from the live policy
/// objects rather than hand-maintained prose.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

int main() {
  using namespace pfrdtn;
  bench::print_header("Table I", "summary of DTN routing policies");
  for (const auto& name : dtn::known_policies()) {
    const auto policy = dtn::make_policy(name);
    std::printf("%-10s | %s\n", policy->name().c_str(),
                policy->summary().c_str());
  }
  return 0;
}
