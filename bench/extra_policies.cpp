/// Beyond the paper: the four evaluated policies side by side with
/// three more classic baselines implemented on the same interface —
/// FirstContact (single custody copy), TwoHopRelay
/// (source-relay-destination only) and randomized p-epidemic — on the
/// identical workload. Useful as a sanity frame: every multi-copy
/// policy should dominate FirstContact; p-epidemic should interpolate
/// between cimbiosys and epidemic as p varies.

#include <cstdio>

#include "bench_util.hpp"
#include "dtn/registry.hpp"

namespace {

void run_one(const std::string& label, const std::string& policy,
             const std::map<std::string, double>& params = {}) {
  using namespace pfrdtn;
  auto config = bench::figure_config();
  config.policy = policy;
  config.policy_params = params;
  const auto result = sim::run_experiment(config);
  bench::print_run_summary(label, result);
}

}  // namespace

int main() {
  using namespace pfrdtn;
  bench::print_header("Extra policies",
                      "paper's four policies vs additional baselines");
  for (const auto& policy : dtn::known_policies()) {
    run_one(policy, policy);
  }
  std::printf("---\n");
  for (const auto& policy : dtn::baseline_policies()) {
    run_one(policy, policy);
  }
  run_one("p-epi(0.1)", "p-epidemic", {{"p", 0.1}});
  run_one("p-epi(0.9)", "p-epidemic", {{"p", 0.9}});
  std::printf(
      "\nReading: multi-copy schemes dominate first-contact; "
      "p-epidemic sweeps between direct-like and full flooding.\n");
  return 0;
}
