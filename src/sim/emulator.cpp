#include "sim/emulator.hpp"

#include <algorithm>

#include "dtn/registry.hpp"
#include "net/session.hpp"
#include "sim/event_queue.hpp"
#include "util/logging.hpp"

namespace pfrdtn::sim {

Emulation::Emulation(EmulationConfig config)
    : Emulation(config, trace::generate_mobility(config.mobility),
                trace::generate_email(config.email)) {}

Emulation::Emulation(EmulationConfig config,
                     trace::MobilityTrace mobility,
                     trace::EmailWorkload email)
    : config_(std::move(config)),
      mobility_(std::move(mobility)),
      email_(std::move(email)) {
  PFRDTN_REQUIRE(!email_.users.empty());
  PFRDTN_REQUIRE(mobility_.fleet_size > 0);

  repl::ItemStore::Config store_config;
  store_config.relay_capacity = config_.relay_capacity;
  nodes_.reserve(mobility_.fleet_size);
  for (std::size_t bus = 0; bus < mobility_.fleet_size; ++bus) {
    // Replica ids start at 1; 0 would collide with StrongId semantics
    // for "self" sentinels in policies.
    auto node = std::make_unique<dtn::DtnNode>(ReplicaId(bus + 1),
                                               store_config);
    node->set_policy(
        dtn::make_policy(config_.policy, config_.policy_params));
    nodes_.push_back(std::move(node));
  }

  build_assignment();
  build_encounter_counts();
  // The multi-address filter strategies operate over bus addresses:
  // "the k other hosts that a given host will encounter most".
  std::vector<HostId> bus_addresses;
  bus_addresses.reserve(mobility_.fleet_size);
  for (std::size_t bus = 0; bus < mobility_.fleet_size; ++bus)
    bus_addresses.push_back(bus_address(static_cast<trace::BusIndex>(bus)));
  Rng filter_rng(config_.assignment_seed ^ 0xF11753ULL);
  filter_plan_ =
      dtn::FilterPlan::build(config_.strategy, config_.filter_k,
                             bus_addresses, encounter_counts_, filter_rng);
  configure_nodes();
}

void Emulation::build_assignment() {
  Rng rng(config_.assignment_seed);
  const std::size_t days = mobility_.days();
  assignment_.assign(days, {});

  // Each user has a home bus, assigned uniformly over the fleet; on a
  // day when the home bus is scheduled the user rides it (commuters
  // keep their route), otherwise the user is distributed uniformly
  // over that day's scheduled buses. This matches the paper's setup —
  // users are (re)distributed over each day's scheduled buses — while
  // keeping destinations stable enough that unmodified Cimbiosys
  // stores ~2 copies per delivered message (Figure 8).
  std::vector<trace::BusIndex> home(email_.users.size());
  for (auto& bus : home)
    bus = static_cast<trace::BusIndex>(rng.below(mobility_.fleet_size));

  for (std::size_t day = 0; day < days; ++day) {
    const auto& active = mobility_.active_buses[day];
    PFRDTN_REQUIRE(!active.empty());
    std::vector<bool> is_active(mobility_.fleet_size, false);
    for (const trace::BusIndex bus : active) is_active[bus] = true;
    assignment_[day].assign(email_.users.size(), 0);
    for (std::size_t user = 0; user < email_.users.size(); ++user) {
      const bool at_home = is_active[home[user]] &&
                           !rng.chance(config_.user_errand_prob);
      assignment_[day][user] =
          at_home ? home[user] : active[rng.below(active.size())];
    }
  }
}

void Emulation::build_encounter_counts() {
  // Bus-level meeting counts over the whole schedule — the oracle the
  // Selected strategy uses ("will encounter most in the trace").
  for (const trace::Encounter& encounter : mobility_.encounters) {
    const HostId a = bus_address(encounter.bus_a);
    const HostId b = bus_address(encounter.bus_b);
    ++encounter_counts_[a][b];
    ++encounter_counts_[b][a];
  }
}

void Emulation::configure_nodes() {
  // Each bus permanently hosts its own address; the filter strategies
  // add k other buses' addresses as relay interests. Filters are
  // static for the whole run.
  for (std::size_t bus = 0; bus < nodes_.size(); ++bus) {
    const HostId self = bus_address(static_cast<trace::BusIndex>(bus));
    std::set<HostId> extras = filter_plan_.extras_for(self);
    extras.erase(self);
    nodes_[bus]->set_addresses({self}, std::move(extras), SimTime(0));
  }
}

void Emulation::inject(const trace::MessageEvent& event) {
  const auto day = static_cast<std::size_t>(event.time.day_index());
  PFRDTN_REQUIRE(day < assignment_.size());
  const auto index_of = [&](HostId user) {
    const auto it =
        std::find(email_.users.begin(), email_.users.end(), user);
    PFRDTN_REQUIRE(it != email_.users.end());
    return static_cast<std::size_t>(it - email_.users.begin());
  };
  // The user-to-bus assignment of the injection day decides which node
  // sends and which node the message is addressed to.
  const trace::BusIndex sender_bus =
      assignment_[day][index_of(event.sender)];
  const trace::BusIndex recipient_bus =
      assignment_[day][index_of(event.recipient)];
  dtn::DtnNode& node = *nodes_[sender_bus];

  const dtn::MessageId id = node.send(
      event.sender, {bus_address(recipient_bus)},
      "m" + std::to_string(metrics_.injected_count()), event.time);
  metrics_.on_injected(id, event.sender, event.recipient, event.time);
  // Degenerate case: sender and recipient ride the same bus today.
  if (node.has_delivered(id)) {
    metrics_.on_delivered(id, event.time, count_copies(id));
    if (config_.delete_after_delivery) node.expunge(id);
  }
}

void Emulation::record_deliveries(
    const std::vector<dtn::Message>& delivered, dtn::DtnNode& node,
    SimTime now) {
  for (const dtn::Message& message : delivered) {
    if (metrics_.on_delivered(message.id, now,
                              count_copies(message.id))) {
      PFRDTN_LOG(Debug) << "delivered " << message.id.str() << " at "
                        << now.str();
    }
    if (config_.delete_after_delivery) node.expunge(message.id);
  }
}

dtn::SyncRunner Emulation::make_sync_runner() const {
  if (!config_.loopback_transport) return {};
  const net::LoopbackFaults faults = config_.loopback_faults;
  return [faults](repl::Replica& source, repl::Replica& target,
                  repl::ForwardingPolicy* source_policy,
                  repl::ForwardingPolicy* target_policy, SimTime now,
                  const repl::SyncOptions& options) {
    auto outcome = net::sync_over_loopback(
        source, target, source_policy, target_policy, now, options,
        faults);
    return std::move(outcome.client.result);
  };
}

void Emulation::handle_encounter(const trace::Encounter& encounter) {
  dtn::DtnNode& a = *nodes_[encounter.bus_a];
  dtn::DtnNode& b = *nodes_[encounter.bus_b];
  dtn::EncounterOptions options;
  options.encounter_budget = config_.encounter_budget;
  options.learn_knowledge = config_.learn_knowledge;
  options.sync_runner = make_sync_runner();

  if (config_.single_sync_per_encounter) {
    repl::SyncOptions sync_options;
    sync_options.learn_knowledge = options.learn_knowledge;
    sync_options.max_items = options.encounter_budget;
    const auto result =
        options.sync_runner
            ? options.sync_runner(b.replica(), a.replica(), b.policy(),
                                  a.policy(), encounter.time,
                                  sync_options)
            : repl::run_sync(b.replica(), a.replica(), b.policy(),
                             a.policy(), encounter.time, sync_options);
    metrics_.on_sync(result.stats);
    record_deliveries(a.on_sync_delivered(result.delivered,
                                          encounter.time),
                      a, encounter.time);
    if (a.policy()) a.policy()->encounter_complete(b.id(), encounter.time);
    if (b.policy()) b.policy()->encounter_complete(a.id(), encounter.time);
  } else {
    const auto outcome = run_encounter(a, b, encounter.time, options);
    metrics_.on_sync(outcome.stats);
    // run_encounter already performed app-level delivery bookkeeping
    // inside the nodes; record globally here.
    record_deliveries(outcome.delivered_a, a, encounter.time);
    record_deliveries(outcome.delivered_b, b, encounter.time);
  }
  metrics_.on_encounter();
  metrics_.sample_knowledge_bytes(
      static_cast<double>(a.replica().knowledge().size_bytes()));

  if (config_.invariant_check_every != 0 &&
      metrics_.encounter_count() % config_.invariant_check_every == 0) {
    check_invariants();
  }
}

std::size_t Emulation::count_copies(dtn::MessageId id) const {
  std::size_t copies = 0;
  for (const auto& node : nodes_) {
    const auto* entry = node->replica().store().find(id);
    if (entry != nullptr && !entry->item.deleted()) ++copies;
  }
  return copies;
}

void Emulation::check_invariants() const {
  for (const auto& node : nodes_) {
    const std::string violation = node->replica().check_invariants();
    if (!violation.empty()) throw ContractViolation(violation);
  }
}

EmulationResult Emulation::run() {
  EventQueue queue;
  for (const trace::MessageEvent& event : email_.messages) {
    queue.schedule(event.time,
                   [this, event](SimTime) { inject(event); });
  }
  for (const trace::Encounter& encounter : mobility_.encounters) {
    queue.schedule(encounter.time, [this, encounter](SimTime) {
      handle_encounter(encounter);
    });
  }
  queue.run();

  // Final bookkeeping: copies stored at the end of the experiment.
  for (const auto& [id, record] : metrics_.records())
    metrics_.set_copies_at_end(id, count_copies(id));
  if (config_.invariant_check_every != 0) check_invariants();

  EmulationResult result;
  result.metrics = std::move(metrics_);
  result.days = mobility_.days();
  result.users = email_.users.size();
  result.fleet_size = mobility_.fleet_size;
  return result;
}

}  // namespace pfrdtn::sim
