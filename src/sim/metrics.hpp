#pragma once

/// \file metrics.hpp
/// Per-message and aggregate measurements collected during an
/// emulation: delivery delays, copy counts at delivery time and at the
/// end of the experiment, sync traffic, and knowledge metadata sizes —
/// everything the paper's figures report.

#include <map>
#include <optional>

#include "dtn/message.hpp"
#include "repl/sync.hpp"
#include "util/stats.hpp"

namespace pfrdtn::sim {

struct MessageRecord {
  dtn::MessageId id{};
  HostId sender{};
  HostId recipient{};
  SimTime injected;
  std::optional<SimTime> delivered;
  /// Replicas storing a copy when the message was first delivered.
  std::size_t copies_at_delivery = 0;
  /// Replicas storing a copy when the experiment ended.
  std::size_t copies_at_end = 0;

  [[nodiscard]] double delay_hours() const {
    PFRDTN_REQUIRE(delivered.has_value());
    return static_cast<double>(*delivered - injected) / 3600.0;
  }
};

class Metrics {
 public:
  void on_injected(dtn::MessageId id, HostId sender, HostId recipient,
                   SimTime now);
  /// Record first delivery; later deliveries of the same message (to
  /// other replicas' users) are ignored. Returns true on first
  /// delivery.
  bool on_delivered(dtn::MessageId id, SimTime now, std::size_t copies);
  void set_copies_at_end(dtn::MessageId id, std::size_t copies);

  void on_sync(const repl::SyncStats& stats) {
    traffic_.accumulate(stats);
    ++sync_count_;
  }
  void on_encounter() { ++encounter_count_; }
  void sample_knowledge_bytes(double bytes) { knowledge_bytes_.add(bytes); }

  [[nodiscard]] const std::map<dtn::MessageId, MessageRecord>& records()
      const {
    return records_;
  }
  [[nodiscard]] std::size_t injected_count() const {
    return records_.size();
  }
  [[nodiscard]] std::size_t delivered_count() const;

  /// Delays of delivered messages, in hours.
  [[nodiscard]] Distribution delay_distribution() const;
  /// Fraction of *injected* messages delivered within `hours` of their
  /// injection (the paper's CDFs are normalized by injected count).
  [[nodiscard]] double delivered_within_hours(double hours) const;
  /// Mean copies stored at delivery time (over delivered messages).
  [[nodiscard]] double mean_copies_at_delivery() const;
  /// Mean copies stored at the end (over all injected messages).
  [[nodiscard]] double mean_copies_at_end() const;
  /// Longest delivery delay, in hours (0 when nothing delivered).
  [[nodiscard]] double max_delay_hours() const;

  [[nodiscard]] const repl::SyncStats& traffic() const { return traffic_; }
  [[nodiscard]] std::size_t sync_count() const { return sync_count_; }
  [[nodiscard]] std::size_t encounter_count() const {
    return encounter_count_;
  }
  [[nodiscard]] const Summary& knowledge_bytes() const {
    return knowledge_bytes_;
  }

 private:
  std::map<dtn::MessageId, MessageRecord> records_;
  repl::SyncStats traffic_;
  std::size_t sync_count_ = 0;
  std::size_t encounter_count_ = 0;
  Summary knowledge_bytes_;
};

}  // namespace pfrdtn::sim
