#include "sim/experiment.hpp"

#include <algorithm>
#include <cstdio>

namespace pfrdtn::sim {

EmulationConfig paper_config(std::uint64_t seed) {
  EmulationConfig config;
  config.mobility.days = 17;
  config.mobility.buses_per_day = 23;
  config.mobility.seed = seed;
  config.email.users = 100;
  config.email.total_messages = 490;
  config.email.inject_days = 8;
  config.email.seed = seed ^ 0xE17;
  config.assignment_seed = seed ^ 0xA55;
  return config;
}

EmulationConfig small_config(double scale, std::uint64_t seed) {
  EmulationConfig config = paper_config(seed);
  scale = std::clamp(scale, 0.05, 1.0);
  const auto scaled = [scale](std::size_t value, std::size_t floor_v) {
    return std::max(floor_v,
                    static_cast<std::size_t>(
                        static_cast<double>(value) * scale));
  };
  config.mobility.days = scaled(17, 3);
  config.mobility.fleet_size = scaled(40, 6);
  config.mobility.buses_per_day = scaled(23, 4);
  config.email.users = scaled(100, 8);
  config.email.total_messages = scaled(490, 20);
  config.email.inject_days =
      std::min(config.mobility.days, scaled(8, 2));
  return config;
}

EmulationResult run_experiment(const EmulationConfig& config) {
  Emulation emulation(config);
  return emulation.run();
}

void print_delay_cdf(const std::string& series, const Metrics& metrics,
                     double limit_hours, std::size_t points) {
  for (std::size_t i = 0; i < points; ++i) {
    const double hours = limit_hours * static_cast<double>(i) /
                         static_cast<double>(points - 1);
    std::printf("%-12s %8.2f %8.2f\n", series.c_str(), hours,
                metrics.delivered_within_hours(hours));
  }
}

}  // namespace pfrdtn::sim
