#pragma once

/// \file emulator.hpp
/// The paper's emulation environment (Section VI-A): "many instances
/// of our DTN application on the same physical machine", one DtnNode
/// per bus, driven by a vehicular encounter trace and an e-mail
/// workload. Each day, e-mail users are distributed over the buses
/// scheduled for that day; the user mapping determines which *nodes*
/// exchange messages ("we used this dataset to determine which node
/// sends messages to which other nodes"). A message is injected by
/// inserting it into the sender's current bus replica, addressed to
/// the recipient's current bus; two syncs run per encounter; the
/// message counts as delivered when it reaches that destination bus.
///
/// Addressing buses (not roaming users) is what reproduces Figure 8's
/// observation that unmodified Cimbiosys stores exactly two copies per
/// delivered message — a roaming destination would keep pulling fresh
/// copies to each new host.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dtn/filter_strategy.hpp"
#include "dtn/messaging.hpp"
#include "net/loopback.hpp"
#include "sim/metrics.hpp"
#include "trace/email.hpp"
#include "trace/mobility.hpp"

namespace pfrdtn::sim {

struct EmulationConfig {
  trace::MobilityConfig mobility;
  trace::EmailConfig email;

  /// Routing policy name (see dtn::make_policy) and overrides.
  std::string policy = "cimbiosys";
  std::map<std::string, double> policy_params;

  /// Multi-address filter strategy (Section IV-B / Figures 5-6).
  dtn::FilterStrategy strategy = dtn::FilterStrategy::SelfOnly;
  std::size_t filter_k = 0;

  /// Bandwidth constraint: items transferable per encounter (Fig. 9).
  std::optional<std::size_t> encounter_budget;
  /// Storage constraint: relayed messages stored per node (Fig. 10).
  std::optional<std::size_t> relay_capacity;

  /// Ablations / extensions.
  bool delete_after_delivery = false;  ///< tombstone delivered messages
  bool learn_knowledge = true;         ///< scoped knowledge merging
  bool single_sync_per_encounter = false;

  /// Run the store/knowledge soundness oracle every N encounters
  /// (0 = disabled). Violations throw ContractViolation.
  std::size_t invariant_check_every = 0;

  /// Route every encounter's syncs through the in-memory loopback
  /// transport (src/net/), so framing and the session state machine
  /// are exercised continuously. Fault-free, the emulation is
  /// byte-for-byte identical to the in-process path.
  bool loopback_transport = false;
  /// Faults injected into every loopback contact when the transport
  /// mode is on (interrupted contacts, throttled links).
  net::LoopbackFaults loopback_faults;

  /// Probability that a user rides a uniformly random scheduled bus on
  /// a day even though their home bus is scheduled (errands; adds the
  /// cross-pair mixing a real rider population has).
  double user_errand_prob = 0.4;

  /// Seed for the daily user-to-bus assignment and filter strategies.
  std::uint64_t assignment_seed = 99;
};

struct EmulationResult {
  Metrics metrics;
  std::size_t days = 0;
  std::size_t users = 0;
  std::size_t fleet_size = 0;
};

class Emulation {
 public:
  explicit Emulation(EmulationConfig config);
  /// Use pre-generated traces (tests; real converted traces).
  Emulation(EmulationConfig config, trace::MobilityTrace mobility,
            trace::EmailWorkload email);

  /// Run the full experiment and return the collected metrics.
  EmulationResult run();

  /// The per-day user-to-bus assignment (exposed for tests and for the
  /// Selected filter strategy's oracle). assignment()[day][user_index]
  /// is the bus hosting that user on that day.
  [[nodiscard]] const std::vector<std::vector<trace::BusIndex>>&
  assignment() const {
    return assignment_;
  }

  /// Pairwise bus-level encounter counts from the trace (keyed by bus
  /// address; drives the Selected filter strategy).
  [[nodiscard]] const dtn::EncounterCounts& encounter_counts() const {
    return encounter_counts_;
  }

  /// The DTN address of a bus (buses host one permanent address each).
  [[nodiscard]] static HostId bus_address(trace::BusIndex bus) {
    return HostId(kBusAddressBase + bus);
  }

 private:
  static constexpr std::uint64_t kBusAddressBase = 100000;

  /// The sync runner handed to run_encounter: empty in the default
  /// in-process mode, a loopback-session adapter in transport mode.
  [[nodiscard]] dtn::SyncRunner make_sync_runner() const;

  void build_assignment();
  void build_encounter_counts();
  void configure_nodes();
  void inject(const trace::MessageEvent& event);
  void handle_encounter(const trace::Encounter& encounter);
  void record_deliveries(const std::vector<dtn::Message>& delivered,
                         dtn::DtnNode& node, SimTime now);
  std::size_t count_copies(dtn::MessageId id) const;
  void check_invariants() const;

  EmulationConfig config_;
  trace::MobilityTrace mobility_;
  trace::EmailWorkload email_;
  std::vector<std::unique_ptr<dtn::DtnNode>> nodes_;
  /// assignment_[day][user_index] -> bus index hosting that user.
  std::vector<std::vector<trace::BusIndex>> assignment_;
  dtn::EncounterCounts encounter_counts_;
  dtn::FilterPlan filter_plan_;
  Metrics metrics_;
};

}  // namespace pfrdtn::sim
