#include "sim/metrics.hpp"

#include <algorithm>

namespace pfrdtn::sim {

void Metrics::on_injected(dtn::MessageId id, HostId sender,
                          HostId recipient, SimTime now) {
  MessageRecord record;
  record.id = id;
  record.sender = sender;
  record.recipient = recipient;
  record.injected = now;
  records_.emplace(id, record);
}

bool Metrics::on_delivered(dtn::MessageId id, SimTime now,
                           std::size_t copies) {
  const auto it = records_.find(id);
  if (it == records_.end()) return false;
  if (it->second.delivered) return false;
  it->second.delivered = now;
  it->second.copies_at_delivery = copies;
  return true;
}

void Metrics::set_copies_at_end(dtn::MessageId id, std::size_t copies) {
  const auto it = records_.find(id);
  if (it != records_.end()) it->second.copies_at_end = copies;
}

std::size_t Metrics::delivered_count() const {
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.delivered) ++n;
  }
  return n;
}

Distribution Metrics::delay_distribution() const {
  Distribution delays;
  for (const auto& [id, record] : records_) {
    if (record.delivered) delays.add(record.delay_hours());
  }
  return delays;
}

double Metrics::delivered_within_hours(double hours) const {
  if (records_.empty()) return 0.0;
  std::size_t n = 0;
  for (const auto& [id, record] : records_) {
    if (record.delivered && record.delay_hours() <= hours) ++n;
  }
  return 100.0 * static_cast<double>(n) /
         static_cast<double>(records_.size());
}

double Metrics::mean_copies_at_delivery() const {
  Summary summary;
  for (const auto& [id, record] : records_) {
    if (record.delivered)
      summary.add(static_cast<double>(record.copies_at_delivery));
  }
  return summary.mean();
}

double Metrics::mean_copies_at_end() const {
  Summary summary;
  for (const auto& [id, record] : records_) {
    summary.add(static_cast<double>(record.copies_at_end));
  }
  return summary.mean();
}

double Metrics::max_delay_hours() const {
  double max_delay = 0.0;
  for (const auto& [id, record] : records_) {
    if (record.delivered)
      max_delay = std::max(max_delay, record.delay_hours());
  }
  return max_delay;
}

}  // namespace pfrdtn::sim
