#pragma once

/// \file experiment.hpp
/// Canned experiment configurations matching the paper's Section VI
/// setup, plus small helpers the benches share for printing figure
/// series. Every figure bench builds on these so the setup is
/// identical across figures, exactly as in the paper.

#include <string>

#include "sim/emulator.hpp"

namespace pfrdtn::sim {

/// The paper-scale configuration: 17 days, ~23 buses/day from a 30-bus
/// fleet, ~12k encounters, 100 users, 490 messages injected 8:00-10:00
/// on days 1-8, unconstrained resources, basic Cimbiosys policy.
EmulationConfig paper_config(std::uint64_t seed = 4);

/// A reduced configuration for unit/integration tests: `scale` in
/// (0, 1] shrinks days, fleet and message count proportionally.
EmulationConfig small_config(double scale = 0.25,
                             std::uint64_t seed = 4);

/// Run one experiment variant and return its results.
EmulationResult run_experiment(const EmulationConfig& config);

/// Print "x y" CDF rows of delivery percentage vs delay for the given
/// grid (hours), prefixed by the series name — the format every
/// figure bench emits.
void print_delay_cdf(const std::string& series, const Metrics& metrics,
                     double limit_hours, std::size_t points);

}  // namespace pfrdtn::sim
