#pragma once

/// \file event_queue.hpp
/// A deterministic discrete-event queue: events fire in time order,
/// with FIFO ordering among events scheduled for the same instant
/// (stable by insertion sequence), so emulation runs are exactly
/// reproducible.

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "util/require.hpp"
#include "util/sim_time.hpp"

namespace pfrdtn::sim {

class EventQueue {
 public:
  using Action = std::function<void(SimTime)>;

  /// Schedule an action; `when` must not precede the current time.
  void schedule(SimTime when, Action action) {
    PFRDTN_REQUIRE(when >= now_);
    heap_.push(Entry{when, next_seq_++, std::move(action)});
  }

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  [[nodiscard]] SimTime now() const { return now_; }

  /// Fire the earliest event. Returns false if the queue is empty.
  bool step() {
    if (heap_.empty()) return false;
    // Move out of the const top via a copy of the handle; the action
    // is shared_ptr-like via std::function copy.
    Entry entry = heap_.top();
    heap_.pop();
    now_ = entry.when;
    entry.action(now_);
    return true;
  }

  /// Run until the queue drains (events may schedule more events).
  void run() {
    while (step()) {
    }
  }

  /// Run while events fire no later than `until` (inclusive).
  void run_until(SimTime until) {
    while (!heap_.empty() && heap_.top().when <= until) step();
  }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq = 0;
    Action action;

    bool operator>(const Entry& other) const {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  SimTime now_{std::numeric_limits<std::int64_t>::min()};
  std::uint64_t next_seq_ = 0;
};

}  // namespace pfrdtn::sim
