#pragma once

/// \file pfrdtn.hpp
/// Umbrella header for the PFR-DTN library.
///
/// Layering (lower layers never include upper ones):
///   util/   ids, rng, sim-time, byte buffers, stats, logging
///   repl/   the peer-to-peer filtered replication substrate
///   dtn/    the DTN messaging application + routing policies
///   trace/  synthetic workload & mobility generators, trace I/O
///   sim/    the emulation harness reproducing the paper's evaluation
///
/// Most applications need only dtn/messaging.hpp plus one policy
/// header; include this umbrella for exploratory use.

// util
#include "util/byte_buffer.hpp"
#include "util/ids.hpp"
#include "util/logging.hpp"
#include "util/require.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"
#include "util/stats.hpp"

// replication substrate
#include "repl/filter.hpp"
#include "repl/forwarding_policy.hpp"
#include "repl/item.hpp"
#include "repl/knowledge.hpp"
#include "repl/replica.hpp"
#include "repl/store.hpp"
#include "repl/sync.hpp"
#include "repl/version.hpp"

// DTN layer
#include "dtn/baselines.hpp"
#include "dtn/direct.hpp"
#include "dtn/epidemic.hpp"
#include "dtn/filter_strategy.hpp"
#include "dtn/maxprop.hpp"
#include "dtn/message.hpp"
#include "dtn/messaging.hpp"
#include "dtn/policy.hpp"
#include "dtn/prophet.hpp"
#include "dtn/registry.hpp"
#include "dtn/spray_focus.hpp"
#include "dtn/spray_wait.hpp"

// traces & emulation
#include "sim/emulator.hpp"
#include "sim/event_queue.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "trace/email.hpp"
#include "trace/encounter.hpp"
#include "trace/mobility.hpp"
#include "trace/random_waypoint.hpp"
#include "trace/trace_io.hpp"
