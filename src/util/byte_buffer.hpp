#pragma once

/// \file byte_buffer.hpp
/// Wire-format serialization. The emulation runs in one process, but
/// sync requests, batches and knowledge are serialized to bytes anyway
/// so that metadata overhead (a headline Cimbiosys property) can be
/// measured honestly, and so the substrate has a real wire format.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/require.hpp"

namespace pfrdtn {

/// Append-only byte sink with varint and fixed-width encoders.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }

  /// LEB128 unsigned varint.
  void uvarint(std::uint64_t v) {
    while (v >= 0x80) {
      bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }

  /// Zig-zag signed varint.
  void svarint(std::int64_t v) {
    uvarint((static_cast<std::uint64_t>(v) << 1) ^
            static_cast<std::uint64_t>(v >> 63));
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i)
      bytes_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void str(std::string_view s) {
    uvarint(s.size());
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }

  void raw(const std::vector<std::uint8_t>& data) {
    uvarint(data.size());
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return bytes_;
  }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Sequential reader over bytes produced by ByteWriter. Throws
/// ContractViolation on malformed input (truncation, overlong varints).
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() {
    PFRDTN_REQUIRE(pos_ < size_);
    return data_[pos_++];
  }

  std::uint64_t uvarint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      PFRDTN_REQUIRE(shift < 64);
      const std::uint8_t byte = u8();
      v |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if (!(byte & 0x80)) return v;
      shift += 7;
    }
  }

  std::int64_t svarint() {
    const std::uint64_t z = uvarint();
    return static_cast<std::int64_t>(z >> 1) ^
           -static_cast<std::int64_t>(z & 1);
  }

  double f64() {
    PFRDTN_REQUIRE(pos_ + 8 <= size_);
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  std::string str() {
    const std::uint64_t n = uvarint();
    PFRDTN_REQUIRE(pos_ + n <= size_);
    std::string s(reinterpret_cast<const char*>(data_ + pos_),
                  static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return s;
  }

  std::vector<std::uint8_t> raw() {
    const std::uint64_t n = uvarint();
    PFRDTN_REQUIRE(pos_ + n <= size_);
    std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + n);
    pos_ += static_cast<std::size_t>(n);
    return out;
  }

  [[nodiscard]] bool done() const { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const { return size_ - pos_; }

  // ---- bounded-read cursor -------------------------------------------
  //
  // Decoders charge one unit per decoded *element* (version-vector
  // entry, knowledge counter, filter node, set member, metadata pair)
  // before materializing it. Byte counts alone do not bound decode
  // cost: compact encodings amplify — a one-byte varint counter can
  // expand into a tree node tens of bytes large — so a hostile payload
  // well under the frame cap could still request unbounded work. The
  // budget defaults to unlimited (trusted local decode paths are
  // unchanged); the session layer arms it per frame from
  // net::ResourceLimits before handing the payload to a codec.

  void set_element_budget(std::size_t budget) { element_budget_ = budget; }

  /// Consume `n` units of the element budget; throws ContractViolation
  /// once the payload asks for more elements than the session allows.
  void charge_elements(std::size_t n = 1) {
    if (n > element_budget_)
      throw ContractViolation(
          "decode element budget exceeded: payload requests more elements "
          "than the session's resource limits allow");
    element_budget_ -= n;
  }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  std::size_t element_budget_ = static_cast<std::size_t>(-1);
};

// ---- framing ---------------------------------------------------------
//
// When serialized messages travel over a transport (src/net/) they are
// wrapped in frames:
//
//   magic   u16 LE   0x5046 ("PF")
//   version u8       kFrameVersion
//   type    u8       message type, opaque to this layer
//   length  u32 LE   payload byte count
//   payload length bytes
//
// The codec lives here, below both src/repl/ and src/net/, so the
// in-process sync path can report the same framed byte counts a real
// wire transfer produces without depending on any transport.

inline constexpr std::uint16_t kFrameMagic = 0x5046;
inline constexpr std::uint8_t kFrameVersion = 1;
inline constexpr std::size_t kFrameHeaderSize = 8;
/// Upper bound on a single frame's payload; a length above this is
/// treated as a malformed header rather than an allocation request.
inline constexpr std::uint32_t kMaxFramePayload = 64u << 20;

struct FrameHeader {
  std::uint8_t type = 0;
  std::uint32_t length = 0;
};

/// Total wire footprint of a payload of `payload_size` bytes.
[[nodiscard]] constexpr std::size_t framed_size(std::size_t payload_size) {
  return kFrameHeaderSize + payload_size;
}

inline void encode_frame_header(std::uint8_t type, std::uint32_t length,
                                std::uint8_t out[kFrameHeaderSize]) {
  PFRDTN_REQUIRE(length <= kMaxFramePayload);
  out[0] = static_cast<std::uint8_t>(kFrameMagic & 0xFF);
  out[1] = static_cast<std::uint8_t>(kFrameMagic >> 8);
  out[2] = kFrameVersion;
  out[3] = type;
  for (int i = 0; i < 4; ++i)
    out[4 + i] = static_cast<std::uint8_t>(length >> (8 * i));
}

/// Throws ContractViolation on a bad magic, unknown version, or an
/// implausible length — the caller is reading garbage, not a frame.
inline FrameHeader decode_frame_header(
    const std::uint8_t in[kFrameHeaderSize]) {
  const std::uint16_t magic =
      static_cast<std::uint16_t>(in[0] | (in[1] << 8));
  PFRDTN_REQUIRE(magic == kFrameMagic);
  PFRDTN_REQUIRE(in[2] == kFrameVersion);
  FrameHeader header;
  header.type = in[3];
  for (int i = 0; i < 4; ++i)
    header.length |= static_cast<std::uint32_t>(in[4 + i]) << (8 * i);
  PFRDTN_REQUIRE(header.length <= kMaxFramePayload);
  return header;
}

}  // namespace pfrdtn
