#pragma once

/// \file stats.hpp
/// Statistics helpers used by the metrics layer and benchmark harness:
/// running summaries, empirical CDFs, and fixed-bucket histograms.

#include <cstddef>
#include <string>
#include <vector>

namespace pfrdtn {

/// Incremental mean / min / max / variance (Welford's algorithm).
class Summary {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return count_; }
  [[nodiscard]] double mean() const { return count_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return count_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

/// Empirical distribution over collected samples.
class Distribution {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] double mean() const;
  /// q in [0,1]; linear interpolation between order statistics.
  [[nodiscard]] double quantile(double q) const;
  /// Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  /// CDF evaluated at each point of a regular grid [0, limit] with
  /// `points` samples; used to print figure series.
  [[nodiscard]] std::vector<std::pair<double, double>> cdf_series(
      double limit, std::size_t points) const;

  [[nodiscard]] const std::vector<double>& samples() const {
    return samples_;
  }

 private:
  void ensure_sorted() const;
  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Render a simple ASCII table row: fixed-width columns.
std::string format_row(const std::vector<std::string>& cells,
                       std::size_t width = 14);

}  // namespace pfrdtn
