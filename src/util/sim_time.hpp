#pragma once

/// \file sim_time.hpp
/// Simulated time. The emulation operates in whole seconds from an
/// experiment epoch; helpers convert to the day/hour structure the
/// paper's traces use (days start at midnight, encounters 8:00–23:00,
/// message injection 8:00–10:00).

#include <compare>
#include <cstdint>
#include <string>

namespace pfrdtn {

/// A point in simulated time, in seconds since the experiment epoch.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) : seconds_(seconds) {}

  [[nodiscard]] constexpr std::int64_t seconds() const { return seconds_; }
  [[nodiscard]] constexpr double hours() const {
    return static_cast<double>(seconds_) / 3600.0;
  }
  [[nodiscard]] constexpr double days() const {
    return static_cast<double>(seconds_) / 86400.0;
  }

  /// Day index (0-based) containing this instant.
  [[nodiscard]] constexpr std::int64_t day_index() const {
    return seconds_ >= 0 ? seconds_ / 86400
                         : (seconds_ - 86399) / 86400;  // floor division
  }
  /// Seconds since this instant's midnight.
  [[nodiscard]] constexpr std::int64_t seconds_into_day() const {
    return seconds_ - day_index() * 86400;
  }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime t, std::int64_t s) {
    return SimTime(t.seconds_ + s);
  }
  friend constexpr std::int64_t operator-(SimTime a, SimTime b) {
    return a.seconds_ - b.seconds_;
  }

  /// "d3 14:05:09" style rendering for logs and reports.
  [[nodiscard]] std::string str() const;

  static constexpr SimTime never() {
    return SimTime(std::int64_t{1} << 60);
  }

 private:
  std::int64_t seconds_ = 0;
};

/// Construct a SimTime from (day, hour, minute, second).
constexpr SimTime at(std::int64_t day, std::int64_t hour,
                     std::int64_t minute = 0, std::int64_t second = 0) {
  return SimTime(((day * 24 + hour) * 60 + minute) * 60 + second);
}

constexpr std::int64_t kSecondsPerHour = 3600;
constexpr std::int64_t kSecondsPerDay = 86400;

}  // namespace pfrdtn
