#pragma once

/// \file storage_error.hpp
/// Exception types for storage faults and the degraded read-only mode
/// they trigger. They live in util (not persist) because three layers
/// must agree on them without depending on each other:
///
///   - persist throws StorageError from failing StorageEnv operations
///     (EIO, ENOSPC, a failed fsync, ...), carrying the operation, file
///     and errno so callers can log one structured line;
///   - repl throws ReadOnlyError from the mutation funnel once the
///     replica has been degraded to read-only (a StorageError with
///     errno EROFS);
///   - net catches StorageError *before* ContractViolation at the
///     session boundary: a local disk fault mid-session is our problem,
///     not the peer's, so it must never earn the peer a quarantine
///     strike the way a protocol violation does.
///
/// StorageError derives from ContractViolation so code that predates
/// the fault model still fails closed (catch blocks for
/// ContractViolation see it), while fault-aware code can order a more
/// specific catch first.

#include <cerrno>
#include <cstring>
#include <string>

#include "util/require.hpp"

namespace pfrdtn {

/// A storage operation failed. `op` is the syscall-level operation
/// ("write", "fsync", "open", ...), `file` the file it targeted, and
/// `error_code` the errno captured at the failure point (0 when the
/// fault is logical rather than a syscall, e.g. a read-only refusal).
class StorageError : public ContractViolation {
 public:
  StorageError(std::string op, std::string file, int error_code)
      : ContractViolation(format(op, file, error_code)),
        op_(std::move(op)),
        file_(std::move(file)),
        error_code_(error_code) {}

  [[nodiscard]] const std::string& op() const { return op_; }
  [[nodiscard]] const std::string& file() const { return file_; }
  [[nodiscard]] int error_code() const { return error_code_; }

 private:
  static std::string format(const std::string& op,
                            const std::string& file, int error_code) {
    std::string out = op + " failed for " + file;
    if (error_code != 0) {
      out += ": errno=" + std::to_string(error_code) + " (" +
             std::strerror(error_code) + ")";
    }
    return out;
  }

  std::string op_;
  std::string file_;
  int error_code_;
};

/// A mutation was refused because the replica is degraded to read-only
/// (its durability layer can no longer acknowledge writes). Thrown
/// *before* any in-memory state changes, so a refused mutation leaves
/// the replica exactly as it was. Peers classify this as transient —
/// retry after the operator clears the disk fault — never as a
/// protocol violation.
class ReadOnlyError : public StorageError {
 public:
  explicit ReadOnlyError(const std::string& what)
      : StorageError("mutate", what, EROFS) {}
};

}  // namespace pfrdtn
