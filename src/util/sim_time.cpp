#include "util/sim_time.hpp"

#include <cstdio>

namespace pfrdtn {

std::string SimTime::str() const {
  const std::int64_t day = day_index();
  const std::int64_t rem = seconds_into_day();
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02lld:%02lld:%02lld",
                static_cast<long long>(day),
                static_cast<long long>(rem / 3600),
                static_cast<long long>((rem / 60) % 60),
                static_cast<long long>(rem % 60));
  return buf;
}

}  // namespace pfrdtn
