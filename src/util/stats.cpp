#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace pfrdtn {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

void Distribution::ensure_sorted() const {
  if (!sorted_) {
    auto& mutable_samples = const_cast<std::vector<double>&>(samples_);
    std::sort(mutable_samples.begin(), mutable_samples.end());
    sorted_ = true;
  }
}

double Distribution::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double Distribution::quantile(double q) const {
  PFRDTN_REQUIRE(q >= 0.0 && q <= 1.0);
  PFRDTN_REQUIRE(!samples_.empty());
  ensure_sorted();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Distribution::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Distribution::cdf_series(
    double limit, std::size_t points) const {
  PFRDTN_REQUIRE(points >= 2);
  std::vector<std::pair<double, double>> series;
  series.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        limit * static_cast<double>(i) / static_cast<double>(points - 1);
    series.emplace_back(x, cdf_at(x));
  }
  return series;
}

std::string format_row(const std::vector<std::string>& cells,
                       std::size_t width) {
  std::string out;
  for (const auto& cell : cells) {
    std::string padded = cell;
    if (padded.size() < width) padded.resize(width, ' ');
    out += padded;
    out += ' ';
  }
  return out;
}

}  // namespace pfrdtn
