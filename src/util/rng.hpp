#pragma once

/// \file rng.hpp
/// Deterministic random number generation. All stochastic components
/// (trace generators, filter strategies, workloads) take an explicit
/// seeded Rng so every experiment is exactly reproducible.

#include <cstdint>
#include <vector>

#include "util/require.hpp"

namespace pfrdtn {

/// splitmix64 — used to expand a user seed into xoshiro state.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms
/// (unlike std::mt19937 distributions, whose results are
/// implementation-defined).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    PFRDTN_REQUIRE(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    PFRDTN_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double exponential(double mean);

  /// Zipf-distributed integer in [0, n) with exponent s (s >= 0).
  /// Rank 0 is the most frequent. Uses inverse-CDF over precomputed
  /// weights; O(log n) per draw after O(n) setup via ZipfSampler below.
  class Zipf;

  /// Fisher–Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[below(i)]);
    }
  }

  /// Sample k distinct indices from [0, n) uniformly (k <= n).
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derive an independent child generator (for per-component streams).
  Rng fork() { return Rng((*this)() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4]{};
};

/// Precomputed Zipf(s) sampler over ranks [0, n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Draw a rank; rank 0 most probable.
  std::size_t operator()(Rng& rng) const;

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace pfrdtn
