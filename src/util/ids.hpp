#pragma once

/// \file ids.hpp
/// Strong identifier types. Replicas, hosts (DTN addresses), messages
/// and items all use distinct id types so they cannot be confused at
/// compile time (Core Guidelines I.4: make interfaces precisely and
/// strongly typed).

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace pfrdtn {

/// CRTP base for a strongly-typed 64-bit identifier.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  constexpr explicit StrongId(std::uint64_t v) : value_(v) {}

  [[nodiscard]] constexpr std::uint64_t value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(StrongId, StrongId) = default;

  [[nodiscard]] std::string str() const {
    return Tag::prefix() + std::to_string(value_);
  }

  static constexpr std::uint64_t kInvalid = ~std::uint64_t{0};

 private:
  std::uint64_t value_ = kInvalid;
};

struct ReplicaIdTag {
  static const char* prefix() { return "r"; }
};
struct ItemIdTag {
  static const char* prefix() { return "i"; }
};
struct HostIdTag {
  static const char* prefix() { return "h"; }
};

/// Identifies one replica of a collection (one device in the paper).
using ReplicaId = StrongId<ReplicaIdTag>;
/// Identifies one replicated data item (one message in the DTN app).
using ItemId = StrongId<ItemIdTag>;
/// A DTN address: identifies a messaging endpoint (an e-mail user in the
/// paper's evaluation). Distinct from ReplicaId because the evaluation
/// reassigns users to buses daily.
using HostId = StrongId<HostIdTag>;

}  // namespace pfrdtn

namespace std {
template <class Tag>
struct hash<pfrdtn::StrongId<Tag>> {
  size_t operator()(pfrdtn::StrongId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value());
  }
};
}  // namespace std
