#pragma once

/// \file crc32.hpp
/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
/// ranges, used by src/persist/ to frame WAL records and seal
/// checkpoints. Table-driven and dependency-free; the table is built
/// once at first use.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pfrdtn {

namespace detail {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit)
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace detail

/// CRC-32 of `size` bytes at `data`.
inline std::uint32_t crc32(const std::uint8_t* data, std::size_t size) {
  const auto& table = detail::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace pfrdtn
