#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace pfrdtn {

double Rng::exponential(double mean) {
  PFRDTN_REQUIRE(mean > 0);
  // uniform() is in [0,1); 1-u is in (0,1], so the log is finite.
  return -mean * std::log(1.0 - uniform());
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PFRDTN_REQUIRE(k <= n);
  if (k == 0) return {};
  // For small k relative to n, rejection sampling; otherwise shuffle a
  // full index vector and truncate.
  if (k * 3 < n) {
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> out;
    out.reserve(k);
    while (out.size() < k) {
      const std::size_t candidate = below(n);
      if (chosen.insert(candidate).second) out.push_back(candidate);
    }
    return out;
  }
  std::vector<std::size_t> indices(n);
  for (std::size_t i = 0; i < n; ++i) indices[i] = i;
  shuffle(indices);
  indices.resize(k);
  return indices;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  PFRDTN_REQUIRE(n > 0);
  PFRDTN_REQUIRE(exponent >= 0);
  cdf_.resize(n);
  double total = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), exponent);
    cdf_[rank] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace pfrdtn
