#include "util/logging.hpp"

#include <cstdio>

namespace pfrdtn {

std::function<void(LogLevel, const std::string&)>& Log::sink() {
  static std::function<void(LogLevel, const std::string&)> fn =
      [](LogLevel level, const std::string& message) {
        std::fprintf(stderr, "[%s] %s\n", level_name(level),
                     message.c_str());
      };
  return fn;
}

void Log::write(LogLevel level, const std::string& message) {
  if (enabled(level)) sink()(level, message);
}

const char* Log::level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace:
      return "TRACE";
    case LogLevel::Debug:
      return "DEBUG";
    case LogLevel::Info:
      return "INFO";
    case LogLevel::Warn:
      return "WARN";
    case LogLevel::Error:
      return "ERROR";
  }
  return "?";
}

}  // namespace pfrdtn
