#pragma once

/// \file require.hpp
/// Lightweight contract checking in the spirit of the C++ Core
/// Guidelines' Expects()/Ensures(). Violations throw ContractViolation
/// so tests can assert on misuse; they are programmer errors, not
/// recoverable conditions.

#include <stdexcept>
#include <string>

namespace pfrdtn {

/// Thrown when a PFRDTN_REQUIRE / PFRDTN_ENSURE contract is violated.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(std::string(kind) + " failed: " + expr + " at " +
                          file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace pfrdtn

/// Precondition check. Active in all build types: the library is a
/// research artifact where silent contract violations would invalidate
/// reproduced results.
#define PFRDTN_REQUIRE(expr)                                             \
  do {                                                                   \
    if (!(expr))                                                         \
      ::pfrdtn::detail::contract_fail("precondition", #expr, __FILE__,   \
                                      __LINE__);                         \
  } while (false)

/// Postcondition / invariant check.
#define PFRDTN_ENSURE(expr)                                              \
  do {                                                                   \
    if (!(expr))                                                         \
      ::pfrdtn::detail::contract_fail("postcondition", #expr, __FILE__,  \
                                      __LINE__);                         \
  } while (false)
