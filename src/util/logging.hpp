#pragma once

/// \file logging.hpp
/// Minimal leveled logger. Experiments run millions of sync operations;
/// logging defaults to Warn and is stream-free on disabled levels.

#include <functional>
#include <sstream>
#include <string>

namespace pfrdtn {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global log configuration (single-threaded emulation; no locking).
class Log {
 public:
  static LogLevel& threshold() {
    static LogLevel level = LogLevel::Warn;
    return level;
  }

  /// Sink receives fully formatted lines; defaults to stderr.
  static std::function<void(LogLevel, const std::string&)>& sink();

  static bool enabled(LogLevel level) { return level >= threshold(); }

  static void write(LogLevel level, const std::string& message);

  static const char* level_name(LogLevel level);
};

/// Builds one log line and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { Log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace pfrdtn

#define PFRDTN_LOG(level)                                \
  if (!::pfrdtn::Log::enabled(::pfrdtn::LogLevel::level)) \
    ;                                                    \
  else                                                   \
    ::pfrdtn::LogLine(::pfrdtn::LogLevel::level)
