#pragma once

/// \file hash.hpp
/// Non-cryptographic hashing shared across layers: FNV-1a for content
/// digests (checkpoint state digests, knowledge summary digests) and a
/// splitmix64 finalizer for Bloom-filter index derivation. These hashes
/// defend against accidents, not adversaries; anything security-
/// relevant (quarantine decisions, limit enforcement) never trusts a
/// digest alone.

#include <cstdint>
#include <vector>

namespace pfrdtn {

/// FNV-1a 64-bit over a byte string.
[[nodiscard]] inline std::uint64_t fnv1a64(
    const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixer used to
/// derive the double-hashing pair for Bloom filter probes.
[[nodiscard]] inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace pfrdtn
