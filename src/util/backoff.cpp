#include "util/backoff.hpp"

#include <algorithm>

namespace pfrdtn {

std::uint64_t jittered_delay_ms(std::uint64_t window_ms, Rng& rng) {
  const std::uint64_t half = window_ms / 2;
  return half + (half > 0 ? rng.below(half + 1) : 0);
}

std::uint64_t JitteredBackoff::window_ms(std::size_t attempts) const {
  // min(base << attempts, max), without shifting past 63 bits.
  std::uint64_t window = options_.base_ms;
  const std::size_t doublings = std::min<std::size_t>(attempts, 40);
  for (std::size_t i = 0;
       i < doublings && window < options_.max_ms; ++i) {
    window *= 2;
  }
  return std::min(window, options_.max_ms);
}

std::uint64_t JitteredBackoff::next_delay_ms() {
  const std::uint64_t delay = jittered_delay_ms(window_ms(attempts_), rng_);
  attempts_ += 1;
  return delay;
}

}  // namespace pfrdtn
