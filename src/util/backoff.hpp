#pragma once

/// \file backoff.hpp
/// The one jittered-exponential backoff used everywhere a retry delay
/// or a penalty window is computed: the CLI's connect retries, the
/// sync-with per-attempt contact discipline, and the peer-health
/// monitor's ejection windows. One implementation means one tested
/// set of semantics:
///
///   window(n) = min(base << n, max)          (n = completed attempts)
///   delay(n)  = uniform in [window/2, window]
///
/// The half-window floor keeps the delay meaningful (a jitter draw of
/// zero would defeat the backoff entirely); the upper half
/// de-synchronizes retry storms — fifty clients cut by the same link
/// fault must not re-dial in lockstep. Jitter comes from a seeded Rng
/// so tests and the check harness replay deterministically; callers
/// that want wall-clock unpredictability seed from the clock.

#include <cstdint>

#include "util/rng.hpp"

namespace pfrdtn {

/// Jitter one precomputed window into [window/2, window]. The single
/// draw shared by the stateful helper below and callers (the peer
/// health monitor) that derive the window from their own state.
std::uint64_t jittered_delay_ms(std::uint64_t window_ms, Rng& rng);

struct BackoffOptions {
  /// First delay's window; doubles per completed attempt.
  std::uint64_t base_ms = 200;
  /// Window cap — attempts beyond the cap stop extending the delay.
  std::uint64_t max_ms = 10000;
};

/// Stateful per-contact backoff: next_delay_ms() yields the jittered
/// delay to sleep before the next attempt and advances the window.
class JitteredBackoff {
 public:
  JitteredBackoff(BackoffOptions options, std::uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Delay before the next attempt; doubles the window (capped).
  std::uint64_t next_delay_ms();

  /// The window the next next_delay_ms() call will jitter within.
  [[nodiscard]] std::uint64_t current_window_ms() const {
    return window_ms(attempts_);
  }

  /// Completed next_delay_ms() calls so far.
  [[nodiscard]] std::size_t attempts() const { return attempts_; }

  /// A successful attempt resets the window to base (the link healed;
  /// the next failure starts the escalation over).
  void reset() { attempts_ = 0; }

 private:
  [[nodiscard]] std::uint64_t window_ms(std::size_t attempts) const;

  BackoffOptions options_;
  Rng rng_;
  std::size_t attempts_ = 0;
};

}  // namespace pfrdtn
