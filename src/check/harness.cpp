#include "check/harness.hpp"

#include <algorithm>

namespace pfrdtn::check {

namespace {

void accumulate(RunStats& total, const RunStats& stats) {
  total.syncs += stats.syncs;
  total.cuts += stats.cuts;
  total.incomplete += stats.incomplete;
  total.items_moved += stats.items_moved;
  total.evictions += stats.evictions;
  total.bytes += stats.bytes;
  total.disk_faults += stats.disk_faults;
  total.refused += stats.refused;
}

/// Re-run a candidate and keep it if it still violates anything,
/// truncating it right after wherever the (possibly different)
/// violation now fires.
bool try_candidate(Scenario& best, Scenario candidate,
                   std::size_t& used) {
  ++used;
  const RunResult result = run_scenario(candidate);
  if (!result.violation) return false;
  candidate.events.resize(std::min(candidate.events.size(),
                                   result.violation->event_index + 1));
  best = std::move(candidate);
  return true;
}

}  // namespace

Scenario shrink_scenario(const Scenario& failing,
                         const Violation& violation, std::size_t budget,
                         std::size_t* runs_used) {
  Scenario best = failing;
  best.events.resize(
      std::min(best.events.size(), violation.event_index + 1));
  std::size_t used = 0;

  std::size_t chunk = std::max<std::size_t>(1, best.events.size() / 2);
  for (;;) {
    bool removed_any = false;
    for (std::size_t start = 0;
         start < best.events.size() && used < budget;) {
      Scenario candidate = best;
      const std::size_t end =
          std::min(candidate.events.size(), start + chunk);
      candidate.events.erase(candidate.events.begin() + start,
                             candidate.events.begin() + end);
      if (try_candidate(best, std::move(candidate), used)) {
        removed_any = true;  // same start now addresses the next chunk
      } else {
        start += chunk;
      }
    }
    if (used >= budget) break;
    if (chunk > 1) {
      chunk = std::max<std::size_t>(1, chunk / 2);
    } else if (!removed_any) {
      break;  // single-event pass reached a fixpoint
    }
  }
  if (runs_used != nullptr) *runs_used = used;
  return best;
}

CheckReport run_check(const CheckOptions& options) {
  CheckReport report;
  for (std::size_t i = 0; i < options.runs; ++i) {
    const std::uint64_t seed = options.seed + i;
    const Scenario scenario = make_scenario(options.config, seed);
    RunResult result = run_scenario(scenario, options.log);
    ++report.runs;
    if (options.log) {
      report.run_logs.push_back("seed " + std::to_string(seed));
      for (std::string& line : result.log)
        report.run_logs.push_back("  " + std::move(line));
    }
    if (!result.violation) {
      accumulate(report.total, result.stats);
      continue;
    }
    report.passed = false;
    report.failing_seed = seed;
    report.shrunk = options.shrink
                        ? shrink_scenario(scenario, *result.violation,
                                          options.shrink_budget,
                                          &report.shrink_runs)
                        : scenario;
    // One logged rerun of the final schedule for the report; its
    // verdict is the one we publish (shrinking may surface a different
    // probe than the original run did).
    RunResult final_run = run_scenario(report.shrunk, /*keep_log=*/true);
    PFRDTN_ENSURE(final_run.violation.has_value());
    report.violation = final_run.violation;
    report.failing_log = std::move(final_run.log);
    return report;
  }
  return report;
}

std::string format_report(const CheckReport& report,
                          const std::string& replay_hint) {
  std::string out;
  if (report.passed) {
    out += "check passed: " + std::to_string(report.runs) + " run(s), " +
           std::to_string(report.total.syncs) + " syncs (" +
           std::to_string(report.total.cuts) + " cut, " +
           std::to_string(report.total.incomplete) + " incomplete), " +
           std::to_string(report.total.items_moved) + " items moved, " +
           std::to_string(report.total.evictions) + " evictions, " +
           std::to_string(report.total.bytes) + " bytes";
    if (report.total.disk_faults > 0 || report.total.refused > 0) {
      out += ", " + std::to_string(report.total.disk_faults) +
             " disk faults, " + std::to_string(report.total.refused) +
             " refused";
    }
    out += "\n";
    return out;
  }
  out += "INVARIANT VIOLATION (seed " +
         std::to_string(report.failing_seed) + ")\n";
  out += "  probe:   " + report.violation->probe + "\n";
  out += "  detail:  " + report.violation->message + "\n";
  out += "  at:      event " +
         std::to_string(report.violation->event_index) +
         (report.violation->event_index >= report.shrunk.events.size()
              ? " (quiescence phase)"
              : "") +
         "\n";
  out += "  shrunk to " + std::to_string(report.shrunk.events.size()) +
         " event(s) in " + std::to_string(report.shrink_runs) +
         " extra run(s)\n";
  out += "minimal schedule:\n";
  for (std::size_t i = 0; i < report.shrunk.events.size(); ++i) {
    out += "  " + format_event(i, report.shrunk.events[i]) + "\n";
  }
  out += "event log of the minimal run:\n";
  for (const std::string& line : report.failing_log) {
    out += "  " + line + "\n";
  }
  out += "replay: " + replay_hint + "\n";
  return out;
}

}  // namespace pfrdtn::check
