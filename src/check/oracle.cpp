#include "check/oracle.hpp"

namespace pfrdtn::check {

namespace {

std::pair<std::uint64_t, std::uint64_t> key_of(const repl::Version& v) {
  return {v.author.value(), v.counter};
}

std::string describe(const repl::Version& v) {
  return "event (author " + v.author.str() + ", counter " +
         std::to_string(v.counter) + ")";
}

}  // namespace

void Oracle::note_latest(const repl::Item& item) {
  const auto it = latest_.find(item.id());
  if (it == latest_.end() ||
      item.version().dominates(it->second.version())) {
    latest_.insert_or_assign(item.id(), item);
  }
}

std::optional<std::string> Oracle::on_received(
    std::size_t replica, const std::vector<repl::Version>& events) {
  for (const repl::Version& v : events) {
    const auto key = key_of(v);
    if (received_[replica].count(key) > 0) {
      // A duplicate transmission is legitimate exactly once per
      // deliberate forget.
      if (forgiven_[replica].erase(key) == 0) {
        return "replica index " + std::to_string(replica) +
               " received " + describe(v) +
               " twice without forgetting it in between";
      }
    }
    received_[replica].insert(key);
  }
  return std::nullopt;
}

void Oracle::forgive(std::size_t replica,
                     const std::vector<repl::Item>& evicted) {
  for (const repl::Item& item : evicted)
    forgiven_[replica].insert(key_of(item.version()));
}

void Oracle::forgive_all(std::size_t replica) {
  // A knowledge rebuild may forget arbitrary events; reset the ledger
  // for this replica rather than track exactly what survived.
  received_[replica].clear();
  forgiven_[replica].clear();
}

std::optional<std::string> Oracle::check_soundness(
    const std::vector<repl::Replica>& replicas) const {
  for (const repl::Replica& r : replicas) {
    if (const std::string internal = r.check_invariants();
        !internal.empty()) {
      return internal;
    }
    for (const auto& [id, newest] : latest_) {
      if (!r.filter().matches(newest)) continue;
      if (!r.knowledge().knows(newest, newest.version())) continue;
      const auto* entry = r.store().find(id);
      if (entry == nullptr) {
        return r.id().str() + " claims knowledge of " +
               describe(newest.version()) + " for in-filter item " +
               id.str() + " it does not store";
      }
      if (newest.version().dominates(entry->item.version())) {
        return r.id().str() + " claims knowledge of " +
               describe(newest.version()) + " but stores " + id.str() +
               " at a dominated version";
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> Oracle::check_convergence(
    const std::vector<repl::Replica>& replicas) const {
  for (const repl::Replica& r : replicas) {
    for (const auto& [id, newest] : latest_) {
      if (!r.filter().matches(newest)) continue;
      const auto* entry = r.store().find(id);
      if (entry == nullptr) {
        return r.id().str() + " is missing in-filter item " + id.str() +
               " after quiescence";
      }
      if (entry->item.version() != newest.version()) {
        return r.id().str() + " is stale on " + id.str() +
               " after quiescence (stores " +
               describe(entry->item.version()) + ", newest is " +
               describe(newest.version()) + ")";
      }
      if (entry->item.deleted() != newest.deleted()) {
        return r.id().str() + " disagrees on tombstone state of " +
               id.str() + " after quiescence";
      }
    }
  }
  return std::nullopt;
}

}  // namespace pfrdtn::check
