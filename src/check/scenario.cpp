#include "check/scenario.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <utility>

#include "check/oracle.hpp"
#include "net/chaos.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durability.hpp"
#include "persist/fault_env.hpp"
#include "persist/manifest.hpp"
#include "util/rng.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::check {

namespace {

/// Attacks the harness drives against a victim's serve_session. All of
/// net::ChaosAttack except LyingCountShort: that script delivers a
/// well-formed item authored by the chaos replica before violating the
/// count contract, which would poison the oracle's ledger with an item
/// it never witnessed. Selected by `event.selector % size`, so the
/// list may only ever grow at the end (replay stability).
constexpr net::ChaosAttack kHarnessAttacks[] = {
    net::ChaosAttack::OversizeRequest,
    net::ChaosAttack::OversizeItem,
    net::ChaosAttack::LyingCountHuge,
    net::ChaosAttack::OutOfOrderFrame,
    net::ChaosAttack::GiantKnowledge,
    net::ChaosAttack::GiantPolicyBlob,
    net::ChaosAttack::ByteTrickle,
    net::ChaosAttack::BadMagic,
    net::ChaosAttack::CloseAfterHello,
    net::ChaosAttack::CloseMidHeader,
    net::ChaosAttack::CloseMidBatch,
};

constexpr std::size_t kHarnessAttackCount =
    sizeof(kHarnessAttacks) / sizeof(kHarnessAttacks[0]);

net::ChaosAttack harness_attack(const Event& event) {
  return kHarnessAttacks[event.selector % kHarnessAttackCount];
}

/// Tight limits for adversary sessions, so every attack payload stays
/// tiny and the whole sweep runs in microseconds. The victim's honest
/// syncs never go through these — they use the default limits.
net::ResourceLimits adversary_limits() {
  net::ResourceLimits limits;
  limits.max_request_bytes = 4096;
  limits.max_item_bytes = 2048;
  limits.max_batch_end_bytes = 2048;
  limits.max_batch_items = 8;
  limits.max_knowledge_entries = 64;
  limits.max_policy_blob_bytes = 256;
  limits.max_decode_elements = 512;
  limits.session_byte_ceiling = 16u << 10;
  return limits;
}

/// Per-write latency and session deadline for adversary links, in
/// simulated seconds. A byte-trickling peer makes 46 writes (6 dribbled
/// bytes + 40 empty stall writes), charging 5.75s against a 2.0s
/// deadline; every honest attack script finishes well under it.
constexpr double kAdversaryLatencySeconds = 0.125;
constexpr double kAdversaryDeadlineSeconds = 2.0;
/// The deadline probe's ceiling: the crossing write may overshoot by
/// up to two latency charges (one per side of the link).
constexpr double kAdversaryDeadlineSlack = 2 * kAdversaryLatencySeconds;

/// Relay-everything forwarding policy: out-of-filter items travel at
/// Normal priority, so relay storage, eviction, and policy-extra
/// truncation are all exercised. Stateless, hence trivially
/// deterministic.
class RelayAll : public repl::ForwardingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "relay-all"; }
  repl::Priority to_send(const repl::SyncContext&,
                         repl::TransientView) override {
    return repl::Priority::at(repl::PriorityClass::Normal);
  }
};

repl::Filter filter_from_bits(std::uint64_t bits,
                              std::uint64_t addresses) {
  std::set<HostId> addrs;
  for (std::uint64_t a = 0; a < addresses; ++a) {
    if ((bits >> a) & 1u) addrs.insert(HostId(a + 1));
  }
  if (addrs.empty()) addrs.insert(HostId(1 + bits % addresses));
  return repl::Filter::addresses(std::move(addrs));
}

std::map<std::string, std::string> dest_meta(std::uint64_t address) {
  return {{repl::meta::kDest, std::to_string(address)}};
}

std::string fault_str(const SyncFault& fault) {
  std::string out;
  if (fault.cut_after_bytes)
    out += " cut=" + std::to_string(*fault.cut_after_bytes);
  if (fault.max_items) out += " cap=" + std::to_string(*fault.max_items);
  if (fault.bytes_per_second > 0)
    out += " bps=" + std::to_string(fault.bytes_per_second);
  return out;
}

std::string sync_result_str(const repl::SyncStats& stats,
                            bool transport_failed) {
  return "sent=" + std::to_string(stats.items_sent) +
         " new=" + std::to_string(stats.items_new) +
         " stale=" + std::to_string(stats.items_stale) +
         " evict=" + std::to_string(stats.evictions) +
         " bytes=" + std::to_string(stats.request_bytes +
                                    stats.batch_bytes) +
         " complete=" + (stats.complete ? "1" : "0") +
         (transport_failed ? " CUT" : "");
}

/// Applies one schedule and runs the probes. Owns all mutable state of
/// a run so run_scenario stays reentrant.
class Engine {
 public:
  Engine(const Scenario& scenario, bool keep_log)
      : scenario_(scenario),
        oracle_(scenario.config.replicas),
        keep_log_(keep_log) {
    const ScenarioConfig& config = scenario.config;
    replicas_.reserve(config.replicas);
    for (std::size_t i = 0; i < config.replicas; ++i) {
      replicas_.emplace_back(
          ReplicaId(i + 1),
          filter_from_bits(scenario.initial_filter_bits[i],
                           config.addresses),
          repl::ItemStore::Config{config.relay_capacity,
                                  repl::EvictionOrder::Fifo});
    }
    // Every replica persists through the crash-simulating MemEnv;
    // fsync-per-record, so the digest probe in apply_crash may demand
    // that recovery reproduces the pre-crash state *exactly*. The sink
    // is write-only (no behavior feedback), so schedules without crash
    // events run identically to a durability-free harness.
    dur_options_.sync_every_records = 1;
    dur_options_.checkpoint_every_bytes = 4096;
    dur_options_.unsafe_skip_fsync = config.inject_skip_fsync;
    dur_options_.unsafe_ack_before_fsync =
        config.inject_ack_before_fsync;
    envs_.reserve(config.replicas);
    fault_envs_.reserve(config.replicas);
    durabilities_.reserve(config.replicas);
    for (std::size_t i = 0; i < config.replicas; ++i) {
      envs_.push_back(std::make_unique<persist::MemEnv>());
      if (config.disk_fault_rate > 0) {
        // Constructed healthy and armed *after* attach: the engine
        // models a disk that fails under load, not one that was
        // already broken at boot. Faults draw from the wrapper's own
        // stream at run time, so schedule generation is untouched.
        persist::FaultPlan plan;
        plan.seed = scenario.seed ^
                    (0x5eedfa017ULL + i * 0x9e3779b97f4a7c15ULL);
        fault_envs_.push_back(std::make_unique<persist::FaultInjectingEnv>(
            *envs_[i], plan));
      } else {
        fault_envs_.push_back(nullptr);
      }
      durabilities_.push_back(std::make_unique<persist::Durability>(
          env_of(i), dur_options_));
      durabilities_[i]->attach(replicas_[i]);
      if (fault_envs_[i]) {
        fault_envs_[i]->set_fault_rate(config.disk_fault_rate);
      }
    }
  }

  RunResult run() {
    for (std::size_t i = 0; i < scenario_.events.size(); ++i) {
      const std::string note = apply(i, scenario_.events[i]);
      if (keep_log_)
        result_.log.push_back(format_event(i, scenario_.events[i]) +
                              note);
      if (!result_.violation) probe(i);
      if (result_.violation) return std::move(result_);
    }
    quiesce();
    return std::move(result_);
  }

 private:
  void fail(std::size_t index, std::string probe_name,
            std::string message) {
    if (result_.violation) return;
    result_.violation =
        Violation{index, std::move(probe_name), std::move(message)};
  }

  /// Post-event probe: per-replica internal invariants plus the
  /// oracle's knowledge-soundness check, and — under disk faults — the
  /// degraded/read-only coherence invariant: a durability layer that
  /// has given up on the acknowledgement contract must have flipped
  /// its replica read-only, or silent data loss is one create away.
  void probe(std::size_t index) {
    if (auto violation = oracle_.check_soundness(replicas_))
      fail(index, "knowledge-soundness", *violation);
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (durabilities_[i]->degraded() && !replicas_[i].read_only()) {
        fail(index, "degraded-read-only",
             "r" + std::to_string(i) +
                 "'s durability layer is degraded but the replica still"
                 " accepts mutations");
        return;
      }
    }
  }

  [[nodiscard]] persist::StorageEnv& env_of(std::size_t i) {
    if (fault_envs_[i]) return *fault_envs_[i];
    return *envs_[i];
  }

  [[nodiscard]] bool degraded(std::size_t i) const {
    return durabilities_[i]->degraded();
  }

  /// Called after `who` restarts off a repaired disk without a power
  /// loss (heal_disks): a record whose append reached the medium but
  /// whose fsync faulted was refused in memory — write-ahead ordering
  /// guarantees that — yet its bytes are still visible, so recovery
  /// legitimately replays it and the refused mutation *resurrects*.
  /// The contract only forbids losing acknowledged state; surviving
  /// extra is allowed, but the oracle must adopt each resurrected
  /// self-authored version as ground truth or convergence would flag
  /// it as divergence. Only self-authored versions can be un-noted:
  /// any foreign version in a store was acknowledged at its author
  /// (a refused mutation is never served to peers).
  void adopt_survivors(std::size_t who) {
    const repl::Replica& r = replicas_[who];
    r.store().for_each([&](const repl::ItemStore::Entry& entry) {
      if (entry.item.version().author != r.id()) return;
      const auto it = oracle_.latest().find(entry.item.id());
      if (it == oracle_.latest().end() ||
          entry.item.version().dominates(it->second.version())) {
        oracle_.note_latest(entry.item);
      }
    });
  }

  /// Shared verdict on a StorageError that escaped a mutation or a
  /// sync: correct code has already degraded the durability layer and
  /// flipped the replica read-only by the time the fault surfaces, and
  /// — because mutations log write-ahead — refused the mutation before
  /// any in-memory change.
  std::string note_disk_fault(std::size_t index, std::size_t who,
                              const StorageError& fault) {
    ++result_.stats.disk_faults;
    if (!degraded(who)) {
      fail(index, "degrade-on-fault",
           "a hard storage fault escaped r" + std::to_string(who) +
               " without degrading its durability layer: " +
               fault.what());
    } else if (!replicas_[who].read_only()) {
      fail(index, "degraded-read-only",
           "r" + std::to_string(who) +
               " degraded without flipping read-only: " + fault.what());
    }
    return std::string(" -> DISK FAULT (") + fault.what() + ")";
  }

  /// Monotone forward progress across the retry attempts of one
  /// contact: a version that fully arrived in an earlier attempt may
  /// arrive again only if the replica deliberately evicted it in
  /// between. Anything else means the retry discipline restarted
  /// instead of resuming — re-sending progress the cut attempt had
  /// already applied. Checked before the oracle's cross-contact
  /// at-most-once audit so a retry bug is named for what it is.
  void check_monotone(
      std::size_t index, std::size_t who,
      std::set<std::pair<std::uint64_t, std::uint64_t>>& seen,
      const repl::SyncResult& applied) {
    for (const repl::Version& v : applied.received_events) {
      if (!seen.insert({v.author.value(), v.counter}).second) {
        fail(index, "monotone-progress",
             "r" + std::to_string(who) + " re-received event (author " +
                 v.author.str() + ", counter " +
                 std::to_string(v.counter) +
                 ") within one contact: a retry re-sent progress an"
                 " earlier attempt had already applied");
        return;
      }
    }
    for (const repl::Item& item : applied.evicted) {
      seen.erase(
          {item.version().author.value(), item.version().counter});
    }
  }

  /// Audit one applied sync direction: at-most-once ledger first (the
  /// batch was built against knowledge that predates these evictions),
  /// then excuse the events this application forgot.
  void audit_receives(std::size_t index, std::size_t target,
                      const repl::SyncResult& applied) {
    if (auto violation =
            oracle_.on_received(target, applied.received_events)) {
      fail(index, "at-most-once", *violation);
    }
    oracle_.forgive(target, applied.evicted);
    result_.stats.items_moved += applied.stats.items_new;
    result_.stats.evictions += applied.evicted.size();
    if (!applied.stats.complete) ++result_.stats.incomplete;
  }

  std::string apply(std::size_t index, const Event& event) {
    switch (event.kind) {
      case EventKind::Create:
        return apply_create(index, event);
      case EventKind::Mutate:
        return apply_mutate(index, event);
      case EventKind::SetFilter:
        return apply_set_filter(index, event);
      case EventKind::DiscardRelay:
        return apply_discard(index, event);
      case EventKind::Sync:
        return apply_sync(index, event);
      case EventKind::CrashRestart:
        return apply_crash(index, event);
      case EventKind::Adversary:
        return apply_adversary(index, event);
    }
    return "";
  }

  /// A mutation refused with ReadOnlyError is the degraded layer
  /// keeping its promise — legitimate only if the layer actually is
  /// degraded, and always before any in-memory change.
  std::string refused_mutation(std::size_t index, std::size_t who,
                               const ReadOnlyError& err) {
    ++result_.stats.refused;
    if (!degraded(who)) {
      fail(index, "degraded-read-only",
           "r" + std::to_string(who) +
               " refused a mutation while not degraded: " + err.what());
    }
    return " -> refused (read-only)";
  }

  std::string apply_create(std::size_t index, const Event& event) {
    repl::Replica& r = replicas_[event.actor];
    const bool was_degraded = degraded(event.actor);
    try {
      const repl::Item& item = r.create(dest_meta(event.address), {'x'});
      if (was_degraded) {
        fail(index, "degraded-read-only",
             "r" + std::to_string(event.actor) +
                 " acknowledged a create while degraded read-only");
      }
      oracle_.note_latest(item);
      return " -> item " + item.id().str();
    } catch (const ReadOnlyError& err) {
      return refused_mutation(index, event.actor, err);
    } catch (const StorageError& fault) {
      return note_disk_fault(index, event.actor, fault);
    }
  }

  std::string apply_mutate(std::size_t index, const Event& event) {
    repl::Replica& r = replicas_[event.actor];
    std::vector<ItemId> ids;
    r.store().for_each([&](const repl::ItemStore::Entry& entry) {
      if (!entry.item.deleted()) ids.push_back(entry.item.id());
    });
    if (ids.empty()) return " -> no-op (nothing stored)";
    const ItemId id = ids[event.selector % ids.size()];
    const bool was_degraded = degraded(event.actor);
    try {
      if (event.erase) {
        oracle_.note_latest(r.erase(id));
        if (was_degraded) {
          fail(index, "degraded-read-only",
               "r" + std::to_string(event.actor) +
                   " acknowledged an erase while degraded read-only");
        }
        return " -> tombstone " + id.str();
      }
      const auto metadata = r.store().find(id)->item.metadata();
      oracle_.note_latest(r.update(id, metadata, {'u'}));
      if (was_degraded) {
        fail(index, "degraded-read-only",
             "r" + std::to_string(event.actor) +
                 " acknowledged an update while degraded read-only");
      }
      return " -> update " + id.str();
    } catch (const ReadOnlyError& err) {
      return refused_mutation(index, event.actor, err);
    } catch (const StorageError& fault) {
      // Write-ahead ordering: the erase/update was refused before any
      // in-memory change, so there is nothing to track — note_latest is
      // NOT called and the stored item still carries its old version.
      return note_disk_fault(index, event.actor, fault);
    }
  }

  std::string apply_set_filter(std::size_t index, const Event& event) {
    repl::Replica& r = replicas_[event.actor];
    try {
      r.set_filter(
          filter_from_bits(event.selector, scenario_.config.addresses));
      // The rebuild may forget arbitrary events; reset the ledger.
      oracle_.forgive_all(event.actor);
      return " -> " + r.filter().str();
    } catch (const ReadOnlyError& err) {
      return refused_mutation(index, event.actor, err);
    } catch (const StorageError& fault) {
      // Write-ahead ordering: the fault refused the change before the
      // filter was adopted or knowledge rebuilt, so the ledger stands.
      // (If the record's bytes survive, a restart replays the change —
      // filters are read live by the probes and the restart forgives
      // the ledger, so no bookkeeping is needed here.)
      return note_disk_fault(index, event.actor, fault);
    }
  }

  std::string apply_discard(std::size_t index, const Event& event) {
    repl::Replica& r = replicas_[event.actor];
    std::vector<ItemId> ids;
    r.store().for_each([&](const repl::ItemStore::Entry& entry) {
      if (entry.evictable()) ids.push_back(entry.item.id());
    });
    if (ids.empty()) return " -> no-op (no relay copies)";
    const ItemId id = ids[event.selector % ids.size()];
    const repl::Item copy = r.store().find(id)->item;
    try {
      r.discard_relay(id);
      oracle_.forgive(event.actor, {copy});
      return " -> dropped " + id.str();
    } catch (const ReadOnlyError& err) {
      return refused_mutation(index, event.actor, err);
    } catch (const StorageError& fault) {
      // Write-ahead ordering: the copy is still stored (the discard was
      // refused before removal), so nothing needs forgiving. If the
      // record's bytes survive, the restart replays the discard — and
      // forgives the whole ledger anyway.
      return note_disk_fault(index, event.actor, fault);
    }
  }

  std::string apply_sync(std::size_t index, const Event& event) {
    repl::SyncOptions options;
    if (event.fault.max_items) options.max_items = *event.fault.max_items;
    options.unsafe_learn_truncated =
        scenario_.config.inject_learn_truncated;
    if (event.summary) {
      options.summary_mode = repl::SummaryMode::On;
      options.summary_force_collision = event.summary_collide;
      options.unsafe_summary_skip_fallback =
          scenario_.config.inject_summary_skip_fallback;
    }

    repl::Replica& target = replicas_[event.actor];
    repl::Replica& source = replicas_[event.peer];
    const SimTime now(static_cast<std::int64_t>(index));

    // Pre-contact snapshots for the retry-forgets-progress mutant: the
    // buggy discipline discards a cut attempt's partial work and
    // restarts from here instead of resuming.
    std::optional<repl::Replica> actor_snapshot;
    std::optional<repl::Replica> peer_snapshot;
    if (!event.retry_cuts.empty() &&
        scenario_.config.inject_retry_forgets_progress) {
      actor_snapshot = target;
      peer_snapshot = source;
    }
    // Per-contact ledgers for the monotone-progress probe: the version
    // events each side fully received across this contact's attempts.
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen_actor;
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen_peer;

    std::string note;
    for (std::size_t attempt = 0;; ++attempt) {
      net::LoopbackFaults faults;
      // Attempt 0 carries the event's own cut budget; re-dials consult
      // the materialized per-retry schedule (0 = clean attempt).
      const std::uint32_t cut_budget =
          attempt == 0 ? event.fault.cut_after_bytes.value_or(0)
                       : event.retry_cuts[attempt - 1];
      if (cut_budget > 0) faults.cut_after_bytes = cut_budget;
      faults.bytes_per_second = event.fault.bytes_per_second;

      ++result_.stats.syncs;
      if (attempt > 0) {
        ++result_.stats.retries;
        note += " | retry#" + std::to_string(attempt) +
                (cut_budget > 0 ? " cut=" + std::to_string(cut_budget)
                                : "");
      }
      // Snapshots for the fault probes, taken per attempt (a disk
      // fault may degrade a side between re-dials): a StorageError may
      // only escape a sync if it degraded one of the participants on
      // the way out, and an already-degraded target must refuse rather
      // than apply.
      const bool actor_was_degraded = degraded(event.actor);
      const bool peer_was_degraded = degraded(event.peer);

      bool cut_this_attempt = false;
      try {
        if (event.encounter) {
          const auto outcome = net::encounter_over_loopback(
              target, source, &policy_, &policy_, now, options, faults);
          check_monotone(index, event.actor, seen_actor,
                         outcome.a_pulled.result);
          check_monotone(index, event.peer, seen_peer,
                         outcome.b_applied.result);
          audit_receives(index, event.actor, outcome.a_pulled.result);
          audit_receives(index, event.peer, outcome.b_applied.result);
          cut_this_attempt = outcome.a_pulled.transport_failed ||
                             outcome.b_applied.transport_failed;
          if (cut_this_attempt) ++result_.stats.cuts;
          if (outcome.a_pulled.refused) ++result_.stats.refused;
          if (outcome.b_applied.refused) ++result_.stats.refused;
          check_degraded_leg(index, event.actor, actor_was_degraded,
                             outcome.a_pulled);
          check_degraded_leg(index, event.peer, peer_was_degraded,
                             outcome.b_applied);
          result_.stats.bytes += outcome.bytes_delivered;
          note += " | pull: " +
                  sync_result_str(outcome.a_pulled.result.stats,
                                  outcome.a_pulled.transport_failed) +
                  (outcome.a_pulled.refused ? " REFUSED" : "") +
                  " | push: " +
                  sync_result_str(outcome.b_applied.result.stats,
                                  outcome.b_applied.transport_failed) +
                  (outcome.b_applied.refused ? " REFUSED" : "");
        } else {
          const auto outcome = net::sync_over_loopback(
              source, target, &policy_, &policy_, now, options, faults);
          check_monotone(index, event.actor, seen_actor,
                         outcome.client.result);
          audit_receives(index, event.actor, outcome.client.result);
          cut_this_attempt = outcome.client.transport_failed;
          if (cut_this_attempt) ++result_.stats.cuts;
          if (outcome.client.refused) ++result_.stats.refused;
          check_degraded_leg(index, event.actor, actor_was_degraded,
                             outcome.client);
          result_.stats.bytes += outcome.bytes_delivered;
          note += " | " +
                  sync_result_str(outcome.client.result.stats,
                                  outcome.client.transport_failed) +
                  (outcome.client.refused ? " REFUSED" : "");
        }
      } catch (const StorageError& fault) {
        // A hard disk fault surfaced mid-contact (target mid-apply or
        // source mid-serve) and killed it — modeled as a dead contact,
        // and a dead *node*: no re-dial (the retry discipline is for
        // link faults; a degraded disk refuses the next contact).
        // The outcome died with the exception, so whatever either side
        // applied or evicted before the fault was never audited:
        // forgive both ledgers wholesale (an unforgiven eviction would
        // turn a legitimate later re-receive into a false
        // at-most-once hit). Every applied item is still genuine fleet
        // state — its author acknowledged it — so no note_latest
        // bookkeeping is owed.
        oracle_.forgive_all(event.actor);
        oracle_.forgive_all(event.peer);
        ++result_.stats.cuts;
        const bool actor_newly =
            degraded(event.actor) && !actor_was_degraded;
        const bool peer_newly =
            degraded(event.peer) && !peer_was_degraded;
        ++result_.stats.disk_faults;
        if (!actor_newly && !peer_newly) {
          fail(index, "degrade-on-fault",
               "a storage fault escaped the sync r" +
                   std::to_string(event.actor) + " <- r" +
                   std::to_string(event.peer) +
                   " without degrading either side: " + fault.what());
        }
        note += std::string(" | DISK FAULT (") + fault.what() + ")";
        return note;
      }
      // The retry discipline: re-dial only a contact that died
      // mid-stream, while attempts remain and no probe has fired.
      if (!cut_this_attempt || attempt >= event.retry_cuts.size() ||
          result_.violation) {
        return note;
      }
      if (actor_snapshot) {
        // The injected bug: roll both sides back to the pre-contact
        // state, forgetting the cut attempt's applied progress.
        replicas_[event.actor] = *actor_snapshot;
        replicas_[event.peer] = *peer_snapshot;
      }
    }
  }

  /// A target that was already degraded read-only when the contact
  /// opened must have refused its pull leg: applying items would
  /// acknowledge state its durability layer cannot keep.
  void check_degraded_leg(std::size_t index, std::size_t target,
                          bool was_degraded,
                          const net::NetSyncResult& leg) {
    if (!was_degraded || leg.refused) return;
    if (leg.result.stats.items_new > 0) {
      fail(index, "degraded-read-only",
           "degraded r" + std::to_string(target) +
               " applied items from a sync instead of refusing");
    }
  }

  /// One scripted hostile peer attacks the actor's serve_session over
  /// a deadline-armed loopback link: the attacker pre-writes its whole
  /// script (the link buffers; half-duplex, same as the sync drives),
  /// then the victim serves until it rejects, the link dies, or the
  /// batch ends. Two probes: violation-class attacks must end in a
  /// rejection (ContractViolation / ResourceLimitError), and no attack
  /// may hold the session past the deadline in simulated time.
  std::string apply_adversary(std::size_t index, const Event& event) {
    const net::ChaosAttack attack = harness_attack(event);
    const net::ResourceLimits limits =
        scenario_.config.inject_skip_limit_check
            ? net::ResourceLimits::unlimited()
            : adversary_limits();
    net::LoopbackFaults faults;
    faults.latency_seconds = kAdversaryLatencySeconds;
    if (!scenario_.config.inject_no_deadline)
      faults.deadline_seconds = kAdversaryDeadlineSeconds;
    net::LoopbackLink link(faults);

    net::ChaosPeerOptions chaos;
    chaos.limits = adversary_limits();  // size payloads past the caps
    chaos.read_replies = false;         // sequential drive: server not run yet
    const net::ChaosOutcome sent =
        net::run_chaos_attack(link.a(), attack, chaos);

    bool rejected = false;
    bool refused = false;
    std::string reason;
    try {
      const auto outcome = net::serve_session(
          link.b(), replicas_[event.actor], &policy_,
          SimTime(static_cast<std::int64_t>(index)), {}, limits);
      if (outcome.transport_failed) reason = outcome.error;
      // A degraded read-only victim refuses the mutating session up
      // front (Error frame, clean finish): the hostile payload is
      // never parsed, which contains the attack as thoroughly as a
      // rejection would.
      refused = outcome.applied.refused;
      if (refused) ++result_.stats.refused;
    } catch (const ContractViolation& violation) {
      rejected = true;
      reason = violation.what();
    }

    if (net::chaos_attack_is_violation(attack) && !rejected && !refused) {
      fail(index, "adversary-containment",
           std::string("attack ") + net::chaos_attack_name(attack) +
               " on r" + std::to_string(event.actor) +
               " was not rejected (" +
               (reason.empty() ? "session completed" : reason) + ")");
    } else if (!net::chaos_attack_is_violation(attack) && rejected) {
      fail(index, "adversary-containment",
           std::string("attack ") + net::chaos_attack_name(attack) +
               " on r" + std::to_string(event.actor) +
               " looks like a dying link but was rejected as a"
               " violation: " + reason);
    }
    const double elapsed = link.simulated_seconds();
    if (!result_.violation &&
        elapsed > kAdversaryDeadlineSeconds + kAdversaryDeadlineSlack) {
      fail(index, "adversary-deadline",
           std::string("attack ") + net::chaos_attack_name(attack) +
               " held r" + std::to_string(event.actor) + "'s session " +
               std::to_string(elapsed) + "s of simulated time, past the " +
               std::to_string(kAdversaryDeadlineSeconds) + "s deadline");
    }
    return " -> " +
           std::string(rejected ? "rejected"
                       : refused ? "refused (read-only)"
                                 : "absorbed") +
           " bytes_in=" + std::to_string(sent.bytes_sent) +
           " t=" + std::to_string(elapsed);
  }

  /// Append deterministic torn-tail bytes to the crashed log, modeling
  /// the in-flight sectors that happened to reach the medium. Every
  /// mode produces an *invalid* suffix, so a correct recovery truncates
  /// it and the digest probe still demands exact state equality.
  void inject_torn_tail(persist::MemEnv& env, const Event& event) {
    if (event.crash_torn_mode == kTornNone) return;
    // Under generations the live log is the newest manifest epoch's
    // segment (the pre-generation harness tore the legacy "wal.log").
    const std::vector<std::uint64_t> epochs =
        persist::decode_manifest(env.read_file(persist::kManifestFile));
    const std::string wal = persist::wal_file(epochs.back());
    Rng rng(scenario_.seed ^ event.selector ^ 0x746f726eULL);
    std::vector<std::uint8_t> payload(1 + rng.below(40));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng());
    switch (event.crash_torn_mode) {
      case kTornGarbage: {
        env.corrupt_append(wal, payload);
        break;
      }
      case kTornShortRecord: {
        std::vector<std::uint8_t> record =
            persist::encode_wal_record(payload);
        record.resize(1 + rng.below(record.size() - 1));
        env.corrupt_append(wal, record);
        break;
      }
      case kTornBitFlip:
      default: {
        std::vector<std::uint8_t> record =
            persist::encode_wal_record(payload);
        const std::size_t bit = rng.below(record.size() * 8);
        record[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        env.corrupt_append(wal, record);
        break;
      }
    }
  }

  std::string apply_crash(std::size_t index, const Event& event) {
    const std::size_t who = event.actor;
    const bool was_degraded = degraded(who);
    const std::uint64_t pre = persist::state_digest(replicas_[who]);
    // The restart comes with a repaired disk: no fault draws while the
    // layer detaches, recovers, and re-attaches (the operator replaced
    // the medium). Re-armed at the end.
    if (fault_envs_[who]) fault_envs_[who]->set_fault_rate(0.0);
    durabilities_[who]->detach();
    persist::MemEnv& env = *envs_[who];
    env.crash();
    inject_torn_tail(env, event);

    std::optional<persist::RecoveredReplica> recovered;
    try {
      recovered = persist::recover(env_of(who));
    } catch (const ContractViolation& e) {
      fail(index, "crash-recovery",
           "recovery threw at r" + std::to_string(who) + ": " + e.what());
      return " -> RECOVERY FAILED";
    }
    if (!recovered) {
      fail(index, "crash-recovery",
           "no checkpoint found after crash at r" + std::to_string(who));
      return " -> RECOVERY FAILED";
    }
    // The acknowledgement contract: every hook returned with its record
    // fsynced, so recovery must reproduce the pre-crash state exactly —
    // anything less is silently forgotten acknowledged state. A
    // degraded replica is the one excused case: policy transients are
    // soft state whose records are dropped while degraded (the
    // pull-serving path keeps mutating them in memory), so its digest
    // may legitimately run ahead of the disk. Hard state cannot —
    // write-ahead ordering refused every unlogged mutation before it
    // touched memory. The ack-before-fsync mutant acknowledges without
    // degrading, so it faces the exact probe — and fails it.
    const std::uint64_t post = persist::state_digest(recovered->replica);
    if (!was_degraded && post != pre) {
      fail(index, "durability",
           "recovery forgot acknowledged state at r" +
               std::to_string(who) + " (digest " + std::to_string(pre) +
               " -> " + std::to_string(post) + ", " +
               std::to_string(recovered->stats.wal_records_replayed) +
               " records replayed)");
      return " -> STATE LOST";
    }
    const std::string note =
        std::string(" -> recovered (replayed=") +
        std::to_string(recovered->stats.wal_records_replayed) +
        " torn_bytes=" +
        std::to_string(recovered->stats.wal_bytes_truncated) +
        (was_degraded ? " healed" : "") + ")";
    replicas_[who] = std::move(recovered->replica);
    durabilities_[who] =
        std::make_unique<persist::Durability>(env_of(who), dur_options_);
    durabilities_[who]->attach(replicas_[who]);
    if (was_degraded) {
      // The crash truncated any visible-but-unsynced tail (refused
      // mutations died with it, as they may) and the degraded window
      // logged nothing: excuse re-receptions of whatever was forgotten.
      oracle_.forgive_all(who);
    }
    if (fault_envs_[who]) {
      fault_envs_[who]->set_fault_rate(scenario_.config.disk_fault_rate);
    }
    return note;
  }

  /// The operator fixes every disk before quiescence: fault injection
  /// stops, and each degraded replica is restarted off its (now
  /// healthy) disk — recovery, a fresh durability layer, and a clean
  /// attach that clears the degraded state. Restarting is the only way
  /// out of read-only mode by design, and convergence below demands
  /// the restarted fleet still reach exactly the oracle's ground truth.
  void heal_disks() {
    if (scenario_.config.disk_fault_rate <= 0) return;
    for (const auto& fault_env : fault_envs_) {
      if (fault_env) {
        fault_env->set_fault_rate(0.0);
        fault_env->clear_enospc_budget();
      }
    }
    const std::size_t index = scenario_.events.size();
    for (std::size_t i = 0; i < replicas_.size(); ++i) {
      if (!degraded(i)) continue;
      durabilities_[i]->detach();
      std::optional<persist::RecoveredReplica> recovered;
      try {
        recovered = persist::recover(env_of(i));
      } catch (const ContractViolation& e) {
        fail(index, "crash-recovery",
             "post-fault restart recovery threw at r" +
                 std::to_string(i) + ": " + e.what());
        return;
      }
      if (!recovered) {
        fail(index, "crash-recovery",
             "no checkpoint found at degraded r" + std::to_string(i) +
                 "'s restart");
        return;
      }
      replicas_[i] = std::move(recovered->replica);
      durabilities_[i] = std::make_unique<persist::Durability>(
          env_of(i), dur_options_);
      durabilities_[i]->attach(replicas_[i]);
      // The resumed segment may end in records whose fsync faulted:
      // recovery replayed their visible bytes, so make them durable
      // now (the disk is healthy) — a later crash must not un-replay
      // state this restart has re-acknowledged.
      durabilities_[i]->flush();
      oracle_.forgive_all(i);
      adopt_survivors(i);
      if (keep_log_) {
        result_.log.push_back(
            "heal: r" + std::to_string(i) +
            " restarted off the repaired disk (replayed=" +
            std::to_string(recovered->stats.wal_records_replayed) + ")");
      }
    }
  }

  /// Fault-free, connected all-pairs gossip, then the convergence
  /// probe. Null policies: the substrate alone must converge.
  void quiesce() {
    heal_disks();
    if (result_.violation) return;
    const std::size_t n = replicas_.size();
    for (std::size_t round = 0;
         round < scenario_.config.quiescence_rounds; ++round) {
      for (std::size_t i = 0; i < n && !result_.violation; ++i) {
        for (std::size_t j = 0; j < n && !result_.violation; ++j) {
          if (i == j) continue;
          const auto outcome = net::sync_over_loopback(
              replicas_[j], replicas_[i], nullptr, nullptr,
              SimTime(static_cast<std::int64_t>(
                  1000000 + scenario_.events.size() + round)),
              {}, {});
          audit_receives(scenario_.events.size(), i,
                         outcome.client.result);
          if (outcome.client.transport_failed) {
            fail(scenario_.events.size(), "quiescence",
                 "fault-free loopback sync failed: " +
                     outcome.client.error);
          }
        }
      }
      if (!result_.violation) probe(scenario_.events.size());
      if (result_.violation) return;
    }
    if (auto violation = oracle_.check_convergence(replicas_)) {
      fail(scenario_.events.size(), "eventual-filter-consistency",
           *violation);
    }
    if (!result_.violation) check_equivalence();
    if (keep_log_) {
      result_.log.push_back(
          "quiescence: " + std::to_string(oracle_.latest().size()) +
          " items, " + std::to_string(result_.stats.syncs) + " syncs, " +
          std::to_string(result_.stats.cuts) + " cuts, " +
          std::to_string(result_.stats.bytes) + " bytes" +
          (result_.violation ? " -> VIOLATION" : " -> converged"));
    }
  }

  /// Convergence-equivalence probe, run on the converged fleet: for
  /// every ordered pair, clone both replicas per mode and run one more
  /// fault-free null-policy sync exact and summary-first. Converged
  /// pairs must move zero items in both modes, and the two modes must
  /// leave byte-identical replica state (persist::state_digest covers
  /// store, knowledge, filter, and counters) — the differential claim
  /// the summary fast path rests on, probed here on whatever states
  /// the whole fault schedule produced.
  void check_equivalence() {
    const std::size_t index = scenario_.events.size();
    const std::size_t n = replicas_.size();
    const SimTime now(static_cast<std::int64_t>(2000000 + index));
    for (std::size_t i = 0; i < n && !result_.violation; ++i) {
      for (std::size_t j = 0; j < n && !result_.violation; ++j) {
        if (i == j) continue;
        // Clones so the probe cannot perturb the fleet; sinks cleared
        // so clone mutations are not logged as the originals'.
        repl::Replica exact_source = replicas_[j];
        repl::Replica exact_target = replicas_[i];
        repl::Replica summary_source = replicas_[j];
        repl::Replica summary_target = replicas_[i];
        for (repl::Replica* clone :
             {&exact_source, &exact_target, &summary_source,
              &summary_target}) {
          clone->set_mutation_sink(nullptr);
        }

        repl::SyncOptions summary_options;
        summary_options.summary_mode = repl::SummaryMode::On;
        const auto exact = net::sync_over_loopback(
            exact_source, exact_target, nullptr, nullptr, now, {}, {});
        const auto summary = net::sync_over_loopback(
            summary_source, summary_target, nullptr, nullptr, now,
            summary_options, {});
        const std::string pair = " r" + std::to_string(i) + " <- r" +
                                 std::to_string(j);
        if (exact.client.transport_failed ||
            summary.client.transport_failed) {
          fail(index, "summary-equivalence",
               "fault-free equivalence sync failed" + pair + ": " +
                   (exact.client.transport_failed ? exact.client.error
                                                  : summary.client.error));
          return;
        }
        if (exact.client.result.stats.items_sent != 0 ||
            summary.client.result.stats.items_sent != 0) {
          fail(index, "summary-equivalence",
               "converged pair still moved items" + pair + " (exact=" +
                   std::to_string(exact.client.result.stats.items_sent) +
                   " summary=" +
                   std::to_string(
                       summary.client.result.stats.items_sent) +
                   ")");
          return;
        }
        if (persist::state_digest(exact_target) !=
            persist::state_digest(summary_target)) {
          fail(index, "summary-equivalence",
               "target state diverged between exact and summary modes" +
                   pair);
          return;
        }
        if (persist::state_digest(exact_source) !=
            persist::state_digest(summary_source)) {
          fail(index, "summary-equivalence",
               "source state diverged between exact and summary modes" +
                   pair);
          return;
        }
      }
    }
  }

  const Scenario& scenario_;
  std::vector<repl::Replica> replicas_;
  RelayAll policy_;
  Oracle oracle_;
  RunResult result_;
  bool keep_log_;
  // Declared after replicas_: the sinks detach (and flush) in their
  // destructors while the replicas are still alive.
  persist::DurabilityOptions dur_options_;
  std::vector<std::unique_ptr<persist::MemEnv>> envs_;
  /// Non-null per replica when disk_fault_rate > 0; wraps the MemEnv.
  /// Declared after envs_ (wraps them), before durabilities_ (which
  /// write through them).
  std::vector<std::unique_ptr<persist::FaultInjectingEnv>> fault_envs_;
  std::vector<std::unique_ptr<persist::Durability>> durabilities_;
};

}  // namespace

Scenario make_scenario(const ScenarioConfig& config, std::uint64_t seed) {
  Scenario scenario;
  scenario.config = config;
  scenario.seed = seed;
  Rng rng(seed);

  const std::uint64_t mask_space =
      config.addresses >= 64 ? ~std::uint64_t{0}
                             : (std::uint64_t{1} << config.addresses) - 1;
  const auto random_mask = [&] {
    const std::uint64_t bits = rng() & mask_space;
    return bits == 0 ? std::uint64_t{1} << rng.below(config.addresses)
                     : bits;
  };

  scenario.initial_filter_bits.reserve(config.replicas);
  for (std::size_t i = 0; i < config.replicas; ++i)
    scenario.initial_filter_bits.push_back(random_mask());

  scenario.events.reserve(config.steps);
  for (std::size_t step = 0; step < config.steps; ++step) {
    Event event;
    event.actor =
        static_cast<std::uint32_t>(rng.below(config.replicas));
    const double roll = rng.uniform();
    double band = config.create_rate;
    if (roll < band) {
      event.kind = EventKind::Create;
      event.address = 1 + rng.below(config.addresses);
    } else if (roll < (band += config.mutate_rate)) {
      event.kind = EventKind::Mutate;
      event.selector = rng();
      event.erase = rng.chance(0.3);
    } else if (roll < (band += config.filter_change_rate)) {
      event.kind = EventKind::SetFilter;
      event.selector = random_mask();
    } else if (roll < (band += config.discard_rate)) {
      event.kind = EventKind::DiscardRelay;
      event.selector = rng();
    } else if (roll < (band += config.crash_rate)) {
      // Unreachable at crash_rate == 0, and then consumes no draws —
      // schedules from crash-unaware configs stay bit-identical.
      event.kind = EventKind::CrashRestart;
      event.crash_torn_mode = static_cast<std::uint8_t>(rng.below(4));
      event.selector = rng();
    } else if (roll < (band += config.adversary_rate)) {
      // Same replay-stability contract as the crash band above.
      event.kind = EventKind::Adversary;
      event.selector = rng();
    } else {
      event.kind = EventKind::Sync;
      event.peer = static_cast<std::uint32_t>(
          rng.below(config.replicas - 1));
      if (event.peer >= event.actor) ++event.peer;
      event.encounter = rng.chance(0.5);
      if (rng.chance(config.cut_rate)) {
        // Mixture: half the cuts are early (inside the request or the
        // first frames), half land anywhere in a large exchange.
        event.fault.cut_after_bytes = static_cast<std::uint32_t>(
            rng.chance(0.5) ? 1 + rng.below(256) : 1 + rng.below(4096));
      }
      if (rng.chance(config.cap_rate)) {
        event.fault.max_items =
            static_cast<std::uint32_t>(1 + rng.below(3));
      }
      if (rng.chance(config.throttle_rate)) {
        event.fault.bytes_per_second = static_cast<std::uint32_t>(
            256 + rng.below(64 * 1024));
      }
      // Both draws gated on a nonzero rate, so summary-unaware configs
      // consume no draws here (same contract as the crash band).
      if (config.summary_rate > 0 && rng.chance(config.summary_rate)) {
        event.summary = true;
        if (config.summary_collision_rate > 0 &&
            rng.chance(config.summary_collision_rate)) {
          event.summary_collide = true;
        }
      }
      // Retry schedules, gated like the bands above: only a config
      // with a retry discipline consumes draws, and only cut contacts
      // carry them (re-dials are consulted after a transport failure).
      // Half the re-attempts are cut again, half run clean — so some
      // contacts converge mid-schedule and some stay incomplete for
      // quiescence to finish.
      if (config.sync_retry_max > 0 && event.fault.cut_after_bytes) {
        for (std::size_t a = 0; a < config.sync_retry_max; ++a) {
          event.retry_cuts.push_back(
              rng.chance(0.5)
                  ? static_cast<std::uint32_t>(1 + rng.below(4096))
                  : 0);
        }
      }
    }
    scenario.events.push_back(event);
  }
  return scenario;
}

RunResult run_scenario(const Scenario& scenario, bool keep_log) {
  PFRDTN_REQUIRE(scenario.config.replicas >= 2);
  PFRDTN_REQUIRE(scenario.initial_filter_bits.size() ==
                 scenario.config.replicas);
  Engine engine(scenario, keep_log);
  return engine.run();
}

std::string format_event(std::size_t index, const Event& event) {
  std::string line = "#" + std::to_string(index) + " ";
  switch (event.kind) {
    case EventKind::Create:
      line += "create r" + std::to_string(event.actor) + " dest=" +
              std::to_string(event.address);
      break;
    case EventKind::Mutate:
      line += std::string(event.erase ? "erase" : "update") + " r" +
              std::to_string(event.actor) + " sel=" +
              std::to_string(event.selector % 1000);
      break;
    case EventKind::SetFilter:
      line += "set-filter r" + std::to_string(event.actor) + " bits=" +
              std::to_string(event.selector);
      break;
    case EventKind::DiscardRelay:
      line += "discard r" + std::to_string(event.actor) + " sel=" +
              std::to_string(event.selector % 1000);
      break;
    case EventKind::Sync:
      line += "sync r" + std::to_string(event.actor) + " <- r" +
              std::to_string(event.peer) +
              (event.encounter ? " enc" : "") +
              (event.summary ? " summary" : "") +
              (event.summary_collide ? " collide" : "") +
              fault_str(event.fault) +
              (event.retry_cuts.empty()
                   ? ""
                   : " retries=" + std::to_string(event.retry_cuts.size()));
      break;
    case EventKind::CrashRestart:
      line += "crash r" + std::to_string(event.actor) + " torn=" +
              std::to_string(event.crash_torn_mode) + " sel=" +
              std::to_string(event.selector % 1000);
      break;
    case EventKind::Adversary:
      line += "adversary r" + std::to_string(event.actor) + " attack=" +
              net::chaos_attack_name(harness_attack(event));
      break;
  }
  return line;
}

}  // namespace pfrdtn::check
