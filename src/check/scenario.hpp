#pragma once

/// \file scenario.hpp
/// Deterministic fault-schedule scenarios for the check harness: N
/// replicas wired over the fault-injectable loopback transport, driven
/// by a randomized but fully materialized event schedule (local
/// updates, filter changes, relay discards, and encounters with
/// byte-budget cuts, bandwidth caps, and throttling). Every stochastic
/// decision is resolved at generation time into concrete event fields,
/// so a schedule replays bit-identically from its (seed, config) pair
/// and remains executable after the shrinker deletes arbitrary events.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/session.hpp"

namespace pfrdtn::check {

enum class EventKind : std::uint8_t {
  Create,        ///< actor authors a new item addressed to `address`
  Mutate,        ///< actor updates (or tombstones) a stored item
  SetFilter,     ///< actor adopts the address filter in `selector` bits
  DiscardRelay,  ///< actor drops one relay copy (ack-flooding analogue)
  Sync,          ///< contact between actor (target) and peer (source)
};

/// Per-contact fault knobs, all resolved to concrete values.
struct SyncFault {
  /// Cut the contact after this many delivered bytes.
  std::optional<std::uint32_t> cut_after_bytes;
  /// Bandwidth cap (repl::SyncOptions::max_items) for this contact.
  std::optional<std::uint32_t> max_items;
  /// Modeled throughput for transfer-time accounting (0 = infinite).
  std::uint32_t bytes_per_second = 0;
};

/// One schedule step. Events are self-contained: `selector` resolves
/// state-dependent choices (which stored item, which filter) by modulo
/// at application time, so deleting earlier events never invalidates
/// later ones.
struct Event {
  EventKind kind = EventKind::Create;
  std::uint32_t actor = 0;     ///< replica index
  std::uint32_t peer = 0;      ///< sync source replica index
  std::uint64_t address = 1;   ///< destination address for Create
  std::uint64_t selector = 0;  ///< item choice / filter address bits
  bool erase = false;          ///< Mutate: tombstone instead of update
  bool encounter = false;      ///< Sync: two syncs (pull then push)
  SyncFault fault;
};

struct ScenarioConfig {
  std::size_t replicas = 4;
  std::size_t steps = 80;
  std::uint64_t addresses = 4;

  // Event mix (remaining probability mass goes to Sync events).
  double create_rate = 0.25;
  double mutate_rate = 0.10;
  double filter_change_rate = 0.06;
  double discard_rate = 0.04;

  // Per-sync fault probabilities.
  double cut_rate = 0.35;  ///< byte-budget cut mid-contact
  double cap_rate = 0.25;  ///< item-count bandwidth cap
  double throttle_rate = 0.15;

  /// Relay-store capacity; small values force constant eviction.
  std::optional<std::size_t> relay_capacity = 3;
  /// Fault-free all-pairs gossip rounds run after the schedule before
  /// the eventual-filter-consistency probe.
  std::size_t quiescence_rounds = 4;
  /// Inject the knowledge-corruption bug (learn from truncated syncs)
  /// to prove the harness catches it. See SyncOptions.
  bool inject_learn_truncated = false;
};

/// A fully materialized scenario: initial per-replica filters plus the
/// event schedule, everything derived from (config, seed).
struct Scenario {
  ScenarioConfig config;
  std::uint64_t seed = 0;
  /// Address bitmask per replica (bit k => hosts address k+1).
  std::vector<std::uint64_t> initial_filter_bits;
  std::vector<Event> events;
};

Scenario make_scenario(const ScenarioConfig& config, std::uint64_t seed);

/// A detected invariant violation.
struct Violation {
  /// Index of the failing event; events.size() + round for failures
  /// detected during the quiescence/convergence phase.
  std::size_t event_index = 0;
  std::string probe;    ///< which invariant fired
  std::string message;  ///< human-readable description
};

struct RunStats {
  std::size_t syncs = 0;
  std::size_t cuts = 0;       ///< contacts that died mid-stream
  std::size_t incomplete = 0; ///< syncs reporting complete == false
  std::size_t items_moved = 0;
  std::size_t evictions = 0;
  std::size_t bytes = 0;
};

struct RunResult {
  std::optional<Violation> violation;
  RunStats stats;
  /// One line per event (plus quiescence summary) when logging is on;
  /// deterministic, so two runs of the same scenario compare equal.
  std::vector<std::string> log;
};

/// Execute a scenario over the real sync stack (loopback transport +
/// TargetSession/run_source), probing every invariant after each event.
RunResult run_scenario(const Scenario& scenario, bool keep_log = false);

/// Render one event as a stable, replay-friendly line.
std::string format_event(std::size_t index, const Event& event);

}  // namespace pfrdtn::check
