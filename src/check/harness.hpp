#pragma once

/// \file harness.hpp
/// Driver for the check harness: runs a batch of seeded scenarios over
/// the real sync stack, and when one trips an invariant, shrinks the
/// failing schedule (ddmin-style chunk deletion plus truncation at the
/// violation point) to a minimal event sequence before reporting.
/// Everything is reproducible from (config, seed): rerunning the same
/// command yields the same schedules, verdicts, and shrunk result.

#include "check/scenario.hpp"

namespace pfrdtn::check {

struct CheckOptions {
  ScenarioConfig config;
  std::uint64_t seed = 1;  ///< first seed; runs use seed .. seed+runs-1
  std::size_t runs = 1;
  bool shrink = true;
  /// Maximum scenario executions the shrinker may spend.
  std::size_t shrink_budget = 400;
  /// Collect every run's event log in CheckReport::run_logs (the CLI's
  /// --log flag; lets two invocations be diffed line by line).
  bool log = false;
};

struct CheckReport {
  bool passed = true;
  std::size_t runs = 0;         ///< scenarios executed (shrink excluded)
  std::size_t shrink_runs = 0;  ///< executions spent shrinking
  RunStats total;               ///< aggregate over passing runs
  /// With CheckOptions::log: per-run event logs ("seed N" headers
  /// followed by one line per event), deterministic across reruns.
  std::vector<std::string> run_logs;

  // Populated when passed == false:
  std::uint64_t failing_seed = 0;
  std::optional<Violation> violation;  ///< verdict on the shrunk schedule
  Scenario shrunk;                     ///< minimal failing schedule
  std::vector<std::string> failing_log;  ///< event log of the shrunk run
};

/// Run `runs` consecutive seeds; stop at (and shrink) the first failure.
CheckReport run_check(const CheckOptions& options);

/// Shrink a failing scenario to a locally minimal event sequence: first
/// truncate right after the violating event, then delete chunks
/// (halving granularity down to single events), keeping any candidate
/// that still violates *some* invariant. `runs_used` reports executions
/// spent. The result is guaranteed to still fail.
Scenario shrink_scenario(const Scenario& failing,
                         const Violation& violation, std::size_t budget,
                         std::size_t* runs_used);

/// Render a report; `replay_hint` is the command line that reproduces
/// the failure (printed on violation), e.g. "pfrdtn check --replay 7".
std::string format_report(const CheckReport& report,
                          const std::string& replay_hint);

}  // namespace pfrdtn::check
