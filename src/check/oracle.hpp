#pragma once

/// \file oracle.hpp
/// The check harness's test oracle: global ground truth the replicas
/// themselves cannot see. It tracks every item's globally newest
/// version and, per replica, which update events have ever been
/// transmitted to it, and turns that into three substrate probes:
///
///  * at-most-once delivery — an event reaches a replica a second time
///    only if the replica deliberately forgot it in between (relay
///    eviction, discard, or the filter-change knowledge rebuild);
///  * knowledge soundness — a replica that claims knowledge of an
///    item's newest version, for an item matching its filter, must
///    store that item at that version ("a truncated sync never admits
///    knowledge for items not stored");
///  * eventual filter consistency — after a fault-free, connected
///    gossip phase, every replica stores the newest version of every
///    item matching its filter.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "repl/replica.hpp"

namespace pfrdtn::check {

class Oracle {
 public:
  explicit Oracle(std::size_t replica_count)
      : received_(replica_count), forgiven_(replica_count) {}

  /// Record a local mutation's result (create/update/erase outcome).
  void note_latest(const repl::Item& item);

  /// Record that `replica` was sent these update events in one sync.
  /// Returns an at-most-once violation description, if any.
  std::optional<std::string> on_received(
      std::size_t replica, const std::vector<repl::Version>& events);

  /// The replica forgot these exact events (relay eviction / discard);
  /// one re-transmission of each is now legitimate.
  void forgive(std::size_t replica,
               const std::vector<repl::Item>& evicted);

  /// The replica rebuilt its knowledge wholesale (filter change);
  /// anything may legitimately be re-transmitted once.
  void forgive_all(std::size_t replica);

  /// Knowledge soundness over all replicas against the latest map.
  [[nodiscard]] std::optional<std::string> check_soundness(
      const std::vector<repl::Replica>& replicas) const;

  /// Eventual filter consistency (call after quiescence gossip).
  [[nodiscard]] std::optional<std::string> check_convergence(
      const std::vector<repl::Replica>& replicas) const;

  [[nodiscard]] const std::map<ItemId, repl::Item>& latest() const {
    return latest_;
  }

 private:
  using EventKey = std::pair<std::uint64_t, std::uint64_t>;

  std::map<ItemId, repl::Item> latest_;
  /// Per replica: events ever transmitted to it.
  std::vector<std::set<EventKey>> received_;
  /// Per replica: forgotten events whose re-transmission is excused.
  std::vector<std::set<EventKey>> forgiven_;
};

}  // namespace pfrdtn::check
