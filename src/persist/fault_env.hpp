#pragma once

/// \file fault_env.hpp
/// A StorageEnv decorator that injects seeded, schedulable storage
/// faults — the disk the persistence layer must survive, made
/// deterministic. Wraps any inner env (MemEnv in the check harness,
/// FsEnv under the CLI) and, per operation, draws from its own RNG
/// whether to fail with EIO, ENOSPC, a short write, a failed fsync, or
/// a failed open. All faults throw StorageError carrying the
/// operation, file, and errno.
///
/// Fault semantics mirror the real kernel behaviors the durability
/// layer must handle:
///
///   - append: fails wholesale (EIO/ENOSPC, nothing reaches the inner
///     env) or as a *short write* (a random prefix reaches the inner
///     env, then EIO) — the torn-append case;
///   - sync: throws EIO *without* syncing the inner env. The dirty
///     pages are lost: a later crash rolls back past the unsynced
///     bytes. Retrying fsync and assuming durability after a failed
///     one is the classic fsyncgate bug — the fault model makes it
///     observable;
///   - write_file_durable: fails with EIO/ENOSPC/open-failure before
///     the inner atomic write runs, so the target keeps its old
///     content (what a crashed temp-file write leaves behind);
///   - truncate: EIO, inner file untouched;
///   - read_file: EIO (disabled by default — the harness bands target
///     the write path, where the acknowledgement contract lives).
///
/// A deterministic ENOSPC budget (`enospc_after_bytes`) models a disk
/// filling under load: once the cumulative bytes written through this
/// env cross the budget, every further append/sync/durable-write fails
/// with ENOSPC regardless of the rate draw — the diskfault e2e uses
/// this for a reproducible "disk full" without filling a real disk.
///
/// Determinism: faults are drawn from a private xoshiro stream seeded
/// at construction, one draw per fault-eligible operation. Given the
/// same operation sequence, the same faults fire — which is exactly
/// what the check harness's replay contract needs, since its schedules
/// make the operation sequence itself deterministic.

#include <cstdint>
#include <string>
#include <vector>

#include "persist/env.hpp"
#include "util/rng.hpp"

namespace pfrdtn::persist {

struct FaultPlan {
  std::uint64_t seed = 0;
  /// Per-operation probability of injecting a fault (0 = passthrough;
  /// no RNG draws at all, so a zero-rate wrapper is exactly the inner
  /// env).
  double fault_rate = 0.0;
  bool fail_appends = true;
  bool fail_syncs = true;
  bool fail_durable_writes = true;
  bool fail_truncates = true;
  /// Read faults are off by default: the write-path bands are where
  /// the acknowledgement contract lives. Recovery-time read faults are
  /// exercised directly by the generation-fallback tests.
  bool fail_reads = false;
  /// Deterministic disk-full: once this many bytes have been written
  /// through the wrapper (appends + durable writes), every further
  /// append/sync/durable write fails ENOSPC. 0 disables the budget.
  std::uint64_t enospc_after_bytes = 0;
};

class FaultInjectingEnv final : public StorageEnv {
 public:
  FaultInjectingEnv(StorageEnv& inner, FaultPlan plan)
      : inner_(inner), plan_(plan), rng_(plan.seed) {}

  [[nodiscard]] StorageEnv& inner() { return inner_; }
  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

  /// Stop injecting (the operator cleared space / replaced the disk).
  /// Existing RNG state is kept so re-arming stays deterministic.
  void set_fault_rate(double rate) { plan_.fault_rate = rate; }
  void clear_enospc_budget() { plan_.enospc_after_bytes = 0; }

  /// Total faults this wrapper has injected (all kinds).
  [[nodiscard]] std::size_t faults_injected() const {
    return faults_injected_;
  }
  [[nodiscard]] std::uint64_t bytes_written() const {
    return bytes_written_;
  }

  [[nodiscard]] bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  [[nodiscard]] std::size_t file_size(
      const std::string& name) const override {
    return inner_.file_size(name);
  }
  [[nodiscard]] std::vector<std::uint8_t> read_file(
      const std::string& name) const override;

  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override;
  void sync(const std::string& name) override;
  void write_file_durable(
      const std::string& name,
      const std::vector<std::uint8_t>& bytes) override;
  void truncate(const std::string& name, std::size_t size) override;
  void remove(const std::string& name) override;

 private:
  /// One Bernoulli draw against fault_rate (no draw when rate is 0).
  bool roll();
  [[noreturn]] void fail(const char* op, const std::string& name,
                         int error_code);
  void charge_bytes(const char* op, const std::string& name,
                    std::size_t size);

  StorageEnv& inner_;
  FaultPlan plan_;
  Rng rng_;
  std::uint64_t bytes_written_ = 0;
  std::size_t faults_injected_ = 0;
};

}  // namespace pfrdtn::persist
