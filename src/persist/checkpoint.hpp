#pragma once

/// \file checkpoint.hpp
/// Atomic checkpoints of full replica state, and the exact state codec
/// they share with the crash probes.
///
/// The state payload captures everything `repl::Replica` owns —
/// identity, authoring counters, filter, knowledge (via the
/// structure-preserving exact codec, so local-only pinning survives),
/// and the store with each entry's flags and arrival_seq. Recovery
/// from a checkpoint is therefore byte-faithful: the recovered replica
/// serializes back to the identical payload, which is also how the
/// check harness asserts "recovery forgot nothing" (state_digest).
///
/// File layout (written via StorageEnv::write_file_durable, i.e.
/// write-temp + fsync + rename; a crash yields old or new, never a
/// torn mixture):
///
///   magic   u32 LE 0x50434650 ("PFCP")
///   version u8
///   epoch   u64 LE   (pairs the checkpoint with its WAL)
///   length  u32 LE   payload byte count
///   crc     u32 LE   CRC-32 of the payload
///   payload
///
/// Version 2 payloads wrap the replica state with the node-level
/// delivered-message ledger (uvarint state length, state bytes, then
/// uvarint id count + delta-encoded sorted item ids), so app-level
/// exactly-once delivery survives a crash. The inner state codec —
/// and therefore state_digest — is unchanged from version 1.

#include <cstdint>
#include <set>
#include <vector>

#include "repl/replica.hpp"

namespace pfrdtn::persist {

inline constexpr std::uint32_t kCheckpointMagic = 0x50434650u;  // "PFCP"
inline constexpr std::uint8_t kCheckpointVersion = 2;
inline constexpr std::size_t kCheckpointHeaderSize = 4 + 1 + 8 + 4 + 4;
/// A payload length above this is a corrupt header, not a checkpoint.
inline constexpr std::uint32_t kMaxCheckpointPayload = 256u << 20;

/// Serialize the complete replica state (the checkpoint payload).
std::vector<std::uint8_t> encode_replica_state(
    const repl::Replica& replica);

/// Rebuild a replica from a state payload. Throws ContractViolation on
/// any malformed or internally inconsistent input (including state
/// that fails Replica::check_invariants) — recovery rejects corrupt
/// state rather than loading it.
repl::Replica decode_replica_state(const std::vector<std::uint8_t>& bytes);

/// FNV-1a 64-bit digest of the exact state payload. Two replicas with
/// equal digests build byte-identical sync batches.
std::uint64_t state_digest(const repl::Replica& replica);
std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes);

/// Whole checkpoint file bytes for `replica` at `epoch`, carrying the
/// node's delivered-message ledger alongside the state payload.
std::vector<std::uint8_t> encode_checkpoint(
    std::uint64_t epoch, const repl::Replica& replica,
    const std::set<ItemId>& delivered = {});

struct DecodedCheckpoint {
  std::uint64_t epoch = 0;
  repl::Replica replica;
  std::set<ItemId> delivered;  ///< message ids already reported
};

/// Parse + validate a checkpoint file (magic, version, length, CRC,
/// then the state payload). Throws ContractViolation on corruption.
DecodedCheckpoint decode_checkpoint(const std::vector<std::uint8_t>& bytes);

}  // namespace pfrdtn::persist
