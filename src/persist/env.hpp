#pragma once

/// \file env.hpp
/// Storage environment for the persistence layer: the handful of file
/// operations the WAL and checkpoint writers need, behind an interface
/// so the check harness can run them against a crash-simulating
/// in-memory backend (MemEnv) while the CLI uses real POSIX files
/// (FsEnv). The durability contract is the interface's whole point:
///
///   - append() makes bytes *visible* but not durable;
///   - sync() makes every byte appended so far durable (fsync);
///   - write_file_durable() atomically replaces a file with contents
///     that are fully durable once the call returns (write to a
///     temporary, fsync it, rename over the target, fsync the
///     directory) — a crash yields either the old file or the new one,
///     never a mixture;
///   - truncate() is treated as durable immediately (metadata op).
///
/// MemEnv models exactly that: each file carries a durable watermark
/// advanced only by sync()/write_file_durable(), and crash() rolls
/// every file back to its durable prefix — the state a machine would
/// reboot with after power loss.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pfrdtn::persist {

class StorageEnv {
 public:
  virtual ~StorageEnv() = default;

  [[nodiscard]] virtual bool exists(const std::string& name) const = 0;
  /// Size in bytes; 0 if the file does not exist.
  [[nodiscard]] virtual std::size_t file_size(
      const std::string& name) const = 0;
  /// Whole-file read; throws ContractViolation if the file is missing.
  [[nodiscard]] virtual std::vector<std::uint8_t> read_file(
      const std::string& name) const = 0;

  /// Append bytes (creating the file if needed). Visible, not durable.
  virtual void append(const std::string& name, const std::uint8_t* data,
                      std::size_t size) = 0;
  /// Make everything appended to `name` so far durable.
  virtual void sync(const std::string& name) = 0;
  /// Atomically replace `name` with `bytes`, durable on return.
  virtual void write_file_durable(
      const std::string& name, const std::vector<std::uint8_t>& bytes) = 0;
  /// Shrink the file to `size` bytes (no-op if already smaller).
  virtual void truncate(const std::string& name, std::size_t size) = 0;
  virtual void remove(const std::string& name) = 0;
};

/// Real files under a directory, POSIX fsync/rename semantics. The
/// directory is exclusively owned while the FsEnv lives: the
/// constructor takes a `flock` on a LOCK file inside it and throws
/// ContractViolation if another process (or another FsEnv — the lock
/// is per open file description) already holds it, so two `pfrdtn`
/// invocations can never interleave WAL appends in one state dir. The
/// kernel releases the lock on any exit, including SIGKILL.
class FsEnv final : public StorageEnv {
 public:
  /// Creates `dir` (and parents) if missing, then locks it.
  explicit FsEnv(std::string dir);
  ~FsEnv() override;

  FsEnv(const FsEnv&) = delete;
  FsEnv& operator=(const FsEnv&) = delete;

  [[nodiscard]] const std::string& dir() const { return dir_; }

  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::size_t file_size(
      const std::string& name) const override;
  [[nodiscard]] std::vector<std::uint8_t> read_file(
      const std::string& name) const override;
  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override;
  void sync(const std::string& name) override;
  void write_file_durable(
      const std::string& name,
      const std::vector<std::uint8_t>& bytes) override;
  void truncate(const std::string& name, std::size_t size) override;
  void remove(const std::string& name) override;

 private:
  [[nodiscard]] std::string path(const std::string& name) const;
  /// Cached append descriptor for `name` (opened O_APPEND on demand).
  int append_fd(const std::string& name);
  void close_fd(const std::string& name);
  void sync_dir() const;

  std::string dir_;
  int lock_fd_ = -1;
  std::map<std::string, int> fds_;
};

/// In-memory files with an explicit durable watermark per file, for
/// deterministic crash simulation in tests and the check harness.
class MemEnv final : public StorageEnv {
 public:
  [[nodiscard]] bool exists(const std::string& name) const override;
  [[nodiscard]] std::size_t file_size(
      const std::string& name) const override;
  [[nodiscard]] std::vector<std::uint8_t> read_file(
      const std::string& name) const override;
  void append(const std::string& name, const std::uint8_t* data,
              std::size_t size) override;
  void sync(const std::string& name) override;
  void write_file_durable(
      const std::string& name,
      const std::vector<std::uint8_t>& bytes) override;
  void truncate(const std::string& name, std::size_t size) override;
  void remove(const std::string& name) override;

  /// Simulate power loss: every file rolls back to its durable prefix.
  void crash();

  /// Bytes of `name` that would survive crash() right now.
  [[nodiscard]] std::size_t durable_size(const std::string& name) const;

  /// Post-crash torn-tail injection: bytes that made it to the medium
  /// out of an append that was in flight when the power died. Appended
  /// raw, durable (they are already "on disk" when recovery runs).
  void corrupt_append(const std::string& name,
                      const std::vector<std::uint8_t>& bytes);

 private:
  struct MemFile {
    std::vector<std::uint8_t> bytes;
    std::size_t durable = 0;
  };
  std::map<std::string, MemFile> files_;
};

}  // namespace pfrdtn::persist
