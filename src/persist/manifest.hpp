#pragma once

/// \file manifest.hpp
/// The checkpoint-generation manifest: a CRC'd list of the checkpoint
/// epochs currently retained in a state directory. With generations,
/// the directory holds
///
///   MANIFEST                     this file
///   checkpoint.<epoch>.bin       one full-state checkpoint per epoch
///   wal.<epoch>.log              the WAL segment written *after* that
///                                checkpoint (and folded into the next)
///
/// for each retained epoch, newest last. The manifest is the directory
/// listing the StorageEnv interface does not provide: recovery reads
/// it to learn which generations exist, tries them newest-first, and
/// ignores any generation files the manifest does not mention (orphans
/// from a crash mid-prune are dead weight, never input).
///
/// Written only via StorageEnv::write_file_durable, so readers see the
/// old list or the new list, never a mixture. Pruning rewrites the
/// manifest *without* the doomed epochs before unlinking their files:
/// a crash between the two leaves unreferenced files, not dangling
/// references.
///
/// File layout:
///
///   magic   u32 LE 0x464D4650 ("PFMF")
///   version u8
///   count   u32 LE
///   epochs  count × u64 LE, strictly ascending
///   crc     u32 LE — CRC-32 of every preceding byte

#include <cstdint>
#include <string>
#include <vector>

namespace pfrdtn::persist {

inline constexpr const char* kManifestFile = "MANIFEST";
inline constexpr std::uint32_t kManifestMagic = 0x464D4650u;  // "PFMF"
inline constexpr std::uint8_t kManifestVersion = 1;
/// More generations than this is a corrupt count, not a manifest.
inline constexpr std::uint32_t kMaxManifestEpochs = 4096;

/// File names for one generation's checkpoint and WAL segment.
std::string checkpoint_file(std::uint64_t epoch);
std::string wal_file(std::uint64_t epoch);

/// Serialize a manifest for the given retained epochs (must be
/// non-empty and strictly ascending).
std::vector<std::uint8_t> encode_manifest(
    const std::vector<std::uint64_t>& epochs);

/// Parse + validate manifest bytes. Throws ContractViolation on any
/// corruption (bad magic/version/count, CRC mismatch, unordered
/// epochs) — a corrupt manifest is rejected, never guessed at.
std::vector<std::uint64_t> decode_manifest(
    const std::vector<std::uint8_t>& bytes);

}  // namespace pfrdtn::persist
