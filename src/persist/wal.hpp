#pragma once

/// \file wal.hpp
/// Append-only write-ahead log of serialized replica mutations.
///
/// File layout:
///
///   header   magic u32 LE 0x4C575046 ("PFWL"), version u8,
///            epoch u64 LE (must match the checkpoint's epoch; a
///            mismatched log is stale and ignored by recovery)
///   records  each: length u32 LE, crc u32 LE (CRC-32 of the payload),
///            payload `length` bytes
///
/// Records become *acknowledged* only when WalWriter::commit() has
/// fsynced them (batched via sync_every_records). Recovery scans the
/// log and stops at the first record that is short, oversized, or
/// fails its CRC — a torn tail from a mid-append crash — and reports
/// the valid prefix length so the writer can truncate it away before
/// appending again.

#include <cstdint>
#include <string>
#include <vector>

#include "persist/env.hpp"

namespace pfrdtn::persist {

inline constexpr std::uint32_t kWalMagic = 0x4C574650u;  // "PFWL"
inline constexpr std::uint8_t kWalVersion = 1;
inline constexpr std::size_t kWalHeaderSize = 4 + 1 + 8;
inline constexpr std::size_t kWalRecordHeaderSize = 8;
/// A record length above this is a torn/corrupt header, not a record.
inline constexpr std::uint32_t kMaxWalRecord = 16u << 20;

/// Serialized WAL file header for the given epoch.
std::vector<std::uint8_t> encode_wal_header(std::uint64_t epoch);

/// One record as it appears on disk (length + crc + payload).
std::vector<std::uint8_t> encode_wal_record(
    const std::vector<std::uint8_t>& payload);

struct WalScan {
  /// Header parsed and version understood. False for an empty or
  /// foreign file (recovery then treats the log as absent).
  bool valid_header = false;
  std::uint64_t epoch = 0;
  /// Byte length of header + every fully valid record.
  std::size_t valid_bytes = 0;
  /// Bytes after the valid prefix (the torn tail recovery drops).
  std::size_t torn_bytes = 0;
  std::vector<std::vector<std::uint8_t>> records;
};

/// Scan raw log bytes, collecting the longest valid record prefix.
/// Never throws on corrupt input: anything unparseable ends the scan.
WalScan scan_wal(const std::vector<std::uint8_t>& bytes);

/// Scan the log file in `env` (absent file = empty scan).
WalScan scan_wal_file(const StorageEnv& env, const std::string& name);

/// Appender with fsync batching. `acked_records()` counts records the
/// durability contract covers: everything up to the last sync().
class WalWriter {
 public:
  WalWriter(StorageEnv& env, std::string name,
            std::size_t sync_every_records, bool unsafe_skip_fsync,
            bool unsafe_ack_before_fsync = false)
      : env_(&env),
        name_(std::move(name)),
        sync_every_records_(sync_every_records == 0
                                ? 1
                                : sync_every_records),
        unsafe_skip_fsync_(unsafe_skip_fsync),
        unsafe_ack_before_fsync_(unsafe_ack_before_fsync) {}

  /// Retarget the writer at another log file (checkpoint generations
  /// keep one WAL segment per epoch). Pending state is discarded; call
  /// reset()/resume() next.
  void set_file(std::string name);
  [[nodiscard]] const std::string& file() const { return name_; }

  /// Truncate any torn tail and position after `scan`'s valid prefix.
  void resume(const WalScan& scan);

  /// Start a fresh log for `epoch` (truncates any existing content).
  void reset(std::uint64_t epoch);

  /// Append one record; fsyncs when the batch quota is reached.
  void append(const std::vector<std::uint8_t>& payload);

  /// Force-fsync pending appends (end of a sync session, shutdown).
  void flush();

  [[nodiscard]] std::size_t log_bytes() const { return log_bytes_; }
  [[nodiscard]] std::size_t records_appended() const {
    return records_appended_;
  }
  [[nodiscard]] std::size_t bytes_appended() const {
    return bytes_appended_;
  }
  [[nodiscard]] std::size_t pending_records() const { return pending_; }
  /// fsyncs actually issued against the env (durability counter).
  [[nodiscard]] std::size_t syncs() const { return syncs_; }

 private:
  void sync_now();

  StorageEnv* env_;
  std::string name_;
  std::size_t sync_every_records_;
  bool unsafe_skip_fsync_;
  bool unsafe_ack_before_fsync_;
  std::size_t log_bytes_ = 0;
  std::size_t records_appended_ = 0;
  std::size_t bytes_appended_ = 0;
  std::size_t pending_ = 0;
  std::size_t syncs_ = 0;
};

}  // namespace pfrdtn::persist
