#include "persist/fault_env.hpp"

#include <cerrno>

#include "util/storage_error.hpp"

namespace pfrdtn::persist {

bool FaultInjectingEnv::roll() {
  // Zero-rate wrappers draw nothing: a FaultInjectingEnv with
  // fault_rate 0 is operation-for-operation identical to the inner
  // env, so enabling the wrapper unconditionally cannot perturb
  // fault-free schedules.
  if (plan_.fault_rate <= 0.0) return false;
  return rng_.chance(plan_.fault_rate);
}

void FaultInjectingEnv::fail(const char* op, const std::string& name,
                             int error_code) {
  ++faults_injected_;
  throw StorageError(op, name, error_code);
}

void FaultInjectingEnv::charge_bytes(const char* op,
                                     const std::string& name,
                                     std::size_t size) {
  if (plan_.enospc_after_bytes != 0 &&
      bytes_written_ + size > plan_.enospc_after_bytes) {
    fail(op, name, ENOSPC);
  }
  bytes_written_ += size;
}

std::vector<std::uint8_t> FaultInjectingEnv::read_file(
    const std::string& name) const {
  // const_cast confined here: fault draws mutate the RNG, but the
  // decorated read is still logically const for callers.
  auto& self = const_cast<FaultInjectingEnv&>(*this);
  if (plan_.fail_reads && self.roll()) self.fail("read", name, EIO);
  return inner_.read_file(name);
}

void FaultInjectingEnv::append(const std::string& name,
                               const std::uint8_t* data,
                               std::size_t size) {
  charge_bytes("write", name, size);
  if (plan_.fail_appends && roll()) {
    // Three ways an append dies, drawn uniformly: full EIO, full
    // ENOSPC, or a short write — a prefix reaches the medium before
    // the error, the torn shape scan_wal's valid-prefix rule exists
    // for.
    switch (rng_.below(3)) {
      case 0:
        fail("write", name, EIO);
      case 1:
        fail("write", name, ENOSPC);
      default: {
        const std::size_t partial =
            size == 0 ? 0 : static_cast<std::size_t>(rng_.below(size));
        inner_.append(name, data, partial);
        fail("write", name, EIO);
      }
    }
  }
  inner_.append(name, data, size);
}

void FaultInjectingEnv::sync(const std::string& name) {
  if (plan_.enospc_after_bytes != 0 &&
      bytes_written_ > plan_.enospc_after_bytes) {
    fail("fsync", name, ENOSPC);
  }
  if (plan_.fail_syncs && roll()) {
    // The inner sync is NOT attempted: the dirty pages stay dirty and
    // a crash loses them. Callers must treat this as fail-stop for
    // durability claims — never retry-and-assume-durable.
    fail("fsync", name, EIO);
  }
  inner_.sync(name);
}

void FaultInjectingEnv::write_file_durable(
    const std::string& name, const std::vector<std::uint8_t>& bytes) {
  charge_bytes("write", name, bytes.size());
  if (plan_.fail_durable_writes && roll()) {
    // The atomic temp-write-rename never starts: the target keeps its
    // old content, exactly what write_file_durable guarantees for a
    // crash mid-replacement.
    switch (rng_.below(3)) {
      case 0:
        fail("write", name + ".tmp", EIO);
      case 1:
        fail("write", name + ".tmp", ENOSPC);
      default:
        fail("open", name + ".tmp", EACCES);
    }
  }
  inner_.write_file_durable(name, bytes);
}

void FaultInjectingEnv::truncate(const std::string& name,
                                 std::size_t size) {
  if (plan_.fail_truncates && roll()) fail("truncate", name, EIO);
  inner_.truncate(name, size);
}

void FaultInjectingEnv::remove(const std::string& name) {
  // unlink faults are not in the model: the durability layer only
  // removes files during generation pruning, where a failed unlink is
  // already tolerated as an orphan.
  inner_.remove(name);
}

}  // namespace pfrdtn::persist
