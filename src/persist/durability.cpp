#include "persist/durability.hpp"

#include <csignal>

#include "util/byte_buffer.hpp"
#include "util/require.hpp"

namespace pfrdtn::persist {

namespace {

std::vector<std::uint8_t> encode_item_record(WalRecordKind kind,
                                             const repl::Item& item) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  item.serialize(w);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode_local_put(const repl::Item& item) {
  return encode_item_record(WalRecordKind::LocalPut, item);
}

std::vector<std::uint8_t> encode_apply_remote(const repl::Item& item) {
  return encode_item_record(WalRecordKind::ApplyRemote, item);
}

std::vector<std::uint8_t> encode_set_filter(const repl::Filter& filter) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::SetFilter));
  filter.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> encode_discard_relay(ItemId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::DiscardRelay));
  w.uvarint(id.value());
  return w.take();
}

std::vector<std::uint8_t> encode_learn(
    const repl::Knowledge& knowledge) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::Learn));
  // Exact codec: replay must merge the same fragment structure the
  // live replica merged, not the wire codec's refolded approximation.
  knowledge.serialize_exact(w);
  return w.take();
}

std::vector<std::uint8_t> encode_policy_state(
    ItemId id, const std::map<std::string, std::string>& all) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::PolicyState));
  w.uvarint(id.value());
  w.uvarint(all.size());
  for (const auto& [key, value] : all) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_delivered(ItemId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::Delivered));
  w.uvarint(id.value());
  return w.take();
}

namespace {

bool is_delivered_record(const std::vector<std::uint8_t>& payload) {
  return !payload.empty() &&
         static_cast<WalRecordKind>(payload[0]) ==
             WalRecordKind::Delivered;
}

ItemId decode_delivered_record(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  r.u8();  // kind, checked by the caller
  const ItemId id(r.uvarint());
  PFRDTN_REQUIRE(r.done());
  return id;
}

}  // namespace

void apply_wal_record(repl::Replica& replica,
                      const std::vector<std::uint8_t>& payload) {
  PFRDTN_REQUIRE(replica.mutation_sink() == nullptr);
  ByteReader r(payload);
  const std::uint8_t kind = r.u8();
  switch (static_cast<WalRecordKind>(kind)) {
    case WalRecordKind::LocalPut:
      replica.replay_local_put(repl::Item::deserialize(r));
      break;
    case WalRecordKind::ApplyRemote: {
      const repl::Item incoming = repl::Item::deserialize(r);
      std::vector<repl::Item> evicted;
      replica.apply_remote(incoming, evicted);
      break;
    }
    case WalRecordKind::SetFilter:
      replica.set_filter(repl::Filter::deserialize(r));
      break;
    case WalRecordKind::DiscardRelay:
      replica.discard_relay(ItemId(r.uvarint()));
      break;
    case WalRecordKind::Learn:
      replica.learn(repl::Knowledge::deserialize_exact(r));
      break;
    case WalRecordKind::PolicyState: {
      const ItemId id(r.uvarint());
      const std::uint64_t n = r.uvarint();
      PFRDTN_REQUIRE(n <= r.remaining());
      std::map<std::string, std::string> all;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        all[std::move(key)] = r.str();
      }
      replica.replay_policy_state(id, std::move(all));
      break;
    }
    case WalRecordKind::Delivered:
      // Node-level ledger records never touch the replica; recover()
      // and attach() filter them out before replay.
      PFRDTN_REQUIRE(!"Delivered record replayed against a replica");
      break;
    default:
      PFRDTN_REQUIRE(!"unknown WAL record kind");
  }
  PFRDTN_REQUIRE(r.done());
}

Durability::Durability(StorageEnv& env, DurabilityOptions options)
    : env_(env),
      options_(options),
      wal_(env, kWalFile, options.sync_every_records,
           options.unsafe_skip_fsync) {}

Durability::~Durability() { detach(); }

void Durability::attach(repl::Replica& replica) {
  PFRDTN_REQUIRE(replica_ == nullptr);
  PFRDTN_REQUIRE(replica.mutation_sink() == nullptr);
  if (env_.exists(kCheckpointFile)) {
    // The caller recovered `replica` from this env; resume the WAL
    // after its last valid record (dropping any torn tail on disk).
    const DecodedCheckpoint ck =
        decode_checkpoint(env_.read_file(kCheckpointFile));
    epoch_ = ck.epoch;
    delivered_ = ck.delivered;
    const WalScan scan = scan_wal_file(env_, kWalFile);
    if (scan.valid_header && scan.epoch == epoch_) {
      // Delivered records ride the same log; restore the ledger from
      // them so the next checkpoint carries the complete set.
      for (const auto& record : scan.records) {
        if (is_delivered_record(record))
          delivered_.insert(decode_delivered_record(record));
      }
      wal_.resume(scan);
    } else {
      wal_.reset(epoch_);  // stale or missing log: start clean
    }
  } else {
    // Fresh state directory: the current replica state becomes the
    // initial checkpoint, durable before the first record is logged.
    epoch_ = 1;
    env_.write_file_durable(kCheckpointFile,
                            encode_checkpoint(epoch_, replica, delivered_));
    wal_.reset(epoch_);
    ++checkpoints_written_;
  }
  replica_ = &replica;
  replica.set_mutation_sink(this);
}

void Durability::detach() {
  if (replica_ == nullptr) return;
  flush();
  replica_->set_mutation_sink(nullptr);
  replica_ = nullptr;
}

void Durability::flush() { wal_.flush(); }

void Durability::checkpoint_now() {
  PFRDTN_REQUIRE(replica_ != nullptr);
  const std::uint64_t next_epoch = epoch_ + 1;
  env_.write_file_durable(
      kCheckpointFile, encode_checkpoint(next_epoch, *replica_, delivered_));
  epoch_ = next_epoch;
  // Only after the checkpoint is durable may the log be reset: a crash
  // between the two leaves an old-epoch log that recovery ignores.
  wal_.reset(epoch_);
  ++checkpoints_written_;
}

void Durability::log(std::vector<std::uint8_t> payload) {
  PFRDTN_REQUIRE(replica_ != nullptr);
  wal_.append(payload);
  ++records_logged_;
  if (options_.kill_after_records != 0 &&
      records_logged_ >= options_.kill_after_records) {
    // Deterministic crash point for e2e tests: die with the record
    // durable but the mutation's caller never told. flush() first so
    // "acknowledged" matches what recovery will find.
    wal_.flush();
    std::raise(SIGKILL);
  }
  if (wal_.log_bytes() >= options_.checkpoint_every_bytes)
    checkpoint_now();
}

void Durability::note_delivered(ItemId id) {
  PFRDTN_REQUIRE(replica_ != nullptr);
  if (!delivered_.insert(id).second) return;  // already on record
  log(encode_delivered(id));
}

void Durability::on_local_put(const repl::Item& stored) {
  log(encode_local_put(stored));
}

void Durability::on_apply_remote(const repl::Item& incoming) {
  log(encode_apply_remote(incoming));
}

void Durability::on_set_filter(const repl::Filter& filter) {
  log(encode_set_filter(filter));
}

void Durability::on_discard_relay(ItemId id) {
  log(encode_discard_relay(id));
}

void Durability::on_learn(const repl::Knowledge& source_knowledge) {
  log(encode_learn(source_knowledge));
}

void Durability::on_policy_state(
    ItemId id, const std::map<std::string, std::string>& all) {
  log(encode_policy_state(id, all));
}

std::optional<RecoveredReplica> recover(StorageEnv& env) {
  if (!env.exists(kCheckpointFile)) return std::nullopt;
  DecodedCheckpoint ck = decode_checkpoint(env.read_file(kCheckpointFile));
  RecoveryStats stats;
  stats.epoch = ck.epoch;
  std::set<ItemId> delivered = std::move(ck.delivered);
  const WalScan scan = scan_wal_file(env, kWalFile);
  if (scan.valid_header && scan.epoch == ck.epoch) {
    for (const auto& record : scan.records) {
      // Delivered records are node-level ledger entries, not replica
      // mutations; fold them into the ledger instead of replaying.
      if (is_delivered_record(record)) {
        delivered.insert(decode_delivered_record(record));
      } else {
        apply_wal_record(ck.replica, record);
      }
      ++stats.wal_records_replayed;
    }
    stats.wal_bytes_valid = scan.valid_bytes;
    stats.wal_bytes_truncated = scan.torn_bytes;
  } else {
    // Missing, foreign, or pre-checkpoint log: the checkpoint already
    // contains everything it recorded.
    stats.wal_stale = true;
  }
  const std::string violation = ck.replica.check_invariants();
  PFRDTN_REQUIRE(violation.empty());
  return RecoveredReplica{std::move(ck.replica), std::move(delivered),
                          std::move(stats)};
}

}  // namespace pfrdtn::persist
