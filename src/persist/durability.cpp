#include "persist/durability.hpp"

#include <algorithm>
#include <csignal>

#include "util/byte_buffer.hpp"
#include "util/require.hpp"

namespace pfrdtn::persist {

namespace {

std::vector<std::uint8_t> encode_item_record(WalRecordKind kind,
                                             const repl::Item& item) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(kind));
  item.serialize(w);
  return w.take();
}

}  // namespace

std::vector<std::uint8_t> encode_local_put(const repl::Item& item) {
  return encode_item_record(WalRecordKind::LocalPut, item);
}

std::vector<std::uint8_t> encode_apply_remote(const repl::Item& item) {
  return encode_item_record(WalRecordKind::ApplyRemote, item);
}

std::vector<std::uint8_t> encode_set_filter(const repl::Filter& filter) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::SetFilter));
  filter.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> encode_discard_relay(ItemId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::DiscardRelay));
  w.uvarint(id.value());
  return w.take();
}

std::vector<std::uint8_t> encode_learn(
    const repl::Knowledge& knowledge) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::Learn));
  // Exact codec: replay must merge the same fragment structure the
  // live replica merged, not the wire codec's refolded approximation.
  knowledge.serialize_exact(w);
  return w.take();
}

std::vector<std::uint8_t> encode_policy_state(
    ItemId id, const std::map<std::string, std::string>& all) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::PolicyState));
  w.uvarint(id.value());
  w.uvarint(all.size());
  for (const auto& [key, value] : all) {
    w.str(key);
    w.str(value);
  }
  return w.take();
}

std::vector<std::uint8_t> encode_delivered(ItemId id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(WalRecordKind::Delivered));
  w.uvarint(id.value());
  return w.take();
}

namespace {

bool is_delivered_record(const std::vector<std::uint8_t>& payload) {
  return !payload.empty() &&
         static_cast<WalRecordKind>(payload[0]) ==
             WalRecordKind::Delivered;
}

ItemId decode_delivered_record(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  r.u8();  // kind, checked by the caller
  const ItemId id(r.uvarint());
  PFRDTN_REQUIRE(r.done());
  return id;
}

/// The generation that actually loaded, plus everything the manifest
/// said. Shared by recover() (full replay) and attach() (delivered
/// ledger + repair) so both walk the exact same fallback order.
struct ChainLoad {
  std::vector<std::uint64_t> epochs;  ///< manifest, ascending
  std::uint64_t landed = 0;           ///< newest epoch that decoded
  std::size_t generations_tried = 0;
  std::optional<DecodedCheckpoint> ck;
};

/// Decode the manifest and try checkpoints newest-first until one
/// loads. Throws when the manifest itself is corrupt or no retained
/// generation is readable (total loss — corruption is rejected, never
/// guessed at).
ChainLoad load_chain(StorageEnv& env) {
  ChainLoad out;
  out.epochs = decode_manifest(env.read_file(kManifestFile));
  for (auto it = out.epochs.rbegin(); it != out.epochs.rend(); ++it) {
    ++out.generations_tried;
    try {
      DecodedCheckpoint ck =
          decode_checkpoint(env.read_file(checkpoint_file(*it)));
      // A checkpoint claiming a different epoch than its file name is
      // as corrupt as a bad CRC: fall back past it.
      PFRDTN_REQUIRE(ck.epoch == *it);
      out.landed = *it;
      out.ck.emplace(std::move(ck));
      return out;
    } catch (const ContractViolation&) {
      // Unreadable or corrupt: fall back one generation.
    }
  }
  throw ContractViolation(
      "no readable checkpoint generation (" +
      std::to_string(out.epochs.size()) +
      " listed in the manifest, all corrupt or missing)");
}

}  // namespace

void apply_wal_record(repl::Replica& replica,
                      const std::vector<std::uint8_t>& payload) {
  PFRDTN_REQUIRE(replica.mutation_sink() == nullptr);
  ByteReader r(payload);
  const std::uint8_t kind = r.u8();
  switch (static_cast<WalRecordKind>(kind)) {
    case WalRecordKind::LocalPut:
      replica.replay_local_put(repl::Item::deserialize(r));
      break;
    case WalRecordKind::ApplyRemote: {
      const repl::Item incoming = repl::Item::deserialize(r);
      std::vector<repl::Item> evicted;
      replica.apply_remote(incoming, evicted);
      break;
    }
    case WalRecordKind::SetFilter:
      replica.set_filter(repl::Filter::deserialize(r));
      break;
    case WalRecordKind::DiscardRelay:
      replica.discard_relay(ItemId(r.uvarint()));
      break;
    case WalRecordKind::Learn:
      replica.learn(repl::Knowledge::deserialize_exact(r));
      break;
    case WalRecordKind::PolicyState: {
      const ItemId id(r.uvarint());
      const std::uint64_t n = r.uvarint();
      PFRDTN_REQUIRE(n <= r.remaining());
      std::map<std::string, std::string> all;
      for (std::uint64_t i = 0; i < n; ++i) {
        std::string key = r.str();
        all[std::move(key)] = r.str();
      }
      replica.replay_policy_state(id, std::move(all));
      break;
    }
    case WalRecordKind::Delivered:
      // Node-level ledger records never touch the replica; recover()
      // and attach() filter them out before replay.
      PFRDTN_REQUIRE(!"Delivered record replayed against a replica");
      break;
    default:
      PFRDTN_REQUIRE(!"unknown WAL record kind");
  }
  PFRDTN_REQUIRE(r.done());
}

Durability::Durability(StorageEnv& env, DurabilityOptions options)
    : env_(env),
      options_(std::move(options)),
      wal_(env, kWalFile, options_.sync_every_records,
           options_.unsafe_skip_fsync, options_.unsafe_ack_before_fsync) {
  if (options_.checkpoint_generations == 0)
    options_.checkpoint_generations = 1;
  next_checkpoint_at_ = options_.checkpoint_every_bytes;
}

Durability::~Durability() {
  try {
    detach();
  } catch (...) {
    // A storage fault during teardown must not std::terminate the
    // process: the pending records simply stay unacknowledged, which
    // the contract already permits.
  }
}

void Durability::attach(repl::Replica& replica) {
  PFRDTN_REQUIRE(replica_ == nullptr);
  PFRDTN_REQUIRE(replica.mutation_sink() == nullptr);
  if (env_.exists(kManifestFile)) {
    attach_generations(replica);
  } else if (env_.exists(kCheckpointFile)) {
    migrate_legacy(replica);
  } else {
    attach_fresh(replica);
  }
  // A clean attach supersedes any earlier degraded shutdown.
  try {
    env_.remove(kDegradedMarkerFile);
  } catch (const ContractViolation&) {
    // Best-effort: a stale marker costs a confusing status line, not
    // correctness.
  }
  replica_ = &replica;
  replica.set_mutation_sink(this);
}

void Durability::attach_generations(repl::Replica& replica) {
  epochs_ = decode_manifest(env_.read_file(kManifestFile));
  const std::uint64_t newest = epochs_.back();
  std::optional<DecodedCheckpoint> ck;
  try {
    ck.emplace(decode_checkpoint(env_.read_file(checkpoint_file(newest))));
    PFRDTN_REQUIRE(ck->epoch == newest);
  } catch (const ContractViolation&) {
    ck.reset();
  }
  if (ck.has_value()) {
    // Healthy newest generation: resume its WAL segment after the last
    // valid record (dropping any torn tail on disk).
    epoch_ = newest;
    delivered_ = std::move(ck->delivered);
    const WalScan scan = scan_wal_file(env_, wal_file(newest));
    wal_.set_file(wal_file(newest));
    if (scan.valid_header && scan.epoch == newest) {
      // Delivered records ride the same log; restore the ledger from
      // them so the next checkpoint carries the complete set.
      for (const auto& record : scan.records) {
        if (is_delivered_record(record))
          delivered_.insert(decode_delivered_record(record));
      }
      wal_.resume(scan);
    } else {
      wal_.reset(newest);  // stale or missing segment: start clean
    }
    return;
  }
  // The newest checkpoint is corrupt — the caller recovered `replica`
  // via generation fallback. Repair: snapshot the recovered state one
  // epoch past the corrupt one, drop the unreadable generations from
  // the manifest, and start a fresh segment. The delivered ledger is
  // recomputed by walking the same chain recover() walked.
  const ChainLoad chain = load_chain(env_);
  delivered_ = chain.ck->delivered;
  for (const std::uint64_t e : chain.epochs) {
    if (e < chain.landed) continue;
    const WalScan scan = scan_wal_file(env_, wal_file(e));
    if (!scan.valid_header || scan.epoch != e) break;
    for (const auto& record : scan.records) {
      if (is_delivered_record(record))
        delivered_.insert(decode_delivered_record(record));
    }
  }
  const std::uint64_t repair_epoch = epochs_.back() + 1;
  std::vector<std::uint64_t> kept;
  std::vector<std::uint64_t> dropped;
  for (const std::uint64_t e : epochs_) {
    (e <= chain.landed ? kept : dropped).push_back(e);
  }
  // Checkpoint before manifest: the manifest must never reference a
  // generation that is not yet durable.
  env_.write_file_durable(
      checkpoint_file(repair_epoch),
      encode_checkpoint(repair_epoch, replica, delivered_));
  kept.push_back(repair_epoch);
  env_.write_file_durable(kManifestFile, encode_manifest(kept));
  epochs_ = std::move(kept);
  epoch_ = repair_epoch;
  wal_.set_file(wal_file(repair_epoch));
  wal_.reset(repair_epoch);
  ++checkpoints_written_;
  for (const std::uint64_t e : dropped) {
    try {
      env_.remove(checkpoint_file(e));
      env_.remove(wal_file(e));
    } catch (const ContractViolation&) {
      // Orphans are dead weight, never input.
    }
  }
  prune_generations();
}

void Durability::migrate_legacy(repl::Replica& replica) {
  // Pre-generation layout: single checkpoint.bin + wal.log. Migrate in
  // place — copy the checkpoint bytes and the WAL's valid prefix into
  // generation-named files, write the first manifest, then drop the
  // legacy names. A crash before the manifest is durable leaves the
  // legacy files authoritative (recover() checks the manifest first),
  // so every window replays identically.
  (void)replica;
  const std::vector<std::uint8_t> ck_bytes =
      env_.read_file(kCheckpointFile);
  const DecodedCheckpoint ck = decode_checkpoint(ck_bytes);
  epoch_ = ck.epoch;
  delivered_ = ck.delivered;
  env_.write_file_durable(checkpoint_file(epoch_), ck_bytes);
  const WalScan scan = scan_wal_file(env_, kWalFile);
  wal_.set_file(wal_file(epoch_));
  if (scan.valid_header && scan.epoch == epoch_) {
    for (const auto& record : scan.records) {
      if (is_delivered_record(record))
        delivered_.insert(decode_delivered_record(record));
    }
    // Copy the valid prefix (header + records, torn tail dropped) into
    // the segment, durable *before* the manifest references it.
    const std::vector<std::uint8_t> old = env_.read_file(kWalFile);
    if (env_.exists(wal_file(epoch_)))
      env_.truncate(wal_file(epoch_), 0);
    env_.append(wal_file(epoch_), old.data(), scan.valid_bytes);
    env_.sync(wal_file(epoch_));
    wal_.resume(scan);
  } else {
    wal_.reset(epoch_);
  }
  env_.write_file_durable(kManifestFile, encode_manifest({epoch_}));
  epochs_ = {epoch_};
  env_.remove(kCheckpointFile);
  env_.remove(kWalFile);
}

void Durability::attach_fresh(repl::Replica& replica) {
  // Fresh state directory: the current replica state becomes the
  // initial checkpoint, durable before the first record is logged.
  epoch_ = 1;
  env_.write_file_durable(
      checkpoint_file(epoch_),
      encode_checkpoint(epoch_, replica, delivered_));
  env_.write_file_durable(kManifestFile, encode_manifest({epoch_}));
  epochs_ = {epoch_};
  wal_.set_file(wal_file(epoch_));
  wal_.reset(epoch_);
  ++checkpoints_written_;
}

void Durability::detach() {
  if (replica_ == nullptr) return;
  repl::Replica* replica = replica_;
  replica_ = nullptr;
  try {
    if (!degraded_) wal_.flush();
  } catch (const StorageError& err) {
    // Detach even when the final flush faults: the pending records
    // were never acknowledged, so losing them is within contract.
    replica->set_mutation_sink(nullptr);
    degrade(err);
    throw;
  }
  replica->set_mutation_sink(nullptr);
}

void Durability::flush() {
  if (degraded_) return;  // nothing new has been acknowledged
  // A deferred roll is safe to take here: flush() is only called
  // between complete mutations, when memory matches the log.
  if (roll_pending_ && replica_ != nullptr) {
    roll_pending_ = false;
    checkpoint_now();
  }
  try {
    wal_.flush();
  } catch (const StorageError& err) {
    degrade(err);
    throw;
  }
}

void Durability::degrade(const StorageError& err) {
  if (degraded_) return;
  degraded_ = true;
  if (replica_ != nullptr) replica_->set_read_only(true);
  try {
    const std::string note = std::string(err.what()) + "\n";
    env_.write_file_durable(
        kDegradedMarkerFile,
        std::vector<std::uint8_t>(note.begin(), note.end()));
  } catch (...) {
    // The marker is advisory; the disk that just faulted may well
    // refuse it too.
  }
  if (options_.on_degrade) options_.on_degrade(err);
}

void Durability::checkpoint_now() {
  PFRDTN_REQUIRE(replica_ != nullptr);
  if (degraded_) {
    throw ReadOnlyError("durability layer for " + wal_.file() +
                        " is degraded");
  }
  try {
    checkpoint_now_impl();
  } catch (const StorageError& err) {
    degrade(err);
    throw;
  }
}

void Durability::checkpoint_now_impl() {
  roll_pending_ = false;  // this roll satisfies any deferred request
  // (0) The segment must be durable-complete first: checkpoint E+1
  // claims to contain everything in wal.<E>, so an unfsynced tail
  // would let the checkpoint acknowledge records a crash could lose.
  wal_.flush();
  const std::uint64_t next_epoch = epoch_ + 1;
  // (1) Checkpoint write failure is soft: keep logging to the current
  // segment and retry after another checkpoint_every_bytes. A torn
  // half-checkpoint is an orphan the manifest never references.
  try {
    env_.write_file_durable(
        checkpoint_file(next_epoch),
        encode_checkpoint(next_epoch, *replica_, delivered_));
  } catch (const StorageError&) {
    ++checkpoint_failures_;
    next_checkpoint_at_ =
        wal_.log_bytes() + options_.checkpoint_every_bytes;
    return;
  }
  // (2) Manifest update failure is equally soft: the epoch has not
  // advanced, so the retry overwrites the orphaned checkpoint.
  std::vector<std::uint64_t> next_epochs = epochs_;
  next_epochs.push_back(next_epoch);
  try {
    env_.write_file_durable(kManifestFile,
                            encode_manifest(next_epochs));
  } catch (const StorageError&) {
    ++checkpoint_failures_;
    next_checkpoint_at_ =
        wal_.log_bytes() + options_.checkpoint_every_bytes;
    return;
  }
  epochs_ = std::move(next_epochs);
  // (3) Rolling the WAL is the hard step: once the manifest names the
  // new generation, future acknowledgements must land in its segment.
  // A fault here propagates to checkpoint_now(), which degrades.
  // (Crash-window note: checkpoint.<E+1> is durable before wal.<E+1>
  // exists, so a crash in between recovers to E+1 with an absent —
  // empty — segment, which is exactly the checkpointed state.)
  wal_.set_file(wal_file(next_epoch));
  wal_.reset(next_epoch);
  epoch_ = next_epoch;
  ++checkpoints_written_;
  next_checkpoint_at_ = options_.checkpoint_every_bytes;
  // (4) Pruning is soft: extra generations cost disk, not correctness.
  prune_generations();
}

void Durability::prune_generations() {
  while (epochs_.size() > options_.checkpoint_generations) {
    // Manifest first, unlink second: a crash in between leaves
    // unreferenced orphan files, never a manifest naming missing ones.
    std::vector<std::uint64_t> next(epochs_.begin() + 1, epochs_.end());
    try {
      env_.write_file_durable(kManifestFile, encode_manifest(next));
    } catch (const StorageError&) {
      return;  // keep the extra generation; retried at the next roll
    }
    const std::uint64_t victim = epochs_.front();
    epochs_ = std::move(next);
    try {
      env_.remove(checkpoint_file(victim));
      env_.remove(wal_file(victim));
    } catch (const ContractViolation&) {
      // Orphans are tolerated by recovery (the manifest is the only
      // directory listing it trusts).
    }
    ++generations_pruned_;
  }
}

void Durability::log(std::vector<std::uint8_t> payload) {
  PFRDTN_REQUIRE(replica_ != nullptr);
  if (degraded_) {
    // Nothing may be acknowledged after a hard fault: a degraded
    // replica never diverges from what it acknowledged.
    throw ReadOnlyError("durability layer for " + wal_.file() +
                        " is degraded");
  }
  // Consume a deferred roll before appending: at hook entry the
  // replica's memory matches everything logged so far (hooks run
  // write-ahead), so this is a consistent snapshot point — and the new
  // record then lands in the fresh segment.
  if (roll_pending_) {
    roll_pending_ = false;
    try {
      checkpoint_now_impl();
    } catch (const StorageError& err) {
      degrade(err);
      throw;
    }
  }
  try {
    wal_.append(payload);
  } catch (const StorageError& err) {
    degrade(err);
    throw;
  }
  ++records_logged_;
  if (options_.kill_after_records != 0 &&
      records_logged_ >= options_.kill_after_records) {
    // Deterministic crash point for e2e tests: die with the record
    // durable but the mutation's caller never told. flush() first so
    // "acknowledged" matches what recovery will find.
    wal_.flush();
    std::raise(SIGKILL);
  }
  // Never roll here: the record just appended is not yet applied in
  // memory, so a checkpoint now would retire the segment holding it
  // while snapshotting state without it. Defer to the next safe point.
  if (wal_.log_bytes() >= next_checkpoint_at_) roll_pending_ = true;
}

void Durability::note_delivered(ItemId id) {
  PFRDTN_REQUIRE(replica_ != nullptr);
  if (degraded_) {
    throw ReadOnlyError("durability layer for " + wal_.file() +
                        " is degraded");
  }
  if (!delivered_.insert(id).second) return;  // already on record
  log(encode_delivered(id));
}

DurabilityCounters Durability::counters() const {
  DurabilityCounters c;
  c.epoch = epoch_;
  c.wal_records_logged = records_logged_;
  c.wal_bytes_appended = wal_.bytes_appended();
  c.wal_fsyncs = wal_.syncs();
  c.checkpoints_written = checkpoints_written_;
  c.checkpoint_failures = checkpoint_failures_;
  c.generations_retained = epochs_.size();
  c.generations_pruned = generations_pruned_;
  c.degraded = degraded_;
  return c;
}

void Durability::on_local_put(const repl::Item& stored) {
  log(encode_local_put(stored));
}

void Durability::on_apply_remote(const repl::Item& incoming) {
  log(encode_apply_remote(incoming));
}

void Durability::on_set_filter(const repl::Filter& filter) {
  log(encode_set_filter(filter));
}

void Durability::on_discard_relay(ItemId id) {
  log(encode_discard_relay(id));
}

void Durability::on_learn(const repl::Knowledge& source_knowledge) {
  log(encode_learn(source_knowledge));
}

void Durability::on_policy_state(
    ItemId id, const std::map<std::string, std::string>& all) {
  // Policy transients are soft state rewritten on the pull-serving
  // path, which must keep working while degraded — drop the record
  // instead of refusing (it is re-derived on the next contact).
  if (degraded_) return;
  log(encode_policy_state(id, all));
}

namespace {

std::optional<RecoveredReplica> recover_generations(StorageEnv& env) {
  ChainLoad chain = load_chain(env);
  RecoveryStats stats;
  stats.epoch = chain.landed;
  stats.newest_epoch = chain.epochs.back();
  stats.generations_tried = chain.generations_tried;
  stats.fallback = chain.landed != chain.epochs.back();
  std::set<ItemId> delivered = std::move(chain.ck->delivered);
  // Replay the segment chain from the landed generation to the newest:
  // checkpoint.<E+1> == checkpoint.<E> + full wal.<E> replay, so each
  // complete segment advances the state exactly one generation, and
  // the newest segment's valid prefix finishes the job. A gap in the
  // chain (missing or wrong-epoch segment) ends it — records beyond a
  // gap cannot be ordered against the state.
  for (const std::uint64_t e : chain.epochs) {
    if (e < chain.landed) continue;
    const WalScan scan = scan_wal_file(env, wal_file(e));
    if (!scan.valid_header || scan.epoch != e) {
      if (e == chain.landed) stats.wal_stale = true;
      break;
    }
    for (const auto& record : scan.records) {
      // Delivered records are node-level ledger entries, not replica
      // mutations; fold them into the ledger instead of replaying.
      if (is_delivered_record(record)) {
        delivered.insert(decode_delivered_record(record));
      } else {
        apply_wal_record(chain.ck->replica, record);
      }
      ++stats.wal_records_replayed;
    }
    stats.wal_bytes_valid += scan.valid_bytes;
    stats.wal_bytes_truncated += scan.torn_bytes;
    ++stats.segments_replayed;
  }
  const std::string violation = chain.ck->replica.check_invariants();
  PFRDTN_REQUIRE(violation.empty());
  return RecoveredReplica{std::move(chain.ck->replica),
                          std::move(delivered), std::move(stats)};
}

std::optional<RecoveredReplica> recover_legacy(StorageEnv& env) {
  DecodedCheckpoint ck =
      decode_checkpoint(env.read_file(kCheckpointFile));
  RecoveryStats stats;
  stats.epoch = ck.epoch;
  stats.newest_epoch = ck.epoch;
  std::set<ItemId> delivered = std::move(ck.delivered);
  const WalScan scan = scan_wal_file(env, kWalFile);
  if (scan.valid_header && scan.epoch == ck.epoch) {
    for (const auto& record : scan.records) {
      if (is_delivered_record(record)) {
        delivered.insert(decode_delivered_record(record));
      } else {
        apply_wal_record(ck.replica, record);
      }
      ++stats.wal_records_replayed;
    }
    stats.wal_bytes_valid = scan.valid_bytes;
    stats.wal_bytes_truncated = scan.torn_bytes;
    stats.segments_replayed = 1;
  } else {
    // Missing, foreign, or pre-checkpoint log: the checkpoint already
    // contains everything it recorded.
    stats.wal_stale = true;
  }
  const std::string violation = ck.replica.check_invariants();
  PFRDTN_REQUIRE(violation.empty());
  return RecoveredReplica{std::move(ck.replica), std::move(delivered),
                          std::move(stats)};
}

}  // namespace

std::optional<RecoveredReplica> recover(StorageEnv& env) {
  if (env.exists(kManifestFile)) return recover_generations(env);
  if (env.exists(kCheckpointFile)) return recover_legacy(env);
  return std::nullopt;
}

}  // namespace pfrdtn::persist
