#include "persist/checkpoint.hpp"

#include "util/byte_buffer.hpp"
#include "util/crc32.hpp"
#include "util/require.hpp"

namespace pfrdtn::persist {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8)
    out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_replica_state(
    const repl::Replica& replica) {
  ByteWriter w;
  w.uvarint(replica.id().value());
  w.uvarint(replica.next_counter());
  w.uvarint(replica.next_item_seq());
  replica.filter().serialize(w);
  // The exact codec: pinned-ness and fragment structure survive, unlike
  // the wire codec, which deliberately folds on deserialize.
  replica.knowledge().serialize_exact(w);

  const repl::ItemStore& store = replica.store();
  const repl::ItemStore::Config& config = store.config();
  w.u8(config.relay_capacity.has_value() ? 1 : 0);
  w.uvarint(config.relay_capacity.value_or(0));
  w.u8(config.eviction == repl::EvictionOrder::Lifo ? 1 : 0);
  w.uvarint(store.next_arrival_seq());
  w.uvarint(store.size());
  // for_each visits in arrival order, so arrival_seq is strictly
  // increasing across entries — the decoder checks this.
  store.for_each([&](const repl::ItemStore::Entry& entry) {
    w.uvarint(entry.arrival_seq);
    w.u8(static_cast<std::uint8_t>((entry.in_filter ? 1 : 0) |
                                   (entry.local_origin ? 2 : 0)));
    entry.item.serialize(w);
  });
  return w.take();
}

repl::Replica decode_replica_state(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const ReplicaId id(r.uvarint());
  const std::uint64_t next_counter = r.uvarint();
  const std::uint64_t next_item_seq = r.uvarint();
  repl::Filter filter = repl::Filter::deserialize(r);
  repl::Knowledge knowledge = repl::Knowledge::deserialize_exact(r);

  repl::ItemStore::Config config;
  const bool has_capacity = r.u8() != 0;
  const std::uint64_t capacity = r.uvarint();
  if (has_capacity) config.relay_capacity = capacity;
  const std::uint8_t eviction = r.u8();
  PFRDTN_REQUIRE(eviction <= 1);
  config.eviction = eviction == 1 ? repl::EvictionOrder::Lifo
                                  : repl::EvictionOrder::Fifo;

  repl::Replica replica(id, std::move(filter), config);
  replica.restore_knowledge(std::move(knowledge));

  const std::uint64_t next_arrival_seq = r.uvarint();
  const std::uint64_t entry_count = r.uvarint();
  PFRDTN_REQUIRE(entry_count <= r.remaining());
  repl::ItemStore& store = replica.store_mutable();
  std::uint64_t prev_seq = 0;
  for (std::uint64_t i = 0; i < entry_count; ++i) {
    const std::uint64_t arrival_seq = r.uvarint();
    PFRDTN_REQUIRE(i == 0 || arrival_seq > prev_seq);
    prev_seq = arrival_seq;
    const std::uint8_t flags = r.u8();
    PFRDTN_REQUIRE(flags <= 3);
    repl::Item item = repl::Item::deserialize(r);
    store.restore_entry(std::move(item), (flags & 1) != 0,
                        (flags & 2) != 0, arrival_seq);
  }
  PFRDTN_REQUIRE(next_arrival_seq >= store.next_arrival_seq());
  store.set_next_arrival_seq(next_arrival_seq);
  replica.restore_counters(next_counter, next_item_seq);
  PFRDTN_REQUIRE(r.done());

  // Reject state a live replica could never hold: loading it would turn
  // a storage corruption into a protocol corruption at the next sync.
  const std::string violation = replica.check_invariants();
  PFRDTN_REQUIRE(violation.empty());
  return replica;
}

std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t state_digest(const repl::Replica& replica) {
  return fnv1a64(encode_replica_state(replica));
}

std::vector<std::uint8_t> encode_checkpoint(
    std::uint64_t epoch, const repl::Replica& replica,
    const std::set<ItemId>& delivered) {
  // Version-2 payload: the v1 state bytes length-prefixed, then the
  // delivered-message ledger as delta-encoded sorted ids.
  const std::vector<std::uint8_t> state = encode_replica_state(replica);
  ByteWriter w;
  w.raw(state);  // uvarint length + state bytes
  w.uvarint(delivered.size());
  std::uint64_t prev = 0;
  for (const ItemId id : delivered) {  // std::set iterates ascending
    w.uvarint(id.value() - prev);
    prev = id.value();
  }
  const std::vector<std::uint8_t> payload = w.take();
  PFRDTN_REQUIRE(payload.size() <= kMaxCheckpointPayload);
  std::vector<std::uint8_t> out;
  out.reserve(kCheckpointHeaderSize + payload.size());
  put_u32(out, kCheckpointMagic);
  out.push_back(kCheckpointVersion);
  put_u64(out, epoch);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

DecodedCheckpoint decode_checkpoint(
    const std::vector<std::uint8_t>& bytes) {
  PFRDTN_REQUIRE(bytes.size() >= kCheckpointHeaderSize);
  const std::uint8_t* p = bytes.data();
  PFRDTN_REQUIRE(get_u32(p) == kCheckpointMagic);
  PFRDTN_REQUIRE(p[4] == kCheckpointVersion);
  const std::uint64_t epoch = get_u64(p + 5);
  const std::uint32_t length = get_u32(p + 13);
  PFRDTN_REQUIRE(length <= kMaxCheckpointPayload);
  PFRDTN_REQUIRE(bytes.size() == kCheckpointHeaderSize + length);
  const std::uint32_t crc = get_u32(p + 17);
  std::vector<std::uint8_t> payload(bytes.begin() + kCheckpointHeaderSize,
                                    bytes.end());
  PFRDTN_REQUIRE(crc32(payload) == crc);

  ByteReader r(payload);
  const std::vector<std::uint8_t> state = r.raw();
  DecodedCheckpoint out{epoch, decode_replica_state(state), {}};
  const std::uint64_t count = r.uvarint();
  PFRDTN_REQUIRE(count <= r.remaining());
  std::uint64_t prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t id = prev + r.uvarint();
    PFRDTN_REQUIRE(i == 0 || id > prev);  // strictly ascending
    out.delivered.insert(ItemId(id));
    prev = id;
  }
  PFRDTN_REQUIRE(r.done());
  return out;
}

}  // namespace pfrdtn::persist
