#include "persist/wal.hpp"

#include "util/crc32.hpp"
#include "util/require.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::persist {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_wal_header(std::uint64_t epoch) {
  std::vector<std::uint8_t> out;
  out.reserve(kWalHeaderSize);
  put_u32(out, kWalMagic);
  out.push_back(kWalVersion);
  put_u64(out, epoch);
  return out;
}

std::vector<std::uint8_t> encode_wal_record(
    const std::vector<std::uint8_t>& payload) {
  PFRDTN_REQUIRE(payload.size() <= kMaxWalRecord);
  std::vector<std::uint8_t> out;
  out.reserve(kWalRecordHeaderSize + payload.size());
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

WalScan scan_wal(const std::vector<std::uint8_t>& bytes) {
  WalScan scan;
  if (bytes.size() < kWalHeaderSize ||
      get_u32(bytes.data()) != kWalMagic || bytes[4] != kWalVersion) {
    // Empty, foreign, or torn before the header: no valid prefix at
    // all; the whole file is droppable.
    scan.torn_bytes = bytes.size();
    return scan;
  }
  scan.valid_header = true;
  scan.epoch = get_u64(bytes.data() + 5);
  std::size_t pos = kWalHeaderSize;
  while (pos + kWalRecordHeaderSize <= bytes.size()) {
    const std::uint32_t length = get_u32(bytes.data() + pos);
    const std::uint32_t expected_crc = get_u32(bytes.data() + pos + 4);
    if (length > kMaxWalRecord) break;  // length lie / torn header
    if (pos + kWalRecordHeaderSize + length > bytes.size())
      break;  // short payload (append cut mid-record)
    const std::uint8_t* payload = bytes.data() + pos +
                                  kWalRecordHeaderSize;
    if (crc32(payload, length) != expected_crc) break;  // bit rot
    scan.records.emplace_back(payload, payload + length);
    pos += kWalRecordHeaderSize + length;
  }
  scan.valid_bytes = pos;
  scan.torn_bytes = bytes.size() - pos;
  return scan;
}

WalScan scan_wal_file(const StorageEnv& env, const std::string& name) {
  if (!env.exists(name)) return WalScan{};
  return scan_wal(env.read_file(name));
}

void WalWriter::set_file(std::string name) {
  name_ = std::move(name);
  log_bytes_ = 0;
  pending_ = 0;
}

void WalWriter::resume(const WalScan& scan) {
  PFRDTN_REQUIRE(scan.valid_header);
  env_->truncate(name_, scan.valid_bytes);
  log_bytes_ = scan.valid_bytes;
  pending_ = 0;
}

void WalWriter::reset(std::uint64_t epoch) {
  env_->truncate(name_, 0);
  const auto header = encode_wal_header(epoch);
  env_->append(name_, header.data(), header.size());
  if (!unsafe_skip_fsync_) sync_now();
  log_bytes_ = header.size();
  pending_ = 0;
}

void WalWriter::append(const std::vector<std::uint8_t>& payload) {
  const auto record = encode_wal_record(payload);
  env_->append(name_, record.data(), record.size());
  log_bytes_ += record.size();
  bytes_appended_ += record.size();
  ++records_appended_;
  if (++pending_ >= sync_every_records_) flush();
}

void WalWriter::flush() {
  if (pending_ == 0) return;
  // unsafe_skip_fsync is the injectable durability bug: appended
  // records are acknowledged without ever being made durable, so a
  // crash forgets them — the exact failure the check harness's
  // crash probe must catch (--inject-bug skip-fsync).
  if (!unsafe_skip_fsync_) sync_now();
  pending_ = 0;
}

void WalWriter::sync_now() {
  // unsafe_ack_before_fsync is the storage-fault sibling of
  // skip-fsync: the fsync *is* attempted, but a failure is swallowed
  // and the records acknowledged anyway — retry-fsync-and-assume-
  // durable, the fsyncgate bug. Under disk-fault injection the
  // durability probe must catch it (--inject-bug ack-before-fsync).
  if (unsafe_ack_before_fsync_) {
    try {
      env_->sync(name_);
      ++syncs_;
    } catch (const StorageError&) {
      // acknowledged anyway — the bug under test
    }
    return;
  }
  env_->sync(name_);
  ++syncs_;
}

}  // namespace pfrdtn::persist
