#include "persist/env.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/require.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::persist {

namespace {

/// Every syscall failure becomes a StorageError carrying the errno
/// captured *at the failure point*. Call sites that must close a
/// descriptor before throwing capture errno first and pass it
/// explicitly — close() may clobber it.
[[noreturn]] void io_fail(const std::string& what,
                          const std::string& path,
                          int captured_errno) {
  throw StorageError(what, path, captured_errno);
}

/// open(2) with EINTR retry. Interrupted opens are retried like reads
/// and writes; fsync is the one call that must never be retried (a
/// failed fsync may have dropped the dirty pages — see sync()).
int open_retry(const char* path, int flags, mode_t mode = 0) {
  for (;;) {
    const int fd = ::open(path, flags, mode);
    if (fd >= 0 || errno != EINTR) return fd;
  }
}

void make_dirs(const std::string& dir) {
  // mkdir -p: create each path component, tolerating ones that exist.
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= dir.size()) {
    const std::size_t slash = dir.find('/', pos);
    prefix = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST)
      io_fail("mkdir", prefix, errno);
  }
}

}  // namespace

// ---- FsEnv -----------------------------------------------------------

FsEnv::FsEnv(std::string dir) : dir_(std::move(dir)) {
  PFRDTN_REQUIRE(!dir_.empty());
  make_dirs(dir_);
  const std::string lock_path = dir_ + "/LOCK";
  lock_fd_ =
      open_retry(lock_path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) io_fail("open", lock_path, errno);
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    const int err = errno;  // before close() can clobber it
    ::close(lock_fd_);
    lock_fd_ = -1;
    if (err == EWOULDBLOCK) {
      throw ContractViolation(
          "state directory " + dir_ +
          " is locked by another process (is another pfrdtn running"
          " against it?)");
    }
    io_fail("flock", lock_path, err);
  }
}

FsEnv::~FsEnv() {
  for (const auto& [name, fd] : fds_) ::close(fd);
  // Closing the descriptor drops the flock.
  if (lock_fd_ >= 0) ::close(lock_fd_);
}

std::string FsEnv::path(const std::string& name) const {
  PFRDTN_REQUIRE(!name.empty() &&
                 name.find('/') == std::string::npos);
  return dir_ + "/" + name;
}

bool FsEnv::exists(const std::string& name) const {
  struct stat st{};
  return ::stat(path(name).c_str(), &st) == 0;
}

std::size_t FsEnv::file_size(const std::string& name) const {
  struct stat st{};
  if (::stat(path(name).c_str(), &st) != 0) return 0;
  return static_cast<std::size_t>(st.st_size);
}

std::vector<std::uint8_t> FsEnv::read_file(
    const std::string& name) const {
  const std::string p = path(name);
  const int fd = open_retry(p.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) io_fail("open", p, errno);
  std::vector<std::uint8_t> out;
  std::uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      io_fail("read", p, err);
    }
    if (n == 0) break;
    out.insert(out.end(), buf, buf + n);
  }
  ::close(fd);
  return out;
}

int FsEnv::append_fd(const std::string& name) {
  const auto it = fds_.find(name);
  if (it != fds_.end()) return it->second;
  const std::string p = path(name);
  const int fd = open_retry(
      p.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("open", p, errno);
  fds_[name] = fd;
  return fd;
}

void FsEnv::close_fd(const std::string& name) {
  const auto it = fds_.find(name);
  if (it == fds_.end()) return;
  ::close(it->second);
  fds_.erase(it);
}

void FsEnv::append(const std::string& name, const std::uint8_t* data,
                   std::size_t size) {
  const int fd = append_fd(name);
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_fail("write", path(name), errno);
    }
    written += static_cast<std::size_t>(n);
  }
}

void FsEnv::sync(const std::string& name) {
  // fsync is never retried: after a failed fsync the kernel may have
  // dropped the dirty pages and cleared the error, so a retry that
  // "succeeds" proves nothing (fsyncgate). Drop the cached descriptor
  // too — durability claims through it are void, and a fresh open must
  // not inherit the poisoned state.
  if (::fsync(append_fd(name)) != 0) {
    const int err = errno;
    close_fd(name);
    io_fail("fsync", path(name), err);
  }
}

void FsEnv::sync_dir() const {
  const int fd =
      open_retry(dir_.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) io_fail("open", dir_, errno);
  // Directory fsync makes the rename/create durable; some filesystems
  // reject it (EINVAL) and guarantee the ordering anyway.
  if (::fsync(fd) != 0 && errno != EINVAL) {
    const int err = errno;
    ::close(fd);
    io_fail("fsync", dir_, err);
  }
  ::close(fd);
}

void FsEnv::write_file_durable(const std::string& name,
                               const std::vector<std::uint8_t>& bytes) {
  const std::string tmp_name = name + ".tmp";
  const std::string tmp = path(tmp_name);
  const int fd = open_retry(
      tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) io_fail("open", tmp, errno);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      io_fail("write", tmp, err);
    }
    written += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    io_fail("fsync", tmp, err);
  }
  ::close(fd);
  close_fd(name);  // any cached append fd now points at the old inode
  if (::rename(tmp.c_str(), path(name).c_str()) != 0)
    io_fail("rename", tmp, errno);
  sync_dir();
}

void FsEnv::truncate(const std::string& name, std::size_t size) {
  if (file_size(name) <= size) return;
  close_fd(name);
  if (::truncate(path(name).c_str(),
                 static_cast<off_t>(size)) != 0)
    io_fail("truncate", path(name), errno);
}

void FsEnv::remove(const std::string& name) {
  close_fd(name);
  if (::unlink(path(name).c_str()) != 0 && errno != ENOENT)
    io_fail("unlink", path(name), errno);
}

// ---- MemEnv ----------------------------------------------------------

bool MemEnv::exists(const std::string& name) const {
  return files_.count(name) > 0;
}

std::size_t MemEnv::file_size(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.bytes.size();
}

std::vector<std::uint8_t> MemEnv::read_file(
    const std::string& name) const {
  const auto it = files_.find(name);
  PFRDTN_REQUIRE(it != files_.end());
  return it->second.bytes;
}

void MemEnv::append(const std::string& name, const std::uint8_t* data,
                    std::size_t size) {
  auto& file = files_[name];
  file.bytes.insert(file.bytes.end(), data, data + size);
}

void MemEnv::sync(const std::string& name) {
  auto& file = files_[name];
  file.durable = file.bytes.size();
}

void MemEnv::write_file_durable(const std::string& name,
                                const std::vector<std::uint8_t>& bytes) {
  auto& file = files_[name];
  file.bytes = bytes;
  file.durable = file.bytes.size();
}

void MemEnv::truncate(const std::string& name, std::size_t size) {
  const auto it = files_.find(name);
  if (it == files_.end() || it->second.bytes.size() <= size) return;
  it->second.bytes.resize(size);
  it->second.durable = std::min(it->second.durable, size);
}

void MemEnv::remove(const std::string& name) { files_.erase(name); }

void MemEnv::crash() {
  for (auto& [name, file] : files_) file.bytes.resize(file.durable);
}

std::size_t MemEnv::durable_size(const std::string& name) const {
  const auto it = files_.find(name);
  return it == files_.end() ? 0 : it->second.durable;
}

void MemEnv::corrupt_append(const std::string& name,
                            const std::vector<std::uint8_t>& bytes) {
  auto& file = files_[name];
  file.bytes.insert(file.bytes.end(), bytes.begin(), bytes.end());
  file.durable = file.bytes.size();
}

}  // namespace pfrdtn::persist
