#include "persist/manifest.hpp"

#include "util/crc32.hpp"
#include "util/require.hpp"

namespace pfrdtn::persist {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

std::string checkpoint_file(std::uint64_t epoch) {
  return "checkpoint." + std::to_string(epoch) + ".bin";
}

std::string wal_file(std::uint64_t epoch) {
  return "wal." + std::to_string(epoch) + ".log";
}

std::vector<std::uint8_t> encode_manifest(
    const std::vector<std::uint64_t>& epochs) {
  PFRDTN_REQUIRE(!epochs.empty());
  PFRDTN_REQUIRE(epochs.size() <= kMaxManifestEpochs);
  for (std::size_t i = 1; i < epochs.size(); ++i)
    PFRDTN_REQUIRE(epochs[i - 1] < epochs[i]);
  std::vector<std::uint8_t> out;
  out.reserve(4 + 1 + 4 + 8 * epochs.size() + 4);
  put_u32(out, kManifestMagic);
  out.push_back(kManifestVersion);
  put_u32(out, static_cast<std::uint32_t>(epochs.size()));
  for (const std::uint64_t epoch : epochs) put_u64(out, epoch);
  put_u32(out, crc32(out));
  return out;
}

std::vector<std::uint64_t> decode_manifest(
    const std::vector<std::uint8_t>& bytes) {
  constexpr std::size_t kFixed = 4 + 1 + 4;  // magic + version + count
  if (bytes.size() < kFixed + 4)
    throw ContractViolation("manifest truncated");
  if (get_u32(bytes.data()) != kManifestMagic)
    throw ContractViolation("manifest bad magic");
  if (bytes[4] != kManifestVersion)
    throw ContractViolation("manifest unknown version");
  const std::uint32_t count = get_u32(bytes.data() + 5);
  if (count == 0 || count > kMaxManifestEpochs)
    throw ContractViolation("manifest bad epoch count");
  const std::size_t expect = kFixed + 8 * std::size_t{count} + 4;
  if (bytes.size() != expect)
    throw ContractViolation("manifest size mismatch");
  if (crc32(bytes.data(), bytes.size() - 4) !=
      get_u32(bytes.data() + bytes.size() - 4))
    throw ContractViolation("manifest CRC mismatch");
  std::vector<std::uint64_t> epochs;
  epochs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint64_t epoch = get_u64(bytes.data() + kFixed + 8 * i);
    if (!epochs.empty() && epoch <= epochs.back())
      throw ContractViolation("manifest epochs not ascending");
    epochs.push_back(epoch);
  }
  return epochs;
}

}  // namespace pfrdtn::persist
