#pragma once

/// \file durability.hpp
/// Crash-durable replica state: a `Durability` sink on the replica's
/// mutation funnel writes one WAL record per mutation (fsynced before
/// the mutation is considered acknowledged) and periodically rolls the
/// log into an atomic checkpoint; `recover()` rebuilds the replica
/// after a crash by loading the checkpoint and replaying the log.
///
/// Epoch guard: a checkpoint at epoch E+1 is made durable *before* the
/// WAL is reset with an epoch-E+1 header. A crash between the two
/// leaves an epoch-E log next to an epoch-E+1 checkpoint; recovery
/// replays the WAL only when the epochs match, so stale records are
/// never applied twice.
///
/// Acknowledgement contract: once a hook returns with the record
/// fsynced (every `sync_every_records` records; default every record),
/// the mutation survives any crash. What recovery restores is exactly
/// the checkpoint state plus every fsynced record — the check harness
/// asserts this with a state digest taken at the crash point.

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/env.hpp"
#include "persist/wal.hpp"
#include "repl/replica.hpp"

namespace pfrdtn::persist {

inline constexpr const char* kCheckpointFile = "checkpoint.bin";
inline constexpr const char* kWalFile = "wal.log";

/// WAL record payloads: kind byte + the mutation's replay input.
enum class WalRecordKind : std::uint8_t {
  LocalPut = 1,     ///< Item (create/update/erase result)
  ApplyRemote = 2,  ///< Item (the incoming copy, transients included)
  SetFilter = 3,    ///< Filter
  DiscardRelay = 4, ///< ItemId
  Learn = 5,        ///< Knowledge (exact codec)
  PolicyState = 6,  ///< ItemId + full transient map
  /// Node-level ledger, not replica state: a message item was reported
  /// delivered to the application. Replayed into
  /// RecoveredReplica::delivered, never against the replica.
  Delivered = 7,    ///< ItemId
};

std::vector<std::uint8_t> encode_local_put(const repl::Item& item);
std::vector<std::uint8_t> encode_apply_remote(const repl::Item& item);
std::vector<std::uint8_t> encode_set_filter(const repl::Filter& filter);
std::vector<std::uint8_t> encode_discard_relay(ItemId id);
std::vector<std::uint8_t> encode_learn(const repl::Knowledge& knowledge);
std::vector<std::uint8_t> encode_policy_state(
    ItemId id, const std::map<std::string, std::string>& all);
std::vector<std::uint8_t> encode_delivered(ItemId id);

/// Replay one record against `replica`. Throws ContractViolation on a
/// malformed payload (a CRC-valid record can still be foreign bytes in
/// a fuzzed log). The replica must have no mutation sink attached.
void apply_wal_record(repl::Replica& replica,
                      const std::vector<std::uint8_t>& payload);

struct DurabilityOptions {
  /// Fsync the log every N records; 1 = every mutation is durable
  /// before its hook returns (the acknowledgement contract above).
  std::size_t sync_every_records = 1;
  /// Roll the WAL into a checkpoint once it exceeds this many bytes.
  std::size_t checkpoint_every_bytes = 1 << 20;
  /// Injectable durability bug for the check harness / --inject-bug
  /// skip-fsync: records are written but never fsynced, so a crash
  /// silently loses acknowledged mutations. See WalWriter.
  bool unsafe_skip_fsync = false;
  /// Debug hook for crash e2e tests: raise SIGKILL immediately after
  /// the Nth WAL record is appended (0 = disabled). Gives scripts a
  /// deterministic mid-batch crash point.
  std::size_t kill_after_records = 0;
};

/// The WAL-writing mutation sink. Lifecycle:
///
///   FsEnv env(dir);
///   auto recovered = recover(env);          // nullopt on first boot
///   repl::Replica replica = recovered ? std::move(recovered->replica)
///                                     : make_fresh(...);
///   Durability durability(env, options);
///   durability.attach(replica);             // truncates any torn tail
///   ... mutate via the replica funnel ...
///
/// attach() assumes `replica` matches the on-disk state (it was just
/// recovered from this env, or the env is fresh). On a fresh env it
/// writes the initial checkpoint; on an existing one it resumes the
/// WAL after the last valid record.
class Durability final : public repl::ReplicaMutationSink {
 public:
  Durability(StorageEnv& env, DurabilityOptions options = {});
  ~Durability() override;

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  void attach(repl::Replica& replica);
  /// Flush pending records and stop observing. Safe when not attached.
  void detach();
  [[nodiscard]] bool attached() const { return replica_ != nullptr; }

  /// Fsync any batched records now (no-op at sync_every_records=1).
  void flush();
  /// Snapshot the replica into a new checkpoint epoch and reset the WAL.
  void checkpoint_now();

  /// Record that the application reported message `id` delivered, so a
  /// restart never re-reports it (app-level exactly-once across
  /// crashes). Durable under the same acknowledgement contract as the
  /// mutation hooks; idempotent. attach() restores the ledger from the
  /// checkpoint and any Delivered records in the log, so callers only
  /// add to it.
  void note_delivered(ItemId id);
  [[nodiscard]] const std::set<ItemId>& delivered() const {
    return delivered_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t records_logged() const {
    return records_logged_;
  }
  [[nodiscard]] std::size_t checkpoints_written() const {
    return checkpoints_written_;
  }

  // ReplicaMutationSink
  void on_local_put(const repl::Item& stored) override;
  void on_apply_remote(const repl::Item& incoming) override;
  void on_set_filter(const repl::Filter& filter) override;
  void on_discard_relay(ItemId id) override;
  void on_learn(const repl::Knowledge& source_knowledge) override;
  void on_policy_state(
      ItemId id,
      const std::map<std::string, std::string>& all) override;

 private:
  void log(std::vector<std::uint8_t> payload);

  StorageEnv& env_;
  DurabilityOptions options_;
  WalWriter wal_;
  repl::Replica* replica_ = nullptr;
  std::set<ItemId> delivered_;
  std::uint64_t epoch_ = 0;
  std::size_t records_logged_ = 0;
  std::size_t checkpoints_written_ = 0;
};

struct RecoveryStats {
  std::uint64_t epoch = 0;
  std::size_t wal_records_replayed = 0;
  std::size_t wal_bytes_valid = 0;
  std::size_t wal_bytes_truncated = 0;  ///< torn tail dropped
  bool wal_stale = false;  ///< log missing or from an older epoch
};

struct RecoveredReplica {
  repl::Replica replica;
  /// Delivered-message ledger: checkpoint ledger plus every Delivered
  /// WAL record. Seed the application node with this so restart
  /// re-reporting becomes exactly-once (dtn::DtnNode::seed_delivered).
  std::set<ItemId> delivered;
  RecoveryStats stats;
};

/// Rebuild replica state from `env`. Returns nullopt when no checkpoint
/// exists (a fresh state directory). Throws ContractViolation when the
/// checkpoint is corrupt, a CRC-valid WAL record fails to replay, or
/// the recovered state fails Replica::check_invariants — corruption is
/// rejected, never loaded. A torn WAL tail (short write at the crash
/// point) is not corruption: it is truncated at the last valid record.
std::optional<RecoveredReplica> recover(StorageEnv& env);

}  // namespace pfrdtn::persist
