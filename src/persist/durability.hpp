#pragma once

/// \file durability.hpp
/// Crash-durable replica state: a `Durability` sink on the replica's
/// mutation funnel writes one WAL record per mutation (fsynced before
/// the mutation is considered acknowledged) and periodically rolls the
/// log into an atomic checkpoint; `recover()` rebuilds the replica
/// after a crash by loading a checkpoint and replaying the log.
///
/// Checkpoint generations: the state directory retains the last
/// `checkpoint_generations` checkpoints (checkpoint.<epoch>.bin), each
/// paired with the WAL segment written after it (wal.<epoch>.log), all
/// listed in a CRC'd MANIFEST (see manifest.hpp). A checkpoint at
/// epoch E+1 snapshots exactly "checkpoint E + full wal.<E> replay", so
/// recovery that finds the newest checkpoint corrupt (bit rot, a torn
/// rename the filesystem lied about) falls back one generation and
/// replays the longer WAL chain instead of declaring total loss.
///
/// Epoch guard: checkpoint.<E+1> and the manifest are made durable
/// *before* wal.<E+1> is created. A crash between the two leaves the
/// new generation without a log — recovery treats the missing segment
/// as empty, which is exactly right because everything in wal.<E> was
/// already folded into checkpoint.<E+1>.
///
/// Failure policy (see docs/persistence.md "failure model"):
///   - WAL append/fsync failure is *hard*: the acknowledgement contract
///     can no longer be met, so the layer degrades — the replica is
///     flipped read-only, a DEGRADED marker is dropped best-effort, and
///     the StorageError propagates (as a refusal, never a crash).
///     fsync is never retried: a failed fsync may have dropped the
///     dirty pages, so retry-and-assume-durable proves nothing.
///   - Checkpoint/manifest write failure is *soft*: logging continues
///     against the current segment and the roll is retried after
///     another checkpoint_every_bytes. An orphaned half-new checkpoint
///     is overwritten by the retry and never referenced by the
///     manifest.
///   - Prune failure is *soft*: an extra generation or an orphaned file
///     costs disk, not correctness.
///
/// Acknowledgement contract: once a hook returns with the record
/// fsynced (every `sync_every_records` records; default every record),
/// the mutation survives any crash. What recovery restores is exactly
/// a retained checkpoint plus every fsynced record after it — the
/// check harness asserts this with state digests taken at the crash
/// point, including under injected storage faults.

#include <cstdint>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "persist/checkpoint.hpp"
#include "persist/env.hpp"
#include "persist/manifest.hpp"
#include "persist/wal.hpp"
#include "repl/replica.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::persist {

/// Legacy single-generation layout (pre-manifest state directories).
/// recover()/attach() still read it and migrate to generations on the
/// first attach.
inline constexpr const char* kCheckpointFile = "checkpoint.bin";
inline constexpr const char* kWalFile = "wal.log";
/// Best-effort marker dropped when the layer degrades (content: the
/// triggering StorageError). Removed by the next successful attach().
inline constexpr const char* kDegradedMarkerFile = "DEGRADED";

/// WAL record payloads: kind byte + the mutation's replay input.
enum class WalRecordKind : std::uint8_t {
  LocalPut = 1,     ///< Item (create/update/erase result)
  ApplyRemote = 2,  ///< Item (the incoming copy, transients included)
  SetFilter = 3,    ///< Filter
  DiscardRelay = 4, ///< ItemId
  Learn = 5,        ///< Knowledge (exact codec)
  PolicyState = 6,  ///< ItemId + full transient map
  /// Node-level ledger, not replica state: a message item was reported
  /// delivered to the application. Replayed into
  /// RecoveredReplica::delivered, never against the replica.
  Delivered = 7,    ///< ItemId
};

std::vector<std::uint8_t> encode_local_put(const repl::Item& item);
std::vector<std::uint8_t> encode_apply_remote(const repl::Item& item);
std::vector<std::uint8_t> encode_set_filter(const repl::Filter& filter);
std::vector<std::uint8_t> encode_discard_relay(ItemId id);
std::vector<std::uint8_t> encode_learn(const repl::Knowledge& knowledge);
std::vector<std::uint8_t> encode_policy_state(
    ItemId id, const std::map<std::string, std::string>& all);
std::vector<std::uint8_t> encode_delivered(ItemId id);

/// Replay one record against `replica`. Throws ContractViolation on a
/// malformed payload (a CRC-valid record can still be foreign bytes in
/// a fuzzed log). The replica must have no mutation sink attached.
void apply_wal_record(repl::Replica& replica,
                      const std::vector<std::uint8_t>& payload);

struct DurabilityOptions {
  /// Fsync the log every N records; 1 = every mutation is durable
  /// before its hook returns (the acknowledgement contract above).
  std::size_t sync_every_records = 1;
  /// Roll the WAL into a checkpoint once it exceeds this many bytes.
  std::size_t checkpoint_every_bytes = 1 << 20;
  /// Checkpoint generations to retain (minimum 1). Older generations
  /// are the fallback when the newest checkpoint is unreadable.
  std::size_t checkpoint_generations = 3;
  /// Injectable durability bug for the check harness / --inject-bug
  /// skip-fsync: records are written but never fsynced, so a crash
  /// silently loses acknowledged mutations. See WalWriter.
  bool unsafe_skip_fsync = false;
  /// Injectable durability bug for --inject-bug ack-before-fsync: the
  /// fsync is attempted but its *failure* is swallowed and the records
  /// acknowledged anyway (retry-fsync-and-assume-durable, the
  /// fsyncgate bug). Only observable under injected storage faults.
  bool unsafe_ack_before_fsync = false;
  /// Debug hook for crash e2e tests: raise SIGKILL immediately after
  /// the Nth WAL record is appended (0 = disabled). Gives scripts a
  /// deterministic mid-batch crash point.
  std::size_t kill_after_records = 0;
  /// Called exactly once, at the moment the layer degrades to
  /// read-only, with the triggering fault. Use it to emit a structured
  /// log line; must not throw.
  std::function<void(const StorageError&)> on_degrade;
};

/// Durability counters for operational visibility (pfrdtn
/// state-digest, the serve drain line, the check harness).
struct DurabilityCounters {
  std::uint64_t epoch = 0;
  std::size_t wal_records_logged = 0;
  std::size_t wal_bytes_appended = 0;
  std::size_t wal_fsyncs = 0;
  std::size_t checkpoints_written = 0;
  std::size_t checkpoint_failures = 0;  ///< soft roll failures, retried
  std::size_t generations_retained = 0;
  std::size_t generations_pruned = 0;
  bool degraded = false;
};

/// The WAL-writing mutation sink. Lifecycle:
///
///   FsEnv env(dir);
///   auto recovered = recover(env);          // nullopt on first boot
///   repl::Replica replica = recovered ? std::move(recovered->replica)
///                                     : make_fresh(...);
///   Durability durability(env, options);
///   durability.attach(replica);             // truncates any torn tail
///   ... mutate via the replica funnel ...
///
/// attach() assumes `replica` matches the on-disk state (it was just
/// recovered from this env, or the env is fresh). On a fresh env it
/// writes the initial checkpoint + manifest; on a legacy env it
/// migrates to the generation layout; when the newest generation is
/// corrupt (the caller recovered via fallback) it repairs by writing a
/// fresh checkpoint one epoch past the corrupt one.
class Durability final : public repl::ReplicaMutationSink {
 public:
  Durability(StorageEnv& env, DurabilityOptions options = {});
  ~Durability() override;

  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  void attach(repl::Replica& replica);
  /// Flush pending records and stop observing. Safe when not attached.
  /// May throw StorageError if the final flush hits a fault; the sink
  /// is detached either way (the destructor swallows the throw — a
  /// fault during teardown must not std::terminate the process).
  void detach();
  [[nodiscard]] bool attached() const { return replica_ != nullptr; }

  /// Fsync any batched records now (no-op at sync_every_records=1).
  void flush();
  /// Snapshot the replica into a new checkpoint generation and roll
  /// the WAL. Checkpoint/manifest write failures are soft (logged into
  /// counters, retried later); a WAL-roll failure degrades and throws.
  void checkpoint_now();

  /// Record that the application reported message `id` delivered, so a
  /// restart never re-reports it (app-level exactly-once across
  /// crashes). Durable under the same acknowledgement contract as the
  /// mutation hooks; idempotent. attach() restores the ledger from the
  /// checkpoint and any Delivered records in the log, so callers only
  /// add to it.
  void note_delivered(ItemId id);
  [[nodiscard]] const std::set<ItemId>& delivered() const {
    return delivered_;
  }

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] std::size_t records_logged() const {
    return records_logged_;
  }
  [[nodiscard]] std::size_t checkpoints_written() const {
    return checkpoints_written_;
  }
  /// Retained generation epochs, oldest first (mirrors the manifest).
  [[nodiscard]] const std::vector<std::uint64_t>& generations() const {
    return epochs_;
  }
  /// True once a hard storage fault has flipped the layer (and its
  /// replica) read-only. Cleared only by restarting on a healthy disk.
  [[nodiscard]] bool degraded() const { return degraded_; }
  [[nodiscard]] DurabilityCounters counters() const;

  // ReplicaMutationSink
  void on_local_put(const repl::Item& stored) override;
  void on_apply_remote(const repl::Item& incoming) override;
  void on_set_filter(const repl::Filter& filter) override;
  void on_discard_relay(ItemId id) override;
  void on_learn(const repl::Knowledge& source_knowledge) override;
  void on_policy_state(
      ItemId id,
      const std::map<std::string, std::string>& all) override;

 private:
  void log(std::vector<std::uint8_t> payload);
  void checkpoint_now_impl();
  void prune_generations();
  /// Flip to degraded read-only mode (idempotent).
  void degrade(const StorageError& err);
  void attach_generations(repl::Replica& replica);
  void migrate_legacy(repl::Replica& replica);
  void attach_fresh(repl::Replica& replica);

  StorageEnv& env_;
  DurabilityOptions options_;
  WalWriter wal_;
  repl::Replica* replica_ = nullptr;
  std::set<ItemId> delivered_;
  std::vector<std::uint64_t> epochs_;  ///< manifest mirror, ascending
  std::uint64_t epoch_ = 0;
  std::size_t records_logged_ = 0;
  std::size_t checkpoints_written_ = 0;
  std::size_t checkpoint_failures_ = 0;
  std::size_t generations_pruned_ = 0;
  /// Roll the WAL once log_bytes reaches this; pushed back after a
  /// soft checkpoint failure so the retry is paced, not immediate.
  std::size_t next_checkpoint_at_ = 0;
  /// Set when the threshold is crossed; consumed at the *start* of the
  /// next log() (or flush/detach). Mutation hooks run write-ahead — the
  /// record is logged before the replica applies it — so rolling
  /// immediately after an append would snapshot state that lacks the
  /// record while retiring the segment that holds it. At the start of
  /// the next hook, memory and log agree again.
  bool roll_pending_ = false;
  bool degraded_ = false;
};

struct RecoveryStats {
  /// Epoch of the checkpoint generation recovery landed on.
  std::uint64_t epoch = 0;
  /// Newest generation the manifest listed (== epoch unless recovery
  /// fell back past corrupt checkpoints).
  std::uint64_t newest_epoch = 0;
  /// Checkpoints opened before one decoded (1 = newest was fine).
  std::size_t generations_tried = 1;
  /// True when the newest checkpoint was unreadable and an older
  /// generation plus a longer WAL chain rebuilt the state.
  bool fallback = false;
  std::size_t wal_records_replayed = 0;
  /// WAL segments folded in (the chain from the landed generation to
  /// the newest).
  std::size_t segments_replayed = 0;
  std::size_t wal_bytes_valid = 0;
  std::size_t wal_bytes_truncated = 0;  ///< torn tail dropped
  bool wal_stale = false;  ///< log missing or from an older epoch
};

struct RecoveredReplica {
  repl::Replica replica;
  /// Delivered-message ledger: checkpoint ledger plus every Delivered
  /// WAL record. Seed the application node with this so restart
  /// re-reporting becomes exactly-once (dtn::DtnNode::seed_delivered).
  std::set<ItemId> delivered;
  RecoveryStats stats;
};

/// Rebuild replica state from `env`. Returns nullopt when no manifest
/// or legacy checkpoint exists (a fresh state directory). Tries
/// checkpoint generations newest-first, falling back past corrupt ones
/// and replaying the WAL segment chain from the generation that loads.
/// Throws ContractViolation when *every* retained generation is
/// corrupt, a CRC-valid WAL record fails to replay, or the recovered
/// state fails Replica::check_invariants — corruption is rejected,
/// never loaded. A torn WAL tail (short write at the crash point) is
/// not corruption: it is truncated at the last valid record.
std::optional<RecoveredReplica> recover(StorageEnv& env);

}  // namespace pfrdtn::persist
