#pragma once

/// \file knowledge.hpp
/// Per-replica knowledge: which update events this replica has seen.
///
/// Knowledge answers "does this replica already know update (author,
/// counter) of this item?" — the question the sync protocol asks to
/// guarantee at-most-once delivery. It is kept compact the way
/// Cimbiosys keeps it compact: a *universal* version set (exact update
/// events this replica received or authored, compacting into a version
/// vector) plus *scoped fragments* — claims of the form "I know every
/// event in version-set V that applies to items matching filter S",
/// learned by merging a sync partner's knowledge after a complete sync,
/// scoped to our own filter.
///
/// Soundness invariant (checked by the emulator's oracle in debug
/// runs): whenever knows(i, v) holds at replica R, R stores item i at a
/// version that is v or dominates v, or R stores a tombstone for i, or
/// i does not match R's filter and R's copy was never required. The
/// operations below each preserve it; see DESIGN.md §2 for the
/// eviction/filter-change discipline that keeps it true.

#include <vector>

#include "repl/filter.hpp"
#include "repl/item.hpp"
#include "repl/version.hpp"

namespace pfrdtn::repl {

class Knowledge {
 public:
  /// One scoped claim: every event in `versions` that applies to an
  /// item matching `scope` is known.
  struct Fragment {
    Filter scope;
    VersionSet versions;
  };

  /// Maximum number of scoped fragments retained; excess fragments are
  /// discarded smallest-first (forgetting knowledge is always safe —
  /// the worst case is receiving an item copy twice).
  static constexpr std::size_t kMaxFragments = 32;

  /// Does this replica know the update (v.author, v.counter) as it
  /// applies to `item`?
  [[nodiscard]] bool knows(const Item& item, const Version& v) const;

  /// Record receipt or authorship of an exact update event.
  void add_exact(const Version& v) { universal_.add(v); }

  /// Record receipt of a relay (out-of-filter) copy's event: pinned, so
  /// a later eviction can forget it (see VersionSet).
  void add_exact_pinned(const Version& v) {
    universal_.add(v, /*pinned=*/true);
  }

  /// Record that every event authored by `author` up to `max_counter`
  /// is known (a replica knows its own authored prefix by
  /// construction).
  void add_authored_prefix(ReplicaId author, std::uint64_t max_counter) {
    universal_.add_prefix(author, max_counter);
  }

  /// Forget an exact event (relay eviction), so the copy can be
  /// re-received later. Returns false if the event has already been
  /// folded into the universal vector prefix and cannot be forgotten.
  bool forget_exact(const Version& v) {
    return universal_.remove_extra(v.author, v.counter);
  }

  /// True if forget_exact(v) would succeed. The eviction discipline
  /// requires this of every evictable relay copy's current version —
  /// an unforgettable event would make the copy un-re-receivable and,
  /// propagated through fragment merges, break eventual filter
  /// consistency (probed by Replica::check_invariants and src/check/).
  [[nodiscard]] bool can_forget(const Version& v) const {
    return universal_.removable(v.author, v.counter);
  }

  /// Drop every scoped fragment whose scope matches `item` — required
  /// when evicting a stored copy of `item`, because fragments may claim
  /// knowledge of events for it (see DESIGN.md).
  void drop_fragments_matching(const Item& item);

  /// Merge a sync partner's knowledge, restricted to `scope` (the
  /// receiving replica's filter intersected with what the partner can
  /// vouch for). Only sound after a *complete* sync.
  void merge_scoped(const Knowledge& other, const Filter& scope);

  /// The universal (scope-free) part.
  [[nodiscard]] const VersionSet& universal() const { return universal_; }
  [[nodiscard]] const std::vector<Fragment>& fragments() const {
    return fragments_;
  }

  /// Metadata footprint in serialized bytes.
  [[nodiscard]] std::size_t size_bytes() const;
  /// Abstract weight (vector entries + extras across all parts) for
  /// compaction benchmarks.
  [[nodiscard]] std::size_t weight() const;

  void serialize(ByteWriter& w) const;
  static Knowledge deserialize(ByteReader& r);

  /// Structure-preserving codec for checkpoints (src/persist/): keeps
  /// pinned extras pinned and fragments verbatim (order, structure),
  /// where the wire codec re-canonicalizes both. A recovered replica
  /// must be byte-identical to the one that crashed, including the
  /// local-only pinning that keeps evictable relay copies forgettable.
  void serialize_exact(ByteWriter& w) const;
  static Knowledge deserialize_exact(ByteReader& r);

 private:
  void add_fragment(Fragment fragment);
  void enforce_fragment_cap();

  VersionSet universal_;
  std::vector<Fragment> fragments_;
};

}  // namespace pfrdtn::repl
