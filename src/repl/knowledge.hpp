#pragma once

/// \file knowledge.hpp
/// Per-replica knowledge: which update events this replica has seen.
///
/// Knowledge answers "does this replica already know update (author,
/// counter) of this item?" — the question the sync protocol asks to
/// guarantee at-most-once delivery. It is kept compact the way
/// Cimbiosys keeps it compact: a *universal* version set (exact update
/// events this replica received or authored, compacting into a version
/// vector) plus *scoped fragments* — claims of the form "I know every
/// event in version-set V that applies to items matching filter S",
/// learned by merging a sync partner's knowledge after a complete sync,
/// scoped to our own filter.
///
/// Soundness invariant (checked by the emulator's oracle in debug
/// runs): whenever knows(i, v) holds at replica R, R stores item i at a
/// version that is v or dominates v, or R stores a tombstone for i, or
/// i does not match R's filter and R's copy was never required. The
/// operations below each preserve it; see DESIGN.md §2 for the
/// eviction/filter-change discipline that keeps it true.

#include <memory>
#include <optional>
#include <vector>

#include "repl/filter.hpp"
#include "repl/item.hpp"
#include "repl/version.hpp"

namespace pfrdtn::repl {

class BloomFilter;  // summary.hpp

/// Tuning of the knowledge summary a replica offers its sync peers
/// (see summary.hpp and docs/net.md). Bits-per-element and hash count
/// follow the Bloom-parameter framework of Marandi et al. (PAPERS.md):
/// for m/n bits per element the false-positive rate is minimized by
/// k = ln2 * m/n hash functions, giving fp ~ 0.5^k — the default 10
/// bits / 7 hashes lands near 0.8%.
struct SummaryParams {
  std::uint32_t bits_per_element = 10;
  std::uint32_t hash_count = 7;
  /// Knowledge holding more events than this never gets a Bloom filter
  /// (the digest tier still applies): bounds the build cost of a cache
  /// rebuild and the memory a summary can occupy.
  std::uint32_t max_bloom_elements = 4096;
  /// A filter bigger than this many bytes is never *sent* — at that
  /// size the exact codec is competitive and the digest tier already
  /// handles the converged case in O(1).
  std::uint32_t max_bloom_bytes = 512;

  /// k minimizing the false-positive rate at a given m/n, per Marandi
  /// et al.: round(ln2 * bits_per_element), clamped to [1, 32].
  [[nodiscard]] static std::uint32_t optimal_hash_count(
      std::uint32_t bits_per_element);

  friend bool operator==(const SummaryParams&,
                         const SummaryParams&) = default;
};

class Knowledge {
 public:
  /// One scoped claim: every event in `versions` that applies to an
  /// item matching `scope` is known.
  struct Fragment {
    Filter scope;
    VersionSet versions;
  };

  /// Maximum number of scoped fragments retained; excess fragments are
  /// discarded smallest-first (forgetting knowledge is always safe —
  /// the worst case is receiving an item copy twice).
  static constexpr std::size_t kMaxFragments = 32;

  /// Does this replica know the update (v.author, v.counter) as it
  /// applies to `item`?
  [[nodiscard]] bool knows(const Item& item, const Version& v) const;

  /// Record receipt or authorship of an exact update event.
  void add_exact(const Version& v) {
    if (universal_.contains(v)) return;
    universal_.add(v);
    touch();
  }

  /// Record receipt of a relay (out-of-filter) copy's event: pinned, so
  /// a later eviction can forget it (see VersionSet).
  void add_exact_pinned(const Version& v) {
    if (universal_.contains(v)) return;
    universal_.add(v, /*pinned=*/true);
    touch();
  }

  /// Record that every event authored by `author` up to `max_counter`
  /// is known (a replica knows its own authored prefix by
  /// construction).
  void add_authored_prefix(ReplicaId author, std::uint64_t max_counter) {
    if (max_counter <= universal_.vector_part().max_counter(author))
      return;
    universal_.add_prefix(author, max_counter);
    touch();
  }

  /// Forget an exact event (relay eviction), so the copy can be
  /// re-received later. Returns false if the event has already been
  /// folded into the universal vector prefix and cannot be forgotten.
  bool forget_exact(const Version& v) {
    const bool removed = universal_.remove_extra(v.author, v.counter);
    if (removed) touch();
    return removed;
  }

  /// True if forget_exact(v) would succeed. The eviction discipline
  /// requires this of every evictable relay copy's current version —
  /// an unforgettable event would make the copy un-re-receivable and,
  /// propagated through fragment merges, break eventual filter
  /// consistency (probed by Replica::check_invariants and src/check/).
  [[nodiscard]] bool can_forget(const Version& v) const {
    return universal_.removable(v.author, v.counter);
  }

  /// Drop every scoped fragment whose scope matches `item` — required
  /// when evicting a stored copy of `item`, because fragments may claim
  /// knowledge of events for it (see DESIGN.md).
  void drop_fragments_matching(const Item& item);

  /// Merge a sync partner's knowledge, restricted to `scope` (the
  /// receiving replica's filter intersected with what the partner can
  /// vouch for). Only sound after a *complete* sync.
  void merge_scoped(const Knowledge& other, const Filter& scope);

  /// The universal (scope-free) part.
  [[nodiscard]] const VersionSet& universal() const { return universal_; }
  [[nodiscard]] const std::vector<Fragment>& fragments() const {
    return fragments_;
  }

  /// Metadata footprint in serialized bytes.
  [[nodiscard]] std::size_t size_bytes() const;
  /// Abstract weight (vector entries + extras across all parts) for
  /// compaction benchmarks.
  [[nodiscard]] std::size_t weight() const;

  // ---- summaries (see summary.hpp, docs/net.md) ----------------------
  //
  // The summary-exchange fast path needs two derived views of this
  // knowledge: a digest of its wire-serialized form (equal digests =>
  // byte-identical wire knowledge) and a Bloom filter over every known
  // event. Both are cached against `revision_`, which every mutation
  // that actually changes the value bumps — so in the converged steady
  // state a summary costs O(1) per sync instead of a rebuild.

  /// Monotone change counter: bumps exactly when the knowledge value
  /// changes (no-op merges and duplicate adds leave it untouched, which
  /// is what keeps the summary caches warm across converged syncs).
  [[nodiscard]] std::uint64_t revision() const { return revision_; }

  /// FNV-1a 64 digest of serialize()'s output, cached per revision.
  [[nodiscard]] std::uint64_t wire_digest() const;

  /// Total known events: universal plus fragment version sets
  /// (scope-erased; events present in both are counted twice, which
  /// only over-sizes a Bloom filter). O(entries), not O(events).
  [[nodiscard]] std::uint64_t event_count() const;

  /// Cached Bloom filter over every known event, or null when `params`
  /// says this knowledge should not ship one (too many events, filter
  /// bigger than the cap or than the exact codec). Defined in
  /// summary.cpp.
  [[nodiscard]] std::shared_ptr<const BloomFilter> bloom(
      const SummaryParams& params) const;

  void serialize(ByteWriter& w) const;
  static Knowledge deserialize(ByteReader& r);

  /// Structure-preserving codec for checkpoints (src/persist/): keeps
  /// pinned extras pinned and fragments verbatim (order, structure),
  /// where the wire codec re-canonicalizes both. A recovered replica
  /// must be byte-identical to the one that crashed, including the
  /// local-only pinning that keeps evictable relay copies forgettable.
  void serialize_exact(ByteWriter& w) const;
  static Knowledge deserialize_exact(ByteReader& r);

 private:
  void add_fragment(Fragment fragment);
  void enforce_fragment_cap();

  /// Invalidate the summary caches after a real value change.
  void touch() { ++revision_; }

  VersionSet universal_;
  std::vector<Fragment> fragments_;

  std::uint64_t revision_ = 1;
  // Summary caches: value-derived, so copying them along with the
  // object keeps them consistent (the Bloom cache is shared immutably).
  mutable std::uint64_t digest_cache_revision_ = 0;
  mutable std::uint64_t digest_cache_ = 0;
  mutable std::uint64_t bloom_cache_revision_ = 0;
  mutable std::optional<SummaryParams> bloom_cache_params_;
  mutable std::shared_ptr<const BloomFilter> bloom_cache_;
};

}  // namespace pfrdtn::repl
