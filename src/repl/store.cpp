#include "repl/store.hpp"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace pfrdtn::repl {

void ItemStore::index(const Entry& entry) {
  if (!entry.in_filter) ++relay_count_;
  if (entry.evictable())
    evictable_order_.emplace(entry.arrival_seq, entry.item.id());
  evictable_count_ = evictable_order_.size();
  for (const HostId dest : entry.item.dest_addresses())
    dest_index_[dest].emplace(entry.item.id(), &entry);
}

void ItemStore::unindex(const Entry& entry) {
  if (!entry.in_filter) --relay_count_;
  if (entry.evictable()) evictable_order_.erase(entry.arrival_seq);
  evictable_count_ = evictable_order_.size();
  for (const HostId dest : entry.item.dest_addresses()) {
    const auto bucket = dest_index_.find(dest);
    PFRDTN_ENSURE(bucket != dest_index_.end());
    bucket->second.erase(entry.item.id());
    if (bucket->second.empty()) dest_index_.erase(bucket);
  }
}

std::vector<Item> ItemStore::put(Item item, bool in_filter,
                                 bool local_origin) {
  const ItemId id = item.id();
  auto& entry = entries_[id];
  if (entry.item.id().valid()) {
    unindex(entry);
    order_.erase(entry.arrival_seq);
  }
  entry.item = std::move(item);
  entry.in_filter = in_filter;
  entry.local_origin = entry.local_origin || local_origin;
  entry.arrival_seq = next_seq_++;
  order_.emplace(entry.arrival_seq, id);
  index(entry);
  return enforce_capacity();
}

const ItemStore::Entry* ItemStore::find(ItemId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ItemStore::remove(ItemId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  unindex(it->second);
  order_.erase(it->second.arrival_seq);
  entries_.erase(it);
  return true;
}

void ItemStore::supersede(ItemId id, Item::PayloadPtr payload,
                          bool in_filter, bool make_local_origin) {
  const auto it = entries_.find(id);
  PFRDTN_REQUIRE(it != entries_.end());
  Entry& entry = it->second;
  unindex(entry);
  entry.item.adopt_payload(std::move(payload));
  entry.in_filter = in_filter;
  entry.local_origin = entry.local_origin || make_local_origin;
  index(entry);
}

std::optional<TransientView> ItemStore::transient_mutable(ItemId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return std::nullopt;
  return TransientView(it->second.item);
}

bool ItemStore::replace_transients(
    ItemId id, std::map<std::string, std::string> all) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  it->second.item.replace_transients(std::move(all));
  return true;
}

std::vector<Item> ItemStore::refilter(
    const std::function<bool(const Item&)>& matches,
    std::vector<Item>& evicted) {
  // Iterate via order_, not entries_: the output order is part of the
  // API (newly matching items surface as deliveries), and hash-map
  // order would diverge between identically-seeded replicas.
  std::vector<Item> newly_matching;
  for (const auto& [seq, id] : order_) {
    Entry& entry = entries_.at(id);
    const bool now = matches(entry.item);
    if (now == entry.in_filter) continue;
    unindex(entry);
    entry.in_filter = now;
    index(entry);
    if (now) newly_matching.push_back(entry.item);
  }
  auto victims = enforce_capacity();
  evicted.insert(evicted.end(), victims.begin(), victims.end());
  return newly_matching;
}

std::vector<Item> ItemStore::enforce_capacity() {
  std::vector<Item> victims;
  if (!config_.relay_capacity) return victims;
  while (evictable_count_ > *config_.relay_capacity) {
    const auto victim_it = config_.eviction == EvictionOrder::Fifo
                               ? evictable_order_.begin()
                               : std::prev(evictable_order_.end());
    PFRDTN_ENSURE(victim_it != evictable_order_.end());
    const ItemId id = victim_it->second;
    victims.push_back(entries_.at(id).item);
    remove(id);
  }
  return victims;
}

void ItemStore::for_each(
    const std::function<void(const Entry&)>& fn) const {
  for (const auto& [seq, id] : order_) fn(entries_.at(id));
}

void ItemStore::for_each_transient(
    const std::function<void(const Entry&, TransientView)>& fn) {
  for (const auto& [seq, id] : order_) {
    Entry& entry = entries_.at(id);
    fn(entry, TransientView(entry.item));
  }
}

bool ItemStore::for_filter_matches(
    const Filter& filter,
    const std::function<bool(const Entry&)>& fn) const {
  if (filter.provably_empty()) return true;  // nothing can match
  if (filter.is_address_filter()) {
    const std::set<HostId> addrs = filter.address_set();
    // An item addressed to several filter addresses sits in several
    // buckets; dedup only when that is possible.
    if (addrs.size() == 1) {
      const auto bucket = dest_index_.find(*addrs.begin());
      if (bucket == dest_index_.end()) return true;
      for (const auto& [id, entry] : bucket->second) {
        if (!fn(*entry)) return true;
      }
      return true;
    }
    std::unordered_set<std::uint64_t> seen;
    for (const HostId addr : addrs) {
      const auto bucket = dest_index_.find(addr);
      if (bucket == dest_index_.end()) continue;
      for (const auto& [id, entry] : bucket->second) {
        if (!seen.insert(id.value()).second) continue;
        if (!fn(*entry)) return true;
      }
    }
    return true;
  }
  // General filters: arrival-order scan with per-entry evaluation.
  for (const auto& [seq, id] : order_) {
    const Entry& entry = entries_.at(id);
    if (filter.matches(entry.item) && !fn(entry)) break;
  }
  return false;
}

void ItemStore::restore_entry(Item item, bool in_filter,
                              bool local_origin,
                              std::uint64_t arrival_seq) {
  const ItemId id = item.id();
  PFRDTN_REQUIRE(id.valid());
  PFRDTN_REQUIRE(entries_.count(id) == 0);
  PFRDTN_REQUIRE(order_.count(arrival_seq) == 0);
  auto& entry = entries_[id];
  entry.item = std::move(item);
  entry.in_filter = in_filter;
  entry.local_origin = local_origin;
  entry.arrival_seq = arrival_seq;
  order_.emplace(arrival_seq, id);
  index(entry);
  if (next_seq_ <= arrival_seq) next_seq_ = arrival_seq + 1;
}

void ItemStore::set_next_arrival_seq(std::uint64_t seq) {
  PFRDTN_REQUIRE(seq >= next_seq_);
  next_seq_ = seq;
}

void ItemStore::set_in_filter_for_test(ItemId id, bool in_filter) {
  const auto it = entries_.find(id);
  PFRDTN_REQUIRE(it != entries_.end());
  Entry& entry = it->second;
  if (entry.in_filter == in_filter) return;
  unindex(entry);
  entry.in_filter = in_filter;
  index(entry);
}

}  // namespace pfrdtn::repl
