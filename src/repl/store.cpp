#include "repl/store.hpp"

namespace pfrdtn::repl {

std::vector<Item> ItemStore::put(Item item, bool in_filter,
                                 bool local_origin) {
  const ItemId id = item.id();
  auto& entry = entries_[id];
  if (entry.item.id().valid()) order_.erase(entry.arrival_seq);
  entry.item = std::move(item);
  entry.in_filter = in_filter;
  entry.local_origin = entry.local_origin || local_origin;
  entry.arrival_seq = next_seq_++;
  order_.emplace(entry.arrival_seq, id);
  return enforce_capacity();
}

const ItemStore::Entry* ItemStore::find(ItemId id) const {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

ItemStore::Entry* ItemStore::find_mutable(ItemId id) {
  const auto it = entries_.find(id);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ItemStore::remove(ItemId id) {
  const auto it = entries_.find(id);
  if (it == entries_.end()) return false;
  order_.erase(it->second.arrival_seq);
  entries_.erase(it);
  return true;
}

std::vector<Item> ItemStore::refilter(
    const std::function<bool(const Item&)>& matches,
    std::vector<Item>& evicted) {
  std::vector<Item> newly_matching;
  for (auto& [id, entry] : entries_) {
    const bool now = matches(entry.item);
    if (now && !entry.in_filter) newly_matching.push_back(entry.item);
    entry.in_filter = now;
  }
  auto victims = enforce_capacity();
  evicted.insert(evicted.end(), victims.begin(), victims.end());
  return newly_matching;
}

std::vector<Item> ItemStore::enforce_capacity() {
  std::vector<Item> victims;
  if (!config_.relay_capacity) return victims;
  std::size_t evictable = evictable_count();
  if (evictable <= *config_.relay_capacity) return victims;

  const auto pick_victim = [&]() -> const Entry* {
    if (config_.eviction == EvictionOrder::Fifo) {
      for (const auto& [seq, id] : order_) {
        const Entry& entry = entries_.at(id);
        if (entry.evictable()) return &entry;
      }
    } else {
      for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
        const Entry& entry = entries_.at(it->second);
        if (entry.evictable()) return &entry;
      }
    }
    return nullptr;
  };

  while (evictable > *config_.relay_capacity) {
    const Entry* victim = pick_victim();
    PFRDTN_ENSURE(victim != nullptr);
    victims.push_back(victim->item);
    remove(victim->item.id());
    --evictable;
  }
  return victims;
}

void ItemStore::for_each(
    const std::function<void(const Entry&)>& fn) const {
  for (const auto& [seq, id] : order_) fn(entries_.at(id));
}

void ItemStore::for_each_mutable(const std::function<void(Entry&)>& fn) {
  for (const auto& [seq, id] : order_) fn(entries_.at(id));
}

std::size_t ItemStore::relay_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (!entry.in_filter) ++n;
  }
  return n;
}

std::size_t ItemStore::evictable_count() const {
  std::size_t n = 0;
  for (const auto& [id, entry] : entries_) {
    if (entry.evictable()) ++n;
  }
  return n;
}

}  // namespace pfrdtn::repl
