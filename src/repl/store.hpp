#pragma once

/// \file store.hpp
/// Per-replica item storage. Two logical stores, as in Cimbiosys:
/// the *filter store* (items matching the replica's filter — never
/// evicted, required for eventual filter consistency) and the
/// *relay store* (out-of-filter items held for forwarding; the paper's
/// push-out store generalized to DTN relaying). Relay items are
/// evictable, except copies this replica authored ("excluding messages
/// for which the node itself is the sender"), which must survive until
/// delivered.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "repl/item.hpp"
#include "util/require.hpp"

namespace pfrdtn::repl {

/// How the relay store picks a victim when over capacity.
enum class EvictionOrder {
  Fifo,  ///< oldest arrival first (the paper's strategy)
  Lifo,  ///< newest arrival first
};

class ItemStore {
 public:
  struct Config {
    /// Maximum number of evictable (relay, non-locally-authored) items;
    /// nullopt = unbounded (the paper's unconstrained experiments).
    std::optional<std::size_t> relay_capacity;
    EvictionOrder eviction = EvictionOrder::Fifo;
  };

  struct Entry {
    Item item;
    bool in_filter = false;     ///< matches the replica's filter
    bool local_origin = false;  ///< authored by this replica
    std::uint64_t arrival_seq = 0;

    [[nodiscard]] bool evictable() const {
      return !in_filter && !local_origin;
    }
  };

  ItemStore() = default;
  explicit ItemStore(Config config) : config_(config) {}

  /// Insert or replace an entry. If the relay store exceeds capacity
  /// afterwards, victims are evicted and returned (never the
  /// just-inserted entry under FIFO unless capacity is zero).
  std::vector<Item> put(Item item, bool in_filter, bool local_origin);

  [[nodiscard]] const Entry* find(ItemId id) const;
  /// Mutable access for transient metadata and versioned supersede
  /// (callers go through Replica, which maintains knowledge).
  Entry* find_mutable(ItemId id);

  [[nodiscard]] bool contains(ItemId id) const {
    return entries_.count(id) > 0;
  }

  /// Remove an item outright (used by tests and by garbage collection
  /// extensions; normal deletion is a tombstone supersede).
  bool remove(ItemId id);

  /// Re-evaluate in_filter flags after a filter change.
  /// `matches` is the new filter predicate. Returns the items that
  /// changed from relay to filter store (newly "delivered" locally);
  /// items moving the other way become evictable, which may trigger
  /// evictions returned via `evicted`.
  std::vector<Item> refilter(
      const std::function<bool(const Item&)>& matches,
      std::vector<Item>& evicted);

  /// Iterate all entries in arrival order (deterministic).
  void for_each(const std::function<void(const Entry&)>& fn) const;
  void for_each_mutable(const std::function<void(Entry&)>& fn);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t relay_count() const;
  [[nodiscard]] std::size_t evictable_count() const;
  [[nodiscard]] const Config& config() const { return config_; }
  void set_relay_capacity(std::optional<std::size_t> capacity) {
    config_.relay_capacity = capacity;
  }

 private:
  std::vector<Item> enforce_capacity();

  Config config_;
  std::unordered_map<ItemId, Entry> entries_;
  /// Arrival-ordered index over entries_ (FIFO order, deterministic
  /// iteration without per-call sorting).
  std::map<std::uint64_t, ItemId> order_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pfrdtn::repl
