#pragma once

/// \file store.hpp
/// Per-replica item storage. Two logical stores, as in Cimbiosys:
/// the *filter store* (items matching the replica's filter — never
/// evicted, required for eventual filter consistency) and the
/// *relay store* (out-of-filter items held for forwarding; the paper's
/// push-out store generalized to DTN relaying). Relay items are
/// evictable, except copies this replica authored ("excluding messages
/// for which the node itself is the sender"), which must survive until
/// delivered.
///
/// Sync-hot-path indexes, all maintained incrementally:
///  - relay / evictable counters (O(1) queries; eviction no longer
///    rescans the store to count),
///  - an arrival-ordered index of just the evictable entries, so
///    enforce_capacity picks each FIFO/LIFO victim in O(log n) instead
///    of walking the whole arrival order,
///  - an inverted index over parsed `dest` addresses, so batch
///    building enumerates the candidates of an address filter (the DTN
///    common case) in O(matching) via for_filter_matches() instead of
///    scanning every entry.
/// Entries are therefore mutated only through store operations (put /
/// supersede / refilter / remove); callers get const views plus a
/// TransientView for the per-copy routing state, which no index
/// depends on.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "repl/filter.hpp"
#include "repl/item.hpp"
#include "util/require.hpp"

namespace pfrdtn::repl {

/// How the relay store picks a victim when over capacity.
enum class EvictionOrder {
  Fifo,  ///< oldest arrival first (the paper's strategy)
  Lifo,  ///< newest arrival first
};

class ItemStore {
 public:
  struct Config {
    /// Maximum number of evictable (relay, non-locally-authored) items;
    /// nullopt = unbounded (the paper's unconstrained experiments).
    std::optional<std::size_t> relay_capacity;
    EvictionOrder eviction = EvictionOrder::Fifo;
  };

  struct Entry {
    Item item;
    bool in_filter = false;     ///< matches the replica's filter
    bool local_origin = false;  ///< authored by this replica
    std::uint64_t arrival_seq = 0;

    [[nodiscard]] bool evictable() const {
      return !in_filter && !local_origin;
    }
  };

  ItemStore() = default;
  explicit ItemStore(Config config) : config_(config) {}

  /// Insert or replace an entry. If the relay store exceeds capacity
  /// afterwards, victims are evicted and returned (never the
  /// just-inserted entry under FIFO unless capacity is zero).
  std::vector<Item> put(Item item, bool in_filter, bool local_origin);

  [[nodiscard]] const Entry* find(ItemId id) const;

  [[nodiscard]] bool contains(ItemId id) const {
    return entries_.count(id) > 0;
  }

  /// Remove an item outright (used by tests and by garbage collection
  /// extensions; normal deletion is a tombstone supersede).
  bool remove(ItemId id);

  /// Replace the replicated content of an existing entry with `payload`
  /// (a local update, a tombstone, or an adopted remote payload — a
  /// refcount bump, never a deep copy). Per-copy transient state is
  /// dropped, the dest index follows the new payload, and the counters
  /// follow the new `in_filter` verdict. `make_local_origin` pins the
  /// copy (authorship is sticky; false keeps the current flag). Does
  /// NOT enforce capacity: the eviction points of the substrate are
  /// put() and refilter(), and a supersede that turns a copy evictable
  /// only counts against capacity at the next one.
  void supersede(ItemId id, Item::PayloadPtr payload, bool in_filter,
                 bool make_local_origin);

  /// Mutable access to a stored copy's transient (per-copy) state.
  /// Nullopt when the item is not stored.
  std::optional<TransientView> transient_mutable(ItemId id);

  /// Replace a stored copy's whole transient map (WAL replay of a
  /// policy-state snapshot). Indexes are unaffected: no index depends
  /// on transient state. Returns false when the item is not stored.
  bool replace_transients(ItemId id,
                          std::map<std::string, std::string> all);

  /// Re-evaluate in_filter flags after a filter change.
  /// `matches` is the new filter predicate. Returns the items that
  /// changed from relay to filter store (newly "delivered" locally) in
  /// arrival order; items moving the other way become evictable, which
  /// may trigger evictions returned via `evicted`.
  std::vector<Item> refilter(
      const std::function<bool(const Item&)>& matches,
      std::vector<Item>& evicted);

  /// Iterate all entries in arrival order (deterministic).
  void for_each(const std::function<void(const Entry&)>& fn) const;

  /// Arrival-order iteration with mutable access to each entry's
  /// transient state — the sync engine's general candidate scan, where
  /// a policy may initialize per-copy routing state (e.g. a default
  /// TTL) on the stored copy.
  void for_each_transient(
      const std::function<void(const Entry&, TransientView)>& fn);

  /// Visit exactly the entries whose item matches `filter`, returning
  /// false from `fn` to stop early. Address filters (and provably
  /// empty ones) are answered from the dest inverted index in
  /// O(matching); any other filter falls back to the full arrival-order
  /// scan with a per-entry filter evaluation. Visit order on the
  /// indexed path is unspecified — callers needing determinism must
  /// order by Entry::arrival_seq. Returns true iff the index served
  /// the query (exposed so benchmarks and tests can pin the fast path).
  bool for_filter_matches(
      const Filter& filter,
      const std::function<bool(const Entry&)>& fn) const;

  /// Force an entry's in_filter flag without consulting any filter —
  /// a test/diagnostic hook for exercising invariant checking; indexes
  /// and counters are kept consistent, capacity is not enforced.
  void set_in_filter_for_test(ItemId id, bool in_filter);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t relay_count() const { return relay_count_; }
  [[nodiscard]] std::size_t evictable_count() const {
    return evictable_count_;
  }
  [[nodiscard]] const Config& config() const { return config_; }
  void set_relay_capacity(std::optional<std::size_t> capacity) {
    config_.relay_capacity = capacity;
  }

  // ---- checkpoint support (src/persist/) ----
  //
  // Recovery must reproduce the pre-crash store *exactly*, including
  // each entry's arrival_seq (the deterministic tie-break that makes
  // post-recovery sync batches byte-identical) and the next sequence
  // number future arrivals will take.

  /// Re-insert a snapshotted entry verbatim: no capacity enforcement,
  /// no fresh sequence number. The id and arrival_seq must be unused.
  void restore_entry(Item item, bool in_filter, bool local_origin,
                     std::uint64_t arrival_seq);

  [[nodiscard]] std::uint64_t next_arrival_seq() const {
    return next_seq_;
  }
  /// Restore the arrival counter; must not reuse a live sequence.
  void set_next_arrival_seq(std::uint64_t seq);

 private:
  /// Add/remove `entry` to the flag-derived indexes (counters,
  /// evictable order, dest buckets). Every mutation is bracketed by
  /// unindex/index so the derived state can never drift.
  void index(const Entry& entry);
  void unindex(const Entry& entry);

  std::vector<Item> enforce_capacity();

  Config config_;
  std::unordered_map<ItemId, Entry> entries_;
  /// Arrival-ordered index over entries_ (FIFO order, deterministic
  /// iteration without per-call sorting).
  std::map<std::uint64_t, ItemId> order_;
  /// Arrival-ordered index over just the evictable entries: victim
  /// selection reads begin()/rbegin() instead of scanning order_.
  std::map<std::uint64_t, ItemId> evictable_order_;
  /// Inverted index: dest address -> entries whose item lists it.
  /// Buckets hold stable Entry pointers (entries_ is node-based), so
  /// the indexed path dereferences candidates without a hash lookup.
  std::unordered_map<HostId, std::unordered_map<ItemId, const Entry*>>
      dest_index_;
  std::size_t relay_count_ = 0;
  std::size_t evictable_count_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace pfrdtn::repl
