#include "repl/filter.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace pfrdtn::repl {

struct Filter::Node {
  Kind kind = Kind::False;
  std::set<HostId> addrs;            // AddressSet
  std::set<std::string> tags;        // TagSet
  std::string key, value;            // MetaEquals
  std::vector<NodePtr> children;     // And / Or / Not
};

namespace {

/// Split a comma-separated metadata value into tokens.
std::vector<std::string> split_csv(const std::string& value) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= value.size()) {
    std::size_t end = value.find(',', pos);
    if (end == std::string::npos) end = value.size();
    if (end > pos) tokens.push_back(value.substr(pos, end - pos));
    pos = end + 1;
  }
  return tokens;
}

}  // namespace

Filter Filter::all() {
  static const NodePtr node = [] {
    auto n = std::make_shared<Node>();
    n->kind = Kind::True;
    return n;
  }();
  return Filter(node);
}

Filter Filter::none() {
  static const NodePtr node = [] {
    auto n = std::make_shared<Node>();
    n->kind = Kind::False;
    return n;
  }();
  return Filter(node);
}

Filter Filter::addresses(std::set<HostId> addrs) {
  if (addrs.empty()) return none();
  auto node = std::make_shared<Node>();
  node->kind = Kind::AddressSet;
  node->addrs = std::move(addrs);
  return Filter(node);
}

Filter Filter::tags(std::set<std::string> tags) {
  if (tags.empty()) return none();
  auto node = std::make_shared<Node>();
  node->kind = Kind::TagSet;
  node->tags = std::move(tags);
  return Filter(node);
}

Filter Filter::meta_equals(std::string key, std::string value) {
  auto node = std::make_shared<Node>();
  node->kind = Kind::MetaEquals;
  node->key = std::move(key);
  node->value = std::move(value);
  return Filter(node);
}

Filter Filter::conj(Filter a, Filter b) {
  if (a.node_->kind == Kind::True) return b;
  if (b.node_->kind == Kind::True) return a;
  if (a.node_->kind == Kind::False || b.node_->kind == Kind::False)
    return none();
  if (a.equals(b)) return a;
  auto node = std::make_shared<Node>();
  node->kind = Kind::And;
  node->children = {a.node_, b.node_};
  return Filter(node);
}

Filter Filter::disj(Filter a, Filter b) {
  if (a.node_->kind == Kind::False) return b;
  if (b.node_->kind == Kind::False) return a;
  if (a.node_->kind == Kind::True || b.node_->kind == Kind::True)
    return all();
  if (a.equals(b)) return a;
  // Union of two address (or tag) sets stays canonical.
  if (a.node_->kind == Kind::AddressSet &&
      b.node_->kind == Kind::AddressSet) {
    std::set<HostId> merged = a.node_->addrs;
    merged.insert(b.node_->addrs.begin(), b.node_->addrs.end());
    return addresses(std::move(merged));
  }
  if (a.node_->kind == Kind::TagSet && b.node_->kind == Kind::TagSet) {
    std::set<std::string> merged = a.node_->tags;
    merged.insert(b.node_->tags.begin(), b.node_->tags.end());
    return tags(std::move(merged));
  }
  auto node = std::make_shared<Node>();
  node->kind = Kind::Or;
  node->children = {a.node_, b.node_};
  return Filter(node);
}

Filter Filter::negate(Filter a) {
  if (a.node_->kind == Kind::True) return none();
  if (a.node_->kind == Kind::False) return all();
  if (a.node_->kind == Kind::Not) return Filter(a.node_->children[0]);
  auto node = std::make_shared<Node>();
  node->kind = Kind::Not;
  node->children = {a.node_};
  return Filter(node);
}

bool Filter::node_matches(const Node& node, const Item& item) {
  switch (node.kind) {
    case Kind::True:
      return true;
    case Kind::False:
      return false;
    case Kind::AddressSet: {
      for (const HostId dest : item.dest_addresses()) {
        if (node.addrs.count(dest)) return true;
      }
      return false;
    }
    case Kind::TagSet: {
      const auto value = item.meta(meta::kTags);
      if (!value) return false;
      for (const auto& tag : split_csv(*value)) {
        if (node.tags.count(tag)) return true;
      }
      return false;
    }
    case Kind::MetaEquals: {
      const auto value = item.meta(node.key);
      return value && *value == node.value;
    }
    case Kind::And:
      return std::all_of(node.children.begin(), node.children.end(),
                         [&](const NodePtr& child) {
                           return node_matches(*child, item);
                         });
    case Kind::Or:
      return std::any_of(node.children.begin(), node.children.end(),
                         [&](const NodePtr& child) {
                           return node_matches(*child, item);
                         });
    case Kind::Not:
      return !node_matches(*node.children[0], item);
  }
  return false;
}

bool Filter::matches(const Item& item) const {
  return node_matches(*node_, item);
}

Filter Filter::intersect(const Filter& other) const {
  const Node& a = *node_;
  const Node& b = *other.node_;
  if (a.kind == Kind::True) return other;
  if (b.kind == Kind::True) return *this;
  if (a.kind == Kind::False || b.kind == Kind::False) return none();
  if (equals(other)) return *this;
  // Set-intersection of two address sets under-approximates the true
  // conjunction for multi-destination items (an item addressed to both
  // x and y matches {x} ∧ {y} but not {} ); under-approximation is the
  // sound direction for knowledge scopes.
  if (a.kind == Kind::AddressSet && b.kind == Kind::AddressSet) {
    std::set<HostId> common;
    std::set_intersection(a.addrs.begin(), a.addrs.end(),
                          b.addrs.begin(), b.addrs.end(),
                          std::inserter(common, common.begin()));
    return addresses(std::move(common));
  }
  if (a.kind == Kind::TagSet && b.kind == Kind::TagSet) {
    std::set<std::string> common;
    std::set_intersection(a.tags.begin(), a.tags.end(), b.tags.begin(),
                          b.tags.end(),
                          std::inserter(common, common.begin()));
    return tags(std::move(common));
  }
  if (a.kind == Kind::MetaEquals && b.kind == Kind::MetaEquals &&
      a.key == b.key) {
    return a.value == b.value ? *this : none();
  }
  return conj(*this, other);
}

bool Filter::subsumes(const Filter& other) const {
  const Node& a = *node_;
  const Node& b = *other.node_;
  if (a.kind == Kind::True) return true;
  if (b.kind == Kind::False) return true;
  if (equals(other)) return true;
  if (a.kind == Kind::AddressSet && b.kind == Kind::AddressSet) {
    return std::includes(a.addrs.begin(), a.addrs.end(),
                         b.addrs.begin(), b.addrs.end());
  }
  if (a.kind == Kind::TagSet && b.kind == Kind::TagSet) {
    return std::includes(a.tags.begin(), a.tags.end(), b.tags.begin(),
                         b.tags.end());
  }
  // `this` subsumes an Or if it subsumes every branch; an And subsumed
  // by any branch of it implies nothing, so stay conservative there.
  if (b.kind == Kind::Or) {
    return std::all_of(b.children.begin(), b.children.end(),
                       [&](const NodePtr& child) {
                         return subsumes(Filter(child));
                       });
  }
  if (b.kind == Kind::And) {
    return std::any_of(b.children.begin(), b.children.end(),
                       [&](const NodePtr& child) {
                         return subsumes(Filter(child));
                       });
  }
  return false;
}

bool Filter::provably_empty() const {
  return node_->kind == Kind::False;
}

bool Filter::node_equals(const Node& a, const Node& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case Kind::True:
    case Kind::False:
      return true;
    case Kind::AddressSet:
      return a.addrs == b.addrs;
    case Kind::TagSet:
      return a.tags == b.tags;
    case Kind::MetaEquals:
      return a.key == b.key && a.value == b.value;
    case Kind::And:
    case Kind::Or:
    case Kind::Not: {
      if (a.children.size() != b.children.size()) return false;
      for (std::size_t i = 0; i < a.children.size(); ++i) {
        if (!node_equals(*a.children[i], *b.children[i])) return false;
      }
      return true;
    }
  }
  return false;
}

bool Filter::equals(const Filter& other) const {
  return node_ == other.node_ || node_equals(*node_, *other.node_);
}

std::set<HostId> Filter::address_set() const {
  if (node_->kind != Kind::AddressSet) return {};
  return node_->addrs;
}

bool Filter::is_address_filter() const {
  return node_->kind == Kind::AddressSet;
}

std::string Filter::node_str(const Node& node) {
  switch (node.kind) {
    case Kind::True:
      return "true";
    case Kind::False:
      return "false";
    case Kind::AddressSet: {
      std::string out = "dest∈{";
      bool first = true;
      for (const HostId addr : node.addrs) {
        if (!first) out += ',';
        out += addr.str();
        first = false;
      }
      return out + "}";
    }
    case Kind::TagSet: {
      std::string out = "tag∈{";
      bool first = true;
      for (const auto& tag : node.tags) {
        if (!first) out += ',';
        out += tag;
        first = false;
      }
      return out + "}";
    }
    case Kind::MetaEquals:
      return node.key + "=" + node.value;
    case Kind::And:
      return "(" + node_str(*node.children[0]) + " ∧ " +
             node_str(*node.children[1]) + ")";
    case Kind::Or:
      return "(" + node_str(*node.children[0]) + " ∨ " +
             node_str(*node.children[1]) + ")";
    case Kind::Not:
      return "¬" + node_str(*node.children[0]);
  }
  return "?";
}

std::string Filter::str() const { return node_str(*node_); }

void Filter::node_serialize(const Node& node, ByteWriter& w) {
  w.u8(static_cast<std::uint8_t>(node.kind));
  switch (node.kind) {
    case Kind::True:
    case Kind::False:
      break;
    case Kind::AddressSet:
      w.uvarint(node.addrs.size());
      for (const HostId addr : node.addrs) w.uvarint(addr.value());
      break;
    case Kind::TagSet:
      w.uvarint(node.tags.size());
      for (const auto& tag : node.tags) w.str(tag);
      break;
    case Kind::MetaEquals:
      w.str(node.key);
      w.str(node.value);
      break;
    case Kind::And:
    case Kind::Or:
    case Kind::Not:
      w.uvarint(node.children.size());
      for (const auto& child : node.children) node_serialize(*child, w);
      break;
  }
}

void Filter::serialize(ByteWriter& w) const {
  node_serialize(*node_, w);
}

Filter::NodePtr Filter::node_deserialize(ByteReader& r, int depth) {
  PFRDTN_REQUIRE(depth < 32);  // reject hostile deep nesting
  r.charge_elements();
  auto node = std::make_shared<Node>();
  node->kind = static_cast<Kind>(r.u8());
  switch (node->kind) {
    case Kind::True:
    case Kind::False:
      break;
    case Kind::AddressSet: {
      const std::uint64_t n = r.uvarint();
      for (std::uint64_t i = 0; i < n; ++i) {
        r.charge_elements();
        node->addrs.insert(HostId(r.uvarint()));
      }
      break;
    }
    case Kind::TagSet: {
      const std::uint64_t n = r.uvarint();
      for (std::uint64_t i = 0; i < n; ++i) {
        r.charge_elements();
        node->tags.insert(r.str());
      }
      break;
    }
    case Kind::MetaEquals:
      node->key = r.str();
      node->value = r.str();
      break;
    case Kind::And:
    case Kind::Or:
    case Kind::Not: {
      const std::uint64_t n = r.uvarint();
      PFRDTN_REQUIRE(n <= 16);
      for (std::uint64_t i = 0; i < n; ++i)
        node->children.push_back(node_deserialize(r, depth + 1));
      break;
    }
    default:
      throw ContractViolation("unknown filter kind");
  }
  return node;
}

Filter Filter::deserialize(ByteReader& r) {
  return Filter(node_deserialize(r, 0));
}

}  // namespace pfrdtn::repl
