#pragma once

/// \file forwarding_policy.hpp
/// The substrate-side extension point for DTN routing (the paper's
/// Section V / Figure 3): a pluggable policy that (1) adds routing
/// state to a synchronization request, (2) processes the partner's
/// routing state, and (3) decides which *out-of-filter* items the
/// source should forward, with what priority. The filter-matching part
/// of the batch is untouched — eventual filter consistency is preserved
/// by construction.

#include <cstdint>
#include <string>
#include <vector>

#include "repl/item.hpp"
#include "util/ids.hpp"
#include "util/sim_time.hpp"

namespace pfrdtn::repl {

/// Coarse priority class plus a real-valued cost to break ties within a
/// class (lower cost sorts earlier), mirroring the paper's definition:
/// "a 'class' value, ranging from 'lowest' to 'highest', and a
/// real-valued 'cost' to break ties inside a class".
enum class PriorityClass : std::uint8_t {
  Skip = 0,  ///< do not forward
  Lowest,
  Low,
  Normal,
  High,
  Highest,  ///< reserved by the sync engine for filter-matching items
};

struct Priority {
  PriorityClass cls = PriorityClass::Skip;
  double cost = 0.0;

  [[nodiscard]] bool send() const { return cls != PriorityClass::Skip; }

  static Priority skip() { return {}; }
  static Priority at(PriorityClass cls, double cost = 0.0) {
    return {cls, cost};
  }

  /// Strict-weak order: higher class first, then lower cost.
  [[nodiscard]] bool before(const Priority& other) const {
    if (cls != other.cls) return cls > other.cls;
    return cost < other.cost;
  }
};

/// Per-sync context handed to policy callbacks.
struct SyncContext {
  ReplicaId self;  ///< the replica this policy instance belongs to
  ReplicaId peer;  ///< the sync partner
  SimTime now;     ///< simulated wall clock
};

// TransientView — the restricted mutable view policies receive — lives
// in item.hpp so the item store can hand it out too.

/// Pluggable forwarding policy (the paper's IDTNPolicy). One instance
/// exists per replica; instances may keep persistent routing state
/// across syncs (delivery predictabilities, meeting probabilities, …).
class ForwardingPolicy {
 public:
  virtual ~ForwardingPolicy() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Human-readable description of routing state / request payload /
  /// forwarding rule — the policy's row of the paper's Table I.
  [[nodiscard]] virtual std::string summary() const { return ""; }

  /// Target side: produce routing state to embed in the sync request
  /// ("generateReq" in the paper).
  virtual std::vector<std::uint8_t> generate_request(
      const SyncContext& /*ctx*/) {
    return {};
  }

  /// Source side: consume the routing state from a received request
  /// ("processReq").
  virtual void process_request(
      const SyncContext& /*ctx*/,
      const std::vector<std::uint8_t>& /*routing_state*/) {}

  /// Source side: should this out-of-filter stored item be forwarded
  /// to the peer, and at what priority? ("toSend"). May initialize
  /// missing transient fields on the stored copy (e.g. a default TTL).
  virtual Priority to_send(const SyncContext& /*ctx*/,
                           TransientView /*stored*/) {
    return Priority::skip();
  }

  /// Source side: called once per item that actually made it into the
  /// batch (after priority ordering and bandwidth truncation), with the
  /// stored copy and the outgoing copy. This is where per-copy state is
  /// adjusted — TTL decrement, copy-count halving — so that items cut
  /// by a bandwidth cap are not charged.
  ///
  /// A policy may discard the stored relay copy (e.g. single-copy
  /// custody transfer) as its *final* action here; the sync engine
  /// makes no further use of the stored entry after this call.
  virtual void on_forward(const SyncContext& /*ctx*/,
                          TransientView /*stored*/,
                          TransientView /*outgoing*/) {}
};

}  // namespace pfrdtn::repl
