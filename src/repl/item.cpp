#include "repl/item.hpp"

#include <charconv>

namespace pfrdtn::repl {

std::string encode_hosts(const std::vector<HostId>& hosts) {
  std::string out;
  for (const HostId host : hosts) {
    if (!out.empty()) out += ',';
    out += std::to_string(host.value());
  }
  return out;
}

std::vector<HostId> decode_hosts(std::string_view value) {
  std::vector<HostId> hosts;
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t end = value.find(',', pos);
    if (end == std::string_view::npos) end = value.size();
    std::uint64_t id = 0;
    const auto* first = value.data() + pos;
    const auto* last = value.data() + end;
    const auto [ptr, ec] = std::from_chars(first, last, id);
    if (ec == std::errc() && ptr == last) hosts.emplace_back(id);
    pos = end + 1;
  }
  return hosts;
}

namespace {

/// The wire layout of the replicated part. Kept as the one definition
/// both Item::serialize and the payload's cached size derive from, so
/// the cache can never drift from the bytes actually written.
void serialize_replicated(const Item::Payload& payload, ByteWriter& w) {
  w.uvarint(payload.id.value());
  payload.version.serialize(w);
  w.u8(payload.deleted ? 1 : 0);
  w.uvarint(payload.metadata.size());
  for (const auto& [key, value] : payload.metadata) {
    w.str(key);
    w.str(value);
  }
  w.raw(payload.body);
}

}  // namespace

Item::PayloadPtr Item::Payload::make(
    ItemId id, Version version, std::map<std::string, std::string> metadata,
    std::vector<std::uint8_t> body, bool deleted,
    std::optional<std::size_t> replicated_wire_size) {
  auto payload = std::make_shared<Payload>();
  payload->id = id;
  payload->version = version;
  payload->metadata = std::move(metadata);
  payload->body = std::move(body);
  payload->deleted = deleted;
  const auto dest = payload->metadata.find(meta::kDest);
  if (dest != payload->metadata.end())
    payload->dest_addresses = decode_hosts(dest->second);
  if (replicated_wire_size) {
    payload->replicated_wire_size = *replicated_wire_size;
  } else {
    ByteWriter w;
    serialize_replicated(*payload, w);
    payload->replicated_wire_size = w.size();
  }
  return payload;
}

const Item::PayloadPtr& Item::empty_payload() {
  static const PayloadPtr payload = Payload::make(
      ItemId(), Version{}, {}, {}, /*deleted=*/false);
  return payload;
}

std::optional<std::string> Item::meta(std::string_view key) const {
  const auto& metadata = payload_->metadata;
  const auto it = metadata.find(std::string(key));
  if (it == metadata.end()) return std::nullopt;
  return it->second;
}

std::optional<std::string> Item::transient(std::string_view key) const {
  const auto it = transient_.find(std::string(key));
  if (it == transient_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Item::transient_int(
    std::string_view key) const {
  const auto value = transient(key);
  if (!value) return std::nullopt;
  std::int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(
      value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size())
    return std::nullopt;
  return parsed;
}

void Item::supersede(Version v, std::map<std::string, std::string> md,
                     std::vector<std::uint8_t> body, bool deleted) {
  adopt_payload(
      Payload::make(payload_->id, v, std::move(md), std::move(body),
                    deleted));
}

void Item::adopt_payload(PayloadPtr payload) {
  PFRDTN_REQUIRE(payload != nullptr);
  PFRDTN_REQUIRE(payload->version.dominates(payload_->version) ||
                 !payload_->version.valid());
  payload_ = std::move(payload);
  transient_.clear();
}

std::size_t Item::wire_size() const {
  const std::size_t total = payload_->replicated_wire_size;
  // The common case: no per-copy state, and uvarint(0) is one byte.
  if (transient_.empty()) return total + 1;
  // The transient part is per-copy, so its footprint is computed here
  // rather than cached: uvarint(count) + length-prefixed key/value
  // pairs, exactly as serialize() writes them.
  ByteWriter w;
  w.uvarint(transient_.size());
  for (const auto& [key, value] : transient_) {
    w.str(key);
    w.str(value);
  }
  return total + w.size();
}

void Item::serialize(ByteWriter& w) const {
  serialize_replicated(*payload_, w);
  w.uvarint(transient_.size());
  for (const auto& [key, value] : transient_) {
    w.str(key);
    w.str(value);
  }
}

Item Item::deserialize(ByteReader& r) {
  const std::size_t before = r.remaining();
  const ItemId id = ItemId(r.uvarint());
  const Version version = Version::deserialize(r);
  const bool deleted = r.u8() != 0;
  std::map<std::string, std::string> metadata;
  const std::uint64_t md_count = r.uvarint();
  for (std::uint64_t i = 0; i < md_count; ++i) {
    r.charge_elements();
    std::string key = r.str();
    metadata[std::move(key)] = r.str();
  }
  std::vector<std::uint8_t> body = r.raw();
  // The replicated bytes just consumed ARE the cached wire size; no
  // need to re-serialize to fill the payload's cache.
  const std::size_t replicated_size = before - r.remaining();
  Item item(Payload::make(id, version, std::move(metadata),
                          std::move(body), deleted, replicated_size));
  const std::uint64_t tr_count = r.uvarint();
  for (std::uint64_t i = 0; i < tr_count; ++i) {
    r.charge_elements();
    std::string key = r.str();
    item.transient_[std::move(key)] = r.str();
  }
  return item;
}

}  // namespace pfrdtn::repl
