#include "repl/item.hpp"

#include <charconv>

namespace pfrdtn::repl {

std::string encode_hosts(const std::vector<HostId>& hosts) {
  std::string out;
  for (const HostId host : hosts) {
    if (!out.empty()) out += ',';
    out += std::to_string(host.value());
  }
  return out;
}

std::vector<HostId> decode_hosts(std::string_view value) {
  std::vector<HostId> hosts;
  std::size_t pos = 0;
  while (pos < value.size()) {
    std::size_t end = value.find(',', pos);
    if (end == std::string_view::npos) end = value.size();
    std::uint64_t id = 0;
    const auto* first = value.data() + pos;
    const auto* last = value.data() + end;
    const auto [ptr, ec] = std::from_chars(first, last, id);
    if (ec == std::errc() && ptr == last) hosts.emplace_back(id);
    pos = end + 1;
  }
  return hosts;
}

std::optional<std::string> Item::meta(std::string_view key) const {
  const auto it = metadata_.find(std::string(key));
  if (it == metadata_.end()) return std::nullopt;
  return it->second;
}

const std::vector<HostId>& Item::dest_addresses() const {
  if (!dest_cache_) {
    const auto value = meta(meta::kDest);
    dest_cache_ = value ? decode_hosts(*value) : std::vector<HostId>{};
  }
  return *dest_cache_;
}

std::optional<std::string> Item::transient(std::string_view key) const {
  const auto it = transient_.find(std::string(key));
  if (it == transient_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> Item::transient_int(
    std::string_view key) const {
  const auto value = transient(key);
  if (!value) return std::nullopt;
  std::int64_t parsed = 0;
  const auto [ptr, ec] = std::from_chars(
      value->data(), value->data() + value->size(), parsed);
  if (ec != std::errc() || ptr != value->data() + value->size())
    return std::nullopt;
  return parsed;
}

void Item::supersede(Version v, std::map<std::string, std::string> md,
                     std::vector<std::uint8_t> body, bool deleted) {
  PFRDTN_REQUIRE(v.dominates(version_) || !version_.valid());
  version_ = v;
  metadata_ = std::move(md);
  body_ = std::move(body);
  deleted_ = deleted;
  transient_.clear();
  dest_cache_.reset();
}

std::size_t Item::wire_size() const {
  ByteWriter w;
  serialize(w);
  return w.size();
}

void Item::serialize(ByteWriter& w) const {
  w.uvarint(id_.value());
  version_.serialize(w);
  w.u8(deleted_ ? 1 : 0);
  w.uvarint(metadata_.size());
  for (const auto& [key, value] : metadata_) {
    w.str(key);
    w.str(value);
  }
  w.raw(body_);
  w.uvarint(transient_.size());
  for (const auto& [key, value] : transient_) {
    w.str(key);
    w.str(value);
  }
}

Item Item::deserialize(ByteReader& r) {
  Item item;
  item.id_ = ItemId(r.uvarint());
  item.version_ = Version::deserialize(r);
  item.deleted_ = r.u8() != 0;
  const std::uint64_t md_count = r.uvarint();
  for (std::uint64_t i = 0; i < md_count; ++i) {
    std::string key = r.str();
    item.metadata_[std::move(key)] = r.str();
  }
  item.body_ = r.raw();
  const std::uint64_t tr_count = r.uvarint();
  for (std::uint64_t i = 0; i < tr_count; ++i) {
    std::string key = r.str();
    item.transient_[std::move(key)] = r.str();
  }
  return item;
}

}  // namespace pfrdtn::repl
