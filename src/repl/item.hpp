#pragma once

/// \file item.hpp
/// Replicated data items. An item carries replicated state (metadata
/// map + opaque body, both covered by the item's version) and
/// *transient* per-copy state that is never replicated and never bumps
/// the version — the substrate feature the paper's DTN policies rely on
/// for TTLs, copy budgets and hop counts ("host-specific metadata
/// fields must be treated differently by the PFR system: updates to
/// these fields should not be replicated").

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "repl/version.hpp"
#include "util/ids.hpp"

namespace pfrdtn::repl {

/// Well-known metadata keys shared between the substrate's address
/// filters and the DTN messaging application.
namespace meta {
inline constexpr const char* kSource = "src";
inline constexpr const char* kDest = "dest";
inline constexpr const char* kType = "type";
inline constexpr const char* kCreated = "created";
inline constexpr const char* kTags = "tags";
}  // namespace meta

/// Encode / decode a set of host ids as a metadata value ("3,17,42").
std::string encode_hosts(const std::vector<HostId>& hosts);
std::vector<HostId> decode_hosts(std::string_view value);

class Item {
 public:
  Item() = default;
  Item(ItemId id, Version version, std::map<std::string, std::string> md,
       std::vector<std::uint8_t> body, bool deleted = false)
      : id_(id),
        version_(version),
        metadata_(std::move(md)),
        body_(std::move(body)),
        deleted_(deleted) {}

  [[nodiscard]] ItemId id() const { return id_; }
  [[nodiscard]] const Version& version() const { return version_; }
  [[nodiscard]] bool deleted() const { return deleted_; }

  [[nodiscard]] const std::map<std::string, std::string>& metadata()
      const {
    return metadata_;
  }
  [[nodiscard]] std::optional<std::string> meta(
      std::string_view key) const;
  [[nodiscard]] const std::vector<std::uint8_t>& body() const {
    return body_;
  }

  /// Destination addresses parsed from the `dest` metadata attribute
  /// (empty for non-message items). Parsed lazily and cached — filters
  /// consult this on every sync candidate scan.
  [[nodiscard]] const std::vector<HostId>& dest_addresses() const;

  // --- transient, per-copy state (not versioned, not replicated as an
  // update; it is carried on the wire with the copy being transferred
  // so that, e.g., a forwarded copy arrives with a decremented TTL) ---

  [[nodiscard]] std::optional<std::string> transient(
      std::string_view key) const;
  void set_transient(std::string key, std::string value) {
    transient_[std::move(key)] = std::move(value);
  }
  void clear_transient(std::string_view key) {
    transient_.erase(std::string(key));
  }
  [[nodiscard]] const std::map<std::string, std::string>&
  transient_all() const {
    return transient_;
  }

  /// Convenience accessors for integer-valued transient fields.
  [[nodiscard]] std::optional<std::int64_t> transient_int(
      std::string_view key) const;
  void set_transient_int(std::string key, std::int64_t value) {
    set_transient(std::move(key), std::to_string(value));
  }

  /// Replace replicated content, producing the given new version.
  /// Transient state is dropped: it belonged to the old copy.
  void supersede(Version v, std::map<std::string, std::string> md,
                 std::vector<std::uint8_t> body, bool deleted);

  /// Approximate wire size of the replicated part, for traffic
  /// accounting.
  [[nodiscard]] std::size_t wire_size() const;

  void serialize(ByteWriter& w) const;
  static Item deserialize(ByteReader& r);

 private:
  ItemId id_{};
  Version version_{};
  std::map<std::string, std::string> metadata_;
  std::vector<std::uint8_t> body_;
  bool deleted_ = false;
  std::map<std::string, std::string> transient_;
  mutable std::optional<std::vector<HostId>> dest_cache_;
};

}  // namespace pfrdtn::repl
