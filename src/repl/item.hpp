#pragma once

/// \file item.hpp
/// Replicated data items. An item carries replicated state (metadata
/// map + opaque body, both covered by the item's version) and
/// *transient* per-copy state that is never replicated and never bumps
/// the version — the substrate feature the paper's DTN policies rely on
/// for TTLs, copy budgets and hop counts ("host-specific metadata
/// fields must be treated differently by the PFR system: updates to
/// these fields should not be replicated").
///
/// The replicated part is an immutable, refcounted Payload shared
/// between every copy of the same version: copying an Item bumps a
/// reference count instead of deep-copying the metadata map and body,
/// so the sync hot path (batch building, batch application, store
/// insertion) moves pointers, not bytes. Derived values every sync
/// consults — the parsed `dest` address list and the replicated wire
/// size — are computed once per payload and shared with it.

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "repl/version.hpp"
#include "util/ids.hpp"

namespace pfrdtn::repl {

/// Well-known metadata keys shared between the substrate's address
/// filters and the DTN messaging application.
namespace meta {
inline constexpr const char* kSource = "src";
inline constexpr const char* kDest = "dest";
inline constexpr const char* kType = "type";
inline constexpr const char* kCreated = "created";
inline constexpr const char* kTags = "tags";
}  // namespace meta

/// Encode / decode a set of host ids as a metadata value ("3,17,42").
std::string encode_hosts(const std::vector<HostId>& hosts);
std::vector<HostId> decode_hosts(std::string_view value);

class Item {
 public:
  /// The immutable replicated part of an item, shared by every copy of
  /// the same version. Construct only through make(): the cached
  /// fields (parsed dest addresses, replicated wire size) are derived
  /// from the replicated fields at construction and must stay in step.
  struct Payload {
    ItemId id{};
    Version version{};
    std::map<std::string, std::string> metadata;
    std::vector<std::uint8_t> body;
    bool deleted = false;

    /// Destination addresses parsed from the `dest` metadata attribute
    /// (empty for non-message items) — filters consult this on every
    /// sync candidate scan, the store keys its inverted index on it.
    std::vector<HostId> dest_addresses;
    /// Serialized byte count of the replicated part (everything but
    /// the per-copy transient map), for O(1) traffic accounting.
    std::size_t replicated_wire_size = 0;

    /// `replicated_wire_size`, when the caller already knows it (the
    /// deserializer measures the bytes it consumed), skips the scratch
    /// serialization otherwise needed to fill the cache.
    static std::shared_ptr<const Payload> make(
        ItemId id, Version version,
        std::map<std::string, std::string> metadata,
        std::vector<std::uint8_t> body, bool deleted,
        std::optional<std::size_t> replicated_wire_size = std::nullopt);
  };
  using PayloadPtr = std::shared_ptr<const Payload>;

  /// Default-constructed items share one invalid empty payload.
  Item() : payload_(empty_payload()) {}
  Item(ItemId id, Version version, std::map<std::string, std::string> md,
       std::vector<std::uint8_t> body, bool deleted = false)
      : payload_(Payload::make(id, version, std::move(md), std::move(body),
                               deleted)) {}
  /// A fresh copy of an existing payload, with empty transient state.
  explicit Item(PayloadPtr payload) : payload_(std::move(payload)) {}

  [[nodiscard]] const PayloadPtr& payload() const { return payload_; }

  [[nodiscard]] ItemId id() const { return payload_->id; }
  [[nodiscard]] const Version& version() const {
    return payload_->version;
  }
  [[nodiscard]] bool deleted() const { return payload_->deleted; }

  [[nodiscard]] const std::map<std::string, std::string>& metadata()
      const {
    return payload_->metadata;
  }
  [[nodiscard]] std::optional<std::string> meta(
      std::string_view key) const;
  [[nodiscard]] const std::vector<std::uint8_t>& body() const {
    return payload_->body;
  }

  /// Destination addresses parsed from the `dest` metadata attribute
  /// (empty for non-message items). Cached on the shared payload.
  [[nodiscard]] const std::vector<HostId>& dest_addresses() const {
    return payload_->dest_addresses;
  }

  // --- transient, per-copy state (not versioned, not replicated as an
  // update; it is carried on the wire with the copy being transferred
  // so that, e.g., a forwarded copy arrives with a decremented TTL) ---

  [[nodiscard]] std::optional<std::string> transient(
      std::string_view key) const;
  void set_transient(std::string key, std::string value) {
    transient_[std::move(key)] = std::move(value);
  }
  void clear_transient(std::string_view key) {
    transient_.erase(std::string(key));
  }
  [[nodiscard]] const std::map<std::string, std::string>&
  transient_all() const {
    return transient_;
  }
  /// Replace the whole transient map (WAL replay of a logged
  /// policy-state snapshot; see src/persist/).
  void replace_transients(std::map<std::string, std::string> all) {
    transient_ = std::move(all);
  }

  /// Convenience accessors for integer-valued transient fields.
  [[nodiscard]] std::optional<std::int64_t> transient_int(
      std::string_view key) const;
  void set_transient_int(std::string key, std::int64_t value) {
    set_transient(std::move(key), std::to_string(value));
  }

  /// Replace replicated content, producing the given new version.
  /// Transient state is dropped: it belonged to the old copy.
  void supersede(Version v, std::map<std::string, std::string> md,
                 std::vector<std::uint8_t> body, bool deleted);

  /// Supersede by adopting another copy's payload (a refcount bump, no
  /// deep copy) — the remote-apply fast path. Same domination contract
  /// and transient-dropping semantics as supersede().
  void adopt_payload(PayloadPtr payload);

  /// Wire size of this copy as transmitted (replicated part, cached on
  /// the payload, plus this copy's transient fields).
  [[nodiscard]] std::size_t wire_size() const;

  void serialize(ByteWriter& w) const;
  static Item deserialize(ByteReader& r);

 private:
  static const PayloadPtr& empty_payload();

  PayloadPtr payload_;
  std::map<std::string, std::string> transient_;
};

/// Restricted mutable view of an item: holders may read everything but
/// mutate only the transient (per-copy, unversioned) metadata — the
/// substrate's "internal interface that avoids generating a new version
/// number". Handed to forwarding policies and to store clients; the
/// shared payload stays immutable behind it by construction.
class TransientView {
 public:
  explicit TransientView(Item& item) : item_(&item) {}

  [[nodiscard]] const Item& item() const { return *item_; }

  [[nodiscard]] std::optional<std::int64_t> get_int(
      std::string_view key) const {
    return item_->transient_int(key);
  }
  void set_int(std::string key, std::int64_t value) {
    item_->set_transient_int(std::move(key), value);
  }
  [[nodiscard]] std::optional<std::string> get(
      std::string_view key) const {
    return item_->transient(key);
  }
  void set(std::string key, std::string value) {
    item_->set_transient(std::move(key), std::move(value));
  }

 private:
  Item* item_;
};

}  // namespace pfrdtn::repl
