#include "repl/knowledge.hpp"

#include <algorithm>

#include "util/hash.hpp"

namespace pfrdtn::repl {

bool Knowledge::knows(const Item& item, const Version& v) const {
  if (universal_.contains(v.author, v.counter)) return true;
  return std::any_of(fragments_.begin(), fragments_.end(),
                     [&](const Fragment& fragment) {
                       return fragment.versions.contains(v.author,
                                                         v.counter) &&
                              fragment.scope.matches(item);
                     });
}

void Knowledge::drop_fragments_matching(const Item& item) {
  const std::size_t dropped =
      std::erase_if(fragments_, [&](const Fragment& fragment) {
        return fragment.scope.matches(item);
      });
  if (dropped > 0) touch();
}

void Knowledge::add_fragment(Fragment fragment) {
  if (fragment.scope.provably_empty() || fragment.versions.empty())
    return;
  // Anything the universal set already covers adds nothing. (This is
  // also what keeps the summary caches warm across converged syncs:
  // re-learning knowledge we already hold must not bump the revision.)
  if (universal_.contains_all(fragment.versions)) return;
  for (auto& existing : fragments_) {
    if (existing.scope.equals(fragment.scope)) {
      if (existing.versions.contains_all(fragment.versions)) return;
      existing.versions.merge(fragment.versions);
      touch();
      return;
    }
    // Subsumed by a wider, richer fragment: drop the new one.
    if (existing.scope.subsumes(fragment.scope) &&
        existing.versions.contains_all(fragment.versions)) {
      return;
    }
  }
  // Drop existing fragments the new one strictly covers.
  std::erase_if(fragments_, [&](const Fragment& existing) {
    return fragment.scope.subsumes(existing.scope) &&
           fragment.versions.contains_all(existing.versions);
  });
  fragments_.push_back(std::move(fragment));
  enforce_fragment_cap();
  touch();
}

void Knowledge::enforce_fragment_cap() {
  if (fragments_.size() <= kMaxFragments) return;
  // Forget the lightest fragments first; forgetting is always safe.
  std::sort(fragments_.begin(), fragments_.end(),
            [](const Fragment& a, const Fragment& b) {
              return a.versions.weight() > b.versions.weight();
            });
  fragments_.resize(kMaxFragments);
}

void Knowledge::merge_scoped(const Knowledge& other, const Filter& scope) {
  if (scope.provably_empty()) return;
  add_fragment(Fragment{scope, other.universal_});
  for (const Fragment& fragment : other.fragments_) {
    add_fragment(
        Fragment{scope.intersect(fragment.scope), fragment.versions});
  }
}

std::size_t Knowledge::size_bytes() const {
  ByteWriter w;
  serialize(w);
  return w.size();
}

std::size_t Knowledge::weight() const {
  std::size_t total = universal_.weight();
  for (const Fragment& fragment : fragments_)
    total += fragment.versions.weight();
  return total;
}

std::uint64_t Knowledge::wire_digest() const {
  if (digest_cache_revision_ != revision_) {
    ByteWriter w;
    serialize(w);
    digest_cache_ = fnv1a64(w.bytes());
    digest_cache_revision_ = revision_;
  }
  return digest_cache_;
}

std::uint64_t Knowledge::event_count() const {
  std::uint64_t total = universal_.event_count();
  for (const Fragment& fragment : fragments_)
    total += fragment.versions.event_count();
  return total;
}

void Knowledge::serialize(ByteWriter& w) const {
  universal_.serialize(w);
  w.uvarint(fragments_.size());
  for (const Fragment& fragment : fragments_) {
    fragment.scope.serialize(w);
    fragment.versions.serialize(w);
  }
}

Knowledge Knowledge::deserialize(ByteReader& r) {
  Knowledge k;
  k.universal_ = VersionSet::deserialize(r);
  const std::uint64_t n = r.uvarint();
  for (std::uint64_t i = 0; i < n; ++i) {
    r.charge_elements();
    Filter scope = Filter::deserialize(r);
    VersionSet versions = VersionSet::deserialize(r);
    k.add_fragment(Fragment{std::move(scope), std::move(versions)});
  }
  return k;
}

void Knowledge::serialize_exact(ByteWriter& w) const {
  universal_.serialize_exact(w);
  w.uvarint(fragments_.size());
  for (const Fragment& fragment : fragments_) {
    fragment.scope.serialize(w);
    fragment.versions.serialize_exact(w);
  }
}

Knowledge Knowledge::deserialize_exact(ByteReader& r) {
  Knowledge k;
  k.universal_ = VersionSet::deserialize_exact(r);
  const std::uint64_t n = r.uvarint();
  PFRDTN_REQUIRE(n <= kMaxFragments);
  k.fragments_.reserve(n);
  // Fragments are restored verbatim, bypassing add_fragment()'s
  // dedup/subsumption so the recovered vector matches the snapshotted
  // one element for element.
  for (std::uint64_t i = 0; i < n; ++i) {
    Filter scope = Filter::deserialize(r);
    VersionSet versions = VersionSet::deserialize_exact(r);
    k.fragments_.push_back(
        Fragment{std::move(scope), std::move(versions)});
  }
  return k;
}

}  // namespace pfrdtn::repl
