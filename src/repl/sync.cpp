#include "repl/sync.hpp"

#include <algorithm>

namespace pfrdtn::repl {

void SyncRequest::serialize(ByteWriter& w) const {
  w.uvarint(target.value());
  filter.serialize(w);
  knowledge.serialize(w);
  w.raw(routing_state);
}

SyncRequest SyncRequest::deserialize(ByteReader& r) {
  SyncRequest req;
  req.target = ReplicaId(r.uvarint());
  req.filter = Filter::deserialize(r);
  req.knowledge = Knowledge::deserialize(r);
  req.routing_state = r.raw();
  return req;
}

void SyncBatch::serialize(ByteWriter& w) const {
  w.uvarint(source.value());
  w.u8(complete ? 1 : 0);
  w.uvarint(items.size());
  for (const Item& item : items) item.serialize(w);
  source_knowledge.serialize(w);
}

SyncBatch SyncBatch::deserialize(ByteReader& r) {
  SyncBatch batch;
  batch.source = ReplicaId(r.uvarint());
  batch.complete = r.u8() != 0;
  const std::uint64_t n = r.uvarint();
  // Never trust a wire count for allocation: each item occupies at
  // least one byte, so remaining() bounds the plausible count.
  batch.items.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(n, r.remaining())));
  for (std::uint64_t i = 0; i < n; ++i)
    batch.items.push_back(Item::deserialize(r));
  batch.source_knowledge = Knowledge::deserialize(r);
  return batch;
}

void SyncStats::accumulate(const SyncStats& other) {
  items_sent += other.items_sent;
  items_new += other.items_new;
  items_stale += other.items_stale;
  evictions += other.evictions;
  request_bytes += other.request_bytes;
  batch_bytes += other.batch_bytes;
  complete = complete && other.complete;
}

namespace {

struct Candidate {
  ItemId id{};
  Priority priority;
  bool matches_filter = false;
  std::uint64_t arrival_seq = 0;  ///< deterministic tie-break
};

}  // namespace

SyncRequest make_request(Replica& target, ForwardingPolicy* target_policy,
                         ReplicaId source_id, SimTime now) {
  const SyncContext target_ctx{target.id(), source_id, now};
  return SyncRequest{
      target.id(), target.filter(), target.knowledge(),
      target_policy ? target_policy->generate_request(target_ctx)
                    : std::vector<std::uint8_t>{}};
}

SyncBatch build_batch(Replica& source, ForwardingPolicy* source_policy,
                      const SyncRequest& request, SimTime now,
                      const SyncOptions& options) {
  const SyncContext source_ctx{source.id(), request.target, now};
  if (source_policy)
    source_policy->process_request(source_ctx, request.routing_state);

  std::vector<Candidate> candidates;
  ItemStore& store = source.store_mutable();
  if (source_policy == nullptr) {
    // Without a forwarding policy only filter-matching items can enter
    // the batch, so enumerate exactly those through the store's filter
    // index (O(matching) for address filters) instead of scanning every
    // entry. Visit order does not matter: the sort below is a total
    // order (arrival_seq is unique), so indexed and scan enumeration
    // yield byte-identical batches.
    store.for_filter_matches(
        request.filter, [&](const ItemStore::Entry& entry) {
          if (!request.knowledge.knows(entry.item,
                                       entry.item.version())) {
            candidates.push_back(
                {entry.item.id(), Priority::at(PriorityClass::Highest),
                 /*matches_filter=*/true, entry.arrival_seq});
          }
          return true;
        });
  } else {
    store.for_each_transient([&](const ItemStore::Entry& entry,
                                 TransientView stored) {
      if (request.knowledge.knows(entry.item, entry.item.version()))
        return;
      if (request.filter.matches(entry.item)) {
        candidates.push_back(
            {entry.item.id(), Priority::at(PriorityClass::Highest),
             /*matches_filter=*/true, entry.arrival_seq});
        return;
      }
      const Priority priority = source_policy->to_send(source_ctx, stored);
      if (priority.send()) {
        PFRDTN_REQUIRE(priority.cls != PriorityClass::Highest);
        candidates.push_back({entry.item.id(), priority,
                              /*matches_filter=*/false,
                              entry.arrival_seq});
      }
    });
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority.cls != b.priority.cls ||
                  a.priority.cost != b.priority.cost) {
                return a.priority.before(b.priority);
              }
              return a.arrival_seq < b.arrival_seq;
            });

  bool complete = true;
  if (options.max_items && candidates.size() > *options.max_items) {
    for (std::size_t i = *options.max_items; i < candidates.size(); ++i) {
      if (candidates[i].matches_filter) complete = false;
    }
    candidates.resize(*options.max_items);
  }

  SyncBatch batch;
  batch.source = source.id();
  batch.complete = complete;
  batch.source_knowledge = source.knowledge();
  batch.items.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    const auto* entry = store.find(candidate.id);
    PFRDTN_ENSURE(entry != nullptr);
    // A payload refcount bump plus the per-copy transient fields — no
    // metadata/body copy on the hot path.
    Item outgoing = entry->item;
    if (source_policy && !candidate.matches_filter) {
      auto stored = store.transient_mutable(candidate.id);
      PFRDTN_ENSURE(stored.has_value());
      source_policy->on_forward(source_ctx, *stored,
                                TransientView(outgoing));
      // on_forward charges per-copy routing state (TTL, copy budgets)
      // on the stored copy — a store mutation outside the replica
      // funnel, so the durability sink is told explicitly.
      source.note_policy_state(candidate.id);
    }
    batch.items.push_back(std::move(outgoing));
  }
  return batch;
}

void BatchApplier::apply(const Item& item) {
  ++result_.stats.items_sent;
  result_.received_events.push_back(item.version());
  const ApplyOutcome outcome =
      target_->apply_remote(item, result_.evicted);
  switch (outcome) {
    case ApplyOutcome::StoredNew:
    case ApplyOutcome::UpdatedExisting:
      ++result_.stats.items_new;
      if (target_->filter().matches(item))
        result_.delivered.push_back(item);
      break;
    case ApplyOutcome::Stale:
      ++result_.stats.items_stale;
      break;
  }
}

SyncResult BatchApplier::finish(bool complete,
                                const Knowledge& source_knowledge) {
  result_.stats.complete = complete;
  result_.stats.evictions = result_.evicted.size();
  // unsafe_learn_truncated deliberately re-opens the truncation hole so
  // the check harness can demonstrate it detects the corruption.
  if ((complete || options_.unsafe_learn_truncated) &&
      options_.learn_knowledge) {
    target_->learn(source_knowledge);
  }
  return std::move(result_);
}

SyncResult BatchApplier::abandon() {
  result_.stats.complete = false;
  result_.stats.evictions = result_.evicted.size();
  return std::move(result_);
}

SyncResult apply_batch(Replica& target, const SyncBatch& batch,
                       const SyncOptions& options) {
  BatchApplier applier(target, options);
  for (const Item& item : batch.items) applier.apply(item);
  return applier.finish(batch.complete, batch.source_knowledge);
}

std::vector<std::uint8_t> encode_batch_begin(const SyncBatch& batch) {
  ByteWriter w;
  w.uvarint(batch.source.value());
  w.u8(batch.complete ? 1 : 0);
  w.uvarint(batch.items.size());
  return w.take();
}

BatchBeginInfo decode_batch_begin(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  BatchBeginInfo info;
  info.source = ReplicaId(r.uvarint());
  info.complete = r.u8() != 0;
  info.count = r.uvarint();
  PFRDTN_REQUIRE(r.done());
  return info;
}

std::size_t wire_size(const SyncRequest& request) {
  ByteWriter w;
  request.serialize(w);
  return framed_size(w.size());
}

std::size_t wire_size(const SyncBatch& batch) {
  std::size_t total = framed_size(encode_batch_begin(batch).size());
  // Item::wire_size() is the replicated size cached on the shared
  // payload plus the copy's transient fields — byte-for-byte what
  // serialize() would write, without re-serializing metadata and body.
  for (const Item& item : batch.items)
    total += framed_size(item.wire_size());
  ByteWriter w;
  batch.source_knowledge.serialize(w);
  total += framed_size(w.size());
  return total;
}

SyncResult run_sync(Replica& source, Replica& target,
                    ForwardingPolicy* source_policy,
                    ForwardingPolicy* target_policy, SimTime now,
                    const SyncOptions& options) {
  // ---- target builds and "sends" the request ----
  const SyncRequest request =
      make_request(target, target_policy, source.id(), now);
  ByteWriter request_writer;
  request.serialize(request_writer);
  const std::size_t request_bytes = framed_size(request_writer.size());
  ByteReader request_reader(request_writer.bytes());
  const SyncRequest received = SyncRequest::deserialize(request_reader);
  PFRDTN_ENSURE(request_reader.done());

  // ---- source answers ----
  const SyncBatch batch =
      build_batch(source, source_policy, received, now, options);
  ByteWriter batch_writer;
  batch.serialize(batch_writer);
  ByteReader batch_reader(batch_writer.bytes());
  const SyncBatch arrived = SyncBatch::deserialize(batch_reader);
  PFRDTN_ENSURE(batch_reader.done());

  // ---- target applies the batch ----
  SyncResult result = apply_batch(target, arrived, options);
  result.stats.request_bytes = request_bytes;
  // Measure the batch as *sent*, not as re-serialized after the
  // roundtrip: deserializing knowledge folds extras into the version
  // vector, so `arrived` can re-encode smaller than what a transport
  // would actually carry.
  result.stats.batch_bytes = wire_size(batch);
  return result;
}

}  // namespace pfrdtn::repl
