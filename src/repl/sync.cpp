#include "repl/sync.hpp"

#include <algorithm>

namespace pfrdtn::repl {

void SyncRequest::serialize(ByteWriter& w) const {
  w.uvarint(target.value());
  filter.serialize(w);
  knowledge.serialize(w);
  w.raw(routing_state);
}

SyncRequest SyncRequest::deserialize(ByteReader& r) {
  SyncRequest req;
  req.target = ReplicaId(r.uvarint());
  req.filter = Filter::deserialize(r);
  req.knowledge = Knowledge::deserialize(r);
  req.routing_state = r.raw();
  return req;
}

void SummaryRequestInfo::serialize(ByteWriter& w) const {
  w.uvarint(target.value());
  filter.serialize(w);
  summary.serialize(w);
  w.raw(routing_state);
}

SummaryRequestInfo SummaryRequestInfo::deserialize(ByteReader& r) {
  SummaryRequestInfo req;
  req.target = ReplicaId(r.uvarint());
  req.filter = Filter::deserialize(r);
  req.summary = KnowledgeSummary::deserialize(r);
  req.routing_state = r.raw();
  return req;
}

void SyncBatch::serialize(ByteWriter& w) const {
  w.uvarint(source.value());
  w.u8(complete ? 1 : 0);
  w.uvarint(items.size());
  for (const Item& item : items) item.serialize(w);
  source_knowledge.serialize(w);
}

SyncBatch SyncBatch::deserialize(ByteReader& r) {
  SyncBatch batch;
  batch.source = ReplicaId(r.uvarint());
  batch.complete = r.u8() != 0;
  const std::uint64_t n = r.uvarint();
  // Never trust a wire count for allocation: each item occupies at
  // least one byte, so remaining() bounds the plausible count.
  batch.items.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(n, r.remaining())));
  for (std::uint64_t i = 0; i < n; ++i)
    batch.items.push_back(Item::deserialize(r));
  batch.source_knowledge = Knowledge::deserialize(r);
  return batch;
}

void SyncStats::accumulate(const SyncStats& other) {
  items_sent += other.items_sent;
  items_new += other.items_new;
  items_stale += other.items_stale;
  evictions += other.evictions;
  request_bytes += other.request_bytes;
  batch_bytes += other.batch_bytes;
  complete = complete && other.complete;
}

namespace {

struct Candidate {
  ItemId id{};
  Priority priority;
  bool matches_filter = false;
  std::uint64_t arrival_seq = 0;  ///< deterministic tie-break
};

}  // namespace

SyncRequest make_request(Replica& target, ForwardingPolicy* target_policy,
                         ReplicaId source_id, SimTime now) {
  const SyncContext target_ctx{target.id(), source_id, now};
  return SyncRequest{
      target.id(), target.filter(), target.knowledge(),
      target_policy ? target_policy->generate_request(target_ctx)
                    : std::vector<std::uint8_t>{}};
}

SyncBatch build_batch(Replica& source, ForwardingPolicy* source_policy,
                      const SyncRequest& request, SimTime now,
                      const SyncOptions& options,
                      bool process_routing_state) {
  const SyncContext source_ctx{source.id(), request.target, now};
  if (source_policy && process_routing_state)
    source_policy->process_request(source_ctx, request.routing_state);

  std::vector<Candidate> candidates;
  ItemStore& store = source.store_mutable();
  if (source_policy == nullptr) {
    // Without a forwarding policy only filter-matching items can enter
    // the batch, so enumerate exactly those through the store's filter
    // index (O(matching) for address filters) instead of scanning every
    // entry. Visit order does not matter: the sort below is a total
    // order (arrival_seq is unique), so indexed and scan enumeration
    // yield byte-identical batches.
    store.for_filter_matches(
        request.filter, [&](const ItemStore::Entry& entry) {
          if (!request.knowledge.knows(entry.item,
                                       entry.item.version())) {
            candidates.push_back(
                {entry.item.id(), Priority::at(PriorityClass::Highest),
                 /*matches_filter=*/true, entry.arrival_seq});
          }
          return true;
        });
  } else {
    store.for_each_transient([&](const ItemStore::Entry& entry,
                                 TransientView stored) {
      if (request.knowledge.knows(entry.item, entry.item.version()))
        return;
      if (request.filter.matches(entry.item)) {
        candidates.push_back(
            {entry.item.id(), Priority::at(PriorityClass::Highest),
             /*matches_filter=*/true, entry.arrival_seq});
        return;
      }
      const Priority priority = source_policy->to_send(source_ctx, stored);
      if (priority.send()) {
        PFRDTN_REQUIRE(priority.cls != PriorityClass::Highest);
        candidates.push_back({entry.item.id(), priority,
                              /*matches_filter=*/false,
                              entry.arrival_seq});
      }
    });
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority.cls != b.priority.cls ||
                  a.priority.cost != b.priority.cost) {
                return a.priority.before(b.priority);
              }
              return a.arrival_seq < b.arrival_seq;
            });

  bool complete = true;
  if (options.max_items && candidates.size() > *options.max_items) {
    for (std::size_t i = *options.max_items; i < candidates.size(); ++i) {
      if (candidates[i].matches_filter) complete = false;
    }
    candidates.resize(*options.max_items);
  }

  SyncBatch batch;
  batch.source = source.id();
  batch.complete = complete;
  batch.source_knowledge = source.knowledge();
  batch.items.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    const auto* entry = store.find(candidate.id);
    PFRDTN_ENSURE(entry != nullptr);
    // A payload refcount bump plus the per-copy transient fields — no
    // metadata/body copy on the hot path.
    Item outgoing = entry->item;
    if (source_policy && !candidate.matches_filter) {
      auto stored = store.transient_mutable(candidate.id);
      PFRDTN_ENSURE(stored.has_value());
      source_policy->on_forward(source_ctx, *stored,
                                TransientView(outgoing));
      // on_forward charges per-copy routing state (TTL, copy budgets)
      // on the stored copy — a store mutation outside the replica
      // funnel, so the durability sink is told explicitly.
      source.note_policy_state(candidate.id);
    }
    batch.items.push_back(std::move(outgoing));
  }
  return batch;
}

void BatchApplier::apply(const Item& item) {
  ++result_.stats.items_sent;
  result_.received_events.push_back(item.version());
  const ApplyOutcome outcome =
      target_->apply_remote(item, result_.evicted);
  switch (outcome) {
    case ApplyOutcome::StoredNew:
    case ApplyOutcome::UpdatedExisting:
      ++result_.stats.items_new;
      if (target_->filter().matches(item))
        result_.delivered.push_back(item);
      break;
    case ApplyOutcome::Stale:
      ++result_.stats.items_stale;
      break;
  }
}

SyncResult BatchApplier::finish(bool complete,
                                const Knowledge& source_knowledge) {
  result_.stats.complete = complete;
  result_.stats.evictions = result_.evicted.size();
  // unsafe_learn_truncated deliberately re-opens the truncation hole so
  // the check harness can demonstrate it detects the corruption.
  if ((complete || options_.unsafe_learn_truncated) &&
      options_.learn_knowledge) {
    target_->learn(source_knowledge);
  }
  return std::move(result_);
}

SyncResult BatchApplier::abandon() {
  result_.stats.complete = false;
  result_.stats.evictions = result_.evicted.size();
  return std::move(result_);
}

SyncResult apply_batch(Replica& target, const SyncBatch& batch,
                       const SyncOptions& options) {
  BatchApplier applier(target, options);
  for (const Item& item : batch.items) applier.apply(item);
  return applier.finish(batch.complete, batch.source_knowledge);
}

SummaryRequestInfo make_summary_request(Replica& target,
                                        ForwardingPolicy* target_policy,
                                        ReplicaId source_id, SimTime now,
                                        const SummaryParams& params) {
  const SyncContext target_ctx{target.id(), source_id, now};
  SummaryRequestInfo req;
  req.target = target.id();
  req.filter = target.filter();
  req.summary = summarize(target.knowledge(), params);
  req.routing_state = target_policy
                          ? target_policy->generate_request(target_ctx)
                          : std::vector<std::uint8_t>{};
  return req;
}

SummaryAnswer answer_summary(Replica& source,
                             ForwardingPolicy* source_policy,
                             const SummaryRequestInfo& request, SimTime now,
                             const SyncOptions& options) {
  // Policy parity with the exact path: the routing state is processed
  // exactly once per sync, here, whatever the answer turns out to be.
  const SyncContext source_ctx{source.id(), request.target, now};
  if (source_policy)
    source_policy->process_request(source_ctx, request.routing_state);

  SummaryAnswer answer;
  // summary_force_collision simulates the 2^-64 digest collision: a
  // spurious Match that defers items to a future exact sync.
  if (options.summary_force_collision ||
      request.summary.digest == source.knowledge().wire_digest()) {
    answer.kind = SummaryAnswer::Kind::Match;
    return answer;
  }

  if (options.unsafe_summary_skip_fallback) {
    // TESTING ONLY — the skip-fallback mutant: answer the mismatch with
    // an empty "complete" batch carrying real knowledge, so the target
    // learns events for items it never received. The check harness's
    // knowledge-soundness oracle must flag exactly this.
    answer.kind = SummaryAnswer::Kind::Batch;
    answer.batch.source = source.id();
    answer.batch.complete = true;
    answer.batch.source_knowledge = source.knowledge();
    return answer;
  }

  if (request.summary.bloom.has_value()) {
    const BloomFilter& bloom = *request.summary.bloom;
    bool any_hit = false;
    source.store().for_each([&](const ItemStore::Entry& entry) {
      const Version& v = entry.item.version();
      if (bloom.maybe_contains(v.author, v.counter)) any_hit = true;
    });
    if (!any_hit) {
      // Bloom misses are definitive: the target knows no stored item's
      // event, so the batch built against *empty* knowledge is exactly
      // the batch the exact path would have built — same candidates,
      // honest complete flag, real source knowledge. Routing state was
      // already processed above.
      SyncRequest exact;
      exact.target = request.target;
      exact.filter = request.filter;
      exact.routing_state = request.routing_state;
      answer.kind = SummaryAnswer::Kind::Batch;
      answer.batch = build_batch(source, source_policy, exact, now, options,
                                 /*process_routing_state=*/false);
      return answer;
    }
  }

  answer.kind = SummaryAnswer::Kind::Miss;
  return answer;
}

SyncResult apply_summary_match(Replica& target,
                               const SyncOptions& options) {
  // Equal digests mean the source's wire knowledge is byte-identical
  // to our own, so the complete-sync finish the exact path would run
  // is reproducible locally: learn decode(encode(own knowledge)).
  ByteWriter w;
  target.knowledge().serialize(w);
  ByteReader r(w.bytes());
  const Knowledge source_knowledge = Knowledge::deserialize(r);
  PFRDTN_ENSURE(r.done());
  BatchApplier applier(target, options);
  return applier.finish(/*complete=*/true, source_knowledge);
}

std::vector<std::uint8_t> encode_batch_begin(const SyncBatch& batch) {
  ByteWriter w;
  w.uvarint(batch.source.value());
  w.u8(batch.complete ? 1 : 0);
  w.uvarint(batch.items.size());
  return w.take();
}

BatchBeginInfo decode_batch_begin(
    const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  BatchBeginInfo info;
  info.source = ReplicaId(r.uvarint());
  info.complete = r.u8() != 0;
  info.count = r.uvarint();
  PFRDTN_REQUIRE(r.done());
  return info;
}

std::vector<std::uint8_t> encode_summary_reply(ReplicaId source) {
  ByteWriter w;
  w.uvarint(source.value());
  return w.take();
}

ReplicaId decode_summary_reply(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  const ReplicaId source(r.uvarint());
  PFRDTN_REQUIRE(r.done());
  return source;
}

std::vector<std::uint8_t> encode_batch_ack(std::uint64_t items_applied) {
  ByteWriter w;
  w.uvarint(items_applied);
  return w.take();
}

std::uint64_t decode_batch_ack(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  const std::uint64_t items_applied = r.uvarint();
  PFRDTN_REQUIRE(r.done());
  return items_applied;
}

std::vector<std::uint8_t> encode_error_frame(std::uint8_t code,
                                             const std::string& message) {
  // One code byte, then the message as the rest of the payload — no
  // length prefix, so the frame length bounds the message exactly.
  std::vector<std::uint8_t> payload;
  payload.reserve(1 + message.size());
  payload.push_back(code);
  payload.insert(payload.end(), message.begin(), message.end());
  return payload;
}

SyncErrorInfo decode_error_frame(
    const std::vector<std::uint8_t>& payload) {
  PFRDTN_REQUIRE(!payload.empty());
  SyncErrorInfo info;
  info.code = payload[0];
  info.message.assign(payload.begin() + 1, payload.end());
  return info;
}

std::string sync_error_code_name(std::uint8_t code) {
  switch (code) {
    case kSyncErrorReadOnly:
      return "read-only";
    case kSyncErrorBusy:
      return "busy";
    case kSyncErrorDraining:
      return "draining";
    default:
      return "error-" + std::to_string(code);
  }
}

std::size_t wire_size(const SyncRequest& request) {
  ByteWriter w;
  request.serialize(w);
  return framed_size(w.size());
}

std::size_t wire_size(const SummaryRequestInfo& request) {
  ByteWriter w;
  request.serialize(w);
  return framed_size(w.size());
}

std::size_t wire_size(const SyncBatch& batch) {
  std::size_t total = framed_size(encode_batch_begin(batch).size());
  // Item::wire_size() is the replicated size cached on the shared
  // payload plus the copy's transient fields — byte-for-byte what
  // serialize() would write, without re-serializing metadata and body.
  for (const Item& item : batch.items)
    total += framed_size(item.wire_size());
  ByteWriter w;
  batch.source_knowledge.serialize(w);
  total += framed_size(w.size());
  return total;
}

namespace {

/// One serialize/deserialize round trip of a protocol message — the
/// in-process stand-in for a transport hop.
template <typename Message>
Message roundtrip(const Message& message, std::size_t& framed_bytes) {
  ByteWriter w;
  message.serialize(w);
  framed_bytes += framed_size(w.size());
  ByteReader r(w.bytes());
  Message received = Message::deserialize(r);
  PFRDTN_ENSURE(r.done());
  return received;
}

SyncResult run_summary_sync(Replica& source, Replica& target,
                            ForwardingPolicy* source_policy,
                            ForwardingPolicy* target_policy, SimTime now,
                            const SyncOptions& options) {
  // ---- target opens with the summary ----
  std::size_t request_bytes = 0;
  std::size_t batch_bytes = 0;
  const SummaryRequestInfo summary_request = make_summary_request(
      target, target_policy, source.id(), now, options.summary);
  const SummaryRequestInfo received =
      roundtrip(summary_request, request_bytes);

  // ---- source decides ----
  const SummaryAnswer answer =
      answer_summary(source, source_policy, received, now, options);

  const std::size_t reply_bytes =
      framed_size(encode_summary_reply(source.id()).size());
  switch (answer.kind) {
    case SummaryAnswer::Kind::Match: {
      batch_bytes += reply_bytes;  // the SummaryMatch frame
      SyncResult result = apply_summary_match(target, options);
      result.stats.request_bytes = request_bytes;
      result.stats.batch_bytes = batch_bytes;
      return result;
    }
    case SummaryAnswer::Kind::Batch: {
      SyncResult result =
          apply_batch(target, roundtrip(answer.batch, batch_bytes), options);
      // As in run_sync: measure the batch as sent, not re-serialized.
      result.stats.request_bytes = request_bytes;
      result.stats.batch_bytes = wire_size(answer.batch);
      return result;
    }
    case SummaryAnswer::Kind::Miss:
      break;
  }

  // ---- Miss: same-session exact fallback ----
  batch_bytes += reply_bytes;  // the SummaryMiss frame
  // The fallback request reuses the routing state the summary already
  // carried (and answer_summary already processed): policy hooks run
  // exactly once per sync on every path.
  const SyncRequest exact{target.id(), target.filter(), target.knowledge(),
                          summary_request.routing_state};
  const SyncRequest exact_received = roundtrip(exact, request_bytes);
  const SyncBatch batch =
      build_batch(source, source_policy, exact_received, now, options,
                  /*process_routing_state=*/false);
  std::size_t ignored = 0;
  SyncResult result = apply_batch(target, roundtrip(batch, ignored), options);
  result.stats.request_bytes = request_bytes;
  result.stats.batch_bytes = batch_bytes + wire_size(batch);
  return result;
}

}  // namespace

SyncResult run_sync(Replica& source, Replica& target,
                    ForwardingPolicy* source_policy,
                    ForwardingPolicy* target_policy, SimTime now,
                    const SyncOptions& options) {
  // The in-process path needs no negotiation, so Auto means On.
  if (options.summary_mode != SummaryMode::Off) {
    return run_summary_sync(source, target, source_policy, target_policy,
                            now, options);
  }

  // ---- target builds and "sends" the request ----
  const SyncRequest request =
      make_request(target, target_policy, source.id(), now);
  ByteWriter request_writer;
  request.serialize(request_writer);
  const std::size_t request_bytes = framed_size(request_writer.size());
  ByteReader request_reader(request_writer.bytes());
  const SyncRequest received = SyncRequest::deserialize(request_reader);
  PFRDTN_ENSURE(request_reader.done());

  // ---- source answers ----
  const SyncBatch batch =
      build_batch(source, source_policy, received, now, options);
  ByteWriter batch_writer;
  batch.serialize(batch_writer);
  ByteReader batch_reader(batch_writer.bytes());
  const SyncBatch arrived = SyncBatch::deserialize(batch_reader);
  PFRDTN_ENSURE(batch_reader.done());

  // ---- target applies the batch ----
  SyncResult result = apply_batch(target, arrived, options);
  result.stats.request_bytes = request_bytes;
  // Measure the batch as *sent*, not as re-serialized after the
  // roundtrip: deserializing knowledge folds extras into the version
  // vector, so `arrived` can re-encode smaller than what a transport
  // would actually carry.
  result.stats.batch_bytes = wire_size(batch);
  return result;
}

}  // namespace pfrdtn::repl
