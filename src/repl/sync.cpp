#include "repl/sync.hpp"

#include <algorithm>

namespace pfrdtn::repl {

void SyncRequest::serialize(ByteWriter& w) const {
  w.uvarint(target.value());
  filter.serialize(w);
  knowledge.serialize(w);
  w.raw(routing_state);
}

SyncRequest SyncRequest::deserialize(ByteReader& r) {
  SyncRequest req;
  req.target = ReplicaId(r.uvarint());
  req.filter = Filter::deserialize(r);
  req.knowledge = Knowledge::deserialize(r);
  req.routing_state = r.raw();
  return req;
}

void SyncBatch::serialize(ByteWriter& w) const {
  w.uvarint(source.value());
  w.u8(complete ? 1 : 0);
  w.uvarint(items.size());
  for (const Item& item : items) item.serialize(w);
  source_knowledge.serialize(w);
}

SyncBatch SyncBatch::deserialize(ByteReader& r) {
  SyncBatch batch;
  batch.source = ReplicaId(r.uvarint());
  batch.complete = r.u8() != 0;
  const std::uint64_t n = r.uvarint();
  // Never trust a wire count for allocation: each item occupies at
  // least one byte, so remaining() bounds the plausible count.
  batch.items.reserve(
      static_cast<std::size_t>(std::min<std::uint64_t>(n, r.remaining())));
  for (std::uint64_t i = 0; i < n; ++i)
    batch.items.push_back(Item::deserialize(r));
  batch.source_knowledge = Knowledge::deserialize(r);
  return batch;
}

void SyncStats::accumulate(const SyncStats& other) {
  items_sent += other.items_sent;
  items_new += other.items_new;
  items_stale += other.items_stale;
  evictions += other.evictions;
  request_bytes += other.request_bytes;
  batch_bytes += other.batch_bytes;
  complete = complete && other.complete;
}

namespace {

struct Candidate {
  ItemId id{};
  Priority priority;
  bool matches_filter = false;
  std::uint64_t arrival_seq = 0;  ///< deterministic tie-break
};

}  // namespace

SyncResult run_sync(Replica& source, Replica& target,
                    ForwardingPolicy* source_policy,
                    ForwardingPolicy* target_policy, SimTime now,
                    const SyncOptions& options) {
  SyncResult result;

  // ---- target builds and "sends" the request ----
  const SyncContext target_ctx{target.id(), source.id(), now};
  SyncRequest request{
      target.id(), target.filter(), target.knowledge(),
      target_policy ? target_policy->generate_request(target_ctx)
                    : std::vector<std::uint8_t>{}};
  ByteWriter request_writer;
  request.serialize(request_writer);
  result.stats.request_bytes = request_writer.size();
  ByteReader request_reader(request_writer.bytes());
  const SyncRequest received = SyncRequest::deserialize(request_reader);
  PFRDTN_ENSURE(request_reader.done());

  // ---- source side ----
  const SyncContext source_ctx{source.id(), target.id(), now};
  if (source_policy)
    source_policy->process_request(source_ctx, received.routing_state);

  std::vector<Candidate> candidates;
  source.store_mutable().for_each_mutable([&](ItemStore::Entry& entry) {
    if (received.knowledge.knows(entry.item, entry.item.version()))
      return;
    if (received.filter.matches(entry.item)) {
      candidates.push_back(
          {entry.item.id(), Priority::at(PriorityClass::Highest),
           /*matches_filter=*/true, entry.arrival_seq});
      return;
    }
    if (source_policy == nullptr) return;
    const Priority priority =
        source_policy->to_send(source_ctx, TransientView(entry.item));
    if (priority.send()) {
      PFRDTN_REQUIRE(priority.cls != PriorityClass::Highest);
      candidates.push_back({entry.item.id(), priority,
                            /*matches_filter=*/false,
                            entry.arrival_seq});
    }
  });

  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.priority.cls != b.priority.cls ||
                  a.priority.cost != b.priority.cost) {
                return a.priority.before(b.priority);
              }
              return a.arrival_seq < b.arrival_seq;
            });

  bool complete = true;
  if (options.max_items && candidates.size() > *options.max_items) {
    for (std::size_t i = *options.max_items; i < candidates.size(); ++i) {
      if (candidates[i].matches_filter) complete = false;
    }
    candidates.resize(*options.max_items);
  }

  SyncBatch batch;
  batch.source = source.id();
  batch.complete = complete;
  batch.source_knowledge = source.knowledge();
  batch.items.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    auto* entry = source.store_mutable().find_mutable(candidate.id);
    PFRDTN_ENSURE(entry != nullptr);
    Item outgoing = entry->item;  // copies transient state too
    if (source_policy && !candidate.matches_filter) {
      source_policy->on_forward(source_ctx, TransientView(entry->item),
                                TransientView(outgoing));
    }
    batch.items.push_back(std::move(outgoing));
  }

  ByteWriter batch_writer;
  batch.serialize(batch_writer);
  result.stats.batch_bytes = batch_writer.size();
  ByteReader batch_reader(batch_writer.bytes());
  const SyncBatch arrived = SyncBatch::deserialize(batch_reader);
  PFRDTN_ENSURE(batch_reader.done());

  // ---- target applies the batch ----
  result.stats.items_sent = arrived.items.size();
  result.stats.complete = arrived.complete;
  for (const Item& item : arrived.items) {
    const ApplyOutcome outcome =
        target.apply_remote(item, result.evicted);
    switch (outcome) {
      case ApplyOutcome::StoredNew:
      case ApplyOutcome::UpdatedExisting:
        ++result.stats.items_new;
        if (target.filter().matches(item)) result.delivered.push_back(item);
        break;
      case ApplyOutcome::Stale:
        ++result.stats.items_stale;
        break;
    }
  }
  result.stats.evictions = result.evicted.size();

  if (arrived.complete && options.learn_knowledge) {
    target.learn(arrived.source_knowledge);
  }
  return result;
}

}  // namespace pfrdtn::repl
