#include "repl/replica.hpp"

#include "util/logging.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::repl {

void Replica::require_writable(const char* op) const {
  if (read_only_) {
    throw ReadOnlyError("replica " + id_.str() + " is read-only (" +
                        op + " refused after a storage fault)");
  }
}

const Item& Replica::create(std::map<std::string, std::string> metadata,
                            std::vector<std::uint8_t> body) {
  require_writable("create");
  PFRDTN_REQUIRE(next_item_seq_ < (std::uint64_t{1} << 32));
  const ItemId id((id_.value() << 32) | next_item_seq_);
  const Version version{id_, next_counter_ + 1, /*revision=*/1};
  Item item(id, version, std::move(metadata), std::move(body));
  // Write-ahead: the durable record precedes every in-memory change. If
  // the sink throws (a storage fault refusing the mutation), nothing —
  // not even the counters — has moved, so the refused version never
  // existed anywhere: it cannot be served to a peer, and reusing the
  // (author, counter) pair after a restart is safe. If the record *did*
  // reach the disk before the fault, recovery replays it and
  // replay_local_put advances the counters past it — no reuse either
  // way.
  if (sink_ != nullptr) sink_->on_local_put(item);
  ++next_item_seq_;
  ++next_counter_;
  knowledge_.add_exact(version);
  const bool in_filter = filter_.matches(item);
  auto evicted = store_.put(std::move(item), in_filter,
                            /*local_origin=*/true);
  PFRDTN_ENSURE(evicted.empty());  // local items are never evictable
  return store_.find(id)->item;
}

const Item& Replica::update(ItemId id,
                            std::map<std::string, std::string> metadata,
                            std::vector<std::uint8_t> body) {
  require_writable("update");
  const auto* entry = store_.find(id);
  PFRDTN_REQUIRE(entry != nullptr);
  PFRDTN_REQUIRE(!entry->item.deleted());
  const Version version{id_, next_counter_ + 1,
                        entry->item.version().revision + 1};
  auto payload = Item::Payload::make(id, version, std::move(metadata),
                                     std::move(body), /*deleted=*/false);
  const bool in_filter = filter_.matches(Item(payload));
  // Write-ahead: log before mutating (see create() for the rationale).
  if (sink_ != nullptr) sink_->on_local_put(Item(payload));
  ++next_counter_;
  knowledge_.add_exact(version);
  // An update authored here pins the copy against eviction, exactly
  // like a creation would.
  store_.supersede(id, std::move(payload), in_filter,
                   /*make_local_origin=*/true);
  return store_.find(id)->item;
}

const Item& Replica::erase(ItemId id) {
  require_writable("erase");
  const auto* entry = store_.find(id);
  PFRDTN_REQUIRE(entry != nullptr);
  const Version version{id_, next_counter_ + 1,
                        entry->item.version().revision + 1};
  // Tombstones keep the metadata so filters still select them and the
  // deletion propagates to every interested replica.
  auto payload = Item::Payload::make(id, version, entry->item.metadata(),
                                     {}, /*deleted=*/true);
  const bool in_filter = filter_.matches(Item(payload));
  // Write-ahead: log before mutating (see create() for the rationale).
  if (sink_ != nullptr) sink_->on_local_put(Item(payload));
  ++next_counter_;
  knowledge_.add_exact(version);
  store_.supersede(id, std::move(payload), in_filter,
                   /*make_local_origin=*/true);
  return store_.find(id)->item;
}

std::vector<Item> Replica::set_filter(Filter filter) {
  require_writable("set_filter");
  // Write-ahead: a storage fault refuses the change before the filter
  // is adopted, so memory and the acknowledged log never disagree about
  // which filter is in force.
  if (sink_ != nullptr) sink_->on_set_filter(filter);
  filter_ = std::move(filter);
  std::vector<Item> evicted;
  auto newly_matching = store_.refilter(
      [this](const Item& item) { return filter_.matches(item); },
      evicted);
  // A filter change invalidates scoped claims: fragments were learned
  // under the old filter, and pinned/folded status of stored events no
  // longer reflects evictability. Rebuild knowledge from what is
  // actually stored — forgetting is always safe (worst case the same
  // copy is transmitted again), while a stale claim would break
  // eventual filter consistency (this is the substrate's analogue of
  // Cimbiosys's move-in handling).
  rebuild_knowledge();
  return newly_matching;
}

void Replica::rebuild_knowledge() {
  Knowledge fresh;
  fresh.add_authored_prefix(id_, next_counter_);
  store_.for_each([&](const ItemStore::Entry& entry) {
    if (entry.item.version().author == id_) return;  // in the prefix
    if (entry.evictable()) {
      fresh.add_exact_pinned(entry.item.version());
    } else {
      fresh.add_exact(entry.item.version());
    }
  });
  knowledge_ = std::move(fresh);
}

ApplyOutcome Replica::apply_remote(const Item& incoming,
                                   std::vector<Item>& evicted) {
  require_writable("apply_remote");
  PFRDTN_REQUIRE(incoming.version().valid());
  // Write-ahead: log before mutating, so a faulted receipt leaves no
  // trace in memory — a copy the disk refused must never be served to
  // another peer, or it outlives a crash that the log does not record.
  // (The durability layer defers checkpoint rolls out of this hook, so
  // a snapshot never splits the record from its mutation.)
  if (sink_ != nullptr) sink_->on_apply_remote(incoming);
  return apply_remote_impl(incoming, evicted);
}

ApplyOutcome Replica::apply_remote_impl(const Item& incoming,
                                        std::vector<Item>& evicted) {
  PFRDTN_REQUIRE(incoming.version().valid());
  const auto* existing = store_.find(incoming.id());
  const bool in_filter = filter_.matches(incoming);

  if (existing != nullptr) {
    // Either an update to a stored item or a duplicate/stale copy. If
    // the entry is (or becomes) an evictable relay copy, the event must
    // be recorded pinned: an unpinned event folds into the version
    // vector and can no longer be forgotten when the copy is evicted,
    // leaving knowledge that claims an event for an item we no longer
    // store — a soundness hole the check harness (src/check/) flagged.
    if (!incoming.version().dominates(existing->item.version())) {
      if (existing->evictable()) {
        knowledge_.add_exact_pinned(incoming.version());
      } else {
        knowledge_.add_exact(incoming.version());
      }
      return ApplyOutcome::Stale;
    }
    if (!in_filter && !existing->local_origin) {
      knowledge_.add_exact_pinned(incoming.version());
    } else {
      knowledge_.add_exact(incoming.version());
    }
    // Adopt the incoming copy's payload — a refcount bump shared with
    // the sender-side batch, never a re-parse of metadata and body.
    store_.supersede(incoming.id(), incoming.payload(), in_filter,
                     /*make_local_origin=*/false);
    // Forwarded transient state (TTL, copy counts) travels with the
    // new copy.
    auto stored = store_.transient_mutable(incoming.id());
    PFRDTN_ENSURE(stored.has_value());
    for (const auto& [key, value] : incoming.transient_all())
      stored->set(key, value);
    return ApplyOutcome::UpdatedExisting;
  }

  // New item. Relay (out-of-filter) receipts are pinned in knowledge so
  // a later eviction can forget them.
  if (in_filter) {
    knowledge_.add_exact(incoming.version());
  } else {
    knowledge_.add_exact_pinned(incoming.version());
  }
  auto victims =
      store_.put(incoming, in_filter, /*local_origin=*/false);
  forget_evicted(victims);
  evicted.insert(evicted.end(), victims.begin(), victims.end());
  return ApplyOutcome::StoredNew;
}

bool Replica::discard_relay(ItemId id) {
  require_writable("discard_relay");
  const auto* entry = store_.find(id);
  if (entry == nullptr || entry->in_filter || entry->local_origin)
    return false;
  const Item item = entry->item;
  // Write-ahead: log before mutating (see create() for the rationale).
  if (sink_ != nullptr) sink_->on_discard_relay(id);
  store_.remove(id);
  forget_evicted({item});
  return true;
}

void Replica::note_policy_state(ItemId id) {
  if (sink_ == nullptr) return;
  const auto* entry = store_.find(id);
  if (entry == nullptr) return;
  sink_->on_policy_state(id, entry->item.transient_all());
}

void Replica::restore_counters(std::uint64_t next_counter,
                               std::uint64_t next_item_seq) {
  PFRDTN_REQUIRE(next_counter >= next_counter_);
  PFRDTN_REQUIRE(next_item_seq >= next_item_seq_);
  next_counter_ = next_counter;
  next_item_seq_ = next_item_seq;
}

void Replica::replay_local_put(Item item) {
  const Version version = item.version();
  PFRDTN_REQUIRE(version.author == id_);
  PFRDTN_REQUIRE(version.valid());
  knowledge_.add_exact(version);
  const bool in_filter = filter_.matches(item);
  const ItemId id = item.id();
  if (store_.contains(id)) {
    store_.supersede(id, item.payload(), in_filter,
                     /*make_local_origin=*/true);
  } else {
    auto evicted = store_.put(std::move(item), in_filter,
                              /*local_origin=*/true);
    PFRDTN_ENSURE(evicted.empty());
  }
  // Advance the authoring counters past the replayed event: a
  // recovered replica must never reissue a (author, counter) pair.
  if (version.counter > next_counter_) next_counter_ = version.counter;
  if ((id.value() >> 32) == id_.value()) {
    const std::uint64_t seq = id.value() & 0xFFFFFFFFu;
    if (seq >= next_item_seq_) next_item_seq_ = seq + 1;
  }
}

void Replica::replay_policy_state(
    ItemId id, std::map<std::string, std::string> all) {
  store_.replace_transients(id, std::move(all));
}

void Replica::forget_evicted(const std::vector<Item>& evicted) {
  for (const Item& item : evicted) {
    if (!knowledge_.forget_exact(item.version())) {
      PFRDTN_LOG(Debug) << "replica " << id_.str()
                        << ": evicted item " << item.id().str()
                        << " whose event was already folded; copy "
                           "cannot be re-received";
    }
    knowledge_.drop_fragments_matching(item);
  }
}

std::string Replica::check_invariants() const {
  std::string violation;
  store_.for_each([&](const ItemStore::Entry& entry) {
    if (!violation.empty()) return;
    // Every stored item's current version must be known.
    if (!knowledge_.knows(entry.item, entry.item.version())) {
      violation = "stored item " + entry.item.id().str() +
                  " version not covered by knowledge at " + id_.str();
    }
    // The in_filter flag must agree with the filter.
    if (entry.in_filter != filter_.matches(entry.item)) {
      violation = "in_filter flag inconsistent for " +
                  entry.item.id().str() + " at " + id_.str();
    }
    // Every evictable relay copy must remain forgettable, or its
    // eviction would strand knowledge of an unstored event.
    if (entry.evictable() &&
        !knowledge_.can_forget(entry.item.version())) {
      violation = "evictable relay copy " + entry.item.id().str() +
                  " has an unforgettable event at " + id_.str();
    }
  });
  return violation;
}

}  // namespace pfrdtn::repl
