#pragma once

/// \file sync.hpp
/// The pairwise synchronization protocol (the paper's Figure 4):
///
///   Target:  routingState = policy.generateReq()
///            send knowledge, filter, routingState to source
///   Source:  policy.processReq(routingState)
///            for each stored item unknown to the target:
///              if it matches the target's filter -> batch (highest)
///              else if policy.toSend(item)       -> batch (policy prio)
///            sort batch by priority, apply bandwidth cap
///            send batch + own knowledge
///   Target:  apply items, update knowledge;
///            merge source knowledge scoped to own filter iff the batch
///            was complete (no filter-matching item truncated).
///
/// Requests and batches make a full serialize/deserialize round trip
/// through the wire format on every sync, so byte counts are honest and
/// the format is exercised continuously.

#include <optional>

#include "repl/forwarding_policy.hpp"
#include "repl/replica.hpp"

namespace pfrdtn::repl {

/// What the target sends to the source.
struct SyncRequest {
  ReplicaId target{};
  Filter filter;
  Knowledge knowledge;
  std::vector<std::uint8_t> routing_state;

  void serialize(ByteWriter& w) const;
  static SyncRequest deserialize(ByteReader& r);
};

/// What the source returns.
struct SyncBatch {
  ReplicaId source{};
  std::vector<Item> items;  ///< priority order
  Knowledge source_knowledge;
  /// True iff every filter-matching unknown item was included (policy
  /// extras may still have been truncated). Gates knowledge learning.
  bool complete = true;

  void serialize(ByteWriter& w) const;
  static SyncBatch deserialize(ByteReader& r);
};

struct SyncOptions {
  /// Bandwidth cap for this sync: maximum number of items transferred.
  std::optional<std::size_t> max_items;
  /// When false, skip knowledge learning even on complete syncs (for
  /// the knowledge-ablation benchmark).
  bool learn_knowledge = true;
};

struct SyncStats {
  std::size_t items_sent = 0;
  std::size_t items_new = 0;      ///< StoredNew or UpdatedExisting
  std::size_t items_stale = 0;    ///< duplicates suppressed at target
  std::size_t evictions = 0;
  std::size_t request_bytes = 0;
  std::size_t batch_bytes = 0;
  bool complete = true;

  void accumulate(const SyncStats& other);
};

struct SyncResult {
  SyncStats stats;
  /// Items newly present in the target's filter store (candidate
  /// message deliveries, in the DTN application).
  std::vector<Item> delivered;
  /// Relay items the target evicted while applying the batch.
  std::vector<Item> evicted;
};

/// Run one one-way synchronization in which `target` pulls from
/// `source`. Policies may be null (unmodified substrate).
SyncResult run_sync(Replica& source, Replica& target,
                    ForwardingPolicy* source_policy,
                    ForwardingPolicy* target_policy, SimTime now,
                    const SyncOptions& options = {});

}  // namespace pfrdtn::repl
