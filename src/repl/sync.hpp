#pragma once

/// \file sync.hpp
/// The pairwise synchronization protocol (the paper's Figure 4):
///
///   Target:  routingState = policy.generateReq()
///            send knowledge, filter, routingState to source
///   Source:  policy.processReq(routingState)
///            for each stored item unknown to the target:
///              if it matches the target's filter -> batch (highest)
///              else if policy.toSend(item)       -> batch (policy prio)
///            sort batch by priority, apply bandwidth cap
///            send batch + own knowledge
///   Target:  apply items, update knowledge;
///            merge source knowledge scoped to own filter iff the batch
///            was complete (no filter-matching item truncated).
///
/// Requests and batches make a full serialize/deserialize round trip
/// through the wire format on every sync, so byte counts are honest and
/// the format is exercised continuously.

#include <optional>

#include "repl/forwarding_policy.hpp"
#include "repl/replica.hpp"
#include "repl/summary.hpp"

namespace pfrdtn::repl {

/// What the target sends to the source.
struct SyncRequest {
  ReplicaId target{};
  Filter filter;
  Knowledge knowledge;
  std::vector<std::uint8_t> routing_state;

  void serialize(ByteWriter& w) const;
  static SyncRequest deserialize(ByteReader& r);
};

/// What the source returns.
struct SyncBatch {
  ReplicaId source{};
  std::vector<Item> items;  ///< priority order
  Knowledge source_knowledge;
  /// True iff every filter-matching unknown item was included (policy
  /// extras may still have been truncated). Gates knowledge learning.
  bool complete = true;

  void serialize(ByteWriter& w) const;
  static SyncBatch deserialize(ByteReader& r);
};

/// Whether a sync opens with a knowledge summary instead of the exact
/// request (see summary.hpp and docs/net.md §summary exchange).
enum class SummaryMode : std::uint8_t {
  Off = 0,  ///< always the exact Figure-4 exchange
  On = 1,   ///< always open with a summary (fail if the peer cannot)
  /// Open with a summary iff the peer advertised support in its Hello;
  /// resolved to On or Off during session negotiation. The in-process
  /// path (run_sync) has no peer to ask and treats Auto as On.
  Auto = 2,
};

struct SyncOptions {
  /// Bandwidth cap for this sync: maximum number of items transferred.
  std::optional<std::size_t> max_items;
  /// When false, skip knowledge learning even on complete syncs (for
  /// the knowledge-ablation benchmark).
  bool learn_knowledge = true;
  /// TESTING ONLY — reverts the truncation guard: the target merges the
  /// source's knowledge even when the batch was incomplete. This is the
  /// exact knowledge-corruption bug the guard exists to prevent; the
  /// check harness (src/check/) injects it to prove it would be caught.
  bool unsafe_learn_truncated = false;

  /// Summary-exchange fast path (see SummaryMode).
  SummaryMode summary_mode = SummaryMode::Off;
  /// Bloom filter tuning for the summary the target offers.
  SummaryParams summary;
  /// TESTING ONLY — the source treats every summary digest as matching
  /// its own, simulating a 64-bit digest collision. Items are deferred
  /// to future exact syncs but must never be lost and knowledge must
  /// stay sound; the check harness injects this to prove both.
  bool summary_force_collision = false;
  /// TESTING ONLY — on digest mismatch the source skips the fallback
  /// and answers with an empty "complete" batch carrying its real
  /// knowledge, so the target learns knowledge for items it never
  /// received. This is the protocol bug the fallback exists to prevent;
  /// the check harness's knowledge-soundness oracle must catch it.
  bool unsafe_summary_skip_fallback = false;
};

struct SyncStats {
  std::size_t items_sent = 0;
  std::size_t items_new = 0;      ///< StoredNew or UpdatedExisting
  std::size_t items_stale = 0;    ///< duplicates suppressed at target
  std::size_t evictions = 0;
  std::size_t request_bytes = 0;
  std::size_t batch_bytes = 0;
  bool complete = true;

  void accumulate(const SyncStats& other);
};

struct SyncResult {
  SyncStats stats;
  /// Items newly present in the target's filter store (candidate
  /// message deliveries, in the DTN application).
  std::vector<Item> delivered;
  /// Relay items the target evicted while applying the batch.
  std::vector<Item> evicted;
  /// The update event of every item copy that fully arrived (new,
  /// superseding, or stale), in arrival order. The check harness's
  /// at-most-once probe audits these against what the target was ever
  /// sent before.
  std::vector<Version> received_events;
};

// ---- protocol steps --------------------------------------------------
//
// The three steps of the Figure-4 exchange as free functions, so the
// same logic backs both the in-process fast path (run_sync below) and
// the net-layer session state machine that runs each step on its own
// side of a real transport.

/// Target step 1: assemble the request this replica sends to `source`.
SyncRequest make_request(Replica& target, ForwardingPolicy* target_policy,
                         ReplicaId source_id, SimTime now);

/// Source step: answer a received request. Consults the policy, orders
/// candidates by priority, applies the bandwidth cap, and charges
/// per-copy forwarding state (on_forward) for items that made the cut.
/// `process_routing_state` is false only on the post-summary-miss
/// fallback, whose routing state was already processed by
/// answer_summary — policy hooks must run exactly once per sync.
SyncBatch build_batch(Replica& source, ForwardingPolicy* source_policy,
                      const SyncRequest& request, SimTime now,
                      const SyncOptions& options = {},
                      bool process_routing_state = true);

/// Target step 2, incremental form: items are applied one at a time as
/// they arrive, so a transport can stream a batch and keep whatever
/// prefix survived a dropped connection. Exactly one of finish() /
/// abandon() terminates the application.
class BatchApplier {
 public:
  BatchApplier(Replica& target, SyncOptions options)
      : target_(&target), options_(options) {}

  /// Apply one received item copy.
  void apply(const Item& item);

  /// The whole batch arrived: record the source's completeness claim
  /// and merge its knowledge iff the sync was complete.
  SyncResult finish(bool complete, const Knowledge& source_knowledge);

  /// The link died mid-batch: keep the applied prefix, mark the sync
  /// incomplete, and never learn the source's knowledge.
  SyncResult abandon();

 private:
  Replica* target_;
  SyncOptions options_;
  SyncResult result_;
};

/// Target step 2, whole-batch form (wraps BatchApplier).
SyncResult apply_batch(Replica& target, const SyncBatch& batch,
                       const SyncOptions& options = {});

// ---- summary exchange (the sub-linear fast path) ---------------------
//
// With summaries on, the target opens with a SummaryRequest — its
// filter and routing state as usual, but a KnowledgeSummary in place of
// the exact knowledge. The source answers one of three ways:
//
//   Match  — the digests are equal, so the knowledge is wire-identical
//            on both sides and the pair has already converged: the sync
//            ends in O(1) wire bytes, independent of replica size.
//   Batch  — the summary carried a Bloom filter and *no* stored item's
//            event hits it. A Bloom miss is definitive, so the target
//            provably knows none of the source's items: the source
//            streams the exact batch immediately (built against empty
//            knowledge — provably the batch the exact path would have
//            built, since the target knows no stored candidate).
//   Miss   — anything else (digest mismatch with a Bloom hit, or no
//            Bloom shipped). The target falls back to the exact
//            Request/batch flow within the same session, reusing the
//            routing state the summary already carried.
//
// A Bloom false positive can therefore cost a fallback round trip but
// never loses an item; a (2^-64) digest collision defers items to a
// future exact sync but leaves knowledge sound, because a Match makes
// the target learn only knowledge wire-identical to its own.

/// What the target sends to open a summary-mode sync.
struct SummaryRequestInfo {
  ReplicaId target{};
  Filter filter;
  KnowledgeSummary summary;
  std::vector<std::uint8_t> routing_state;

  void serialize(ByteWriter& w) const;
  static SummaryRequestInfo deserialize(ByteReader& r);
};

/// The source's decision on a summary request.
struct SummaryAnswer {
  enum class Kind : std::uint8_t {
    Match,  ///< converged: answer with a SummaryMatch frame
    Miss,   ///< can't decide cheaply: ask for the exact request
    Batch,  ///< Bloom proves a cold target: stream `batch` now
  };
  Kind kind = Kind::Miss;
  SyncBatch batch;  ///< meaningful only when kind == Batch
};

/// Target summary step 1: assemble the summary request. Runs the
/// policy's generate_request exactly like make_request does.
SummaryRequestInfo make_summary_request(Replica& target,
                                        ForwardingPolicy* target_policy,
                                        ReplicaId source_id, SimTime now,
                                        const SummaryParams& params);

/// Source summary step: decide Match / Miss / Batch. Always processes
/// the request's routing state first (policy parity with build_batch);
/// a later fallback build_batch must pass process_routing_state=false.
SummaryAnswer answer_summary(Replica& source,
                             ForwardingPolicy* source_policy,
                             const SummaryRequestInfo& request, SimTime now,
                             const SyncOptions& options = {});

/// Target summary step 2 on a Match: the digest-equal source knowledge
/// is wire-identical to the target's own, so run the normal complete-
/// sync finish against decode(encode(own knowledge)) — byte-identical
/// to the state transition the exact path would have made.
SyncResult apply_summary_match(Replica& target,
                               const SyncOptions& options = {});

// ---- wire footprint --------------------------------------------------
//
// On a transport (src/net/) a request travels as one frame and a batch
// travels as a begin frame, one frame per item, and an end frame
// carrying the source knowledge — so a dropped connection truncates at
// an item boundary. These helpers compute that framed footprint; the
// in-process path reports the same numbers so byte counts are
// comparable across paths.

/// Frame types of the sync wire protocol (frame `type` byte).
enum class SyncFrame : std::uint8_t {
  Hello = 1,           ///< session opener: client replica id + mode
  Request = 2,         ///< serialized SyncRequest
  BatchBegin = 3,      ///< source id, complete flag, item count
  BatchItem = 4,       ///< one serialized Item
  BatchEnd = 5,        ///< serialized source Knowledge
  SummaryRequest = 6,  ///< serialized SummaryRequestInfo
  SummaryMatch = 7,    ///< source id: converged, session over
  SummaryMiss = 8,     ///< source id: send the exact Request
  /// Structured refusal: a peer that cannot run this sync says so
  /// instead of its opening request (a degraded read-only replica
  /// refuses anything that would mutate it). The payload carries a
  /// code byte plus a human-readable message; the receiving side ends
  /// its role as a graceful, *transient* refusal — never a protocol
  /// violation, never a quarantine strike.
  Error = 9,
  /// Push acknowledgement: the target confirms it applied the streamed
  /// batch, carrying the count of item copies that fully arrived. Sent
  /// only when both hellos advertised net::kFeatureBatchAck. Without
  /// it a source that finished writing cannot distinguish "the target
  /// applied everything" from "the link died while the target was
  /// still reading" — its last writes land in socket buffers and
  /// succeed locally either way — so the retrying contact discipline
  /// would silently drop pushes cut on the far side.
  BatchAck = 10,
};

/// Error-frame codes: the retryable refusal class. Every code names a
/// *condition of the refusing node*, not a judgement of the peer, so
/// none of them ever strikes quarantine in either direction.
///
/// kSyncErrorReadOnly — the sender is degraded read-only after a
/// storage fault; a restart on a healthy disk clears it.
/// kSyncErrorBusy — the sender is at its concurrent-session cap and is
/// shedding load; clears as soon as a session slot frees up.
/// kSyncErrorDraining — the sender is shutting down gracefully and no
/// longer admits new sessions; retry once it restarts.
inline constexpr std::uint8_t kSyncErrorReadOnly = 1;
inline constexpr std::uint8_t kSyncErrorBusy = 2;
inline constexpr std::uint8_t kSyncErrorDraining = 3;

/// Decoded payload of an Error frame.
struct SyncErrorInfo {
  std::uint8_t code = 0;
  std::string message;
  /// Whether the refusal is known-transient (retry at the next
  /// contact). Every currently assigned code is transient, and unknown
  /// codes from newer peers default to transient too: refusing
  /// politely is strictly better behaviour than anything a hostile
  /// peer could gain from the frame. The switch exists so a future
  /// permanent code has one place to land.
  [[nodiscard]] bool transient() const {
    switch (code) {
      case kSyncErrorReadOnly:
      case kSyncErrorBusy:
      case kSyncErrorDraining:
        return true;
      default:
        return true;  // unknown codes: be polite, retry later
    }
  }
};

/// Log/CLI label for an error-frame code ("read-only", "busy",
/// "draining", or "error-<n>" for codes this build does not know).
std::string sync_error_code_name(std::uint8_t code);

std::vector<std::uint8_t> encode_error_frame(std::uint8_t code,
                                             const std::string& message);
SyncErrorInfo decode_error_frame(const std::vector<std::uint8_t>& payload);

/// Header fields of a streamed batch (the BatchBegin payload).
struct BatchBeginInfo {
  ReplicaId source{};
  bool complete = true;
  std::uint64_t count = 0;
};

std::vector<std::uint8_t> encode_batch_begin(const SyncBatch& batch);
BatchBeginInfo decode_batch_begin(const std::vector<std::uint8_t>& payload);

/// Payload of a SummaryMatch / SummaryMiss frame: the source id.
std::vector<std::uint8_t> encode_summary_reply(ReplicaId source);
ReplicaId decode_summary_reply(const std::vector<std::uint8_t>& payload);

/// Payload of a BatchAck frame: how many item copies the target fully
/// received and applied (new or stale — an arrival either way).
std::vector<std::uint8_t> encode_batch_ack(std::uint64_t items_applied);
std::uint64_t decode_batch_ack(const std::vector<std::uint8_t>& payload);

/// Framed bytes of the request as transmitted: one Request frame.
std::size_t wire_size(const SyncRequest& request);
/// Framed bytes of the batch as transmitted: BatchBegin + one
/// BatchItem per item + BatchEnd.
std::size_t wire_size(const SyncBatch& batch);
/// Framed bytes of a summary request: one SummaryRequest frame.
std::size_t wire_size(const SummaryRequestInfo& request);

/// Run one one-way synchronization in which `target` pulls from
/// `source`. Policies may be null (unmodified substrate). A thin
/// wrapper over make_request / build_batch / apply_batch that still
/// pushes both messages through a full serialize/deserialize round
/// trip, reporting framed wire byte counts.
SyncResult run_sync(Replica& source, Replica& target,
                    ForwardingPolicy* source_policy,
                    ForwardingPolicy* target_policy, SimTime now,
                    const SyncOptions& options = {});

}  // namespace pfrdtn::repl
