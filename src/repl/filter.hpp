#pragma once

/// \file filter.hpp
/// Content-based filters: query-like predicates over item metadata that
/// define which items a replica stores (peer-to-peer *filtered*
/// replication). Filters are immutable values with structural equality,
/// conservative subsumption, and a sound under-approximating
/// intersection — the three operations the scoped-knowledge algebra in
/// knowledge.hpp requires.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "repl/item.hpp"
#include "util/byte_buffer.hpp"
#include "util/ids.hpp"

namespace pfrdtn::repl {

class Filter {
 public:
  /// Matches every item.
  static Filter all();
  /// Matches no item.
  static Filter none();
  /// Matches items whose `dest` metadata lists at least one of the
  /// given addresses (the DTN application's per-host filter).
  static Filter addresses(std::set<HostId> addrs);
  /// Matches items carrying at least one of the given tags in their
  /// `tags` metadata (comma-separated).
  static Filter tags(std::set<std::string> tags);
  /// Matches items whose metadata value for `key` equals `value`.
  static Filter meta_equals(std::string key, std::string value);
  /// Conjunction / disjunction / negation.
  static Filter conj(Filter a, Filter b);
  static Filter disj(Filter a, Filter b);
  static Filter negate(Filter a);

  /// Default-constructed filter matches nothing.
  Filter() : Filter(none()) {}

  [[nodiscard]] bool matches(const Item& item) const;

  /// A filter that matches a subset of items matched by *both* `this`
  /// and `other`. Exact for True/False and same-kind set filters;
  /// conservative (structural conjunction) otherwise. Soundness
  /// (result ⊆ this ∩ other) is all the knowledge algebra needs.
  [[nodiscard]] Filter intersect(const Filter& other) const;

  /// Conservative subsumption: returns true only if every item matched
  /// by `other` is matched by `this`. May return false negatives.
  [[nodiscard]] bool subsumes(const Filter& other) const;

  /// True if the filter provably matches nothing (empty address/tag
  /// sets, the False filter). May return false negatives for
  /// composites.
  [[nodiscard]] bool provably_empty() const;

  /// Structural equality after canonicalization.
  [[nodiscard]] bool equals(const Filter& other) const;
  friend bool operator==(const Filter& a, const Filter& b) {
    return a.equals(b);
  }

  /// For address filters, the address set; empty otherwise. Used by
  /// the DTN layer to discover a peer's hosted addresses.
  [[nodiscard]] std::set<HostId> address_set() const;
  /// True if this filter is exactly an address-set filter.
  [[nodiscard]] bool is_address_filter() const;

  [[nodiscard]] std::string str() const;

  void serialize(ByteWriter& w) const;
  static Filter deserialize(ByteReader& r);

 private:
  enum class Kind : std::uint8_t {
    True = 0,
    False = 1,
    AddressSet = 2,
    TagSet = 3,
    MetaEquals = 4,
    And = 5,
    Or = 6,
    Not = 7,
  };

  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  explicit Filter(NodePtr node) : node_(std::move(node)) {}

  static bool node_matches(const Node& node, const Item& item);
  static bool node_equals(const Node& a, const Node& b);
  static void node_serialize(const Node& node, ByteWriter& w);
  static NodePtr node_deserialize(ByteReader& r, int depth);
  static std::string node_str(const Node& node);

  NodePtr node_;
};

}  // namespace pfrdtn::repl
