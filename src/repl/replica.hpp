#pragma once

/// \file replica.hpp
/// A replica of the shared collection: item store + knowledge + filter,
/// with the local-update and remote-apply operations that preserve the
/// substrate's guarantees (eventual filter consistency, at-most-once
/// delivery). All mutation paths that touch both the store and the
/// knowledge go through this class so the two cannot diverge.

#include <map>
#include <string>
#include <vector>

#include "repl/filter.hpp"
#include "repl/item.hpp"
#include "repl/knowledge.hpp"
#include "repl/store.hpp"

namespace pfrdtn::repl {

/// Outcome of applying one remote item copy.
enum class ApplyOutcome {
  StoredNew,        ///< previously unseen item stored
  UpdatedExisting,  ///< dominated version replaced
  Stale,            ///< we already store this or a dominating version
};

class Replica {
 public:
  Replica(ReplicaId id, Filter filter, ItemStore::Config store_config = {})
      : id_(id), filter_(std::move(filter)), store_(store_config) {}

  [[nodiscard]] ReplicaId id() const { return id_; }
  [[nodiscard]] const Filter& filter() const { return filter_; }
  [[nodiscard]] const Knowledge& knowledge() const { return knowledge_; }
  [[nodiscard]] Knowledge& knowledge_mutable() { return knowledge_; }
  [[nodiscard]] const ItemStore& store() const { return store_; }
  [[nodiscard]] ItemStore& store_mutable() { return store_; }

  // ---- local operations (always available; disconnected operation) ----

  /// Create a new item authored here. The item is stored regardless of
  /// whether it matches the local filter (out-of-filter creations go to
  /// the relay/push-out store and are exempt from eviction).
  const Item& create(std::map<std::string, std::string> metadata,
                     std::vector<std::uint8_t> body);

  /// Replace an existing item's replicated content with a new version.
  const Item& update(ItemId id,
                     std::map<std::string, std::string> metadata,
                     std::vector<std::uint8_t> body);

  /// Delete an item: stores a tombstone that propagates like any other
  /// update, clearing copies at other replicas.
  const Item& erase(ItemId id);

  /// Change this replica's filter. Items that newly match are returned
  /// (they were already stored as relay items and are now locally
  /// "delivered"); items that no longer match become evictable relay
  /// items.
  std::vector<Item> set_filter(Filter filter);

  // ---- remote application (called by the sync engine) ----

  /// Apply one item copy received from a sync partner. Updates the
  /// store and knowledge consistently; any evicted relay items are
  /// appended to `evicted` (their knowledge entries are forgotten so
  /// the copies can be re-received).
  ApplyOutcome apply_remote(const Item& incoming,
                            std::vector<Item>& evicted);

  /// Discard a relay copy (out-of-filter, not locally authored) and
  /// forget its knowledge entries, exactly as an eviction would — used
  /// by acknowledgement-flooding policies to clear buffers of delivered
  /// messages. Returns whether a copy was discarded.
  bool discard_relay(ItemId id);

  /// Record knowledge learned from a sync partner after a *complete*
  /// sync, scoped to this replica's filter.
  void learn(const Knowledge& source_knowledge) {
    knowledge_.merge_scoped(source_knowledge, filter_);
  }

  /// Check the store/knowledge soundness invariant for every stored
  /// item and, via `latest` (a map from item id to the globally newest
  /// version, supplied by the test oracle), for completeness claims.
  /// Returns a human-readable violation description, or empty string.
  [[nodiscard]] std::string check_invariants() const;

 private:
  /// Fix knowledge after relay evictions so copies can be re-received.
  void forget_evicted(const std::vector<Item>& evicted);

  /// Re-derive knowledge from the authored counter and the current
  /// store contents; called on filter changes (see set_filter).
  void rebuild_knowledge();

  ReplicaId id_;
  Filter filter_;
  Knowledge knowledge_;
  ItemStore store_;
  std::uint64_t next_counter_ = 0;
  std::uint64_t next_item_seq_ = 0;
};

}  // namespace pfrdtn::repl
