#pragma once

/// \file replica.hpp
/// A replica of the shared collection: item store + knowledge + filter,
/// with the local-update and remote-apply operations that preserve the
/// substrate's guarantees (eventual filter consistency, at-most-once
/// delivery). All mutation paths that touch both the store and the
/// knowledge go through this class so the two cannot diverge.

#include <map>
#include <string>
#include <vector>

#include "repl/filter.hpp"
#include "repl/item.hpp"
#include "repl/knowledge.hpp"
#include "repl/store.hpp"

namespace pfrdtn::repl {

/// Outcome of applying one remote item copy.
enum class ApplyOutcome {
  StoredNew,        ///< previously unseen item stored
  UpdatedExisting,  ///< dominated version replaced
  Stale,            ///< we already store this or a dominating version
};

/// Observer of the replica's mutation funnel, notified *after* each
/// mutation completes. src/persist/ implements this to write-ahead-log
/// every state change; the hooks carry exactly the inputs needed to
/// replay the mutation deterministically (evictions, refilters and
/// knowledge folds re-derive identically on replay, so they are not
/// logged separately). Hook implementations must not mutate the
/// replica.
class ReplicaMutationSink {
 public:
  virtual ~ReplicaMutationSink() = default;

  /// A local create/update/erase produced `stored` (already in the
  /// store; includes the tombstone case).
  virtual void on_local_put(const Item& stored) = 0;
  /// apply_remote() ran on `incoming` (transient fields included).
  /// Called for every outcome — a Stale copy still folds knowledge.
  virtual void on_apply_remote(const Item& incoming) = 0;
  virtual void on_set_filter(const Filter& filter) = 0;
  /// discard_relay() removed a copy (only called when it returned true).
  virtual void on_discard_relay(ItemId id) = 0;
  virtual void on_learn(const Knowledge& source_knowledge) = 0;
  /// A forwarding policy changed a stored copy's transient state
  /// during batch building; `all` is the copy's full transient map.
  virtual void on_policy_state(
      ItemId id, const std::map<std::string, std::string>& all) = 0;
};

class Replica {
 public:
  Replica(ReplicaId id, Filter filter, ItemStore::Config store_config = {})
      : id_(id), filter_(std::move(filter)), store_(store_config) {}

  [[nodiscard]] ReplicaId id() const { return id_; }
  [[nodiscard]] const Filter& filter() const { return filter_; }
  [[nodiscard]] const Knowledge& knowledge() const { return knowledge_; }
  [[nodiscard]] Knowledge& knowledge_mutable() { return knowledge_; }
  [[nodiscard]] const ItemStore& store() const { return store_; }
  [[nodiscard]] ItemStore& store_mutable() { return store_; }

  // ---- local operations (always available; disconnected operation) ----

  /// Create a new item authored here. The item is stored regardless of
  /// whether it matches the local filter (out-of-filter creations go to
  /// the relay/push-out store and are exempt from eviction).
  const Item& create(std::map<std::string, std::string> metadata,
                     std::vector<std::uint8_t> body);

  /// Replace an existing item's replicated content with a new version.
  const Item& update(ItemId id,
                     std::map<std::string, std::string> metadata,
                     std::vector<std::uint8_t> body);

  /// Delete an item: stores a tombstone that propagates like any other
  /// update, clearing copies at other replicas.
  const Item& erase(ItemId id);

  /// Change this replica's filter. Items that newly match are returned
  /// (they were already stored as relay items and are now locally
  /// "delivered"); items that no longer match become evictable relay
  /// items.
  std::vector<Item> set_filter(Filter filter);

  // ---- remote application (called by the sync engine) ----

  /// Apply one item copy received from a sync partner. Updates the
  /// store and knowledge consistently; any evicted relay items are
  /// appended to `evicted` (their knowledge entries are forgotten so
  /// the copies can be re-received).
  ApplyOutcome apply_remote(const Item& incoming,
                            std::vector<Item>& evicted);

  /// Discard a relay copy (out-of-filter, not locally authored) and
  /// forget its knowledge entries, exactly as an eviction would — used
  /// by acknowledgement-flooding policies to clear buffers of delivered
  /// messages. Returns whether a copy was discarded.
  bool discard_relay(ItemId id);

  /// Record knowledge learned from a sync partner after a *complete*
  /// sync, scoped to this replica's filter.
  void learn(const Knowledge& source_knowledge) {
    require_writable("learn");
    // Write-ahead: log before merging so a refused learn leaves the
    // knowledge untouched (see Replica::create for the rationale).
    if (sink_ != nullptr) sink_->on_learn(source_knowledge);
    knowledge_.merge_scoped(source_knowledge, filter_);
  }

  // ---- degraded (read-only) mode ----

  /// Mark the replica read-only. Set by the durability layer after a
  /// storage fault: the in-memory state is still good (pull syncs and
  /// reads keep working) but no further mutation can be made durable,
  /// so every mutation entry point refuses *before* touching memory —
  /// a degraded replica never acknowledges what it cannot persist.
  void set_read_only(bool read_only) { read_only_ = read_only; }
  [[nodiscard]] bool read_only() const { return read_only_; }

  // ---- durability hooks (src/persist/) ----

  /// Attach (or detach, with nullptr) a mutation observer. The sink
  /// sees mutations from this point on; attach only after recovery so
  /// replayed mutations are not re-logged.
  void set_mutation_sink(ReplicaMutationSink* sink) { sink_ = sink; }
  [[nodiscard]] ReplicaMutationSink* mutation_sink() const {
    return sink_;
  }

  /// Log a stored copy's transient state after a policy mutated it on
  /// the batch-building path (the one store mutation that bypasses the
  /// funnel above). No-op when the item is not stored or no sink is
  /// attached.
  void note_policy_state(ItemId id);

  [[nodiscard]] std::uint64_t next_counter() const {
    return next_counter_;
  }
  [[nodiscard]] std::uint64_t next_item_seq() const {
    return next_item_seq_;
  }
  /// Restore the authoring counters from a checkpoint. Monotonic:
  /// counters never move backwards (a reused (author, counter) pair
  /// would corrupt knowledge system-wide).
  void restore_counters(std::uint64_t next_counter,
                        std::uint64_t next_item_seq);
  /// Overwrite knowledge from a checkpoint's exact codec.
  void restore_knowledge(Knowledge knowledge) {
    knowledge_ = std::move(knowledge);
  }

  /// WAL replay of on_local_put: re-insert the logged item exactly as
  /// create/update/erase stored it (local origin, knowledge event,
  /// counters advanced past the logged version).
  void replay_local_put(Item item);
  /// WAL replay of on_policy_state.
  void replay_policy_state(ItemId id,
                           std::map<std::string, std::string> all);

  /// Check the store/knowledge soundness invariant for every stored
  /// item and, via `latest` (a map from item id to the globally newest
  /// version, supplied by the test oracle), for completeness claims.
  /// Returns a human-readable violation description, or empty string.
  [[nodiscard]] std::string check_invariants() const;

 private:
  /// Throws ReadOnlyError when the replica is degraded. Guards every
  /// mutation entry point; note_policy_state stays unguarded (policy
  /// transients are soft state rewritten on the pull-serving path,
  /// which must keep working while degraded).
  void require_writable(const char* op) const;

  ApplyOutcome apply_remote_impl(const Item& incoming,
                                 std::vector<Item>& evicted);

  /// Fix knowledge after relay evictions so copies can be re-received.
  void forget_evicted(const std::vector<Item>& evicted);

  /// Re-derive knowledge from the authored counter and the current
  /// store contents; called on filter changes (see set_filter).
  void rebuild_knowledge();

  ReplicaId id_;
  Filter filter_;
  Knowledge knowledge_;
  ItemStore store_;
  std::uint64_t next_counter_ = 0;
  std::uint64_t next_item_seq_ = 0;
  ReplicaMutationSink* sink_ = nullptr;
  bool read_only_ = false;
};

}  // namespace pfrdtn::repl
