#include "repl/version.hpp"

namespace pfrdtn::repl {

void Version::serialize(ByteWriter& w) const {
  w.uvarint(author.value());
  w.uvarint(counter);
  w.uvarint(revision);
}

Version Version::deserialize(ByteReader& r) {
  Version v;
  v.author = ReplicaId(r.uvarint());
  v.counter = r.uvarint();
  v.revision = r.uvarint();
  return v;
}

bool VersionVector::covers(const VersionVector& other) const {
  for (const auto& [author, counter] : other.max_) {
    if (max_counter(author) < counter) return false;
  }
  return true;
}

void VersionVector::serialize(ByteWriter& w) const {
  w.uvarint(max_.size());
  for (const auto& [author, counter] : max_) {
    w.uvarint(author.value());
    w.uvarint(counter);
  }
}

VersionVector VersionVector::deserialize(ByteReader& r) {
  VersionVector vv;
  const std::uint64_t n = r.uvarint();
  for (std::uint64_t i = 0; i < n; ++i) {
    r.charge_elements();
    const ReplicaId author(r.uvarint());
    vv.extend(author, r.uvarint());
  }
  return vv;
}

void VersionSet::add(ReplicaId author, std::uint64_t counter,
                     bool pinned) {
  PFRDTN_REQUIRE(counter >= 1);
  if (contains(author, counter)) return;
  if (pinned) {
    pinned_[author].insert(counter);
  } else {
    extras_[author].insert(counter);
    compact(author);
  }
}

void VersionSet::unpin(ReplicaId author, std::uint64_t counter) {
  const auto it = pinned_.find(author);
  if (it == pinned_.end() || it->second.erase(counter) == 0) return;
  if (it->second.empty()) pinned_.erase(it);
  if (!vv_.includes(author, counter)) extras_[author].insert(counter);
  compact(author);
}

void VersionSet::add_prefix(ReplicaId author, std::uint64_t max_counter) {
  if (max_counter == 0) return;
  vv_.extend(author, max_counter);
  // Absorb extras (and release pinned ones) now inside the prefix.
  if (const auto it = pinned_.find(author); it != pinned_.end()) {
    std::erase_if(it->second, [&](std::uint64_t c) {
      return c <= max_counter;
    });
    if (it->second.empty()) pinned_.erase(it);
  }
  compact(author);
}

bool VersionSet::pin(ReplicaId author, std::uint64_t counter) {
  if (const auto it = pinned_.find(author);
      it != pinned_.end() && it->second.count(counter) > 0) {
    return true;  // already pinned
  }
  const auto it = extras_.find(author);
  if (it == extras_.end() || it->second.erase(counter) == 0)
    return false;  // folded into the prefix (or absent): cannot pin
  if (it->second.empty()) extras_.erase(it);
  pinned_[author].insert(counter);
  return true;
}

void VersionSet::compact(ReplicaId author) {
  const auto it = extras_.find(author);
  if (it == extras_.end()) return;
  auto& pending = it->second;
  const auto pinned_it = pinned_.find(author);
  const auto* pinned =
      pinned_it == pinned_.end() ? nullptr : &pinned_it->second;
  std::uint64_t next = vv_.max_counter(author) + 1;
  // Fold the contiguous run; a pinned event blocks folding past it so
  // it stays removable.
  while (!pending.empty() && *pending.begin() == next &&
         !(pinned && pinned->count(next))) {
    pending.erase(pending.begin());
    vv_.extend(author, next);
    ++next;
  }
  // Drop extras that fell inside the prefix (possible after merge()).
  while (!pending.empty() &&
         *pending.begin() <= vv_.max_counter(author)) {
    pending.erase(pending.begin());
  }
  if (pending.empty()) extras_.erase(it);
}

bool VersionSet::contains(ReplicaId author, std::uint64_t counter) const {
  if (vv_.includes(author, counter)) return true;
  if (const auto it = extras_.find(author);
      it != extras_.end() && it->second.count(counter) > 0) {
    return true;
  }
  const auto it = pinned_.find(author);
  return it != pinned_.end() && it->second.count(counter) > 0;
}

bool VersionSet::removable(ReplicaId author,
                           std::uint64_t counter) const {
  for (const auto* group : {&pinned_, &extras_}) {
    const auto it = group->find(author);
    if (it != group->end() && it->second.count(counter) > 0) return true;
  }
  return false;
}

bool VersionSet::remove_extra(ReplicaId author, std::uint64_t counter) {
  for (auto* group : {&pinned_, &extras_}) {
    const auto it = group->find(author);
    if (it != group->end() && it->second.erase(counter) > 0) {
      if (it->second.empty()) group->erase(it);
      return true;
    }
  }
  return false;
}

void VersionSet::merge(const VersionSet& other) {
  vv_.merge(other.vv_);
  for (const auto* group : {&other.extras_, &other.pinned_}) {
    // Claims merged from a peer are unpinned: pinning is a local
    // storage concern of the replica that holds the evictable copy.
    for (const auto& [author, counters] : *group) {
      for (const std::uint64_t counter : counters) {
        if (!contains(author, counter)) extras_[author].insert(counter);
      }
    }
  }
  // Merging the vectors may have absorbed or unblocked pre-existing
  // extras.
  std::vector<ReplicaId> authors;
  authors.reserve(extras_.size());
  for (const auto& [author, counters] : extras_) authors.push_back(author);
  for (const ReplicaId author : authors) compact(author);
}

bool VersionSet::contains_all(const VersionSet& other) const {
  if (!vv_.covers(other.vv_)) {
    // The vector part of `other` might still be covered via extras;
    // check entry by entry (counters are dense from 1).
    for (const auto& [author, counter] : other.vv_.entries()) {
      for (std::uint64_t c = vv_.max_counter(author) + 1; c <= counter;
           ++c) {
        if (!contains(author, c)) return false;
      }
    }
  }
  for (const auto* group : {&other.extras_, &other.pinned_}) {
    for (const auto& [author, counters] : *group) {
      for (const std::uint64_t counter : counters) {
        if (!contains(author, counter)) return false;
      }
    }
  }
  return true;
}

std::size_t VersionSet::count_of(
    const std::map<ReplicaId, std::set<std::uint64_t>>& extras) {
  std::size_t n = 0;
  for (const auto& [author, counters] : extras) n += counters.size();
  return n;
}

std::size_t VersionSet::extras_count() const {
  return count_of(extras_) + count_of(pinned_);
}

bool VersionSet::empty() const {
  return vv_.entry_count() == 0 && extras_.empty() && pinned_.empty();
}

namespace {

void serialize_extras(
    ByteWriter& w,
    const std::map<ReplicaId, std::set<std::uint64_t>>& extras) {
  w.uvarint(extras.size());
  for (const auto& [author, counters] : extras) {
    w.uvarint(author.value());
    w.uvarint(counters.size());
    std::uint64_t prev = 0;
    for (const std::uint64_t counter : counters) {
      w.uvarint(counter - prev);  // delta-encoded, counters ascending
      prev = counter;
    }
  }
}

}  // namespace

void VersionSet::serialize(ByteWriter& w) const {
  // Pinned-ness is local; on the wire both groups are plain extras.
  vv_.serialize(w);
  auto combined = extras_;
  for (const auto& [author, counters] : pinned_)
    combined[author].insert(counters.begin(), counters.end());
  serialize_extras(w, combined);
}

VersionSet VersionSet::deserialize(ByteReader& r) {
  VersionSet vs;
  vs.vv_ = VersionVector::deserialize(r);
  const std::uint64_t groups = r.uvarint();
  for (std::uint64_t g = 0; g < groups; ++g) {
    r.charge_elements();
    const ReplicaId author(r.uvarint());
    const std::uint64_t n = r.uvarint();
    std::uint64_t counter = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      r.charge_elements();
      counter += r.uvarint();
      if (!vs.vv_.includes(author, counter))
        vs.extras_[author].insert(counter);
    }
    vs.compact(author);
  }
  return vs;
}

void VersionSet::serialize_exact(ByteWriter& w) const {
  vv_.serialize(w);
  serialize_extras(w, extras_);
  serialize_extras(w, pinned_);
}

namespace {

/// Decode one delta-encoded extras group map, validating that every
/// counter is strictly ascending and strictly above the prefix.
std::map<ReplicaId, std::set<std::uint64_t>> deserialize_extras_exact(
    ByteReader& r, const VersionVector& vv) {
  std::map<ReplicaId, std::set<std::uint64_t>> out;
  const std::uint64_t groups = r.uvarint();
  for (std::uint64_t g = 0; g < groups; ++g) {
    const ReplicaId author(r.uvarint());
    PFRDTN_REQUIRE(author.valid());
    PFRDTN_REQUIRE(out.count(author) == 0);
    const std::uint64_t n = r.uvarint();
    PFRDTN_REQUIRE(n <= r.remaining());  // each delta needs >= 1 byte
    auto& counters = out[author];
    std::uint64_t counter = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::uint64_t delta = r.uvarint();
      PFRDTN_REQUIRE(delta >= 1);  // strictly ascending, >= 1
      PFRDTN_REQUIRE(counter <= ~std::uint64_t{0} - delta);
      counter += delta;
      PFRDTN_REQUIRE(counter > vv.max_counter(author));
      counters.insert(counter);
    }
    if (counters.empty()) out.erase(author);
  }
  return out;
}

}  // namespace

VersionSet VersionSet::deserialize_exact(ByteReader& r) {
  VersionSet vs;
  vs.vv_ = VersionVector::deserialize(r);
  vs.extras_ = deserialize_extras_exact(r, vs.vv_);
  vs.pinned_ = deserialize_extras_exact(r, vs.vv_);
  // Extras and pinned must be disjoint, and the smallest unpinned
  // extra must not sit directly on the prefix (compact() would have
  // folded it) — a decoded set violating either is not one this code
  // ever wrote.
  for (const auto& [author, counters] : vs.extras_) {
    PFRDTN_REQUIRE(*counters.begin() !=
                   vs.vv_.max_counter(author) + 1);
    const auto pinned_it = vs.pinned_.find(author);
    if (pinned_it == vs.pinned_.end()) continue;
    for (const std::uint64_t counter : counters)
      PFRDTN_REQUIRE(pinned_it->second.count(counter) == 0);
  }
  return vs;
}

}  // namespace pfrdtn::repl
