#pragma once

/// \file version.hpp
/// Versioning primitives for the replication substrate.
///
/// Every local create/update/delete at a replica consumes the next value
/// of that replica's update counter, so the pair (author, counter)
/// uniquely identifies one update event in the whole system. Knowledge
/// (see knowledge.hpp) is a set of such pairs, stored compactly as a
/// version vector plus per-replica "extras" that compact into the vector
/// as they become contiguous — the paper's "knowledge represented in a
/// compact form, as a version vector".
///
/// A Version additionally carries a per-item revision used only for
/// deterministic last-writer-wins dominance between versions of the
/// same item (the DTN workload never updates items concurrently, so
/// this never influences the reproduced experiments; see DESIGN.md).

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/ids.hpp"

namespace pfrdtn::repl {

/// One update event: the `counter`-th update authored by `author`, and
/// the `revision`-th revision of its item.
struct Version {
  ReplicaId author{};
  std::uint64_t counter = 0;  ///< >= 1 for real versions
  std::uint64_t revision = 1; ///< per-item, starts at 1

  [[nodiscard]] bool valid() const {
    return author.valid() && counter >= 1;
  }

  /// True if this version supersedes `other` for the same item
  /// (deterministic last-writer-wins: higher revision wins, author id
  /// breaks ties).
  [[nodiscard]] bool dominates(const Version& other) const {
    if (revision != other.revision) return revision > other.revision;
    return author > other.author;
  }

  [[nodiscard]] bool same_event(const Version& other) const {
    return author == other.author && counter == other.counter;
  }

  friend auto operator<=>(const Version&, const Version&) = default;

  void serialize(ByteWriter& w) const;
  static Version deserialize(ByteReader& r);
};

/// Classic version vector: maps each replica to the highest contiguous
/// counter known for it ("knows (r, c) for every 1 <= c <= vv[r]").
class VersionVector {
 public:
  [[nodiscard]] bool includes(ReplicaId author,
                              std::uint64_t counter) const {
    const auto it = max_.find(author);
    return it != max_.end() && counter <= it->second;
  }

  [[nodiscard]] std::uint64_t max_counter(ReplicaId author) const {
    const auto it = max_.find(author);
    return it == max_.end() ? 0 : it->second;
  }

  /// Raise this vector's entry for `author` to at least `counter`.
  void extend(ReplicaId author, std::uint64_t counter) {
    auto& entry = max_[author];
    if (counter > entry) entry = counter;
  }

  /// Pointwise maximum.
  void merge(const VersionVector& other) {
    for (const auto& [author, counter] : other.max_)
      extend(author, counter);
  }

  /// True if every entry of `other` is covered by this vector.
  [[nodiscard]] bool covers(const VersionVector& other) const;

  [[nodiscard]] std::size_t entry_count() const { return max_.size(); }
  [[nodiscard]] const std::map<ReplicaId, std::uint64_t>& entries() const {
    return max_;
  }

  friend bool operator==(const VersionVector&,
                         const VersionVector&) = default;

  void serialize(ByteWriter& w) const;
  static VersionVector deserialize(ByteReader& r);

 private:
  std::map<ReplicaId, std::uint64_t> max_;
};

/// A set of update events (author, counter), stored as a version vector
/// plus sparse extras. Extras compact into the vector prefix as gaps
/// fill (counters are per-replica and gap-free at the author, so a
/// contiguous prefix is exactly "every update authored so far").
///
/// An extra may be added *pinned*: pinned extras are full members of
/// the set but never fold into the vector prefix and block folding past
/// them, so they remain individually removable. Replicas pin the events
/// of relay (out-of-filter) item copies, which may be evicted later and
/// must then become re-receivable (see knowledge.hpp / DESIGN.md).
class VersionSet {
 public:
  /// Record that the update event of `v` is a member. Pinned events
  /// stay removable (never compacted into the vector prefix).
  void add(ReplicaId author, std::uint64_t counter, bool pinned = false);
  void add(const Version& v, bool pinned = false) {
    add(v.author, v.counter, pinned);
  }

  /// Convert a pinned event into a normal one (e.g. a relay copy that
  /// now matches the replica's filter and can no longer be evicted).
  void unpin(ReplicaId author, std::uint64_t counter);

  /// Convert a normal extra back into a pinned one. No effect — and
  /// false returned — if the event was already folded into the vector
  /// prefix.
  bool pin(ReplicaId author, std::uint64_t counter);

  /// Record the complete prefix 1..max_counter for `author` (used for
  /// a replica's own authored events, which are known by construction).
  void add_prefix(ReplicaId author, std::uint64_t max_counter);

  [[nodiscard]] bool contains(ReplicaId author,
                              std::uint64_t counter) const;
  [[nodiscard]] bool contains(const Version& v) const {
    return contains(v.author, v.counter);
  }

  /// Remove an event, possible only while it is still an extra —
  /// pinned or not — and not yet folded into the vector prefix.
  /// Returns whether it was removed. Used when a relay copy is evicted
  /// so the copy can be re-received.
  bool remove_extra(ReplicaId author, std::uint64_t counter);

  /// True if the event is a member that remove_extra could still take
  /// out (an extra or a pinned extra, not folded into the prefix).
  [[nodiscard]] bool removable(ReplicaId author,
                               std::uint64_t counter) const;

  /// Union with another set.
  void merge(const VersionSet& other);

  /// True if every event in `other` is contained in this set.
  [[nodiscard]] bool contains_all(const VersionSet& other) const;

  [[nodiscard]] const VersionVector& vector_part() const { return vv_; }
  [[nodiscard]] std::size_t extras_count() const;
  [[nodiscard]] bool empty() const;

  /// Number of events representable only approximately: vector entries
  /// plus extras — the metadata footprint measured in benchmarks.
  [[nodiscard]] std::size_t weight() const {
    return vv_.entry_count() + extras_count();
  }

  /// Exact number of member events (whole vector prefixes plus extras).
  /// O(entries), not O(events) — safe to call on huge sets.
  [[nodiscard]] std::uint64_t event_count() const {
    std::uint64_t n = 0;
    for (const auto& [author, counter] : vv_.entries()) n += counter;
    return n + extras_count();
  }

  /// Visit every member event as (author, counter). O(event_count()):
  /// callers must bound the set first (see SummaryParams) — this
  /// enumerates whole vector prefixes.
  template <typename Fn>
  void for_each_event(Fn&& fn) const {
    for (const auto& [author, counter] : vv_.entries()) {
      for (std::uint64_t c = 1; c <= counter; ++c) fn(author, c);
    }
    for (const auto* group : {&extras_, &pinned_}) {
      for (const auto& [author, counters] : *group) {
        for (const std::uint64_t c : counters) fn(author, c);
      }
    }
  }

  friend bool operator==(const VersionSet&, const VersionSet&) = default;

  void serialize(ByteWriter& w) const;
  static VersionSet deserialize(ByteReader& r);

  /// Structure-preserving codec for checkpoints (src/persist/). The
  /// wire codec above deliberately erases pinned-ness and refolds
  /// extras on decode — fine between replicas, but a recovered replica
  /// must get back the *same* structure or its evictable relay copies
  /// would no longer be forgettable (can_forget) after a restart.
  /// deserialize_exact validates the structural invariants (ascending
  /// counters, extras strictly above the vector prefix, extras and
  /// pinned disjoint) and throws ContractViolation on anything else,
  /// so a corrupt checkpoint is rejected rather than loaded.
  void serialize_exact(ByteWriter& w) const;
  static VersionSet deserialize_exact(ByteReader& r);

 private:
  void compact(ReplicaId author);
  static std::size_t count_of(
      const std::map<ReplicaId, std::set<std::uint64_t>>& extras);

  VersionVector vv_;
  std::map<ReplicaId, std::set<std::uint64_t>> extras_;
  std::map<ReplicaId, std::set<std::uint64_t>> pinned_;
};

}  // namespace pfrdtn::repl
