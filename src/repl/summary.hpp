#pragma once

/// \file summary.hpp
/// Compact knowledge summaries for the sub-linear anti-entropy fast
/// path (see docs/net.md §summary exchange).
///
/// A KnowledgeSummary stands in for a replica's full knowledge on the
/// first leg of a sync: a 64-bit digest of the wire-serialized
/// knowledge (equal digests => byte-identical wire knowledge, so the
/// peers have already converged and the exchange ends in O(1) wire
/// bytes) plus an optional Bloom filter over every known update event.
/// The Bloom filter lets a source prove "the target knows none of my
/// candidates" without ever seeing the target's exact knowledge: a
/// Bloom *miss* is definitive (no false negatives), so a zero-hit scan
/// licenses streaming the exact batch immediately. Any hit — true
/// positive or false positive — defers to the exact request/batch
/// flow, which is why a false positive can cost bytes but never lose
/// an item. Sizing follows Marandi et al. (PAPERS.md): m/n bits per
/// element with k = ln2 * m/n hash functions.

#include <optional>

#include "repl/knowledge.hpp"
#include "util/hash.hpp"

namespace pfrdtn::repl {

/// Bloom filter over update events (author, counter). Double hashing:
/// the two base hashes derive from one splitmix64 chain, probe i uses
/// h1 + i*h2 mod bit_count.
class BloomFilter {
 public:
  /// Decode-time ceiling on the hash count; more hashes than this costs
  /// work without lowering the false-positive rate at any sane m/n.
  static constexpr std::uint32_t kMaxHashCount = 32;

  BloomFilter() = default;
  BloomFilter(std::uint64_t bit_count, std::uint32_t hash_count);

  /// The filter `params` prescribes for `element_count` events.
  static BloomFilter sized_for(std::uint64_t element_count,
                               const SummaryParams& params);

  void insert(ReplicaId author, std::uint64_t counter);
  /// False means definitively absent; true means present or a false
  /// positive (rate tuned by SummaryParams).
  [[nodiscard]] bool maybe_contains(ReplicaId author,
                                    std::uint64_t counter) const;

  [[nodiscard]] std::uint64_t bit_count() const { return bit_count_; }
  [[nodiscard]] std::uint32_t hash_count() const { return hash_count_; }
  [[nodiscard]] std::size_t byte_size() const { return bits_.size(); }

  void serialize(ByteWriter& w) const;
  /// Throws ContractViolation on any structurally invalid encoding
  /// (zero/oversized hash count, bit/byte length mismatch). Allocation
  /// is bounded by the payload the caller already admitted against its
  /// resource limits: the bit array is read with ByteReader::raw(),
  /// which cannot allocate beyond the remaining payload bytes.
  static BloomFilter deserialize(ByteReader& r);

  friend bool operator==(const BloomFilter&, const BloomFilter&) = default;

 private:
  std::uint64_t bit_count_ = 0;
  std::uint32_t hash_count_ = 0;
  std::vector<std::uint8_t> bits_;
};

/// What a target offers instead of its exact knowledge on the summary
/// fast path.
struct KnowledgeSummary {
  /// Knowledge::wire_digest() of the exact knowledge.
  std::uint64_t digest = 0;
  /// Bloom filter over every known event; absent when the exact codec
  /// is at least as compact (see Knowledge::bloom and SummaryParams).
  std::optional<BloomFilter> bloom;

  void serialize(ByteWriter& w) const;
  static KnowledgeSummary deserialize(ByteReader& r);

  friend bool operator==(const KnowledgeSummary&,
                         const KnowledgeSummary&) = default;
};

/// Build the summary `knowledge` should offer under `params`. Cached
/// inside the Knowledge object (digest and Bloom both key on its
/// revision), so in the converged steady state this is O(1) per sync.
[[nodiscard]] KnowledgeSummary summarize(const Knowledge& knowledge,
                                         const SummaryParams& params);

}  // namespace pfrdtn::repl
