#include "repl/summary.hpp"

#include <cmath>

namespace pfrdtn::repl {

std::uint32_t SummaryParams::optimal_hash_count(
    std::uint32_t bits_per_element) {
  const double k = std::round(0.6931471805599453 * bits_per_element);
  if (k < 1.0) return 1;
  if (k > BloomFilter::kMaxHashCount) return BloomFilter::kMaxHashCount;
  return static_cast<std::uint32_t>(k);
}

BloomFilter::BloomFilter(std::uint64_t bit_count,
                         std::uint32_t hash_count)
    : bit_count_(bit_count), hash_count_(hash_count) {
  PFRDTN_REQUIRE(bit_count_ >= 1);
  PFRDTN_REQUIRE(hash_count_ >= 1 && hash_count_ <= kMaxHashCount);
  bits_.assign(static_cast<std::size_t>((bit_count_ + 7) / 8), 0);
}

BloomFilter BloomFilter::sized_for(std::uint64_t element_count,
                                   const SummaryParams& params) {
  // An empty filter still needs one byte: it proves "I know nothing",
  // the cheapest possible cold-sync request.
  const std::uint64_t bits =
      std::max<std::uint64_t>(8, element_count * params.bits_per_element);
  return BloomFilter(bits, params.hash_count);
}

namespace {

/// The double-hashing pair for one event.
struct ProbeSeed {
  std::uint64_t h1;
  std::uint64_t h2;
};

ProbeSeed probe_seed(ReplicaId author, std::uint64_t counter) {
  const std::uint64_t h = mix64(author.value() ^ mix64(counter));
  return {h, mix64(h) | 1};  // odd step, coprime with any bit count
}

}  // namespace

void BloomFilter::insert(ReplicaId author, std::uint64_t counter) {
  const ProbeSeed seed = probe_seed(author, counter);
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = (seed.h1 + i * seed.h2) % bit_count_;
    bits_[static_cast<std::size_t>(bit / 8)] |=
        static_cast<std::uint8_t>(1u << (bit % 8));
  }
}

bool BloomFilter::maybe_contains(ReplicaId author,
                                 std::uint64_t counter) const {
  const ProbeSeed seed = probe_seed(author, counter);
  for (std::uint32_t i = 0; i < hash_count_; ++i) {
    const std::uint64_t bit = (seed.h1 + i * seed.h2) % bit_count_;
    if (!(bits_[static_cast<std::size_t>(bit / 8)] &
          (1u << (bit % 8)))) {
      return false;
    }
  }
  return true;
}

void BloomFilter::serialize(ByteWriter& w) const {
  w.u8(static_cast<std::uint8_t>(hash_count_));
  w.uvarint(bit_count_);
  w.raw(bits_);
}

BloomFilter BloomFilter::deserialize(ByteReader& r) {
  r.charge_elements();
  const std::uint8_t hash_count = r.u8();
  PFRDTN_REQUIRE(hash_count >= 1 && hash_count <= kMaxHashCount);
  const std::uint64_t bit_count = r.uvarint();
  // Sanity ceiling well above any configured cap, and low enough that
  // the byte-length arithmetic below cannot overflow.
  PFRDTN_REQUIRE(bit_count >= 1 && bit_count <= (std::uint64_t{1} << 30));
  // raw() bounds the byte vector by the remaining payload, so a lying
  // bit_count cannot drive the allocation — only fail this check.
  std::vector<std::uint8_t> bits = r.raw();
  PFRDTN_REQUIRE(bits.size() == (bit_count + 7) / 8);
  BloomFilter filter(bit_count, hash_count);
  filter.bits_ = std::move(bits);
  return filter;
}

void KnowledgeSummary::serialize(ByteWriter& w) const {
  w.uvarint(digest);
  w.u8(bloom.has_value() ? 1 : 0);
  if (bloom.has_value()) bloom->serialize(w);
}

KnowledgeSummary KnowledgeSummary::deserialize(ByteReader& r) {
  KnowledgeSummary summary;
  summary.digest = r.uvarint();
  const std::uint8_t has_bloom = r.u8();
  PFRDTN_REQUIRE(has_bloom <= 1);
  if (has_bloom == 1) summary.bloom = BloomFilter::deserialize(r);
  return summary;
}

std::shared_ptr<const BloomFilter> Knowledge::bloom(
    const SummaryParams& params) const {
  if (bloom_cache_revision_ == revision_ &&
      bloom_cache_params_ == params) {
    return bloom_cache_;
  }
  bloom_cache_revision_ = revision_;
  bloom_cache_params_ = params;
  bloom_cache_ = nullptr;
  const std::uint64_t events = event_count();
  if (events <= params.max_bloom_elements) {
    BloomFilter filter = BloomFilter::sized_for(events, params);
    // Ship the filter only while it undercuts both the absolute cap and
    // the exact codec: past either, the exact knowledge (or the digest
    // tier alone) is the better offer. The decision is a pure function
    // of (knowledge, params) — both sides of the differential suite see
    // identical requests.
    if (filter.byte_size() <= params.max_bloom_bytes &&
        filter.byte_size() < size_bytes()) {
      auto insert = [&filter](ReplicaId author, std::uint64_t counter) {
        filter.insert(author, counter);
      };
      universal_.for_each_event(insert);
      for (const Fragment& fragment : fragments_)
        fragment.versions.for_each_event(insert);
      bloom_cache_ =
          std::make_shared<const BloomFilter>(std::move(filter));
    }
  }
  return bloom_cache_;
}

KnowledgeSummary summarize(const Knowledge& knowledge,
                           const SummaryParams& params) {
  KnowledgeSummary summary;
  summary.digest = knowledge.wire_digest();
  if (auto bloom = knowledge.bloom(params)) summary.bloom = *bloom;
  return summary;
}

}  // namespace pfrdtn::repl
