#pragma once

/// \file direct.hpp
/// The null policy: no out-of-filter forwarding at all. A node running
/// this policy behaves exactly like the unmodified replication
/// substrate ("basic Cimbiosys" in the evaluation): messages travel
/// only on direct encounters between a replica storing the message and
/// one whose filter selects it.

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

class DirectPolicy : public DtnPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "cimbiosys"; }
  [[nodiscard]] std::string summary() const override {
    return "state: (none); request: (none); forward: nothing beyond "
           "the target's filter (unmodified substrate)";
  }
  // All ForwardingPolicy defaults (skip everything) apply.
};

}  // namespace pfrdtn::dtn
