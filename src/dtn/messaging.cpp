#include "dtn/messaging.hpp"

#include "util/require.hpp"

namespace pfrdtn::dtn {

void DtnNode::set_policy(PolicyPtr policy) {
  policy_ = std::move(policy);
  if (policy_) {
    policy_->bind(&replica_);
    policy_->set_hosted(hosted_, SimTime(0));
  }
}

repl::Filter DtnNode::make_filter() const {
  std::set<HostId> all = hosted_;
  all.insert(extra_.begin(), extra_.end());
  return repl::Filter::addresses(std::move(all));
}

std::vector<Message> DtnNode::set_addresses(std::set<HostId> hosted,
                                            std::set<HostId> extra,
                                            SimTime now) {
  hosted_ = std::move(hosted);
  extra_ = std::move(extra);
  if (policy_) policy_->set_hosted(hosted_, now);
  replica_.set_filter(make_filter());
  // A reassignment can turn already-stored items (relay copies, or
  // in-filter copies held for an extra address) into deliveries.
  std::vector<Message> delivered;
  replica_.store().for_each([&](const repl::ItemStore::Entry& entry) {
    try_deliver(entry.item, now, delivered);
  });
  return delivered;
}

MessageId DtnNode::send(HostId from, std::vector<HostId> to,
                        std::string body, SimTime now) {
  PFRDTN_REQUIRE(!to.empty());
  const auto& item = replica_.create(
      message_metadata(from, to, now),
      std::vector<std::uint8_t>(body.begin(), body.end()));
  // A message addressed to one of our own users is delivered
  // immediately (degenerate but legal).
  std::vector<Message> self_delivered;
  try_deliver(item, now, self_delivered);
  return item.id();
}

bool DtnNode::try_deliver(const repl::Item& item, SimTime now,
                          std::vector<Message>& out) {
  if (item.deleted()) return false;
  auto message = Message::from_item(item);
  if (!message) return false;
  bool addressed_here = false;
  for (const HostId dest : message->destinations) {
    if (hosted_.count(dest)) {
      addressed_here = true;
      break;
    }
  }
  if (!addressed_here) return false;
  if (!delivered_.insert(item.id()).second) return false;
  if (delivery_sink_) {
    try {
      delivery_sink_(item.id());
    } catch (...) {
      // The ledger write failed: withdraw the delivery so the message
      // re-reports later rather than vanishing unreported.
      delivered_.erase(item.id());
      throw;
    }
  }
  if (policy_) policy_->note_delivered(item.id(), now);
  out.push_back(std::move(*message));
  return true;
}

std::vector<Message> DtnNode::on_sync_delivered(
    const std::vector<repl::Item>& items, SimTime now) {
  std::vector<Message> delivered;
  for (const repl::Item& item : items) try_deliver(item, now, delivered);
  return delivered;
}

namespace {

/// Does `source` hold an item the target's filter selects and the
/// target does not know yet? Mirrors the summary-vector exchange real
/// DTN protocols perform before committing link time: under a
/// bandwidth budget, the direction with a pending *delivery* must go
/// first or a relay copy can starve it.
bool has_pending_delivery(const DtnNode& source, const DtnNode& target) {
  bool pending = false;
  // Enumerate only the entries the target's filter selects (indexed for
  // address filters) and stop at the first unknown one.
  source.replica().store().for_filter_matches(
      target.replica().filter(),
      [&](const repl::ItemStore::Entry& entry) {
        if (!target.replica().knowledge().knows(entry.item,
                                                entry.item.version())) {
          pending = true;
          return false;  // early exit
        }
        return true;
      });
  return pending;
}

}  // namespace

EncounterOutcome run_encounter(DtnNode& a, DtnNode& b, SimTime now,
                               const EncounterOptions& options) {
  EncounterOutcome outcome;
  std::optional<std::size_t> budget = options.encounter_budget;

  const auto one_way = [&](DtnNode& source, DtnNode& target,
                           std::vector<Message>& delivered_out) {
    repl::SyncOptions sync_options;
    sync_options.learn_knowledge = options.learn_knowledge;
    if (budget) sync_options.max_items = *budget;
    const auto result =
        options.sync_runner
            ? options.sync_runner(source.replica(), target.replica(),
                                  source.policy(), target.policy(), now,
                                  sync_options)
            : repl::run_sync(source.replica(), target.replica(),
                             source.policy(), target.policy(), now,
                             sync_options);
    if (budget) {
      *budget -= std::min(*budget, result.stats.items_sent);
    }
    outcome.stats.accumulate(result.stats);
    auto delivered = target.on_sync_delivered(result.delivered, now);
    delivered_out.insert(delivered_out.end(), delivered.begin(),
                         delivered.end());
  };

  // Two syncs per encounter, roles alternating (Section VI-A). Under a
  // bandwidth budget, schedule the direction with a pending delivery
  // first so out-of-filter relaying cannot starve it.
  bool a_first = false;
  if (budget && !has_pending_delivery(b, a) &&
      has_pending_delivery(a, b)) {
    a_first = true;
  }
  if (a_first) {
    one_way(/*source=*/a, /*target=*/b, outcome.delivered_b);
    one_way(/*source=*/b, /*target=*/a, outcome.delivered_a);
  } else {
    one_way(/*source=*/b, /*target=*/a, outcome.delivered_a);
    one_way(/*source=*/a, /*target=*/b, outcome.delivered_b);
  }

  if (a.policy()) a.policy()->encounter_complete(b.id(), now);
  if (b.policy()) b.policy()->encounter_complete(a.id(), now);
  return outcome;
}

}  // namespace pfrdtn::dtn
