#include "dtn/maxprop.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/byte_buffer.hpp"

namespace pfrdtn::dtn {

std::string MaxPropPolicy::summary() const {
  return "state: estimated meeting probabilities for all pairs; "
         "request: target's meeting probabilities and hosted "
         "addresses; forward: all messages, ordered by priority "
         "(hop count below " +
         std::to_string(params_.hop_threshold) +
         " first, then modified-Dijkstra path cost)";
}

double MaxPropPolicy::meeting_probability(ReplicaId peer) const {
  const auto it = own_p_.find(peer);
  return it == own_p_.end() ? 0.0 : it->second;
}

std::vector<std::uint8_t> MaxPropPolicy::generate_request(
    const repl::SyncContext& /*ctx*/) {
  ByteWriter w;
  w.uvarint(hosted().size());
  for (const HostId addr : hosted()) w.uvarint(addr.value());
  w.uvarint(own_p_.size());
  for (const auto& [peer, p] : own_p_) {
    w.uvarint(peer.value());
    w.f64(p);
  }
  w.uvarint(params_.ack_flooding ? acked_.size() : 0);
  if (params_.ack_flooding) {
    for (const ItemId id : acked_) w.uvarint(id.value());
  }
  return w.take();
}

void MaxPropPolicy::process_request(
    const repl::SyncContext& ctx,
    const std::vector<std::uint8_t>& routing_state) {
  if (routing_state.empty()) return;
  ByteReader r(routing_state);
  const std::uint64_t hosted_count = r.uvarint();
  for (std::uint64_t i = 0; i < hosted_count; ++i)
    last_host_[HostId(r.uvarint())] = ctx.peer;
  auto& peer_vector = learned_[ctx.peer];
  peer_vector.clear();
  const std::uint64_t p_count = r.uvarint();
  for (std::uint64_t i = 0; i < p_count; ++i) {
    const ReplicaId node(r.uvarint());
    peer_vector[node] = r.f64();
  }
  const std::uint64_t ack_count = r.uvarint();
  for (std::uint64_t i = 0; i < ack_count; ++i) {
    const ItemId id(r.uvarint());
    if (!acked_.insert(id).second) continue;
    // Clear our relay buffer of the delivered message; in-filter and
    // locally authored copies are kept (multi-destination safety).
    if (replica() != nullptr) replica()->discard_relay(id);
  }
}

void MaxPropPolicy::encounter_complete(ReplicaId peer, SimTime /*now*/) {
  // "When another node is encountered the associated probability is
  // increased and the distribution is normalized."
  own_p_[peer] += 1.0;
  double total = 0.0;
  for (const auto& [node, p] : own_p_) total += p;
  for (auto& [node, p] : own_p_) p /= total;
}

void MaxPropPolicy::note_delivered(ItemId id, SimTime /*now*/) {
  if (params_.ack_flooding) acked_.insert(id);
}

double MaxPropPolicy::path_cost(HostId dest) const {
  const auto host_it = last_host_.find(dest);
  if (host_it == last_host_.end())
    return std::numeric_limits<double>::infinity();
  const ReplicaId goal = host_it->second;

  // Modified Dijkstra over the replica graph; edge i->j costs
  // 1 - P_i(j), using our own vector for the first hop and learned
  // vectors beyond. Unknown vectors contribute no outgoing edges.
  using Entry = std::pair<double, ReplicaId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  std::map<ReplicaId, double> dist;
  const ReplicaId start{};  // sentinel for "self"
  dist[start] = 0.0;
  queue.emplace(0.0, start);
  while (!queue.empty()) {
    const auto [cost, node] = queue.top();
    queue.pop();
    if (cost > dist[node]) continue;
    if (node == goal) return cost;
    const std::map<ReplicaId, double>* vector = nullptr;
    if (node == start) {
      vector = &own_p_;
    } else {
      const auto it = learned_.find(node);
      if (it != learned_.end()) vector = &it->second;
    }
    if (vector == nullptr) continue;
    for (const auto& [next, p] : *vector) {
      const double edge = 1.0 - std::min(1.0, std::max(0.0, p));
      const double next_cost = cost + edge;
      const auto it = dist.find(next);
      if (it == dist.end() || next_cost < it->second) {
        dist[next] = next_cost;
        queue.emplace(next_cost, next);
      }
    }
  }
  return std::numeric_limits<double>::infinity();
}

repl::Priority MaxPropPolicy::to_send(const repl::SyncContext& /*ctx*/,
                                      repl::TransientView stored) {
  if (params_.ack_flooding && acked_.count(stored.item().id()))
    return repl::Priority::skip();
  const std::int64_t hops = stored.get_int(kHopsKey).value_or(0);
  if (hops < params_.hop_threshold) {
    // "New" messages: sorted by hop count, lowest first.
    return repl::Priority::at(repl::PriorityClass::High,
                              static_cast<double>(hops));
  }
  double best = std::numeric_limits<double>::infinity();
  for (const HostId dest : stored.item().dest_addresses())
    best = std::min(best, path_cost(dest));
  // Still forwarded even when the destination is unknown — MaxProp
  // floods; the score only orders the batch.
  return repl::Priority::at(repl::PriorityClass::Normal, best);
}

void MaxPropPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                               repl::TransientView stored,
                               repl::TransientView outgoing) {
  const std::int64_t hops = stored.get_int(kHopsKey).value_or(0);
  outgoing.set_int(kHopsKey, hops + 1);
}

}  // namespace pfrdtn::dtn
