#include "dtn/message.hpp"

#include <charconv>

namespace pfrdtn::dtn {

std::optional<Message> Message::from_item(const repl::Item& item) {
  if (!is_message(item)) return std::nullopt;
  Message message;
  message.id = item.id();
  if (const auto src = item.meta(repl::meta::kSource)) {
    const auto hosts = repl::decode_hosts(*src);
    if (!hosts.empty()) message.source = hosts.front();
  }
  message.destinations = item.dest_addresses();
  if (const auto created = item.meta(repl::meta::kCreated)) {
    std::int64_t seconds = 0;
    std::from_chars(created->data(), created->data() + created->size(),
                    seconds);
    message.created = SimTime(seconds);
  }
  message.body.assign(item.body().begin(), item.body().end());
  return message;
}

std::map<std::string, std::string> message_metadata(
    HostId source, const std::vector<HostId>& destinations,
    SimTime created) {
  return {
      {repl::meta::kType, kMessageType},
      {repl::meta::kSource, repl::encode_hosts({source})},
      {repl::meta::kDest, repl::encode_hosts(destinations)},
      {repl::meta::kCreated, std::to_string(created.seconds())},
  };
}

bool is_message(const repl::Item& item) {
  const auto type = item.meta(repl::meta::kType);
  return type && *type == kMessageType;
}

}  // namespace pfrdtn::dtn
