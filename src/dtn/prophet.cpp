#include "dtn/prophet.hpp"

#include <algorithm>
#include <cmath>

#include "util/byte_buffer.hpp"

namespace pfrdtn::dtn {

std::string ProphetPolicy::summary() const {
  return "state: vector of delivery predictabilities P[d] per "
         "destination; request: target's P vector and hosted "
         "addresses; forward: messages addressed to d when the "
         "target's P[d] exceeds the source's (Pinit=" +
         std::to_string(params_.p_init) +
         ", beta=" + std::to_string(params_.beta) +
         ", gamma=" + std::to_string(params_.gamma) + ")";
}

void ProphetPolicy::age(SimTime now) {
  if (!ever_aged_) {
    last_aged_ = now;
    ever_aged_ = true;
    return;
  }
  const std::int64_t elapsed = now - last_aged_;
  if (elapsed <= 0) return;
  const double units = static_cast<double>(elapsed) /
                       static_cast<double>(params_.aging_unit_s);
  const double factor = std::pow(params_.gamma, units);
  for (auto& [dest, p] : p_) p *= factor;
  last_aged_ = now;
}

double ProphetPolicy::predictability(HostId dest) const {
  const auto it = p_.find(dest);
  return it == p_.end() ? 0.0 : it->second;
}

std::vector<std::uint8_t> ProphetPolicy::generate_request(
    const repl::SyncContext& ctx) {
  age(ctx.now);
  ByteWriter w;
  w.uvarint(hosted().size());
  for (const HostId addr : hosted()) w.uvarint(addr.value());
  w.uvarint(p_.size());
  for (const auto& [dest, p] : p_) {
    w.uvarint(dest.value());
    w.f64(p);
  }
  return w.take();
}

void ProphetPolicy::process_request(
    const repl::SyncContext& ctx,
    const std::vector<std::uint8_t>& routing_state) {
  last_peer_ = ctx.peer;
  peer_p_.clear();
  if (routing_state.empty()) return;
  ByteReader r(routing_state);
  std::vector<HostId> peer_hosted;
  const std::uint64_t hosted_count = r.uvarint();
  peer_hosted.reserve(static_cast<std::size_t>(
      std::min<std::uint64_t>(hosted_count, r.remaining())));
  for (std::uint64_t i = 0; i < hosted_count; ++i)
    peer_hosted.emplace_back(r.uvarint());
  const std::uint64_t p_count = r.uvarint();
  for (std::uint64_t i = 0; i < p_count; ++i) {
    const HostId dest(r.uvarint());
    peer_p_[dest] = r.f64();
  }

  // Each host acts as source exactly once per encounter (the paper
  // performs two syncs with swapped roles), so updating here updates
  // the vector "only once for each pair of synchronizations".
  age(ctx.now);
  double p_to_peer = 0.0;
  for (const HostId addr : peer_hosted) {
    double& p = p_[addr];
    p += (1.0 - p) * params_.p_init;
    p_to_peer = std::max(p_to_peer, p);
  }
  if (peer_hosted.empty()) p_to_peer = params_.p_init;
  // Transitivity: P(a,c) = max(P(a,c), P(a,b) * P(b,c) * beta).
  for (const auto& [dest, peer_p] : peer_p_) {
    if (hosted().count(dest)) continue;  // we host it ourselves
    double& p = p_[dest];
    p = std::max(p, p_to_peer * peer_p * params_.beta);
  }
}

repl::Priority ProphetPolicy::to_send(const repl::SyncContext& ctx,
                                      repl::TransientView stored) {
  if (ctx.peer != last_peer_) return repl::Priority::skip();
  double best_gain = -1.0;
  for (const HostId dest : stored.item().dest_addresses()) {
    const double own = predictability(dest);
    const auto it = peer_p_.find(dest);
    const double peer = it == peer_p_.end() ? 0.0 : it->second;
    if (peer <= own) continue;
    if (params_.grtr_plus) {
      const auto best_seen = stored.get(kBestPKey);
      if (best_seen && peer <= std::stod(*best_seen)) continue;
    }
    best_gain = std::max(best_gain, peer);
  }
  if (best_gain < 0) return repl::Priority::skip();
  // Higher peer predictability -> earlier in the batch.
  return repl::Priority::at(repl::PriorityClass::Normal, -best_gain);
}

void ProphetPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                               repl::TransientView stored,
                               repl::TransientView outgoing) {
  if (!params_.grtr_plus) return;
  double best = 0.0;
  if (const auto seen = stored.get(kBestPKey)) best = std::stod(*seen);
  for (const HostId dest : stored.item().dest_addresses()) {
    const auto it = peer_p_.find(dest);
    if (it != peer_p_.end()) best = std::max(best, it->second);
  }
  const std::string encoded = std::to_string(best);
  stored.set(kBestPKey, encoded);
  outgoing.set(kBestPKey, encoded);
}

}  // namespace pfrdtn::dtn
