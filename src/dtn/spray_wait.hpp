#pragma once

/// \file spray_wait.hpp
/// Spray and Wait [Spyropoulos et al. 2005]: inject a fixed number of
/// logical copies per message; a node forwards only while it holds at
/// least two copies. In *binary* mode (the paper's default, "a binary
/// tree pattern rooted at the message source") half of the copies are
/// handed over per forward; in *vanilla* (source-spray) mode a single
/// copy is handed over. A node holding one copy is in the Wait phase:
/// it delivers only on a direct encounter with the destination, which
/// the substrate's filter matching performs without policy involvement.

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

struct SprayWaitParams {
  /// Copies injected per message (Table II: copies per message = 8).
  std::int64_t copies = 8;
  /// Binary spraying (halving) vs vanilla (one copy per forward).
  bool binary = true;
};

class SprayWaitPolicy : public DtnPolicy {
 public:
  explicit SprayWaitPolicy(SprayWaitParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override { return "spray"; }
  [[nodiscard]] std::string summary() const override;

  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  [[nodiscard]] const SprayWaitParams& params() const { return params_; }

  /// Transient key holding the copy budget of a stored message copy.
  static constexpr const char* kCopiesKey = "copies";

 private:
  SprayWaitParams params_;
};

}  // namespace pfrdtn::dtn
