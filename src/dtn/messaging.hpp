#pragma once

/// \file messaging.hpp
/// The DTN messaging application: one DtnNode per device, owning a
/// replica and an optional routing policy. Sending a message "simply
/// inserts the message into the sending host's replica"; delivery
/// happens when a message item reaches a node hosting one of its
/// destination addresses. The node's filter is the union of its hosted
/// addresses and any extra forwarding addresses (the multi-address
/// filter strategies of Section IV-B).

#include <functional>
#include <memory>
#include <set>
#include <unordered_set>

#include "dtn/message.hpp"
#include "dtn/policy.hpp"
#include "repl/sync.hpp"

namespace pfrdtn::dtn {

class DtnNode {
 public:
  explicit DtnNode(ReplicaId id, repl::ItemStore::Config store_config = {})
      : replica_(id, repl::Filter::none(), store_config) {}

  /// Adopt a recovered replica (crash restart from a state directory;
  /// see src/persist/). Seed the delivered-message ledger from
  /// RecoveredReplica::delivered and wire set_delivery_sink back into
  /// persist::Durability::note_delivered to make delivery reporting
  /// exactly-once across crashes, not just per process lifetime.
  explicit DtnNode(repl::Replica replica) : replica_(std::move(replica)) {}

  [[nodiscard]] ReplicaId id() const { return replica_.id(); }
  [[nodiscard]] repl::Replica& replica() { return replica_; }
  [[nodiscard]] const repl::Replica& replica() const { return replica_; }

  /// Install (or replace) the routing policy. The policy is bound to
  /// this node's replica.
  void set_policy(PolicyPtr policy);
  [[nodiscard]] DtnPolicy* policy() const { return policy_.get(); }

  /// Addresses whose messages this node consumes (its users).
  [[nodiscard]] const std::set<HostId>& hosted() const { return hosted_; }
  /// Extra addresses in the filter for which this node merely relays.
  [[nodiscard]] const std::set<HostId>& extra_addresses() const {
    return extra_;
  }

  /// Reconfigure hosted + extra addresses (e.g. the evaluation's daily
  /// user-to-bus reassignment). Stored messages that now reach one of
  /// their destinations are returned as fresh deliveries.
  std::vector<Message> set_addresses(std::set<HostId> hosted,
                                     std::set<HostId> extra, SimTime now);

  /// Create and inject a message authored by `from` (which should be a
  /// hosted address) to the given destinations.
  MessageId send(HostId from, std::vector<HostId> to, std::string body,
                 SimTime now);

  /// Delete a delivered message locally (tombstone; propagates and
  /// clears forwarding copies as relays learn of it).
  void expunge(MessageId id) { replica_.erase(id); }

  /// Process the delivered-item output of a sync in which this node
  /// was the target; returns messages newly delivered to hosted
  /// addresses (app-level exactly-once per node).
  std::vector<Message> on_sync_delivered(
      const std::vector<repl::Item>& items, SimTime now);

  /// Total number of distinct messages delivered at this node.
  [[nodiscard]] std::size_t delivered_count() const {
    return delivered_.size();
  }
  [[nodiscard]] bool has_delivered(MessageId id) const {
    return delivered_.count(id) > 0;
  }

  /// Pre-mark messages as already delivered (recovered ledger): they
  /// will never re-report. Call before any delivery can happen.
  void seed_delivered(const std::set<ItemId>& ids) {
    delivered_.insert(ids.begin(), ids.end());
  }

  /// Observer invoked once per first-time delivery, before the message
  /// is handed to the application. A durability layer persists the id
  /// here; if persisting throws, the ledger entry is rolled back and
  /// the message is NOT reported — it re-reports after recovery
  /// instead of being lost (at-least-once degraded, never dropped).
  void set_delivery_sink(std::function<void(ItemId)> sink) {
    delivery_sink_ = std::move(sink);
  }

 private:
  /// The node's filter: hosted ∪ extra addresses.
  [[nodiscard]] repl::Filter make_filter() const;
  /// Check one item for app-level delivery.
  bool try_deliver(const repl::Item& item, SimTime now,
                   std::vector<Message>& out);

  repl::Replica replica_;
  PolicyPtr policy_;
  std::set<HostId> hosted_;
  std::set<HostId> extra_;
  std::unordered_set<ItemId> delivered_;
  std::function<void(ItemId)> delivery_sink_;
};

/// How one one-way sync is executed. Defaults to the in-process
/// repl::run_sync; the emulator substitutes a runner that routes the
/// sync through a transport (src/net/) without this layer caring.
using SyncRunner = std::function<repl::SyncResult(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options)>;

/// Run the paper's full encounter procedure between two nodes: two
/// synchronizations with source and target roles alternating, a shared
/// optional bandwidth budget for the whole encounter, and
/// encounter-completion notifications to both policies.
struct EncounterOptions {
  /// Total items transferable across both syncs (Figure 9 uses 1).
  std::optional<std::size_t> encounter_budget;
  bool learn_knowledge = true;
  /// Empty = in-process repl::run_sync.
  SyncRunner sync_runner;
};

struct EncounterOutcome {
  repl::SyncStats stats;                 ///< both syncs accumulated
  std::vector<Message> delivered_a;      ///< delivered at `a`
  std::vector<Message> delivered_b;      ///< delivered at `b`
};

EncounterOutcome run_encounter(DtnNode& a, DtnNode& b, SimTime now,
                               const EncounterOptions& options = {});

}  // namespace pfrdtn::dtn
