#pragma once

/// \file message.hpp
/// The DTN messaging schema layered on replicated items: "messages are
/// the data items that are replicated between nodes" with a destination
/// address attribute, plus source, type and creation-time metadata.

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "repl/item.hpp"
#include "util/ids.hpp"
#include "util/sim_time.hpp"

namespace pfrdtn::dtn {

/// Message ids are the underlying item ids.
using MessageId = ItemId;

/// Parsed view of a message item.
struct Message {
  MessageId id{};
  HostId source{};
  std::vector<HostId> destinations;
  SimTime created;
  std::string body;

  /// Parse an item; returns nullopt for non-message items.
  static std::optional<Message> from_item(const repl::Item& item);
};

/// The metadata type tag identifying message items.
inline constexpr const char* kMessageType = "msg";

/// Build the replicated metadata map for a new message.
std::map<std::string, std::string> message_metadata(
    HostId source, const std::vector<HostId>& destinations,
    SimTime created);

/// True if the item is a (possibly deleted) message.
bool is_message(const repl::Item& item);

}  // namespace pfrdtn::dtn
