#include "dtn/registry.hpp"

#include "dtn/baselines.hpp"
#include "dtn/direct.hpp"
#include "dtn/epidemic.hpp"
#include "dtn/maxprop.hpp"
#include "dtn/prophet.hpp"
#include "dtn/spray_focus.hpp"
#include "dtn/spray_wait.hpp"
#include "util/require.hpp"

namespace pfrdtn::dtn {

namespace {

/// Consume an override, tracking which keys were recognized.
class Overrides {
 public:
  explicit Overrides(const std::map<std::string, double>& values)
      : values_(values) {}

  double get(const std::string& key, double fallback) {
    used_.insert(key);
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }

  void finish() const {
    for (const auto& [key, value] : values_) {
      if (!used_.count(key))
        throw ContractViolation("unknown policy parameter: " + key);
    }
  }

 private:
  const std::map<std::string, double>& values_;
  std::set<std::string> used_;
};

}  // namespace

PolicyPtr make_policy(const std::string& name,
                      const std::map<std::string, double>& overrides) {
  Overrides opts(overrides);
  PolicyPtr policy;
  if (name == "cimbiosys" || name == "direct" || name == "none") {
    policy = std::make_shared<DirectPolicy>();
  } else if (name == "epidemic") {
    EpidemicParams params;
    params.initial_ttl =
        static_cast<std::int64_t>(opts.get("ttl", 10));
    policy = std::make_shared<EpidemicPolicy>(params);
  } else if (name == "spray") {
    SprayWaitParams params;
    params.copies = static_cast<std::int64_t>(opts.get("copies", 8));
    params.binary = opts.get("binary", 1) != 0;
    policy = std::make_shared<SprayWaitPolicy>(params);
  } else if (name == "prophet") {
    ProphetParams params;
    params.p_init = opts.get("p_init", 0.75);
    params.beta = opts.get("beta", 0.25);
    params.gamma = opts.get("gamma", 0.98);
    params.aging_unit_s =
        static_cast<std::int64_t>(opts.get("aging_unit_s", 3600));
    params.grtr_plus = opts.get("grtr_plus", 0) != 0;
    policy = std::make_shared<ProphetPolicy>(params);
  } else if (name == "maxprop") {
    MaxPropParams params;
    params.hop_threshold =
        static_cast<std::int64_t>(opts.get("hop_threshold", 3));
    params.ack_flooding = opts.get("ack_flooding", 0) != 0;
    policy = std::make_shared<MaxPropPolicy>(params);
  } else if (name == "spray-focus") {
    SprayFocusParams params;
    params.copies = static_cast<std::int64_t>(opts.get("copies", 8));
    params.utility_margin_s =
        static_cast<std::int64_t>(opts.get("utility_margin_s", 600));
    policy = std::make_shared<SprayFocusPolicy>(params);
  } else if (name == "first-contact") {
    FirstContactParams params;
    params.max_transfers =
        static_cast<std::int64_t>(opts.get("max_transfers", 0));
    policy = std::make_shared<FirstContactPolicy>(params);
  } else if (name == "two-hop") {
    TwoHopParams params;
    params.relay_budget =
        static_cast<std::int64_t>(opts.get("relay_budget", 8));
    policy = std::make_shared<TwoHopRelayPolicy>(params);
  } else if (name == "p-epidemic") {
    RandomizedEpidemicParams params;
    params.forward_probability = opts.get("p", 0.5);
    params.initial_ttl = static_cast<std::int64_t>(opts.get("ttl", 10));
    params.seed = static_cast<std::uint64_t>(opts.get("seed", 1));
    policy = std::make_shared<RandomizedEpidemicPolicy>(params);
  } else {
    throw ContractViolation("unknown policy: " + name);
  }
  opts.finish();
  return policy;
}

std::vector<std::string> known_policies() {
  return {"cimbiosys", "prophet", "spray", "epidemic", "maxprop"};
}

std::vector<std::string> baseline_policies() {
  return {"first-contact", "two-hop", "p-epidemic", "spray-focus"};
}

}  // namespace pfrdtn::dtn
