#include "dtn/spray_focus.hpp"

#include "util/byte_buffer.hpp"

namespace pfrdtn::dtn {

std::string SprayFocusPolicy::summary() const {
  return "state: copy budget per copy + last-encounter timers per "
         "address; request: target's timers and hosted addresses; "
         "forward: binary spraying while budget >= 2, then focus — "
         "hand the single copy to peers that met the destination's "
         "host more recently (margin " +
         std::to_string(params_.utility_margin_s) + "s)";
}

SimTime SprayFocusPolicy::last_seen(HostId address) const {
  const auto it = last_seen_.find(address);
  return it == last_seen_.end() ? SimTime(-1) : it->second;
}

std::vector<std::uint8_t> SprayFocusPolicy::generate_request(
    const repl::SyncContext& /*ctx*/) {
  ByteWriter w;
  w.uvarint(hosted().size());
  for (const HostId addr : hosted()) w.uvarint(addr.value());
  w.uvarint(last_seen_.size());
  for (const auto& [addr, when] : last_seen_) {
    w.uvarint(addr.value());
    w.svarint(when.seconds());
  }
  return w.take();
}

void SprayFocusPolicy::process_request(
    const repl::SyncContext& ctx,
    const std::vector<std::uint8_t>& routing_state) {
  last_peer_ = ctx.peer;
  peer_last_seen_.clear();
  if (routing_state.empty()) return;
  ByteReader r(routing_state);
  const std::uint64_t hosted_count = r.uvarint();
  for (std::uint64_t i = 0; i < hosted_count; ++i) {
    // Meeting the peer now means meeting its hosted addresses now.
    last_seen_[HostId(r.uvarint())] = ctx.now;
  }
  const std::uint64_t timer_count = r.uvarint();
  for (std::uint64_t i = 0; i < timer_count; ++i) {
    const HostId addr(r.uvarint());
    peer_last_seen_[addr] = SimTime(r.svarint());
  }
}

repl::Priority SprayFocusPolicy::to_send(const repl::SyncContext& ctx,
                                         repl::TransientView stored) {
  auto copies = stored.get_int(kCopiesKey);
  if (!copies) {
    stored.set_int(kCopiesKey, params_.copies);
    copies = params_.copies;
  }
  if (*copies >= 2) {
    // Spray phase: identical to Spray and Wait.
    return repl::Priority::at(repl::PriorityClass::Normal);
  }
  if (*copies <= 0) return repl::Priority::skip();  // handed over

  // Focus phase: forward the single copy only toward higher utility.
  if (ctx.peer != last_peer_) return repl::Priority::skip();
  for (const HostId dest : stored.item().dest_addresses()) {
    const SimTime mine = last_seen(dest);
    const auto it = peer_last_seen_.find(dest);
    const SimTime theirs =
        it == peer_last_seen_.end() ? SimTime(-1) : it->second;
    if (theirs.seconds() >=
        mine.seconds() + params_.utility_margin_s) {
      // Peer's information is fresher: hand the copy over, earliest
      // for the freshest peers.
      return repl::Priority::at(
          repl::PriorityClass::Low,
          -static_cast<double>(theirs.seconds()));
    }
  }
  return repl::Priority::skip();
}

void SprayFocusPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                                  repl::TransientView stored,
                                  repl::TransientView outgoing) {
  const std::int64_t copies =
      stored.get_int(kCopiesKey).value_or(params_.copies);
  if (copies >= 2) {
    const std::int64_t handed = copies / 2;
    stored.set_int(kCopiesKey, copies - handed);
    outgoing.set_int(kCopiesKey, handed);
  } else {
    // Focus handover: the copy migrates. Drop the local relay copy so
    // the network keeps a single focus-phase copy (the author's and
    // destinations' copies are never discarded). Must stay the final
    // access to `stored` (see ForwardingPolicy::on_forward).
    stored.set_int(kCopiesKey, 0);
    outgoing.set_int(kCopiesKey, 1);
    if (replica() != nullptr) {
      replica()->discard_relay(stored.item().id());
    }
  }
}

}  // namespace pfrdtn::dtn
