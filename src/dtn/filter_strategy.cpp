#include "dtn/filter_strategy.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace pfrdtn::dtn {

const char* filter_strategy_name(FilterStrategy strategy) {
  switch (strategy) {
    case FilterStrategy::SelfOnly:
      return "self";
    case FilterStrategy::Random:
      return "random";
    case FilterStrategy::Selected:
      return "selected";
  }
  return "?";
}

FilterPlan FilterPlan::build(FilterStrategy strategy, std::size_t k,
                             const std::vector<HostId>& users,
                             const EncounterCounts& counts, Rng& rng) {
  FilterPlan plan;
  if (strategy == FilterStrategy::SelfOnly || k == 0) return plan;
  PFRDTN_REQUIRE(users.size() > 1);
  const std::size_t effective_k = std::min(k, users.size() - 1);

  for (const HostId user : users) {
    std::set<HostId>& extras = plan.extras_[user];
    if (strategy == FilterStrategy::Random) {
      std::vector<HostId> others;
      others.reserve(users.size() - 1);
      for (const HostId other : users) {
        if (other != user) others.push_back(other);
      }
      for (const std::size_t index :
           rng.sample_without_replacement(others.size(), effective_k)) {
        extras.insert(others[index]);
      }
      continue;
    }
    // Selected: rank others by encounter count, deterministic
    // tie-break on id.
    std::vector<std::pair<std::uint64_t, HostId>> ranked;
    const auto row_it = counts.find(user);
    for (const HostId other : users) {
      if (other == user) continue;
      std::uint64_t count = 0;
      if (row_it != counts.end()) {
        const auto cell = row_it->second.find(other);
        if (cell != row_it->second.end()) count = cell->second;
      }
      ranked.emplace_back(count, other);
    }
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (std::size_t i = 0; i < effective_k && i < ranked.size(); ++i)
      extras.insert(ranked[i].second);
  }
  return plan;
}

const std::set<HostId>& FilterPlan::extras_for(HostId user) const {
  const auto it = extras_.find(user);
  return it == extras_.end() ? empty_ : it->second;
}

}  // namespace pfrdtn::dtn
