#pragma once

/// \file prophet.hpp
/// PROPHET [Lindgren et al. 2004]: probabilistic routing using
/// *delivery predictabilities* P[d] ∈ [0,1] per destination address.
/// On an encounter the predictability for the peer's addresses is
/// reinforced; predictabilities age down over time and propagate
/// transitively through exchanged vectors. A message is forwarded only
/// to a peer whose predictability for the destination exceeds the
/// sender's (GRTR); the GRTR+ extension additionally requires beating
/// the best predictability any previous carrier of this copy had.

#include <map>

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

struct ProphetParams {
  double p_init = 0.75;  ///< Table II: Pinit = 0.75
  double beta = 0.25;    ///< Table II: β = 0.25 (transitivity damping)
  double gamma = 0.98;   ///< Table II: γ = 0.98 (aging per time unit)
  /// Length of one aging time unit in seconds.
  std::int64_t aging_unit_s = 3600;
  /// Forward only when the peer also beats the best predictability a
  /// previous carrier of this copy had (GRTR+).
  bool grtr_plus = false;
};

class ProphetPolicy : public DtnPolicy {
 public:
  explicit ProphetPolicy(ProphetParams params = {}) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "prophet"; }
  [[nodiscard]] std::string summary() const override;

  std::vector<std::uint8_t> generate_request(
      const repl::SyncContext& ctx) override;
  void process_request(
      const repl::SyncContext& ctx,
      const std::vector<std::uint8_t>& routing_state) override;
  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  /// Current (aged) delivery predictability for an address.
  [[nodiscard]] double predictability(HostId dest) const;

  [[nodiscard]] const ProphetParams& params() const { return params_; }

  /// Transient key: best predictability seen by any carrier (GRTR+).
  static constexpr const char* kBestPKey = "prophet_pmax";

 private:
  void age(SimTime now);

  ProphetParams params_;
  std::map<HostId, double> p_;
  SimTime last_aged_;
  bool ever_aged_ = false;

  // Peer state captured by process_request, valid for the current sync.
  ReplicaId last_peer_{};
  std::map<HostId, double> peer_p_;
};

}  // namespace pfrdtn::dtn
