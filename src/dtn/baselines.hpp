#pragma once

/// \file baselines.hpp
/// Additional classic DTN baselines beyond the paper's four case
/// studies, implemented against the same policy interface. They are
/// useful reference points in experiments and demonstrate that the
/// interface covers the design space:
///
///  - FirstContact [Jain, Fall, Patra 2004]: a single custodial copy
///    is handed to the first encountered node (the previous carrier
///    stops forwarding). One copy in flight; no flooding at all.
///  - TwoHopRelay [Grossglauser & Tse 2001]: the source hands copies
///    to relays it meets, but relays never forward — delivery is
///    source->dest, source->relay->dest, never longer.
///  - RandomizedEpidemic (p-flooding): epidemic with per-item coin
///    flips, the standard knob between single-copy and full flooding.

#include "dtn/policy.hpp"
#include "util/rng.hpp"

namespace pfrdtn::dtn {

struct FirstContactParams {
  /// Maximum custody transfers before the copy stops moving (guards
  /// against endless ping-ponging in dense meshes). 0 = unlimited.
  std::int64_t max_transfers = 0;
};

/// Single-copy custody transfer: forward to the first peer met, then
/// drop the local willingness to forward (the copy itself stays, as
/// the substrate owns storage; it simply stops being offered).
class FirstContactPolicy : public DtnPolicy {
 public:
  explicit FirstContactPolicy(FirstContactParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override {
    return "first-contact";
  }
  [[nodiscard]] std::string summary() const override;

  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  [[nodiscard]] const FirstContactParams& params() const {
    return params_;
  }

  /// Transient key: whether this copy still carries custody ("1"/"0").
  static constexpr const char* kCustodyKey = "fc_custody";
  /// Transient key: custody transfers performed so far.
  static constexpr const char* kTransfersKey = "fc_transfers";

 private:
  FirstContactParams params_;
};

struct TwoHopParams {
  /// Copies the source may hand out to distinct relays. 0 = unlimited.
  std::int64_t relay_budget = 8;
};

/// Source-relays-destination: only the *author* of a message hands out
/// copies; a relay holds its copy silently until it meets a
/// destination (which the substrate's filter matching handles).
class TwoHopRelayPolicy : public DtnPolicy {
 public:
  explicit TwoHopRelayPolicy(TwoHopParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override { return "two-hop"; }
  [[nodiscard]] std::string summary() const override;

  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  [[nodiscard]] const TwoHopParams& params() const { return params_; }

  /// Transient key: relays this source-held copy has been handed to.
  static constexpr const char* kHandoutsKey = "th_handouts";

 private:
  TwoHopParams params_;
};

struct RandomizedEpidemicParams {
  double forward_probability = 0.5;
  std::int64_t initial_ttl = 10;
  std::uint64_t seed = 1;
};

/// Epidemic flooding gated by a per-(item, encounter) coin flip.
class RandomizedEpidemicPolicy : public DtnPolicy {
 public:
  explicit RandomizedEpidemicPolicy(RandomizedEpidemicParams params = {})
      : params_(params), rng_(params.seed) {}

  [[nodiscard]] std::string name() const override {
    return "p-epidemic";
  }
  [[nodiscard]] std::string summary() const override;

  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  [[nodiscard]] const RandomizedEpidemicParams& params() const {
    return params_;
  }

  static constexpr const char* kTtlKey = "ttl";

 private:
  RandomizedEpidemicParams params_;
  Rng rng_;
};

}  // namespace pfrdtn::dtn
