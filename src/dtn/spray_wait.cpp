#include "dtn/spray_wait.hpp"

namespace pfrdtn::dtn {

std::string SprayWaitPolicy::summary() const {
  return std::string("state: copy budget per message copy; request: "
                     "(none); forward: while budget >= 2, handing the "
                     "peer ") +
         (params_.binary ? "half of" : "one of") +
         " the copies (injected budget " +
         std::to_string(params_.copies) + ")";
}

repl::Priority SprayWaitPolicy::to_send(const repl::SyncContext& /*ctx*/,
                                        repl::TransientView stored) {
  auto copies = stored.get_int(kCopiesKey);
  if (!copies) {
    stored.set_int(kCopiesKey, params_.copies);
    copies = params_.copies;
  }
  if (*copies < 2) return repl::Priority::skip();  // Wait phase
  return repl::Priority::at(repl::PriorityClass::Normal);
}

void SprayWaitPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                                 repl::TransientView stored,
                                 repl::TransientView outgoing) {
  const std::int64_t copies =
      stored.get_int(kCopiesKey).value_or(params_.copies);
  // The adjustment happens here, after bandwidth truncation, so copies
  // are only charged for messages actually handed over. Uses the
  // substrate's transient-metadata path, which "avoids generating a
  // new version number for the item".
  const std::int64_t handed = params_.binary ? copies / 2 : 1;
  stored.set_int(kCopiesKey, copies - handed);
  outgoing.set_int(kCopiesKey, handed);
}

}  // namespace pfrdtn::dtn
