#pragma once

/// \file maxprop.hpp
/// MaxProp [Burgess et al. 2006]: every node maintains a probability
/// distribution over which node it will meet next (incremented and
/// renormalized on each encounter); nodes exchange these vectors, and
/// each message is scored by the cost of the cheapest path to its
/// destination, where an edge i→j costs 1 - P_i(j) (a modified
/// Dijkstra). Transmission order during an encounter: messages
/// addressed to the neighbour first (the substrate's filter-matching
/// class), then "new" messages below a hop-count threshold ordered by
/// hop count, then the rest ordered by path cost. Like Epidemic it
/// forwards everything — the ordering only matters under bandwidth
/// constraints, which is exactly what the paper observes.
///
/// MaxProp's acknowledgement flooding (clearing buffers of delivered
/// messages) is implemented as an optional extension, off by default to
/// match the paper's experimental setup ("messages are never deleted").

#include <map>
#include <set>

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

struct MaxPropParams {
  /// Messages with fewer hops than this are "new" and get priority
  /// (Table II: hopcount priority threshold = 3).
  std::int64_t hop_threshold = 3;
  /// Flood acknowledgements of delivered messages and clear relay
  /// buffers (extension; the paper's runs never delete messages).
  bool ack_flooding = false;
};

class MaxPropPolicy : public DtnPolicy {
 public:
  explicit MaxPropPolicy(MaxPropParams params = {}) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "maxprop"; }
  [[nodiscard]] std::string summary() const override;

  std::vector<std::uint8_t> generate_request(
      const repl::SyncContext& ctx) override;
  void process_request(
      const repl::SyncContext& ctx,
      const std::vector<std::uint8_t>& routing_state) override;
  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;
  void encounter_complete(ReplicaId peer, SimTime now) override;
  void note_delivered(ItemId id, SimTime now) override;

  /// Own meeting-probability estimate P_self(peer).
  [[nodiscard]] double meeting_probability(ReplicaId peer) const;
  /// Cheapest-path cost from this node to the replica last known to
  /// host `dest` (modified Dijkstra); +inf when unknown.
  [[nodiscard]] double path_cost(HostId dest) const;

  [[nodiscard]] const MaxPropParams& params() const { return params_; }

  /// Transient key: hops traversed by this copy.
  static constexpr const char* kHopsKey = "hops";

 private:
  MaxPropParams params_;

  /// Own next-encounter distribution (sums to ~1 once non-empty).
  std::map<ReplicaId, double> own_p_;
  /// Vectors learned from peers' sync requests.
  std::map<ReplicaId, std::map<ReplicaId, double>> learned_;
  /// Last replica observed hosting each address.
  std::map<HostId, ReplicaId> last_host_;
  /// Delivered-message ids (ack flooding extension).
  std::set<ItemId> acked_;
};

}  // namespace pfrdtn::dtn
