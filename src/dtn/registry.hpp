#pragma once

/// \file registry.hpp
/// Name-based policy construction, used by the experiment harness,
/// benches and examples. Parameters default to the paper's Table II
/// and can be overridden individually.

#include <map>
#include <string>
#include <vector>

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

/// Construct a policy by name: "cimbiosys" (null policy), "epidemic",
/// "spray", "prophet", "maxprop", plus the extra baselines
/// "first-contact", "two-hop", "p-epidemic" and "spray-focus". `overrides` maps
/// parameter names (e.g. "ttl", "copies", "p_init", "beta", "gamma",
/// "aging_unit_s", "grtr_plus", "binary", "hop_threshold",
/// "ack_flooding", "max_transfers", "relay_budget", "p", "seed",
/// "utility_margin_s") to
/// values. Throws ContractViolation for unknown names or parameters.
PolicyPtr make_policy(const std::string& name,
                      const std::map<std::string, double>& overrides = {});

/// The policies the paper evaluates, in the paper's order.
std::vector<std::string> known_policies();

/// Additional literature baselines implemented beyond the paper's four.
std::vector<std::string> baseline_policies();

}  // namespace pfrdtn::dtn
