#pragma once

/// \file filter_strategy.hpp
/// Multi-address filter strategies (Section IV-B): each host's filter
/// may include addresses of `k` other hosts so it relays their
/// messages. `Random` picks k uniformly; `Selected` picks the k other
/// hosts this host will encounter most in the trace (an oracle over
/// the schedule, as in the paper).

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace pfrdtn::dtn {

enum class FilterStrategy {
  SelfOnly,  ///< k = 0: basic substrate
  Random,    ///< k random other hosts
  Selected,  ///< k most-encountered other hosts
};

const char* filter_strategy_name(FilterStrategy strategy);

/// Pairwise encounter counts between hosts (symmetric).
using EncounterCounts = std::map<HostId, std::map<HostId, std::uint64_t>>;

/// Immutable per-host assignment of extra filter addresses.
class FilterPlan {
 public:
  /// Build a plan for `users` with `k` extra addresses per host.
  /// `counts` is consulted only by Selected; `rng` only by Random.
  static FilterPlan build(FilterStrategy strategy, std::size_t k,
                          const std::vector<HostId>& users,
                          const EncounterCounts& counts, Rng& rng);

  [[nodiscard]] const std::set<HostId>& extras_for(HostId user) const;

 private:
  std::map<HostId, std::set<HostId>> extras_;
  std::set<HostId> empty_;
};

}  // namespace pfrdtn::dtn
