#pragma once

/// \file epidemic.hpp
/// Epidemic routing [Vahdat & Becker 2000] as a forwarding policy:
/// flood every message, limited by a per-copy TTL (hop count). The
/// protocol's summary-vector duplicate suppression is unnecessary here
/// — the substrate's knowledge exchange already guarantees at-most-once
/// delivery (the paper's point in Section V-C1).

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

struct EpidemicParams {
  /// Initial hop-count budget for new messages (Table II: TTL = 10).
  std::int64_t initial_ttl = 10;
};

class EpidemicPolicy : public DtnPolicy {
 public:
  explicit EpidemicPolicy(EpidemicParams params = {}) : params_(params) {}

  [[nodiscard]] std::string name() const override { return "epidemic"; }
  [[nodiscard]] std::string summary() const override;

  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  [[nodiscard]] const EpidemicParams& params() const { return params_; }

  /// Transient key holding the remaining hop budget of a copy.
  static constexpr const char* kTtlKey = "ttl";

 private:
  EpidemicParams params_;
};

}  // namespace pfrdtn::dtn
