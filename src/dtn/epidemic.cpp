#include "dtn/epidemic.hpp"

namespace pfrdtn::dtn {

std::string EpidemicPolicy::summary() const {
  return "state: TTL per message copy; request: (none); forward: "
         "every message while TTL > 0, decrementing the forwarded "
         "copy's TTL (initial TTL " +
         std::to_string(params_.initial_ttl) + ")";
}

repl::Priority EpidemicPolicy::to_send(const repl::SyncContext& /*ctx*/,
                                       repl::TransientView stored) {
  auto ttl = stored.get_int(kTtlKey);
  if (!ttl) {
    // First time this policy touches a locally inserted message:
    // initialize the stored copy's budget (the paper's toSend does
    // exactly this).
    stored.set_int(kTtlKey, params_.initial_ttl);
    ttl = params_.initial_ttl;
  }
  if (*ttl <= 0) return repl::Priority::skip();
  return repl::Priority::at(repl::PriorityClass::Normal);
}

void EpidemicPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                                repl::TransientView /*stored*/,
                                repl::TransientView outgoing) {
  // "This TTL update only affects the in-memory copy of items being
  // sent" — the stored copy keeps its budget.
  const auto ttl = outgoing.get_int(kTtlKey);
  outgoing.set_int(kTtlKey, (ttl ? *ttl : params_.initial_ttl) - 1);
}

}  // namespace pfrdtn::dtn
