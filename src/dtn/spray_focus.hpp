#pragma once

/// \file spray_focus.hpp
/// Spray and Focus [Spyropoulos et al. 2007]: the spray phase is
/// identical to Spray and Wait (binary copy splitting), but a node
/// left with a single copy enters the *focus* phase instead of
/// waiting: it hands its copy (custody-style, no duplication) to any
/// peer whose utility for the destination is higher. Utility here is
/// last-encounter recency — "I met the destination's host more
/// recently than you" — exchanged in sync requests like PROPHET's
/// predictabilities.

#include <map>

#include "dtn/policy.hpp"

namespace pfrdtn::dtn {

struct SprayFocusParams {
  /// Copies injected per message (spray phase).
  std::int64_t copies = 8;
  /// Minimum utility improvement (seconds of recency) a peer must
  /// offer before a focus handover happens.
  std::int64_t utility_margin_s = 600;
};

class SprayFocusPolicy : public DtnPolicy {
 public:
  explicit SprayFocusPolicy(SprayFocusParams params = {})
      : params_(params) {}

  [[nodiscard]] std::string name() const override {
    return "spray-focus";
  }
  [[nodiscard]] std::string summary() const override;

  std::vector<std::uint8_t> generate_request(
      const repl::SyncContext& ctx) override;
  void process_request(
      const repl::SyncContext& ctx,
      const std::vector<std::uint8_t>& routing_state) override;
  repl::Priority to_send(const repl::SyncContext& ctx,
                         repl::TransientView stored) override;
  void on_forward(const repl::SyncContext& ctx,
                  repl::TransientView stored,
                  repl::TransientView outgoing) override;

  /// Seconds since this node last saw the address hosted nearby;
  /// SimTime::never() when never seen.
  [[nodiscard]] SimTime last_seen(HostId address) const;

  [[nodiscard]] const SprayFocusParams& params() const { return params_; }

  static constexpr const char* kCopiesKey = "copies";

 private:
  SprayFocusParams params_;
  /// When we last encountered a node hosting each address.
  std::map<HostId, SimTime> last_seen_;
  /// Peer timers captured by process_request for the current sync.
  ReplicaId last_peer_{};
  std::map<HostId, SimTime> peer_last_seen_;
};

}  // namespace pfrdtn::dtn
