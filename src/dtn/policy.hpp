#pragma once

/// \file policy.hpp
/// DTN-layer policy base class. Extends the substrate's
/// ForwardingPolicy with the application-level hooks the four routing
/// protocols need: awareness of the addresses this node currently
/// hosts (the evaluation reassigns users to buses daily), an
/// encounter-completion signal, delivery notifications for
/// acknowledgement flooding, and a binding to the local replica for
/// policies that manage buffer contents (MaxProp acks).

#include <memory>
#include <set>

#include "repl/forwarding_policy.hpp"
#include "repl/replica.hpp"

namespace pfrdtn::dtn {

class DtnPolicy : public repl::ForwardingPolicy {
 public:
  /// Called by the messaging application when the set of addresses
  /// hosted by this node changes.
  virtual void set_hosted(const std::set<HostId>& hosted,
                          SimTime /*now*/) {
    hosted_ = hosted;
  }

  /// Called once after both syncs of an encounter have completed.
  virtual void encounter_complete(ReplicaId /*peer*/, SimTime /*now*/) {}

  /// Called when a message is delivered at this node (for policies
  /// that propagate acknowledgements).
  virtual void note_delivered(ItemId /*id*/, SimTime /*now*/) {}

  /// Bind the policy to the replica it serves (required by policies
  /// that clear buffers; others ignore it).
  void bind(repl::Replica* replica) { replica_ = replica; }

 protected:
  [[nodiscard]] const std::set<HostId>& hosted() const { return hosted_; }
  [[nodiscard]] repl::Replica* replica() const { return replica_; }

 private:
  std::set<HostId> hosted_;
  repl::Replica* replica_ = nullptr;
};

using PolicyPtr = std::shared_ptr<DtnPolicy>;

}  // namespace pfrdtn::dtn
