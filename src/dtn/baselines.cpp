#include "dtn/baselines.hpp"

namespace pfrdtn::dtn {

// ---------------------------------------------------------------- //
//  FirstContact

std::string FirstContactPolicy::summary() const {
  return "state: custody flag per copy; request: (none); forward: the "
         "single custodial copy to the first peer encountered, "
         "relinquishing custody locally";
}

repl::Priority FirstContactPolicy::to_send(
    const repl::SyncContext& ctx, repl::TransientView stored) {
  (void)ctx;
  auto custody = stored.get_int(kCustodyKey);
  if (!custody) {
    // A copy without the flag is fresh (authored here, or handed over
    // by a pre-policy sender): it carries custody.
    stored.set_int(kCustodyKey, 1);
    custody = 1;
  }
  if (*custody == 0) return repl::Priority::skip();
  if (params_.max_transfers > 0) {
    const auto transfers = stored.get_int(kTransfersKey).value_or(0);
    if (transfers >= params_.max_transfers)
      return repl::Priority::skip();
  }
  return repl::Priority::at(repl::PriorityClass::Normal);
}

void FirstContactPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                                    repl::TransientView stored,
                                    repl::TransientView outgoing) {
  // Custody moves with the outgoing copy.
  stored.set_int(kCustodyKey, 0);
  outgoing.set_int(kCustodyKey, 1);
  const auto transfers = stored.get_int(kTransfersKey).value_or(0);
  outgoing.set_int(kTransfersKey, transfers + 1);
  // Classical FirstContact keeps a single copy in the network: drop
  // the local one after the handover. discard_relay refuses in-filter
  // and locally authored copies, so destinations keep deliveries and
  // the author's copy backstops eventual delivery if the custody chain
  // is ever lost. NOTE: this must be the last access to `stored` — the
  // entry is gone afterwards (the sync engine makes no further use of
  // it either).
  if (replica() != nullptr) {
    replica()->discard_relay(stored.item().id());
  }
}

// ---------------------------------------------------------------- //
//  TwoHopRelay

std::string TwoHopRelayPolicy::summary() const {
  return "state: handout count per source copy; request: (none); "
         "forward: the author hands copies to up to " +
         std::to_string(params_.relay_budget) +
         " relays, which never forward (source-relay-destination "
         "paths only)";
}

repl::Priority TwoHopRelayPolicy::to_send(const repl::SyncContext& ctx,
                                          repl::TransientView stored) {
  // Relays keep their copy silently; only the author sprays.
  if (stored.item().version().author != ctx.self)
    return repl::Priority::skip();
  if (params_.relay_budget > 0) {
    const auto handouts = stored.get_int(kHandoutsKey).value_or(0);
    if (handouts >= params_.relay_budget)
      return repl::Priority::skip();
  }
  return repl::Priority::at(repl::PriorityClass::Normal);
}

void TwoHopRelayPolicy::on_forward(const repl::SyncContext& /*ctx*/,
                                   repl::TransientView stored,
                                   repl::TransientView /*outgoing*/) {
  const auto handouts = stored.get_int(kHandoutsKey).value_or(0);
  stored.set_int(kHandoutsKey, handouts + 1);
}

// ---------------------------------------------------------------- //
//  RandomizedEpidemic

std::string RandomizedEpidemicPolicy::summary() const {
  return "state: TTL per copy; request: (none); forward: every "
         "message with probability " +
         std::to_string(params_.forward_probability) +
         " per encounter while TTL > 0";
}

repl::Priority RandomizedEpidemicPolicy::to_send(
    const repl::SyncContext& /*ctx*/, repl::TransientView stored) {
  auto ttl = stored.get_int(kTtlKey);
  if (!ttl) {
    stored.set_int(kTtlKey, params_.initial_ttl);
    ttl = params_.initial_ttl;
  }
  if (*ttl <= 0) return repl::Priority::skip();
  if (!rng_.chance(params_.forward_probability))
    return repl::Priority::skip();
  return repl::Priority::at(repl::PriorityClass::Normal);
}

void RandomizedEpidemicPolicy::on_forward(
    const repl::SyncContext& /*ctx*/, repl::TransientView /*stored*/,
    repl::TransientView outgoing) {
  const auto ttl = outgoing.get_int(kTtlKey);
  outgoing.set_int(kTtlKey, (ttl ? *ttl : params_.initial_ttl) - 1);
}

}  // namespace pfrdtn::dtn
