#pragma once

/// \file encounter.hpp
/// Trace records shared by the generators, the trace file format and
/// the emulator.

#include <cstdint>
#include <vector>

#include "util/sim_time.hpp"

namespace pfrdtn::trace {

/// Buses are identified by dense indices into the fleet pool.
using BusIndex = std::uint32_t;

/// One opportunistic contact between two buses.
struct Encounter {
  SimTime time;
  BusIndex bus_a = 0;
  BusIndex bus_b = 0;
  std::int64_t duration_s = 0;

  friend bool operator==(const Encounter&, const Encounter&) = default;
};

/// A full vehicular trace: per-day active fleets and a time-sorted
/// encounter schedule.
struct MobilityTrace {
  std::size_t fleet_size = 0;
  /// active_buses[d] lists the buses scheduled on day d.
  std::vector<std::vector<BusIndex>> active_buses;
  /// All encounters, sorted by time.
  std::vector<Encounter> encounters;

  [[nodiscard]] std::size_t days() const { return active_buses.size(); }

  /// Encounters that fall on the given day.
  [[nodiscard]] std::size_t encounters_on_day(std::size_t day) const;
};

}  // namespace pfrdtn::trace
