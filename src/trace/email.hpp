#pragma once

/// \file email.hpp
/// Synthetic Enron-like e-mail workload (the substitution for the UC
/// Berkeley Enron dataset; see DESIGN.md §2). The experiments use the
/// dataset only "to determine which node sends messages to which other
/// nodes", so the generator reproduces those marginals: Zipf-like
/// sender activity and a preferential contact graph per sender.
/// Injection follows the paper's schedule: messages at fixed intervals
/// inside a morning window on the first `inject_days` days, 490 total.

#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/sim_time.hpp"

namespace pfrdtn::trace {

/// One message to inject.
struct MessageEvent {
  SimTime time;
  HostId sender{};
  HostId recipient{};

  friend bool operator==(const MessageEvent&,
                         const MessageEvent&) = default;
};

struct EmailWorkload {
  std::vector<HostId> users;
  /// Sorted by time.
  std::vector<MessageEvent> messages;
};

struct EmailConfig {
  std::size_t users = 100;
  std::size_t total_messages = 490;   ///< Section VI-A
  std::size_t inject_days = 8;        ///< injection stops after day 8
  std::int64_t window_start_s = 8 * kSecondsPerHour;   ///< 8:00
  std::int64_t window_end_s = 10 * kSecondsPerHour;    ///< 10:00
  std::int64_t interval_s = 2 * 60;   ///< two-minute intervals
  double sender_zipf_exponent = 1.1;  ///< heavy-tailed sender activity
  std::size_t contacts_per_user = 8;  ///< contact-list size
  std::uint64_t seed = 7;
};

/// Generate a workload. Deterministic for a given config. Host ids are
/// 1..users (0 is reserved as invalid-ish sentinel-free space).
EmailWorkload generate_email(const EmailConfig& config);

}  // namespace pfrdtn::trace
