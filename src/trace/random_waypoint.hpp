#pragma once

/// \file random_waypoint.hpp
/// Random-waypoint mobility — the standard synthetic model of the DTN
/// routing literature (used by the Epidemic, Spray and Wait and
/// PROPHET evaluations) and a second, structurally different contact
/// process to exercise the policies on: nodes move in a rectangular
/// field, each repeatedly picking a uniform waypoint and walking to it
/// at a uniform-random speed, pausing in between; two nodes are in
/// contact while within radio range.
///
/// The simulation integrates positions on a fixed tick and extracts
/// contact intervals; consecutive in-range ticks coalesce into one
/// Encounter. Output reuses MobilityTrace, so traces plug into the
/// same emulator, trace I/O and CLI as the bus model (every node
/// "active" every day).

#include "trace/encounter.hpp"
#include "util/rng.hpp"

namespace pfrdtn::trace {

struct RandomWaypointConfig {
  std::size_t nodes = 30;
  double field_width_m = 3000;
  double field_height_m = 3000;
  double radio_range_m = 100;
  double speed_min_mps = 1.0;   ///< pedestrian…
  double speed_max_mps = 15.0;  ///< …to vehicle
  std::int64_t pause_min_s = 0;
  std::int64_t pause_max_s = 120;
  std::size_t days = 5;
  /// Movement happens all day for this model (no depot structure).
  std::int64_t day_start_s = 0;
  std::int64_t day_end_s = 24 * kSecondsPerHour;
  std::int64_t tick_s = 5;  ///< position-integration step
  std::uint64_t seed = 42;
};

/// Simulate and extract the contact trace. Deterministic per config.
MobilityTrace generate_random_waypoint(const RandomWaypointConfig& config);

}  // namespace pfrdtn::trace
