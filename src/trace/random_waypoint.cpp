#include "trace/random_waypoint.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/require.hpp"

namespace pfrdtn::trace {

namespace {

struct NodeState {
  double x = 0;
  double y = 0;
  double target_x = 0;
  double target_y = 0;
  double speed = 0;          ///< m/s toward the target
  std::int64_t pause_until = 0;
};

}  // namespace

MobilityTrace generate_random_waypoint(
    const RandomWaypointConfig& config) {
  PFRDTN_REQUIRE(config.nodes >= 2);
  PFRDTN_REQUIRE(config.field_width_m > 0 && config.field_height_m > 0);
  PFRDTN_REQUIRE(config.radio_range_m > 0);
  PFRDTN_REQUIRE(config.speed_min_mps > 0 &&
                 config.speed_max_mps >= config.speed_min_mps);
  PFRDTN_REQUIRE(config.tick_s > 0);
  PFRDTN_REQUIRE(config.day_start_s < config.day_end_s);
  Rng rng(config.seed);

  MobilityTrace trace;
  trace.fleet_size = config.nodes;
  trace.active_buses.resize(config.days);
  for (auto& day : trace.active_buses) {
    for (std::size_t node = 0; node < config.nodes; ++node)
      day.push_back(static_cast<BusIndex>(node));
  }

  const auto uniform_between = [&rng](double lo, double hi) {
    return lo + rng.uniform() * (hi - lo);
  };

  std::vector<NodeState> nodes(config.nodes);
  const auto pick_waypoint = [&](NodeState& node) {
    node.target_x = uniform_between(0, config.field_width_m);
    node.target_y = uniform_between(0, config.field_height_m);
    node.speed =
        uniform_between(config.speed_min_mps, config.speed_max_mps);
  };
  for (auto& node : nodes) {
    node.x = uniform_between(0, config.field_width_m);
    node.y = uniform_between(0, config.field_height_m);
    pick_waypoint(node);
  }

  // Pairwise contact state: start time of the current contact, or -1.
  const std::size_t pair_count = config.nodes * config.nodes;
  std::vector<std::int64_t> contact_since(pair_count, -1);
  const auto pair_index = [&](std::size_t a, std::size_t b) {
    return a * config.nodes + b;
  };
  const double range_sq = config.radio_range_m * config.radio_range_m;

  const auto close_contact = [&](std::size_t a, std::size_t b,
                                 std::int64_t now) {
    auto& since = contact_since[pair_index(a, b)];
    if (since < 0) return;
    Encounter encounter;
    encounter.time = SimTime(since);
    encounter.bus_a = static_cast<BusIndex>(a);
    encounter.bus_b = static_cast<BusIndex>(b);
    encounter.duration_s = std::max<std::int64_t>(now - since, 1);
    trace.encounters.push_back(encounter);
    since = -1;
  };

  for (std::size_t day = 0; day < config.days; ++day) {
    const std::int64_t day_base =
        static_cast<std::int64_t>(day) * kSecondsPerDay;
    for (std::int64_t t = config.day_start_s; t < config.day_end_s;
         t += config.tick_s) {
      const std::int64_t now = day_base + t;
      // Advance every node by one tick.
      for (auto& node : nodes) {
        if (now < node.pause_until) continue;
        const double dx = node.target_x - node.x;
        const double dy = node.target_y - node.y;
        const double dist = std::sqrt(dx * dx + dy * dy);
        const double step =
            node.speed * static_cast<double>(config.tick_s);
        if (dist <= step) {
          node.x = node.target_x;
          node.y = node.target_y;
          node.pause_until =
              now + rng.range(config.pause_min_s, config.pause_max_s);
          pick_waypoint(node);
        } else {
          node.x += dx / dist * step;
          node.y += dy / dist * step;
        }
      }
      // Contact detection.
      for (std::size_t a = 0; a < config.nodes; ++a) {
        for (std::size_t b = a + 1; b < config.nodes; ++b) {
          const double dx = nodes[a].x - nodes[b].x;
          const double dy = nodes[a].y - nodes[b].y;
          const bool in_range = dx * dx + dy * dy <= range_sq;
          auto& since = contact_since[pair_index(a, b)];
          if (in_range && since < 0) {
            since = now;
          } else if (!in_range && since >= 0) {
            close_contact(a, b, now);
          }
        }
      }
    }
    // Day boundary: close any contact still open (the emulator's
    // encounter model is instantaneous at contact start, so splitting
    // a midnight-spanning contact is harmless).
    const std::int64_t day_close = day_base + config.day_end_s;
    for (std::size_t a = 0; a < config.nodes; ++a) {
      for (std::size_t b = a + 1; b < config.nodes; ++b)
        close_contact(a, b, day_close);
    }
  }

  std::sort(trace.encounters.begin(), trace.encounters.end(),
            [](const Encounter& lhs, const Encounter& rhs) {
              if (lhs.time != rhs.time) return lhs.time < rhs.time;
              if (lhs.bus_a != rhs.bus_a) return lhs.bus_a < rhs.bus_a;
              return lhs.bus_b < rhs.bus_b;
            });
  return trace;
}

}  // namespace pfrdtn::trace
