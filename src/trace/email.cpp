#include "trace/email.hpp"

#include <set>

#include "util/require.hpp"

namespace pfrdtn::trace {

EmailWorkload generate_email(const EmailConfig& config) {
  PFRDTN_REQUIRE(config.users >= 2);
  PFRDTN_REQUIRE(config.interval_s > 0);
  PFRDTN_REQUIRE(config.window_start_s < config.window_end_s);
  Rng rng(config.seed);

  EmailWorkload workload;
  workload.users.reserve(config.users);
  for (std::size_t i = 0; i < config.users; ++i)
    workload.users.emplace_back(i + 1);

  // Contact graph: preferential attachment — users who already appear
  // on many lists are more likely to be added (heavy-tailed in-degree,
  // like a corporate mail graph).
  std::vector<std::vector<HostId>> contacts(config.users);
  std::vector<std::size_t> popularity(config.users, 1);
  std::size_t popularity_total = config.users;
  for (std::size_t u = 0; u < config.users; ++u) {
    const std::size_t want =
        std::min(config.contacts_per_user, config.users - 1);
    std::set<std::size_t> chosen;
    while (chosen.size() < want) {
      // Roulette-wheel over popularity.
      std::uint64_t ticket = rng.below(popularity_total);
      std::size_t pick = 0;
      for (std::size_t v = 0; v < config.users; ++v) {
        if (ticket < popularity[v]) {
          pick = v;
          break;
        }
        ticket -= popularity[v];
      }
      if (pick == u || chosen.count(pick)) continue;
      chosen.insert(pick);
      popularity[pick] += 1;
      popularity_total += 1;
    }
    for (const std::size_t v : chosen)
      contacts[u].push_back(workload.users[v]);
  }

  // Injection schedule: fixed intervals inside the window, days
  // 0..inject_days-1; if the windows cannot hold all messages the
  // final day's window is extended (the paper's 490 over 8 days needs
  // 2 more slots than 8 x 61).
  const ZipfSampler sender_sampler(config.users,
                                   config.sender_zipf_exponent);
  std::size_t injected = 0;
  for (std::size_t day = 0;
       day < config.inject_days && injected < config.total_messages;
       ++day) {
    const bool last_day = day + 1 == config.inject_days;
    std::int64_t offset = config.window_start_s;
    while (injected < config.total_messages &&
           (offset <= config.window_end_s || last_day)) {
      const std::size_t sender_index = sender_sampler(rng);
      const auto& list = contacts[sender_index];
      PFRDTN_ENSURE(!list.empty());
      MessageEvent event;
      event.time = SimTime(
          static_cast<std::int64_t>(day) * kSecondsPerDay + offset);
      event.sender = workload.users[sender_index];
      event.recipient = list[rng.below(list.size())];
      workload.messages.push_back(event);
      ++injected;
      offset += config.interval_s;
    }
  }
  PFRDTN_ENSURE(workload.messages.size() == config.total_messages);
  return workload;
}

}  // namespace pfrdtn::trace
