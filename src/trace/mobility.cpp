#include "trace/mobility.hpp"

#include <algorithm>

#include "util/require.hpp"

namespace pfrdtn::trace {

std::size_t MobilityTrace::encounters_on_day(std::size_t day) const {
  std::size_t n = 0;
  for (const Encounter& encounter : encounters) {
    if (static_cast<std::size_t>(encounter.time.day_index()) == day) ++n;
  }
  return n;
}

namespace {

struct HubVisit {
  SimTime arrive;
  SimTime depart;
  BusIndex bus = 0;
};

}  // namespace

MobilityTrace generate_mobility(const MobilityConfig& config) {
  PFRDTN_REQUIRE(config.fleet_size >= config.buses_per_day);
  PFRDTN_REQUIRE(config.routes >= 1);
  PFRDTN_REQUIRE(config.route_length >= 2);
  PFRDTN_REQUIRE(config.interchange_hubs >= 1);
  PFRDTN_REQUIRE(config.day_start_s < config.day_end_s);
  Rng rng(config.seed);

  // Route r owns private hubs [r*L, (r+1)*L); interchange hubs follow,
  // then depot hubs.
  const std::size_t private_hubs =
      config.routes * config.route_length;
  const std::size_t total_hubs =
      private_hubs + config.interchange_hubs + config.depots;

  // Per-bus home route.
  std::vector<std::size_t> home_route(config.fleet_size);
  for (std::size_t bus = 0; bus < config.fleet_size; ++bus)
    home_route[bus] = rng.below(config.routes);

  MobilityTrace trace;
  trace.fleet_size = config.fleet_size;
  trace.active_buses.resize(config.days);

  // Depots rotate vehicles: scheduling favours buses that have sat in
  // the shed longest, so every bus serves regularly while daily
  // membership still churns.
  std::vector<double> rest_days(config.fleet_size, 0.0);

  for (std::size_t day = 0; day < config.days; ++day) {
    if (config.route_rotation_days != 0 && day != 0 &&
        day % config.route_rotation_days == 0) {
      for (auto& route : home_route) route = rng.below(config.routes);
    }
    // Fleet churn: the scheduled count jitters around the mean.
    const std::int64_t jitter = rng.range(-2, 2);
    const std::size_t scheduled = std::min(
        config.fleet_size,
        static_cast<std::size_t>(std::max<std::int64_t>(
            2, static_cast<std::int64_t>(config.buses_per_day) +
                   jitter)));
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(config.fleet_size);
    for (std::size_t bus = 0; bus < config.fleet_size; ++bus)
      ranked.emplace_back(rest_days[bus] + rng.uniform() * 1.5, bus);
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                return a.first > b.first;
              });
    std::vector<std::size_t> picks;
    picks.reserve(scheduled);
    for (std::size_t i = 0; i < scheduled; ++i)
      picks.push_back(ranked[i].second);
    std::sort(picks.begin(), picks.end());
    for (std::size_t bus = 0; bus < config.fleet_size; ++bus)
      rest_days[bus] += 1.0;
    for (const std::size_t bus : picks) {
      rest_days[bus] = 0.0;
      trace.active_buses[day].push_back(static_cast<BusIndex>(bus));
    }

    // Drive each scheduled bus through its day; collect hub visits.
    std::vector<std::vector<HubVisit>> visits(total_hubs);
    const std::int64_t day_base =
        static_cast<std::int64_t>(day) * kSecondsPerDay;
    for (const BusIndex bus : trace.active_buses[day]) {
      const std::size_t route_index =
          rng.chance(config.route_affinity) ? home_route[bus]
                                            : rng.below(config.routes);
      const bool on_duty = rng.chance(config.duty_prob);
      std::size_t position = rng.below(config.route_length);
      std::int64_t clock = day_base + config.day_start_s +
                           rng.range(0, 30 * 60);  // staggered rollout
      std::int64_t day_end = day_base + config.day_end_s;
      if (config.depots > 0 && rng.chance(config.depot_attendance)) {
        // Reserve the end of the day for the depot: the bus drives
        // until its depot arrival time, then parks there.
        const std::int64_t depot_dwell = rng.range(
            config.depot_dwell_min_s, config.depot_dwell_max_s);
        const std::int64_t depot_arrive =
            day_base + config.day_end_s - depot_dwell;
        // Depot choice is independent per bus-day: garages fill by
        // arrival, not by route, so any pair of buses regularly shares
        // a depot night.
        const std::size_t depot_hub = private_hubs +
                                      config.interchange_hubs +
                                      rng.below(config.depots);
        visits[depot_hub].push_back({SimTime(depot_arrive),
                                     SimTime(day_base + config.day_end_s),
                                     bus});
        day_end = depot_arrive;
      }
      while (clock < day_end) {
        // Interchange-duty buses occasionally detour to a shared
        // interchange hub; everyone else stays on private route hubs.
        const bool at_interchange =
            on_duty && rng.chance(config.detour_prob);
        const std::size_t hub =
            at_interchange
                ? private_hubs + rng.below(config.interchange_hubs)
                : route_index * config.route_length + position;
        const std::int64_t dwell =
            at_interchange
                ? rng.range(config.interchange_dwell_min_s,
                            config.interchange_dwell_max_s)
                : rng.range(config.dwell_min_s, config.dwell_max_s);
        const std::int64_t depart = std::min(clock + dwell, day_end);
        visits[hub].push_back({SimTime(clock), SimTime(depart), bus});
        clock = depart + rng.range(config.leg_min_s, config.leg_max_s);
        position = (position + 1) % config.route_length;
      }
    }

    // Sweep each hub for overlapping dwells.
    for (auto& hub_visits : visits) {
      std::sort(hub_visits.begin(), hub_visits.end(),
                [](const HubVisit& a, const HubVisit& b) {
                  if (a.arrive != b.arrive) return a.arrive < b.arrive;
                  return a.bus < b.bus;
                });
      for (std::size_t i = 0; i < hub_visits.size(); ++i) {
        for (std::size_t j = i + 1; j < hub_visits.size(); ++j) {
          if (hub_visits[j].arrive >= hub_visits[i].depart) break;
          if (hub_visits[i].bus == hub_visits[j].bus) continue;
          const SimTime start = hub_visits[j].arrive;
          const SimTime end =
              std::min(hub_visits[i].depart, hub_visits[j].depart);
          Encounter encounter;
          encounter.time = start;
          encounter.bus_a = std::min(hub_visits[i].bus, hub_visits[j].bus);
          encounter.bus_b = std::max(hub_visits[i].bus, hub_visits[j].bus);
          encounter.duration_s = end - start;
          trace.encounters.push_back(encounter);
        }
      }
    }
  }

  std::sort(trace.encounters.begin(), trace.encounters.end(),
            [](const Encounter& a, const Encounter& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.bus_a != b.bus_a) return a.bus_a < b.bus_a;
              return a.bus_b < b.bus_b;
            });
  return trace;
}

}  // namespace pfrdtn::trace
