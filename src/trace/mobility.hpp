#pragma once

/// \file mobility.hpp
/// Synthetic DieselNet-like vehicular mobility (the substitution for
/// the CRAWDAD umass/diesel trace; see DESIGN.md §2).
///
/// Model: a fleet pool of buses and a set of cyclic routes, each over
/// its own private hubs, plus a small number of shared *interchange*
/// hubs that buses detour to occasionally. Each day a subset of the
/// fleet is scheduled; each scheduled bus drives a route — biased
/// per-bus route affinity, so contact patterns persist across days
/// without being deterministic — looping from the day's start to its
/// end, dwelling at each hub. Two buses dwelling at the same hub at
/// overlapping times record an encounter.
///
/// Buses on the same route therefore meet constantly while buses on
/// different routes meet only through rare interchange co-occupancy —
/// giving the heavily clustered, partially-partitioned daily contact
/// graph that DieselNet exhibits and the paper's delay distributions
/// depend on (even flooding needs days for some messages). Aggregate
/// counts are calibrated to Section VI-A: ~23 buses/day, ~16k
/// encounters over 17 days, activity 8:00–23:00.

#include "trace/encounter.hpp"
#include "util/rng.hpp"

namespace pfrdtn::trace {

struct MobilityConfig {
  std::size_t days = 17;
  std::size_t fleet_size = 30;      ///< bus pool across the experiment
  std::size_t buses_per_day = 23;   ///< scheduled per day (average)
  std::size_t routes = 8;           ///< cyclic routes (private hubs)
  std::size_t route_length = 3;     ///< private hubs per route
  std::size_t interchange_hubs = 2; ///< shared detour hubs
  /// Probability that a hub visit detours to an interchange hub
  /// instead of the route's next private hub (interchange-duty buses
  /// only).
  double detour_prob = 0.45;
  /// Probability that a scheduled bus has interchange duty on a given
  /// day. Routes whose buses all lack duty are cut off from the rest
  /// of the network for that day — the partial daily partitioning that
  /// makes even flooding take days for some messages.
  double duty_prob = 0.5;
  std::int64_t day_start_s = 8 * kSecondsPerHour;   ///< 8:00
  std::int64_t day_end_s = 23 * kSecondsPerHour;    ///< 23:00
  std::int64_t leg_min_s = 4 * 60;   ///< shortest hub-to-hub drive
  std::int64_t leg_max_s = 10 * 60;  ///< longest hub-to-hub drive
  std::int64_t dwell_min_s = 5 * 60; ///< shortest private-hub dwell
  std::int64_t dwell_max_s = 10 * 60; ///< longest private-hub dwell
  /// Interchange stops are brief transfers: a specific pair of buses
  /// rarely overlaps there, but each bus chains many short meetings —
  /// which multi-copy routing exploits and direct delivery cannot.
  std::int64_t interchange_dwell_min_s = 60;
  std::int64_t interchange_dwell_max_s = 180;
  /// Probability a bus drives its "home" route on a given day (the
  /// rest of the time it is assigned a random route).
  double route_affinity = 0.75;
  /// Re-draw every bus's home route this often (fleet re-allocation);
  /// decorrelates route clusters across weeks so every bus pair
  /// eventually shares a route neighbourhood. 0 = never.
  std::size_t route_rotation_days = 6;
  /// Depot nights: active buses end their day co-parked at one of
  /// `depots` garages (assignment rotates with route and day), giving
  /// every bus pair regular meeting opportunities — the reason even
  /// direct-only delivery eventually reaches 100% in the paper's
  /// trace. Depot dwell happens in the last minutes before day_end_s,
  /// so it never affects within-12-hours delivery of the morning
  /// message injections. 0 disables depot nights.
  std::size_t depots = 2;
  std::int64_t depot_dwell_min_s = 10 * 60;
  std::int64_t depot_dwell_max_s = 20 * 60;
  /// Probability an active bus actually parks at a depot on a given
  /// night (the rest street-park); lowers nightly mixing without
  /// removing the long-run pair-meeting guarantee.
  double depot_attendance = 1.0;
  std::uint64_t seed = 42;
};

/// Generate a trace. Deterministic for a given config.
MobilityTrace generate_mobility(const MobilityConfig& config);

}  // namespace pfrdtn::trace
