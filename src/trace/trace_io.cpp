#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/require.hpp"

namespace pfrdtn::trace {

void write_mobility(std::ostream& out, const MobilityTrace& trace) {
  out << "# pfr-dtn mobility trace\n";
  out << "fleet " << trace.fleet_size << "\n";
  for (std::size_t day = 0; day < trace.active_buses.size(); ++day) {
    out << "day " << day;
    for (const BusIndex bus : trace.active_buses[day]) out << ' ' << bus;
    out << "\n";
  }
  for (const Encounter& encounter : trace.encounters) {
    out << "enc " << encounter.time.seconds() << ' ' << encounter.bus_a
        << ' ' << encounter.bus_b << ' ' << encounter.duration_s << "\n";
  }
}

MobilityTrace read_mobility(std::istream& in) {
  MobilityTrace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "fleet") {
      fields >> trace.fleet_size;
    } else if (kind == "day") {
      std::size_t day = 0;
      fields >> day;
      if (trace.active_buses.size() <= day)
        trace.active_buses.resize(day + 1);
      BusIndex bus = 0;
      while (fields >> bus) trace.active_buses[day].push_back(bus);
    } else if (kind == "enc") {
      Encounter encounter;
      std::int64_t seconds = 0;
      fields >> seconds >> encounter.bus_a >> encounter.bus_b >>
          encounter.duration_s;
      PFRDTN_REQUIRE(!fields.fail());
      encounter.time = SimTime(seconds);
      trace.encounters.push_back(encounter);
    } else {
      throw ContractViolation("unknown mobility record: " + kind);
    }
  }
  return trace;
}

void write_email(std::ostream& out, const EmailWorkload& workload) {
  out << "# pfr-dtn email workload\n";
  out << "users " << workload.users.size() << "\n";
  for (const MessageEvent& event : workload.messages) {
    out << "msg " << event.time.seconds() << ' '
        << event.sender.value() << ' ' << event.recipient.value()
        << "\n";
  }
}

EmailWorkload read_email(std::istream& in) {
  EmailWorkload workload;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "users") {
      std::size_t count = 0;
      fields >> count;
      for (std::size_t i = 0; i < count; ++i)
        workload.users.emplace_back(i + 1);
    } else if (kind == "msg") {
      std::int64_t seconds = 0;
      std::uint64_t sender = 0;
      std::uint64_t recipient = 0;
      fields >> seconds >> sender >> recipient;
      PFRDTN_REQUIRE(!fields.fail());
      workload.messages.push_back(
          {SimTime(seconds), HostId(sender), HostId(recipient)});
    } else {
      throw ContractViolation("unknown email record: " + kind);
    }
  }
  return workload;
}

namespace {

template <class Writer, class Value>
void save_file(const std::string& path, const Value& value,
               Writer writer) {
  std::ofstream out(path);
  if (!out) throw ContractViolation("cannot open for write: " + path);
  writer(out, value);
  if (!out) throw ContractViolation("write failed: " + path);
}

}  // namespace

void save_mobility(const std::string& path, const MobilityTrace& trace) {
  save_file(path, trace, [](std::ostream& out, const MobilityTrace& t) {
    write_mobility(out, t);
  });
}

MobilityTrace load_mobility(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ContractViolation("cannot open for read: " + path);
  return read_mobility(in);
}

void save_email(const std::string& path, const EmailWorkload& workload) {
  save_file(path, workload, [](std::ostream& out, const EmailWorkload& w) {
    write_email(out, w);
  });
}

EmailWorkload load_email(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ContractViolation("cannot open for read: " + path);
  return read_email(in);
}

}  // namespace pfrdtn::trace
