#pragma once

/// \file trace_io.hpp
/// Plain-text trace round-trip, so generated traces can be inspected,
/// archived, or replaced by real CRAWDAD/Enron data converted to the
/// same format.
///
/// Mobility format:
///   fleet <N>
///   day <d> <bus> <bus> ...
///   enc <seconds> <bus_a> <bus_b> <duration_s>
/// Email format:
///   users <N>
///   msg <seconds> <sender> <recipient>
/// Lines starting with '#' are comments.

#include <iosfwd>
#include <string>

#include "trace/email.hpp"
#include "trace/encounter.hpp"

namespace pfrdtn::trace {

void write_mobility(std::ostream& out, const MobilityTrace& trace);
MobilityTrace read_mobility(std::istream& in);

void write_email(std::ostream& out, const EmailWorkload& workload);
EmailWorkload read_email(std::istream& in);

/// File-based convenience wrappers; throw ContractViolation on I/O
/// failure.
void save_mobility(const std::string& path, const MobilityTrace& trace);
MobilityTrace load_mobility(const std::string& path);
void save_email(const std::string& path, const EmailWorkload& workload);
EmailWorkload load_email(const std::string& path);

}  // namespace pfrdtn::trace
