#include "net/framing.hpp"

namespace pfrdtn::net {

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(type),
                      static_cast<std::uint32_t>(payload.size()), header);
  connection.write(header, kFrameHeaderSize);
  if (!payload.empty()) connection.write(payload.data(), payload.size());
  return framed_size(payload.size());
}

Frame read_frame(Connection& connection) {
  std::uint8_t header_bytes[kFrameHeaderSize];
  connection.read(header_bytes, kFrameHeaderSize);
  const FrameHeader header = decode_frame_header(header_bytes);
  Frame frame;
  frame.type = static_cast<repl::SyncFrame>(header.type);
  frame.payload.resize(header.length);
  if (header.length > 0)
    connection.read(frame.payload.data(), header.length);
  frame.wire_bytes = framed_size(header.length);
  return frame;
}

Frame expect_frame(Connection& connection, repl::SyncFrame type) {
  Frame frame = read_frame(connection);
  PFRDTN_REQUIRE(frame.type == type);
  return frame;
}

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload,
                        SessionBudget& budget) {
  budget.charge(framed_size(payload.size()));
  return write_frame(connection, type, payload);
}

Frame read_frame(Connection& connection, SessionBudget& budget) {
  std::uint8_t header_bytes[kFrameHeaderSize];
  connection.read(header_bytes, kFrameHeaderSize);
  const FrameHeader header = decode_frame_header(header_bytes);
  // Admission before allocation: the length field is attacker data
  // until this call passes.
  budget.admit_frame(header.type, header.length);
  Frame frame;
  frame.type = static_cast<repl::SyncFrame>(header.type);
  frame.payload.resize(header.length);
  if (header.length > 0)
    connection.read(frame.payload.data(), header.length);
  frame.wire_bytes = framed_size(header.length);
  budget.charge(frame.wire_bytes);
  return frame;
}

Frame expect_frame(Connection& connection, repl::SyncFrame type,
                   SessionBudget& budget) {
  Frame frame = read_frame(connection, budget);
  PFRDTN_REQUIRE(frame.type == type);
  return frame;
}

}  // namespace pfrdtn::net
