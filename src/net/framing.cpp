#include "net/framing.hpp"

namespace pfrdtn::net {

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(type),
                      static_cast<std::uint32_t>(payload.size()), header);
  connection.write(header, kFrameHeaderSize);
  if (!payload.empty()) connection.write(payload.data(), payload.size());
  return framed_size(payload.size());
}

Frame read_frame(Connection& connection) {
  std::uint8_t header_bytes[kFrameHeaderSize];
  connection.read(header_bytes, kFrameHeaderSize);
  const FrameHeader header = decode_frame_header(header_bytes);
  Frame frame;
  frame.type = static_cast<repl::SyncFrame>(header.type);
  frame.payload.resize(header.length);
  if (header.length > 0)
    connection.read(frame.payload.data(), header.length);
  frame.wire_bytes = framed_size(header.length);
  return frame;
}

Frame expect_frame(Connection& connection, repl::SyncFrame type) {
  Frame frame = read_frame(connection);
  PFRDTN_REQUIRE(frame.type == type);
  return frame;
}

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload,
                        SessionBudget& budget) {
  budget.charge(framed_size(payload.size()));
  return write_frame(connection, type, payload);
}

Frame read_frame(Connection& connection, SessionBudget& budget) {
  std::uint8_t header_bytes[kFrameHeaderSize];
  connection.read(header_bytes, kFrameHeaderSize);
  const FrameHeader header = decode_frame_header(header_bytes);
  // Admission before allocation: the length field is attacker data
  // until this call passes.
  budget.admit_frame(header.type, header.length);
  Frame frame;
  frame.type = static_cast<repl::SyncFrame>(header.type);
  frame.payload.resize(header.length);
  if (header.length > 0)
    connection.read(frame.payload.data(), header.length);
  frame.wire_bytes = framed_size(header.length);
  budget.charge(frame.wire_bytes);
  return frame;
}

Frame expect_frame(Connection& connection, repl::SyncFrame type,
                   SessionBudget& budget) {
  Frame frame = read_frame(connection, budget);
  PFRDTN_REQUIRE(frame.type == type);
  return frame;
}

std::size_t ConnectionFrameSink::send(
    repl::SyncFrame type, const std::vector<std::uint8_t>& payload) {
  return write_frame(*connection_, type, payload, *budget_);
}

std::size_t BufferFrameSink::send(
    repl::SyncFrame type, const std::vector<std::uint8_t>& payload) {
  budget_->charge(framed_size(payload.size()));
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(type),
                      static_cast<std::uint32_t>(payload.size()), header);
  out_->insert(out_->end(), header, header + kFrameHeaderSize);
  out_->insert(out_->end(), payload.begin(), payload.end());
  return framed_size(payload.size());
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  // Drop the consumed prefix before growing, so a long session cannot
  // accrete an unbounded buffer of already-decoded bytes.
  if (consumed_ > 0 && (consumed_ == pending_.size() ||
                        consumed_ >= (64u << 10))) {
    pending_.erase(pending_.begin(),
                   pending_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  pending_.insert(pending_.end(), data, data + size);
}

std::optional<Frame> FrameDecoder::next() {
  if (!header_) {
    if (buffered() < kFrameHeaderSize) return std::nullopt;
    const FrameHeader header =
        decode_frame_header(pending_.data() + consumed_);
    // Admission before allocation, as in the budgeted read_frame: the
    // length field is attacker data until this call passes.
    budget_->admit_frame(header.type, header.length);
    consumed_ += kFrameHeaderSize;
    header_ = header;
  }
  if (buffered() < header_->length) return std::nullopt;
  Frame frame;
  frame.type = static_cast<repl::SyncFrame>(header_->type);
  const std::uint8_t* payload = pending_.data() + consumed_;
  frame.payload.assign(payload, payload + header_->length);
  consumed_ += header_->length;
  frame.wire_bytes = framed_size(header_->length);
  budget_->charge(frame.wire_bytes);
  header_.reset();
  return frame;
}

}  // namespace pfrdtn::net
