#pragma once

/// \file loopback.hpp
/// In-memory transport: two Connection endpoints joined by buffered
/// byte queues, with injectable faults. Single-threaded by design —
/// the sync protocol is strictly half-duplex (request, then batch), so
/// a sequential driver can run client and server steps alternately and
/// every read finds its bytes already buffered. Used by the emulator's
/// transport mode and by the fault-injection tests.
///
/// Faults model a DTN contact window: `cut_after_bytes` ends the
/// contact after a byte budget (the write that crosses the budget
/// delivers its in-budget prefix and then fails, exactly like a radio
/// link dying mid-stream), while `bytes_per_second` / `latency_seconds`
/// feed a transfer-time account the emulator can charge against
/// encounter durations.

#include <memory>
#include <optional>

#include "net/transport.hpp"

namespace pfrdtn::net {

struct LoopbackFaults {
  /// End the contact after this many bytes total across both
  /// directions; bytes beyond the budget are never delivered.
  std::optional<std::size_t> cut_after_bytes;
  /// Modeled throughput for transfer-time accounting (0 = infinite).
  std::size_t bytes_per_second = 0;
  /// Modeled fixed delay charged per write (store-and-forward hop).
  double latency_seconds = 0.0;
  /// Absolute session deadline in simulated seconds: the write whose
  /// transfer-time charge crosses it cuts the link, mirroring the TCP
  /// wall-clock deadline so slow-loris behaviour is testable
  /// deterministically inside the check harness.
  std::optional<double> deadline_seconds;
};

class LoopbackLink {
 public:
  explicit LoopbackLink(LoopbackFaults faults = {});
  ~LoopbackLink();

  LoopbackLink(const LoopbackLink&) = delete;
  LoopbackLink& operator=(const LoopbackLink&) = delete;

  Connection& a();
  Connection& b();

  /// Bytes actually delivered across the link (both directions).
  [[nodiscard]] std::size_t bytes_delivered() const;
  /// Modeled transfer time consumed so far.
  [[nodiscard]] double simulated_seconds() const;

 private:
  struct State;
  class Endpoint;

  std::shared_ptr<State> state_;
  std::unique_ptr<Endpoint> a_;
  std::unique_ptr<Endpoint> b_;
};

}  // namespace pfrdtn::net
