#pragma once

/// \file quarantine.hpp
/// Adaptive peer health for `pfrdtn serve`, modeled on Envoy's outlier
/// detection monitors: instead of a raw strike counter, each peer
/// carries a windowed history of session outcomes and is *ejected*
/// (quarantined) when either monitor trips —
///
///   - consecutive failures: N violations in a row with no clean
///     session between them (N = consecutive_failure_threshold;
///     the default of 1 reproduces the legacy strike-per-violation
///     behaviour exactly, draws included);
///   - windowed error rate: once at least error_rate_min_outcomes
///     outcomes sit inside history_window_ms, a violation share at or
///     above error_rate_threshold ejects even when clean sessions are
///     interleaved — the flapping peer the consecutive monitor alone
///     would never catch.
///
/// An ejected peer's reconnects are refused cheaply at accept time —
/// before any frame is read or buffer allocated on its behalf. The
/// ejection window is capped exponential in the peer's ejection count
/// with jitter in [window/2, window] (util/backoff.hpp), and the
/// ejection count itself decays: every ejection_decay_ms of quiet
/// forgives one past ejection, so a peer that was broken last week is
/// not pre-escalated today. Transport failures (cuts, timeouts) and
/// transient Error-frame refusals (read-only, busy, draining) do NOT
/// touch the table in either direction: a dying radio link and a
/// shedding server are the normal case in a DTN, not hostility.
///
/// Time is injected as a milliseconds-since-start counter so the table
/// is deterministic under test; jitter comes from a seeded Rng for the
/// same reason. The table is keyed by whatever string the caller
/// chooses — serve uses the peer IP with the ephemeral port stripped,
/// since the port changes on every reconnect.

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "util/rng.hpp"

namespace pfrdtn::net {

struct QuarantineOptions {
  /// First ejection's backoff; doubles per further ejection.
  std::uint64_t base_backoff_ms = 1000;
  /// Backoff cap — ejections beyond the cap stop extending the window.
  std::uint64_t max_backoff_ms = 60000;
  /// Seed for the jitter stream.
  std::uint64_t jitter_seed = 1;

  /// Consecutive-violation monitor: eject after this many violations
  /// in a row. 1 = every violation ejects (the legacy behaviour).
  std::size_t consecutive_failure_threshold = 1;
  /// Error-rate monitor: violation share in the history window that
  /// ejects, once the window holds enough outcomes to judge.
  double error_rate_threshold = 0.5;
  /// Minimum outcomes inside the window before the rate applies — a
  /// single violation from a barely-seen peer is not a 100% error rate.
  std::size_t error_rate_min_outcomes = 10;
  /// Outcomes older than this fall out of the error-rate window.
  std::uint64_t history_window_ms = 30000;
  /// Every this much quiet time forgives one past ejection, so the
  /// escalation ladder decays for peers that stay healthy. 0 disables
  /// decay (ejection counts persist forever, as raw strikes did).
  std::uint64_t ejection_decay_ms = 60000;
};

/// Verdict of an accept-time admission check.
struct AdmitDecision {
  bool rejected = false;
  std::uint64_t retry_after_ms = 0;  ///< remaining ejection window
  std::size_t strikes = 0;           ///< peer's current ejection count
  std::size_t rejections = 0;  ///< times this peer was refused so far
};

class QuarantineTable {
 public:
  explicit QuarantineTable(QuarantineOptions options = {})
      : options_(options), jitter_(options.jitter_seed) {}

  /// Accept-time check: is `peer` currently ejected at `now_ms`?
  /// Counts the rejection when it is. O(log peers) plus history
  /// pruning, no allocation on the hot accept path beyond the map
  /// lookup.
  AdmitDecision admit(const std::string& peer, std::uint64_t now_ms);

  /// Record a violation by `peer` at `now_ms`. When a monitor trips,
  /// ejects the peer for min(base << (ejections-1), max) plus jitter
  /// in [window/2, window] and returns the window length; returns 0
  /// when the violation was recorded but no monitor tripped.
  std::uint64_t punish(const std::string& peer, std::uint64_t now_ms);

  /// Record a cleanly completed session: resets the consecutive-
  /// failure counter and adds a success to the error-rate window.
  /// Ejection history decays with time rather than vanishing on one
  /// good session — a flapping peer must not reset its ladder by
  /// succeeding once.
  void reward(const std::string& peer, std::uint64_t now_ms);

  /// Current ejection count (the escalation ladder position).
  [[nodiscard]] std::size_t strikes(const std::string& peer) const;
  /// Violations in a row since the last clean session.
  [[nodiscard]] std::size_t consecutive_failures(
      const std::string& peer) const;
  /// Violation share inside the history window at `now_ms` (0 when
  /// the window is empty).
  [[nodiscard]] double error_rate(const std::string& peer,
                                  std::uint64_t now_ms) const;
  [[nodiscard]] std::size_t total_rejections() const {
    return total_rejections_;
  }
  [[nodiscard]] std::size_t total_ejections() const {
    return total_ejections_;
  }
  [[nodiscard]] std::size_t quarantined_peers() const {
    return entries_.size();
  }

 private:
  struct Outcome {
    std::uint64_t at_ms = 0;
    bool violation = false;
  };

  struct Entry {
    std::size_t ejections = 0;
    std::size_t consecutive = 0;
    std::size_t rejections = 0;
    std::uint64_t until_ms = 0;
    /// Decay bookkeeping: quiet time is measured from the later of the
    /// last outcome and the last decay step already taken.
    std::uint64_t decay_from_ms = 0;
    std::deque<Outcome> history;
  };

  /// Drop window-expired outcomes and apply ejection decay.
  void age(Entry& entry, std::uint64_t now_ms) const;
  [[nodiscard]] bool rate_trips(const Entry& entry) const;

  QuarantineOptions options_;
  Rng jitter_;
  std::map<std::string, Entry> entries_;
  std::size_t total_rejections_ = 0;
  std::size_t total_ejections_ = 0;
};

}  // namespace pfrdtn::net
