#pragma once

/// \file quarantine.hpp
/// Per-peer quarantine for `pfrdtn serve`: peers whose sessions end in
/// a protocol violation or resource-limit breach earn capped
/// exponential backoff with jitter, and their reconnects are refused
/// cheaply at accept time — before any frame is read or buffer
/// allocated on their behalf. Transport failures (cuts, timeouts) do
/// NOT strike a peer: a dying radio link is the normal case in a DTN,
/// not hostility.
///
/// Time is injected as a milliseconds-since-start counter so the table
/// is deterministic under test; jitter comes from a seeded Rng for the
/// same reason. The table is keyed by whatever string the caller
/// chooses — serve uses the peer IP with the ephemeral port stripped,
/// since the port changes on every reconnect.

#include <cstdint>
#include <map>
#include <string>

#include "util/rng.hpp"

namespace pfrdtn::net {

struct QuarantineOptions {
  /// First strike's backoff; doubles per further strike.
  std::uint64_t base_backoff_ms = 1000;
  /// Backoff cap — strikes beyond the cap stop extending the window.
  std::uint64_t max_backoff_ms = 60000;
  /// Seed for the jitter stream.
  std::uint64_t jitter_seed = 1;
};

/// Verdict of an accept-time admission check.
struct AdmitDecision {
  bool rejected = false;
  std::uint64_t retry_after_ms = 0;  ///< remaining quarantine window
  std::size_t strikes = 0;
  std::size_t rejections = 0;  ///< times this peer was refused so far
};

class QuarantineTable {
 public:
  explicit QuarantineTable(QuarantineOptions options = {})
      : options_(options), jitter_(options.jitter_seed) {}

  /// Accept-time check: is `peer` currently quarantined at `now_ms`?
  /// Counts the rejection when it is. O(log peers), no allocation on
  /// the hot accept path beyond the map lookup.
  AdmitDecision admit(const std::string& peer, std::uint64_t now_ms);

  /// Record a violation by `peer` at `now_ms`: one more strike, and a
  /// fresh quarantine window of min(base << (strikes-1), max) plus
  /// jitter in [window/2, window]. Returns the window length applied.
  std::uint64_t punish(const std::string& peer, std::uint64_t now_ms);

  /// A cleanly completed session clears the peer's record entirely.
  void reward(const std::string& peer);

  [[nodiscard]] std::size_t strikes(const std::string& peer) const;
  [[nodiscard]] std::size_t total_rejections() const {
    return total_rejections_;
  }
  [[nodiscard]] std::size_t quarantined_peers() const {
    return entries_.size();
  }

 private:
  struct Entry {
    std::size_t strikes = 0;
    std::size_t rejections = 0;
    std::uint64_t until_ms = 0;
  };

  QuarantineOptions options_;
  Rng jitter_;
  std::map<std::string, Entry> entries_;
  std::size_t total_rejections_ = 0;
};

}  // namespace pfrdtn::net
