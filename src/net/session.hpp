#pragma once

/// \file session.hpp
/// The sync-session state machine: runs the Figure-4 exchange over a
/// Transport connection. Each sync has a *source* role (answers a
/// request by streaming a batch) and a *target* role (sends the
/// request, applies batch items as their frames arrive). Streaming
/// item-by-item means a dropped connection leaves the target with the
/// fully received prefix applied, `complete == false`, and the source
/// knowledge never merged — the truncated-contact semantics the
/// substrate's SyncBatch::complete flag was designed for.
///
/// Frame sequence of one sync (see docs/net.md for the state machine):
///
///   target -> source   Request
///   source -> target   BatchBegin (source id, complete flag, count)
///   source -> target   BatchItem * count
///   source -> target   BatchEnd (source knowledge)
///
/// A TCP session between two processes is opened by the client with a
/// Hello frame carrying its replica id and the session mode; the
/// server answers with its own Hello, then the two run one or two
/// syncs (Pull: client is target; Push: client is source; Encounter:
/// pull then push — the paper's two syncs per encounter).

#include <string>

#include "net/framing.hpp"
#include "net/loopback.hpp"

namespace pfrdtn::net {

/// What the client asks for in its Hello frame.
enum class SyncMode : std::uint8_t {
  Pull = 1,       ///< client pulls: client = target, server = source
  Push = 2,       ///< client pushes: client = source, server = target
  Encounter = 3,  ///< pull then push, as in one trace encounter
};

/// Hello payload: who is speaking and what they want.
struct HelloInfo {
  ReplicaId replica{};
  SyncMode mode = SyncMode::Pull;
};

std::vector<std::uint8_t> encode_hello(const HelloInfo& hello);
HelloInfo decode_hello(const std::vector<std::uint8_t>& payload);

/// Target-side outcome of one sync over a transport.
struct NetSyncResult {
  repl::SyncResult result;
  bool transport_failed = false;  ///< the link died during this sync
  std::string error;              ///< TransportError message, if any
};

/// Source-side outcome of one sync over a transport.
struct SourceStats {
  /// request_bytes/batch_bytes are framed wire bytes as read/written;
  /// items_sent counts items whose frames were fully written.
  repl::SyncStats stats;
  bool transport_failed = false;
  std::string error;
};

/// Run the source role once: wait for the peer's Request frame, build
/// the batch (policy consulted, bandwidth cap applied), stream it.
/// Link failures are absorbed into the returned stats. All peer input
/// is accounted against `budget` (default-constructed locally when
/// null, i.e. enforced under the default ResourceLimits); breaches
/// throw ResourceLimitError like any other protocol violation.
SourceStats run_source(Connection& connection, repl::Replica& source,
                       repl::ForwardingPolicy* source_policy, SimTime now,
                       const repl::SyncOptions& options = {},
                       SessionBudget* budget = nullptr);

/// The target role as a resumable state machine, so a sequential
/// driver (the loopback path) can interleave it with the source role
/// on the same thread: send_request(), run the source, then receive().
class TargetSession {
 public:
  enum class State { Idle, RequestSent, Done, Failed };

  /// `budget` spans the session this target role belongs to; when null
  /// a local budget with the default ResourceLimits is used, so every
  /// path through here is resource-bounded.
  TargetSession(repl::Replica& target,
                repl::ForwardingPolicy* target_policy,
                repl::SyncOptions options = {},
                SessionBudget* budget = nullptr)
      : target_(&target),
        policy_(target_policy),
        options_(options),
        budget_(budget) {}

  /// Step 1: build this replica's request and send it. A link failure
  /// moves the session to Failed instead of throwing; receive() then
  /// reports it.
  void send_request(Connection& connection, ReplicaId source_id,
                    SimTime now);

  /// Step 2: stream the batch in, applying each item as its frame
  /// arrives. A dropped link yields the applied prefix with
  /// `complete == false` and no knowledge learned.
  NetSyncResult receive(Connection& connection);

  [[nodiscard]] State state() const { return state_; }

 private:
  [[nodiscard]] SessionBudget& budget() {
    return budget_ != nullptr ? *budget_ : local_budget_;
  }

  repl::Replica* target_;
  repl::ForwardingPolicy* policy_;
  repl::SyncOptions options_;
  SessionBudget* budget_;
  SessionBudget local_budget_;
  State state_ = State::Idle;
  std::size_t request_bytes_ = 0;
  std::string error_;
};

/// One full sync over an in-memory loopback link, driven sequentially
/// on the calling thread: the transport-layer equivalent of
/// repl::run_sync. With no faults injected, the target-side result is
/// identical to run_sync's — same item outcomes, same framed byte
/// counts, byte-identical replica state afterwards.
struct LoopbackSyncOutcome {
  NetSyncResult client;  ///< target side
  SourceStats server;    ///< source side
  std::size_t bytes_delivered = 0;
  double simulated_seconds = 0.0;
};

LoopbackSyncOutcome sync_over_loopback(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options = {},
    const LoopbackFaults& faults = {});

/// One full encounter over a single loopback contact: `a` pulls from
/// `b`, then `a` pushes to `b` — the paper's two one-way syncs per
/// encounter (Section VI), with both roles alternating on the same
/// link. Faults span the whole contact, so a byte budget can die
/// during either sync; the push is still attempted after a cut pull
/// (its steps fail fast on the dead link), mirroring a real session.
struct LoopbackEncounterOutcome {
  NetSyncResult a_pulled;   ///< a as target of the first sync
  SourceStats b_served;     ///< b as source of the first sync
  NetSyncResult b_applied;  ///< b as target of the second sync
  SourceStats a_pushed;     ///< a as source of the second sync
  std::size_t bytes_delivered = 0;
  double simulated_seconds = 0.0;
};

LoopbackEncounterOutcome encounter_over_loopback(
    repl::Replica& a, repl::Replica& b,
    repl::ForwardingPolicy* a_policy, repl::ForwardingPolicy* b_policy,
    SimTime now, const repl::SyncOptions& options = {},
    const LoopbackFaults& faults = {});

// ---- whole sessions (TCP client/server) ------------------------------

struct ClientSessionOutcome {
  NetSyncResult pull;   ///< meaningful for Pull / Encounter modes
  SourceStats push;     ///< meaningful for Push / Encounter modes
  ReplicaId server{};   ///< peer id from the server's Hello
  std::size_t overhead_bytes = 0;  ///< hello frames
  bool transport_failed = false;
  std::string error;
};

/// Drive one session as the connecting client. One SessionBudget built
/// from `limits` spans the whole session, so the byte ceiling
/// accumulates across the hello exchange and every sync.
ClientSessionOutcome run_client_session(
    Connection& connection, repl::Replica& self,
    repl::ForwardingPolicy* policy, SyncMode mode, SimTime now,
    const repl::SyncOptions& options = {},
    const ResourceLimits& limits = {});

struct ServerSessionOutcome {
  HelloInfo hello;      ///< who connected and what they asked for
  SourceStats served;   ///< meaningful for Pull / Encounter modes
  NetSyncResult applied;  ///< meaningful for Push / Encounter modes
  bool transport_failed = false;
  std::string error;
};

/// Serve one session on an accepted connection. The peer is untrusted:
/// every frame is admitted against one SessionBudget built from
/// `limits` before its payload is allocated, and a breach propagates
/// as ResourceLimitError (a ContractViolation) for the caller to
/// contain — and, in `pfrdtn serve`, to quarantine the peer over.
ServerSessionOutcome serve_session(Connection& connection,
                                   repl::Replica& self,
                                   repl::ForwardingPolicy* policy,
                                   SimTime now,
                                   const repl::SyncOptions& options = {},
                                   const ResourceLimits& limits = {});

}  // namespace pfrdtn::net
