#pragma once

/// \file session.hpp
/// The sync-session state machine: runs the Figure-4 exchange over a
/// Transport connection. Each sync has a *source* role (answers a
/// request by streaming a batch) and a *target* role (sends the
/// request, applies batch items as their frames arrive). Streaming
/// item-by-item means a dropped connection leaves the target with the
/// fully received prefix applied, `complete == false`, and the source
/// knowledge never merged — the truncated-contact semantics the
/// substrate's SyncBatch::complete flag was designed for.
///
/// Frame sequence of one sync (see docs/net.md for the state machine):
///
///   target -> source   Request
///   source -> target   BatchBegin (source id, complete flag, count)
///   source -> target   BatchItem * count
///   source -> target   BatchEnd (source knowledge)
///
/// With the summary fast path negotiated (see HelloInfo::features and
/// repl::SummaryMode), the target opens with a SummaryRequest instead;
/// the source answers SummaryMatch (converged — the sync ends in O(1)
/// wire bytes), streams the batch directly (the summary's Bloom filter
/// proved a cold target), or answers SummaryMiss, after which the
/// target sends the exact Request and the flow above resumes.
///
/// A TCP session between two processes is opened by the client with a
/// Hello frame carrying its replica id and the session mode; the
/// server answers with its own Hello, then the two run one or two
/// syncs (Pull: client is target; Push: client is source; Encounter:
/// pull then push — the paper's two syncs per encounter). When both
/// hellos advertised kFeatureBatchAck, a sync whose *server* was the
/// target (the push leg) ends with one more frame, server -> client:
/// a BatchAck confirming the batch was applied, which the pushing
/// client blocks on before calling the push delivered.

#include <optional>
#include <string>
#include <utility>

#include "net/framing.hpp"
#include "net/loopback.hpp"

namespace pfrdtn::net {

/// What the client asks for in its Hello frame.
enum class SyncMode : std::uint8_t {
  Pull = 1,       ///< client pulls: client = target, server = source
  Push = 2,       ///< client pushes: client = source, server = target
  Encounter = 3,  ///< pull then push, as in one trace encounter
};

/// Protocol feature bits carried in HelloInfo::features.
inline constexpr std::uint64_t kFeatureSummaryExchange = 1;
/// Push acknowledgement (repl::SyncFrame::BatchAck): after applying a
/// pushed batch the server confirms it with an ack frame the client
/// blocks on. TCP write success only proves bytes reached a socket
/// buffer, so without the ack a client whose push was cut on the
/// server side reports success over lost data — the one failure the
/// retrying contact discipline cannot retry because it never sees it.
/// Negotiated like summaries: the client advertises, the server
/// echoes, a legacy peer on either side gets the unacked protocol.
inline constexpr std::uint64_t kFeatureBatchAck = 2;

/// Hello payload: who is speaking and what they want.
struct HelloInfo {
  ReplicaId replica{};
  SyncMode mode = SyncMode::Pull;
  /// Feature bits this endpoint supports. Encoded only when nonzero —
  /// a features-free hello is byte-identical to the legacy format, and
  /// legacy decoders (which require the payload to end after the mode
  /// byte) only ever see that form: the server echoes features only to
  /// a client that advertised some.
  std::uint64_t features = 0;
};

std::vector<std::uint8_t> encode_hello(const HelloInfo& hello);
HelloInfo decode_hello(const std::vector<std::uint8_t>& payload);

/// Resolve the summary mode this endpoint should actually run against
/// a peer: On forces the fast path, Off forces the exact protocol, and
/// Auto enables summaries iff the peer's hello advertised support.
[[nodiscard]] repl::SummaryMode resolve_summary_mode(
    repl::SummaryMode requested, std::uint64_t peer_features);

/// Target-side outcome of one sync over a transport.
struct NetSyncResult {
  repl::SyncResult result;
  bool transport_failed = false;  ///< the link died during this sync
  /// The sync never ran because this (degraded read-only) replica
  /// refused the mutation up front: an Error frame was sent instead of
  /// the opening request. Not a failure of the link or the peer.
  bool refused = false;
  std::string error;              ///< TransportError message, if any
};

/// Source-side outcome of one sync over a transport.
struct SourceStats {
  /// request_bytes/batch_bytes are framed wire bytes as read/written;
  /// items_sent counts items whose frames were fully written.
  repl::SyncStats stats;
  bool transport_failed = false;
  /// The peer answered with an Error frame instead of its opening
  /// request: a structured, transient refusal (e.g. the peer is
  /// degraded read-only). Never a protocol violation — no strike.
  bool refused = false;
  std::string error;
};

/// Run the source role once: wait for the peer's opening frame, build
/// the batch (policy consulted, bandwidth cap applied), stream it.
/// With options.summary_mode == Off the opener must be an exact
/// Request (the legacy protocol, byte for byte); otherwise a
/// SummaryRequest opener is also accepted and answered per the summary
/// flow, including blocking for the exact fallback Request after a
/// SummaryMiss. Link failures are absorbed into the returned stats.
/// All peer input is accounted against `budget` (default-constructed
/// locally when null, i.e. enforced under the default ResourceLimits);
/// breaches throw ResourceLimitError like any other protocol violation.
SourceStats run_source(Connection& connection, repl::Replica& source,
                       repl::ForwardingPolicy* source_policy, SimTime now,
                       const repl::SyncOptions& options = {},
                       SessionBudget* budget = nullptr);

/// The source role as a resumable, frame-driven state machine: hand it
/// one decoded peer frame at a time via on_frame() and it emits every
/// reply through a FrameSink, never blocking in between. Hosts decide
/// how frames arrive — a blocking read loop (run_source, the loopback
/// drive) or an epoll event loop feeding a FrameDecoder
/// (src/net/server.hpp). The serve_opener/serve_exact wrappers keep
/// the one-call-per-step blocking API for sequential drivers.
class SourceSession {
 public:
  enum class State { Idle, AwaitExact, Done, Failed };

  SourceSession(repl::Replica& source, repl::ForwardingPolicy* policy,
                SimTime now, repl::SyncOptions options = {},
                SessionBudget* budget = nullptr)
      : source_(&source),
        policy_(policy),
        now_(now),
        options_(options),
        budget_(budget) {}

  /// True while the machine needs another peer frame (Idle: the
  /// opener; AwaitExact: the post-miss fallback Request).
  [[nodiscard]] bool wants_frame() const {
    return state_ == State::Idle || state_ == State::AwaitExact;
  }

  /// Consume one peer frame and emit any replies through `sink`.
  /// From Idle the frame is the opener: an exact Request streams the
  /// batch; a SummaryRequest (rejected while options.summary_mode is
  /// Off — the legacy protocol admits only Request) is answered with
  /// SummaryMatch, a direct batch, or SummaryMiss (-> AwaitExact); an
  /// Error frame (the peer refused its own pull, e.g. it is degraded
  /// read-only) ends the role Done with `refused` set — a graceful,
  /// transient outcome, never a violation, never a strike.
  /// From AwaitExact the frame must be the exact fallback Request; the
  /// routing state was already processed with the summary, so the
  /// fallback skips the policy's process_request. Protocol breaches
  /// throw ContractViolation; sink failures propagate TransportError
  /// (blocking hosts turn those into on_transport_error).
  void on_frame(const Frame& frame, FrameSink& sink);

  /// The link died while this role was live: absorb the failure into
  /// the stats, as a truncated contact, and end Failed.
  void on_transport_error(const TransportError& failure) { fail(failure); }

  /// Blocking step 1: read the opener and answer it. Ends Done (batch
  /// streamed or SummaryMatch sent), AwaitExact (SummaryMiss sent, the
  /// exact Request is owed), or Failed (link died).
  void serve_opener(Connection& connection);

  /// Blocking step 2, only from AwaitExact: read the exact fallback
  /// Request and stream the batch.
  void serve_exact(Connection& connection);

  [[nodiscard]] State state() const { return state_; }
  /// The accumulated outcome; call once both steps are over.
  [[nodiscard]] SourceStats take_stats() { return std::move(outcome_); }

 private:
  [[nodiscard]] SessionBudget& budget() {
    return budget_ != nullptr ? *budget_ : local_budget_;
  }
  void serve_request_frame(const Frame& frame, FrameSink& sink,
                           bool process_routing_state);
  void stream_batch(FrameSink& sink, const repl::SyncBatch& batch);
  void fail(const TransportError& failure);

  repl::Replica* source_;
  repl::ForwardingPolicy* policy_;
  SimTime now_;
  repl::SyncOptions options_;
  SessionBudget* budget_;
  SessionBudget local_budget_;
  State state_ = State::Idle;
  SourceStats outcome_;
};

/// The target role as a resumable, frame-driven state machine: start()
/// emits the opening request through a FrameSink, then on_frame()
/// consumes the source's reply stream one frame at a time — summary
/// replies, BatchBegin, each BatchItem (applied as it arrives), and
/// BatchEnd — without ever blocking in between. take_result() builds
/// the NetSyncResult once finished(). The blocking wrappers
/// (send_request / send_fallback / receive) keep the sequential API
/// the loopback driver and the TCP client use.
class TargetSession {
 public:
  enum class State { Idle, RequestSent, SummarySent, Done, Failed,
                     Receiving };

  /// `budget` spans the session this target role belongs to; when null
  /// a local budget with the default ResourceLimits is used, so every
  /// path through here is resource-bounded.
  TargetSession(repl::Replica& target,
                repl::ForwardingPolicy* target_policy,
                repl::SyncOptions options = {},
                SessionBudget* budget = nullptr)
      : target_(&target),
        policy_(target_policy),
        options_(options),
        budget_(budget) {}

  /// Step 1, machine form: build this replica's request and emit it
  /// through `sink` (a SummaryRequest with summaries on, the exact
  /// Request otherwise). A sink TransportError is absorbed: the
  /// session ends Failed and take_result() reports it. A degraded
  /// read-only replica refuses up front: a pull mutates this side, so
  /// an Error frame is sent in place of the request and the session
  /// ends Done with `refused` set and nothing applied.
  void start(FrameSink& sink, ReplicaId source_id, SimTime now);

  /// True while the machine needs another source frame.
  [[nodiscard]] bool wants_frame() const {
    return state_ == State::RequestSent || state_ == State::SummarySent ||
           state_ == State::Receiving;
  }
  [[nodiscard]] bool finished() const {
    return state_ == State::Done || state_ == State::Failed;
  }

  /// Consume one source frame, applying batch items as their frames
  /// arrive. From SummarySent a SummaryMatch ends the sync, a
  /// SummaryMiss makes the machine emit the exact fallback Request
  /// through `sink`, and a direct BatchBegin (the Bloom filter proved
  /// us cold) just starts the batch. Protocol breaches throw
  /// ContractViolation; sink failures propagate TransportError.
  void on_frame(const Frame& frame, FrameSink& sink);

  /// The link died: the applied prefix is kept, `complete` stays
  /// false, no knowledge is learned. Ends Failed.
  void on_transport_error(const std::string& what);

  /// The sync's outcome; call once finished(). Framed byte counts
  /// cover every frame this machine consumed or emitted.
  NetSyncResult take_result();

  /// Blocking step 1: start() over a ConnectionFrameSink.
  void send_request(Connection& connection, ReplicaId source_id,
                    SimTime now);

  /// Loopback-driver step between send_request and receive, only when
  /// the interleaved source ended AwaitExact: read the SummaryMiss and
  /// send the exact fallback Request (reusing the routing state the
  /// summary carried). A live transport never calls this — receive()
  /// handles the miss inline.
  void send_fallback(Connection& connection);

  /// Blocking step 2: feed frames to on_frame until finished, then
  /// take_result(). A dropped link yields the applied prefix with
  /// `complete == false` and no knowledge learned.
  NetSyncResult receive(Connection& connection);

  [[nodiscard]] State state() const { return state_; }
  /// True when start() refused the sync because this replica is
  /// degraded read-only (an Error frame was sent instead).
  [[nodiscard]] bool refused() const { return refused_; }

 private:
  [[nodiscard]] SessionBudget& budget() {
    return budget_ != nullptr ? *budget_ : local_budget_;
  }
  /// The incremental applier, created lazily at the first batch frame
  /// (BatchApplier construction is side-effect-free).
  repl::BatchApplier& ensure_applier();
  void begin_batch(const Frame& frame);
  /// Emit the exact Request of the post-miss fallback.
  void send_exact_fallback(FrameSink& sink);

  repl::Replica* target_;
  repl::ForwardingPolicy* policy_;
  repl::SyncOptions options_;
  SessionBudget* budget_;
  SessionBudget local_budget_;
  State state_ = State::Idle;
  std::size_t request_bytes_ = 0;
  /// Framed bytes of every batch-side frame consumed so far.
  std::size_t batch_bytes_ = 0;
  /// Routing state sent with the summary, reused by the fallback so
  /// the source's policy hooks see one request per sync.
  std::vector<std::uint8_t> routing_state_;
  std::optional<repl::BatchApplier> applier_;
  std::optional<repl::BatchBeginInfo> begin_;
  std::uint64_t received_ = 0;
  std::optional<repl::SyncResult> result_;
  /// The session died before the receive phase (opening write or the
  /// driver-run fallback failed): consumed-byte stats stay zero, as
  /// the blocking path always reported for those failures.
  bool pre_receive_failure_ = false;
  /// start() refused the sync: this replica is degraded read-only.
  bool refused_ = false;
  std::string error_;
};

/// One full sync over an in-memory loopback link, driven sequentially
/// on the calling thread: the transport-layer equivalent of
/// repl::run_sync. With no faults injected, the target-side result is
/// identical to run_sync's — same item outcomes, same framed byte
/// counts, byte-identical replica state afterwards.
struct LoopbackSyncOutcome {
  NetSyncResult client;  ///< target side
  SourceStats server;    ///< source side
  std::size_t bytes_delivered = 0;
  double simulated_seconds = 0.0;
};

LoopbackSyncOutcome sync_over_loopback(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options = {},
    const LoopbackFaults& faults = {});

/// One full encounter over a single loopback contact: `a` pulls from
/// `b`, then `a` pushes to `b` — the paper's two one-way syncs per
/// encounter (Section VI), with both roles alternating on the same
/// link. Faults span the whole contact, so a byte budget can die
/// during either sync; the push is still attempted after a cut pull
/// (its steps fail fast on the dead link), mirroring a real session.
struct LoopbackEncounterOutcome {
  NetSyncResult a_pulled;   ///< a as target of the first sync
  SourceStats b_served;     ///< b as source of the first sync
  NetSyncResult b_applied;  ///< b as target of the second sync
  SourceStats a_pushed;     ///< a as source of the second sync
  std::size_t bytes_delivered = 0;
  double simulated_seconds = 0.0;
};

LoopbackEncounterOutcome encounter_over_loopback(
    repl::Replica& a, repl::Replica& b,
    repl::ForwardingPolicy* a_policy, repl::ForwardingPolicy* b_policy,
    SimTime now, const repl::SyncOptions& options = {},
    const LoopbackFaults& faults = {});

// ---- whole sessions (TCP client/server) ------------------------------

struct ClientSessionOutcome {
  NetSyncResult pull;   ///< meaningful for Pull / Encounter modes
  SourceStats push;     ///< meaningful for Push / Encounter modes
  ReplicaId server{};   ///< peer id from the server's Hello
  std::size_t overhead_bytes = 0;  ///< hello frames
  bool transport_failed = false;
  /// The server answered the Hello with a transient Error frame
  /// instead of its own Hello — an overloaded serve shedding with
  /// Busy, or a draining one refusing new sessions. The session never
  /// started; retry with backoff, never a strike in either direction.
  bool refused = false;
  std::uint8_t refusal_code = 0;  ///< repl::kSyncErrorBusy etc.
  std::string error;
};

/// Drive one session as the connecting client. One SessionBudget built
/// from `limits` spans the whole session, so the byte ceiling
/// accumulates across the hello exchange and every sync.
ClientSessionOutcome run_client_session(
    Connection& connection, repl::Replica& self,
    repl::ForwardingPolicy* policy, SyncMode mode, SimTime now,
    const repl::SyncOptions& options = {},
    const ResourceLimits& limits = {});

struct ServerSessionOutcome {
  HelloInfo hello;      ///< who connected and what they asked for
  SourceStats served;   ///< meaningful for Pull / Encounter modes
  NetSyncResult applied;  ///< meaningful for Push / Encounter modes
  bool transport_failed = false;
  std::string error;
};

/// The whole server side of one session as a resumable, frame-driven
/// state machine: hello negotiation, then the source and/or target
/// role per the client's mode, all via on_frame() steps that emit
/// replies through a FrameSink and never block. Both the blocking
/// serve_session() and the epoll SyncServer (src/net/server.hpp) host
/// this exact machine, so the concurrent and sequential serve paths
/// cannot diverge behaviorally.
class ServerSessionMachine {
 public:
  ServerSessionMachine(repl::Replica& self, repl::ForwardingPolicy* policy,
                       SimTime now, repl::SyncOptions options = {},
                       const ResourceLimits& limits = {})
      : self_(&self),
        policy_(policy),
        now_(now),
        options_(options),
        effective_(options),
        budget_(limits) {}

  /// The session-spanning budget; the host's frame decode path charges
  /// and admits against it, as the blocking read loop does.
  [[nodiscard]] SessionBudget& budget() { return budget_; }

  [[nodiscard]] bool finished() const { return state_ == State::Done; }
  /// True while the machine needs another peer frame — the session is
  /// over exactly when it no longer does.
  [[nodiscard]] bool wants_frame() const { return !finished(); }

  /// Consume one peer frame, emitting replies through `sink`. Protocol
  /// breaches (malformed frames, step violations, resource-limit
  /// breaches) throw ContractViolation for the host to contain — and
  /// quarantine the peer over. Sink TransportErrors are absorbed into
  /// the outcome, like every link failure. A *local* disk fault inside
  /// the replica funnel propagates as StorageError — a
  /// ContractViolation subclass the host must catch FIRST and treat as
  /// its own failure: close the session, never strike the peer.
  void on_frame(const Frame& frame, FrameSink& sink);

  /// The link died (read side): absorb into the outcome as an
  /// incomplete sync. Never a strike — peers vanishing is the normal
  /// case in a DTN.
  void on_transport_error(const std::string& what);

  /// The session's outcome; call once finished().
  [[nodiscard]] ServerSessionOutcome take_outcome();

 private:
  enum class State { AwaitHello, Source, Target, Done };
  void harvest_source(FrameSink* sink);
  void start_target(FrameSink& sink);
  /// `sink` is null only when the link is already dead (transport
  /// error paths), where the ack could not be written anyway.
  void harvest_target(FrameSink* sink);

  repl::Replica* self_;
  repl::ForwardingPolicy* policy_;
  SimTime now_;
  repl::SyncOptions options_;    ///< as configured
  repl::SyncOptions effective_;  ///< after hello negotiation
  SessionBudget budget_;
  /// Both hellos advertised kFeatureBatchAck: confirm applied pushes.
  bool ack_negotiated_ = false;
  State state_ = State::AwaitHello;
  std::optional<SourceSession> source_;
  std::optional<TargetSession> target_;
  ServerSessionOutcome outcome_;
};

/// Serve one session on an accepted connection: a blocking read loop
/// over ServerSessionMachine. The peer is untrusted: every frame is
/// admitted against one SessionBudget built from `limits` before its
/// payload is allocated, and a breach propagates as ResourceLimitError
/// (a ContractViolation) for the caller to contain — and, in `pfrdtn
/// serve`, to quarantine the peer over.
ServerSessionOutcome serve_session(Connection& connection,
                                   repl::Replica& self,
                                   repl::ForwardingPolicy* policy,
                                   SimTime now,
                                   const repl::SyncOptions& options = {},
                                   const ResourceLimits& limits = {});

}  // namespace pfrdtn::net
