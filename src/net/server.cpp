#include "net/server.hpp"

#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "net/framing.hpp"
#include "util/require.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::net {

namespace {

/// Quarantine records are keyed by peer address without the ephemeral
/// port — reconnecting from a new source port must not launder strikes.
std::string quarantine_key(const std::string& peer) {
  const auto colon = peer.rfind(':');
  return colon == std::string::npos ? peer : peer.substr(0, colon);
}

constexpr auto kProgressCheckInterval = std::chrono::milliseconds(250);

}  // namespace

/// One live connection, owned exclusively by its worker's loop thread.
/// Every method that can end the session destroys `this` (via
/// Worker::destroy) and returns false; callers must not touch the
/// object after a false return.
struct SyncServer::Served {
  Served(SyncServer& server_in, Worker& worker_in, int fd_in,
         std::size_t number_in, std::string peer_in, std::string key_in,
         LinkFaultSchedule fault_in)
      : server(server_in),
        worker(worker_in),
        fd(fd_in),
        number(number_in),
        peer(std::move(peer_in)),
        key(std::move(key_in)),
        fault(fault_in),
        machine(*server.replica_, server.policy_, server.options_.now,
                server.options_.sync, server.options_.limits),
        decoder(machine.budget()),
        sink(outbuf, machine.budget()),
        started(EventLoop::Clock::now()),
        last_progress(started) {}

  SyncServer& server;
  Worker& worker;
  const int fd;
  const std::size_t number;
  const std::string peer;
  const std::string key;  ///< quarantine key (peer minus port)
  LinkFaultSchedule fault;  ///< drawn at accept; armed only at rate > 0
  ServerSessionMachine machine;
  FrameDecoder decoder;
  std::vector<std::uint8_t> outbuf;
  std::size_t out_offset = 0;
  BufferFrameSink sink;
  EventLoop::Clock::time_point started;
  EventLoop::Clock::time_point last_progress;
  std::size_t bytes_moved = 0;
  EventLoop::TimerId timer = 0;
  bool writable_armed = false;

  bool on_events(std::uint32_t events);
  bool on_readable();
  bool process_frames();
  bool flush();
  bool complete_if_done();
  bool on_timer();
  /// Fire the drawn link fault once bytes_moved crosses its offset:
  /// the session dies as a transport failure (never a strike). Returns
  /// false when it fired and destroyed *this.
  bool check_link_fault();
  bool fail_transport(const std::string& what);
  bool fail_violation(const ContractViolation& violation);
  void finish();
  void arm_timer();
  void arm_writable(bool want);
  void note_progress() { last_progress = EventLoop::Clock::now(); }
};

/// A worker thread: one EventLoop plus the connections it owns. The
/// acceptor posts adopt() calls into the loop; everything else runs on
/// the loop thread only.
struct SyncServer::Worker {
  explicit Worker(SyncServer& server_in) : server(server_in) {}

  SyncServer& server;
  EventLoop loop;
  std::thread thread;
  std::unordered_map<int, std::unique_ptr<Served>> sessions;

  void adopt(int fd, std::string peer, std::string key,
             std::size_t number, LinkFaultSchedule fault) {
    auto served =
        std::make_unique<Served>(server, *this, fd, number,
                                 std::move(peer), std::move(key), fault);
    Served* raw = served.get();
    sessions.emplace(fd, std::move(served));
    loop.watch(fd, EPOLLIN, [this, fd](std::uint32_t events) {
      const auto it = sessions.find(fd);
      if (it == sessions.end()) return;
      it->second->on_events(events);
    });
    raw->arm_timer();
  }

  /// Tear down one connection: cancel its timer, unregister, close,
  /// erase (which destroys the Served).
  void destroy(int fd) {
    const auto it = sessions.find(fd);
    if (it == sessions.end()) return;
    if (it->second->timer != 0) loop.cancel(it->second->timer);
    loop.forget(fd);
    ::close(fd);
    sessions.erase(it);
  }

  /// Drain-deadline expiry: fail every remaining session as a
  /// truncated contact.
  void force_close_all() {
    std::vector<int> fds;
    fds.reserve(sessions.size());
    for (const auto& [fd, served] : sessions) fds.push_back(fd);
    for (const int fd : fds) {
      const auto it = sessions.find(fd);
      if (it == sessions.end()) continue;
      it->second->fail_transport("server draining: session aborted");
    }
  }
};

bool SyncServer::Served::on_events(std::uint32_t events) {
  if ((events & EPOLLOUT) != 0) {
    if (!flush()) return false;
  }
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) {
    return on_readable();
  }
  return true;
}

bool SyncServer::Served::on_readable() {
  bool eof = false;
  for (;;) {
    std::uint8_t chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      bytes_moved += static_cast<std::size_t>(n);
      note_progress();
      if (!check_link_fault()) return false;
      // Bytes past the machine's last frame are junk from a peer that
      // kept talking after the session ended; ignore them, as the
      // blocking loop does by closing without reading.
      if (!machine.finished())
        decoder.feed(chunk, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(chunk)) break;
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    return fail_transport(std::string("tcp: read failed: ") +
                          std::strerror(errno));
  }
  if (!process_frames()) return false;
  if (eof && !machine.finished())
    return fail_transport("tcp: connection closed by peer mid-read");
  return true;
}

bool SyncServer::Served::process_frames() {
  try {
    while (!machine.finished()) {
      std::optional<Frame> frame = decoder.next();
      if (!frame.has_value()) break;
      // The replica (and policy) are shared across workers; every
      // machine step runs under the server-wide state mutex.
      std::lock_guard<std::mutex> lock(server.state_mutex_);
      machine.on_frame(*frame, sink);
    }
  } catch (const StorageError& fault) {
    // OUR disk failed, not the peer: StorageError derives from
    // ContractViolation (fail-closed), so it must be caught first or
    // the peer would be struck for a fault entirely on this side. The
    // durability layer has already degraded to read-only; this session
    // ends as a local failure and later peers are refused politely.
    return fail_transport(std::string("local storage fault: ") +
                          fault.what());
  } catch (const ContractViolation& violation) {
    return fail_violation(violation);
  }
  return flush();
}

bool SyncServer::Served::flush() {
  while (out_offset < outbuf.size()) {
    const ssize_t n = ::send(fd, outbuf.data() + out_offset,
                             outbuf.size() - out_offset, MSG_NOSIGNAL);
    if (n >= 0) {
      out_offset += static_cast<std::size_t>(n);
      bytes_moved += static_cast<std::size_t>(n);
      note_progress();
      if (!check_link_fault()) return false;
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      arm_writable(true);
      return true;
    }
    return fail_transport(std::string("tcp: write failed: ") +
                          std::strerror(errno));
  }
  outbuf.clear();
  out_offset = 0;
  arm_writable(false);
  return complete_if_done();
}

bool SyncServer::Served::complete_if_done() {
  if (!machine.finished()) return true;
  if (out_offset < outbuf.size()) return true;  // replies still owed
  finish();
  return false;
}

bool SyncServer::Served::on_timer() {
  timer = 0;
  const auto now = EventLoop::Clock::now();
  const TcpOptions& tcp = server.options_.tcp;
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  const auto elapsed =
      duration_cast<milliseconds>(now - started).count();
  if (tcp.session_deadline_ms > 0 &&
      elapsed >= tcp.session_deadline_ms)
    return fail_transport("tcp: read aborted: session deadline exceeded");
  const auto idle =
      duration_cast<milliseconds>(now - last_progress).count();
  if (tcp.io_timeout_ms > 0 && idle >= tcp.io_timeout_ms)
    return fail_transport("tcp: read timed out");
  if (tcp.min_bytes_per_second > 0 &&
      elapsed > tcp.min_progress_grace_ms) {
    const auto floor = tcp.min_bytes_per_second *
                       static_cast<std::size_t>(elapsed) / 1000;
    if (bytes_moved < floor)
      return fail_transport(
          "tcp: read aborted: peer below minimum progress (" +
          std::to_string(bytes_moved) + " bytes in " +
          std::to_string(elapsed) + "ms)");
  }
  arm_timer();
  return true;
}

void SyncServer::Served::arm_timer() {
  const auto now = EventLoop::Clock::now();
  const TcpOptions& tcp = server.options_.tcp;
  auto next = now + std::chrono::hours(24);  // effectively "no timer"
  if (tcp.io_timeout_ms > 0)
    next = std::min(next, last_progress +
                              std::chrono::milliseconds(tcp.io_timeout_ms));
  if (tcp.session_deadline_ms > 0)
    next = std::min(next, started + std::chrono::milliseconds(
                                        tcp.session_deadline_ms));
  if (tcp.min_bytes_per_second > 0)
    next = std::min(next, now + kProgressCheckInterval);
  timer = worker.loop.schedule(next, [this] { on_timer(); });
}

void SyncServer::Served::arm_writable(bool want) {
  if (want == writable_armed) return;
  writable_armed = want;
  worker.loop.modify(fd, EPOLLIN | (want ? EPOLLOUT : 0U));
}

bool SyncServer::Served::check_link_fault() {
  if (!fault.armed || bytes_moved < fault.at_bytes) return true;
  fault.armed = false;
  server.link_faults_injected_.fetch_add(1);
  if (fault.kind == LinkFaultKind::Reset) {
    // A genuine RST: discard unsent bytes so the peer sees the reset,
    // not a graceful close of a half-written frame.
    struct linger hard = {1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  }
  return fail_transport("link fault: " +
                        link_fault_kind_name(fault.kind) + " after " +
                        std::to_string(bytes_moved) + " bytes (server)");
}

bool SyncServer::Served::fail_transport(const std::string& what) {
  // A no-op if the machine already finished cleanly (e.g. the flush of
  // its last reply failed after take-off): the sealed outcome stands.
  machine.on_transport_error(what);
  finish();
  return false;
}

bool SyncServer::Served::fail_violation(
    const ContractViolation& violation) {
  const bool limit_breach =
      dynamic_cast<const ResourceLimitError*>(&violation) != nullptr;
  std::size_t strikes = 0;
  std::uint64_t window_ms = 0;
  {
    std::lock_guard<std::mutex> lock(server.quarantine_mutex_);
    window_ms = server.quarantine_.punish(key, server.now_ms());
    strikes = server.quarantine_.strikes(key);
  }
  if (server.callbacks_.on_violation) {
    std::lock_guard<std::mutex> lock(server.state_mutex_);
    server.callbacks_.on_violation(number, peer, limit_breach,
                                   violation.what(), strikes, window_ms);
  }
  SyncServer& srv = server;
  worker.destroy(fd);  // destroys *this
  srv.session_complete();
  return false;
}

void SyncServer::Served::finish() {
  ServerSessionOutcome outcome = machine.take_outcome();
  const bool clean = !outcome.transport_failed;
  if (server.callbacks_.on_session) {
    std::lock_guard<std::mutex> lock(server.state_mutex_);
    server.callbacks_.on_session(number, peer, outcome);
  }
  if (clean) {
    std::lock_guard<std::mutex> lock(server.quarantine_mutex_);
    server.quarantine_.reward(key, server.now_ms());
  }
  SyncServer& srv = server;
  worker.destroy(fd);  // destroys *this
  srv.session_complete();
}

SyncServer::SyncServer(repl::Replica& replica,
                       repl::ForwardingPolicy* policy,
                       SyncServerOptions options,
                       SyncServerCallbacks callbacks)
    : replica_(&replica),
      policy_(policy),
      options_(std::move(options)),
      callbacks_(std::move(callbacks)),
      listener_(options_.port, options_.tcp),
      started_(std::chrono::steady_clock::now()),
      quarantine_(options_.quarantine),
      link_fault_injector_([&] {
        // The raw-fd server can cut and reset a stream; stall and
        // truncate are client-wrapper semantics.
        LinkFaultPlan plan = options_.link_faults;
        plan.stall = false;
        plan.truncate = false;
        return plan;
      }()) {
  PFRDTN_REQUIRE(options_.workers >= 1);
  workers_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i)
    workers_.push_back(std::make_unique<Worker>(*this));
}

SyncServer::~SyncServer() = default;

std::uint64_t SyncServer::now_ms() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - started_)
          .count());
}

bool SyncServer::run() {
  listener_.set_nonblocking(true);
  acceptor_.watch(listener_.fd(), EPOLLIN,
                  [this](std::uint32_t) { on_acceptable(); });
  if (options_.shutdown_fd >= 0) {
    acceptor_.watch(options_.shutdown_fd, EPOLLIN, [this](std::uint32_t) {
      std::uint8_t byte = 0;
      [[maybe_unused]] const ssize_t n =
          ::read(options_.shutdown_fd, &byte, 1);
      begin_drain();
    });
  }
  for (auto& worker : workers_)
    worker->thread = std::thread([&worker] { worker->loop.run(); });
  acceptor_.run();
  for (auto& worker : workers_) {
    worker->loop.stop();
    worker->thread.join();
  }
  return !listener_failed_;
}

void SyncServer::shutdown() {
  acceptor_.post([this] { begin_drain(); });
}

void SyncServer::on_acceptable() {
  for (;;) {
    if (!accepting_) return;
    int fd = -1;
    try {
      fd = listener_.accept_raw();
    } catch (const TransportError& failure) {
      ++accept_failures_;
      const bool giving_up =
          accept_failures_ >= options_.accept_failure_budget;
      if (callbacks_.on_accept_error)
        callbacks_.on_accept_error(failure.what(), accept_failures_,
                                   giving_up);
      if (giving_up) {
        // The listener is beyond saving; fail any in-flight sessions
        // and return from run() with the failure flag.
        listener_failed_ = true;
        stop_accepting();
        draining_ = true;
        for (auto& worker : workers_) {
          Worker* raw = worker.get();
          raw->loop.post([raw] { raw->force_close_all(); });
        }
        maybe_finish();
      }
      return;
    }
    if (fd < 0) return;  // accept queue drained
    const std::string peer = peer_description_of(fd);
    const std::string key = quarantine_key(peer);
    AdmitDecision admitted;
    {
      std::lock_guard<std::mutex> lock(quarantine_mutex_);
      admitted = quarantine_.admit(key, now_ms());
    }
    if (admitted.rejected) {
      // Rejected connections do not count toward max_sessions, as in
      // the blocking serve loop.
      if (callbacks_.on_reject) callbacks_.on_reject(peer, admitted);
      ::close(fd);
      continue;
    }
    if (options_.max_concurrent_sessions != 0 &&
        active_ >= options_.max_concurrent_sessions) {
      // Over the cap: shed with a transient Busy frame instead of
      // adopting a session that would starve into a deadline cut.
      // Sheds count toward neither max_sessions nor quarantine.
      shed(fd, peer);
      continue;
    }
    const std::size_t number = ++sessions_started_;
    ++active_;
    set_nonblocking(fd, true);
    set_tcp_nodelay(fd);
    // Schedules come off the acceptor's seeded stream so the draw
    // order is deterministic regardless of worker interleaving.
    const LinkFaultSchedule fault = link_fault_injector_.draw();
    Worker* worker =
        workers_[number % workers_.size()].get();
    worker->loop.post([worker, fd, peer, key, number, fault] {
      worker->adopt(fd, peer, key, number, fault);
    });
    if (options_.max_sessions != 0 &&
        sessions_started_ >= options_.max_sessions) {
      stop_accepting();
      maybe_finish();
      return;
    }
  }
}

void SyncServer::shed(int fd, const std::string& peer) {
  sessions_shed_.fetch_add(1);
  // One tiny frame on a fresh socket: the send buffer is empty, so a
  // single non-blocking send takes it whole in practice. If it
  // doesn't, the client just sees a cut and retries anyway.
  const std::vector<std::uint8_t> payload = repl::encode_error_frame(
      repl::kSyncErrorBusy, "server busy: at session cap, retry");
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(repl::SyncFrame::Error),
                      payload.size(), header);
  std::vector<std::uint8_t> wire(header, header + kFrameHeaderSize);
  wire.insert(wire.end(), payload.begin(), payload.end());
  set_nonblocking(fd, true);
  [[maybe_unused]] const ssize_t n =
      ::send(fd, wire.data(), wire.size(), MSG_NOSIGNAL);
  // Half-close, then linger (bounded) until the peer closes its end.
  // Closing outright races the client's in-flight Hello: unread bytes
  // at close turn the teardown into an RST, which can destroy the
  // queued Busy frame in the peer's receive buffer before it is read —
  // the client would see a cut instead of the structured refusal. The
  // honest case costs one local RTT; a peer that never closes costs at
  // most the bounded wait.
  ::shutdown(fd, SHUT_WR);
  const auto linger_deadline =
      EventLoop::Clock::now() + std::chrono::milliseconds(250);
  for (;;) {
    std::uint8_t drain[4096];
    const ssize_t got = ::recv(fd, drain, sizeof(drain), 0);
    if (got == 0) break;                      // peer closed: done
    if (got < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
        errno != EINTR)
      break;
    const auto now = EventLoop::Clock::now();
    if (now >= linger_deadline) break;
    struct pollfd waiter = {fd, POLLIN, 0};
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        linger_deadline - now);
    ::poll(&waiter, 1, static_cast<int>(left.count()) + 1);
  }
  ::close(fd);
  if (callbacks_.on_shed) callbacks_.on_shed(peer, active_);
}

void SyncServer::stop_accepting() {
  if (!accepting_) return;
  accepting_ = false;
  acceptor_.forget(listener_.fd());
}

void SyncServer::begin_drain() {
  if (draining_) return;
  draining_ = true;
  stop_accepting();
  if (callbacks_.on_drain) callbacks_.on_drain(active_);
  if (active_ == 0) {
    acceptor_.stop();
    return;
  }
  acceptor_.schedule(
      EventLoop::Clock::now() +
          std::chrono::milliseconds(options_.drain_deadline_ms),
      [this] {
        for (auto& worker : workers_) {
          Worker* raw = worker.get();
          raw->loop.post([raw] { raw->force_close_all(); });
        }
      });
}

void SyncServer::maybe_finish() {
  if (active_ == 0 && !accepting_) acceptor_.stop();
}

void SyncServer::session_complete() {
  sessions_completed_.fetch_add(1);
  acceptor_.post([this] {
    // A session ran to its end, so the machine room is healthy; the
    // accept-failure budget is for *consecutive* failures.
    accept_failures_ = 0;
    PFRDTN_REQUIRE(active_ > 0);
    --active_;
    maybe_finish();
  });
}

}  // namespace pfrdtn::net
