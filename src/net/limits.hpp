#pragma once

/// \file limits.hpp
/// Hard resource budgets for a sync session with an untrusted peer.
///
/// A frame header is eight bytes a stranger controls entirely; before
/// this layer existed its length field was trusted up to 64 MiB and the
/// payload buffer allocated before a single payload byte was validated.
/// ResourceLimits turns every quantity a peer can inflate — payload
/// bytes per frame type, items per batch, knowledge entries, policy
/// blob bytes, decoded elements, total session bytes — into an explicit
/// budget checked *before* the corresponding allocation. SessionBudget
/// carries the running per-session totals; one instance spans a whole
/// serve/client session so the byte ceiling accumulates across frames.
///
/// Breaches throw ResourceLimitError, a ContractViolation subclass:
/// like any protocol violation it means the peer is broken or hostile
/// (not that the link failed), so it propagates to the session owner,
/// which can quarantine the peer — but the two are distinguishable in
/// logs. See docs/hardening.md for the limits table and threat model.

#include <cstdint>
#include <string>

#include "repl/sync.hpp"
#include "util/byte_buffer.hpp"
#include "util/require.hpp"

namespace pfrdtn::net {

/// Thrown when a peer exceeds a configured resource budget. A subclass
/// of ContractViolation so existing containment (serve's per-session
/// catch, the check harness) treats it as peer misbehaviour, while the
/// quarantine log can still name the limit that was breached.
class ResourceLimitError : public ContractViolation {
 public:
  explicit ResourceLimitError(const std::string& what)
      : ContractViolation("resource limit exceeded: " + what) {}
};

/// Per-session budgets for untrusted input. The defaults are generous —
/// an order of magnitude above what any legitimate session in this
/// repository produces — so enabling them everywhere costs nothing;
/// `pfrdtn serve` and the tests tighten them per deployment.
struct ResourceLimits {
  // Per-frame payload caps, by frame type. A header whose length field
  // exceeds the cap for its type is rejected before the payload buffer
  // is allocated (and an unknown type byte is rejected outright).
  std::uint32_t max_hello_bytes = 64;
  std::uint32_t max_request_bytes = 1u << 20;
  std::uint32_t max_batch_begin_bytes = 64;
  std::uint32_t max_item_bytes = 4u << 20;
  std::uint32_t max_batch_end_bytes = 1u << 20;
  /// SummaryRequest: filter + digest + Bloom filter + routing blob; the
  /// Bloom filter is tiny by construction (SummaryParams::max_bloom_bytes)
  /// but the routing blob shares the request budget, so mirror it.
  std::uint32_t max_summary_bytes = 1u << 20;
  /// SummaryMatch / SummaryMiss carry only the source id.
  std::uint32_t max_summary_reply_bytes = 64;
  /// Error: a code byte plus a short human-readable refusal message.
  std::uint32_t max_error_bytes = 512;
  /// BatchAck carries only one uvarint (the applied-copy count).
  std::uint32_t max_batch_ack_bytes = 64;

  /// Cap on BatchBegin's announced item count, checked before the item
  /// loop starts.
  std::uint64_t max_batch_items = 65536;
  /// Cap on the total weight (version entries) of a peer's knowledge,
  /// checked right after decode, before merging or storing any of it.
  std::size_t max_knowledge_entries = 65536;
  /// Cap on the opaque routing-state blob a Request may carry into the
  /// forwarding policy.
  std::size_t max_policy_blob_bytes = 64u << 10;
  /// ByteReader element budget armed per frame: bounds decode *work*
  /// (map entries, set members, filter nodes), which compact varint
  /// encodings can amplify far beyond the payload byte count.
  std::size_t max_decode_elements = 1u << 20;
  /// Total wire bytes (both directions) one session may move.
  std::uint64_t session_byte_ceiling = 64ull << 20;

  /// Payload cap for a raw frame-type byte; throws ContractViolation
  /// for a type that is not part of the sync protocol.
  [[nodiscard]] std::uint32_t frame_payload_cap(std::uint8_t type) const;

  /// All budgets effectively off (testing / bug injection only).
  [[nodiscard]] static ResourceLimits unlimited();
};

/// Printable name of a sync frame-type byte ("Hello", "Request", ...).
[[nodiscard]] const char* frame_type_name(std::uint8_t type);

/// The running totals of one session against its ResourceLimits.
/// Create one per session (accept or connect) and pass it to every
/// framed read/write so the byte ceiling spans the whole exchange.
class SessionBudget {
 public:
  SessionBudget() = default;
  explicit SessionBudget(const ResourceLimits& limits) : limits_(limits) {}

  [[nodiscard]] const ResourceLimits& limits() const { return limits_; }

  /// Admission check for a decoded frame header, called BEFORE the
  /// payload buffer is allocated: rejects unknown frame types, a
  /// length over the per-type cap, and a frame that would push the
  /// session past its byte ceiling.
  void admit_frame(std::uint8_t type, std::uint32_t payload_length) const;

  /// Account `wire_bytes` moved (either direction) against the session
  /// ceiling; throws ResourceLimitError once the ceiling is crossed.
  void charge(std::size_t wire_bytes);

  [[nodiscard]] std::uint64_t bytes_used() const { return bytes_; }

 private:
  ResourceLimits limits_;
  std::uint64_t bytes_ = 0;
};

}  // namespace pfrdtn::net
