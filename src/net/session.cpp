#include "net/session.hpp"

namespace pfrdtn::net {

namespace {

std::vector<std::uint8_t> serialize_request(
    const repl::SyncRequest& request) {
  ByteWriter w;
  request.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_item(const repl::Item& item) {
  ByteWriter w;
  item.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_knowledge(
    const repl::Knowledge& knowledge) {
  ByteWriter w;
  knowledge.serialize(w);
  return w.take();
}

/// Semantic cap on a decoded peer knowledge, applied right after the
/// codec returns and before any of it is merged or stored.
void check_knowledge_weight(const repl::Knowledge& knowledge,
                            const ResourceLimits& limits) {
  const std::size_t weight = knowledge.weight();
  if (weight > limits.max_knowledge_entries) {
    throw ResourceLimitError(
        "peer knowledge weight " + std::to_string(weight) +
        " exceeds the " + std::to_string(limits.max_knowledge_entries) +
        "-entry cap");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloInfo& hello) {
  ByteWriter w;
  w.uvarint(hello.replica.value());
  w.u8(static_cast<std::uint8_t>(hello.mode));
  // Zero features encode as nothing: byte-identical to the legacy
  // hello, which legacy decoders require to end here.
  if (hello.features != 0) w.uvarint(hello.features);
  return w.take();
}

HelloInfo decode_hello(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HelloInfo hello;
  hello.replica = ReplicaId(r.uvarint());
  const std::uint8_t mode = r.u8();
  PFRDTN_REQUIRE(mode >= 1 && mode <= 3);
  hello.mode = static_cast<SyncMode>(mode);
  if (!r.done()) hello.features = r.uvarint();
  PFRDTN_REQUIRE(r.done());
  return hello;
}

repl::SummaryMode resolve_summary_mode(repl::SummaryMode requested,
                                       std::uint64_t peer_features) {
  switch (requested) {
    case repl::SummaryMode::Off:
      return repl::SummaryMode::Off;
    case repl::SummaryMode::On:
      return repl::SummaryMode::On;
    case repl::SummaryMode::Auto:
      return (peer_features & kFeatureSummaryExchange) != 0
                 ? repl::SummaryMode::On
                 : repl::SummaryMode::Off;
  }
  throw ContractViolation("invalid summary mode");
}

namespace {

/// Cap on the opaque policy blob, shared by both request forms.
void check_routing_blob(const std::vector<std::uint8_t>& blob,
                        const ResourceLimits& limits) {
  if (blob.size() > limits.max_policy_blob_bytes) {
    throw ResourceLimitError(
        "request policy blob of " + std::to_string(blob.size()) +
        " bytes exceeds the " +
        std::to_string(limits.max_policy_blob_bytes) + "-byte cap");
  }
}

}  // namespace

void SourceSession::fail(const TransportError& failure) {
  outcome_.transport_failed = true;
  outcome_.stats.complete = false;
  outcome_.error = failure.what();
  state_ = State::Failed;
}

void SourceSession::stream_batch(Connection& connection,
                                 const repl::SyncBatch& batch) {
  SessionBudget& b = budget();
  outcome_.stats.complete = batch.complete;
  outcome_.stats.batch_bytes +=
      write_frame(connection, repl::SyncFrame::BatchBegin,
                  repl::encode_batch_begin(batch), b);
  for (const repl::Item& item : batch.items) {
    outcome_.stats.batch_bytes +=
        write_frame(connection, repl::SyncFrame::BatchItem,
                    serialize_item(item), b);
    ++outcome_.stats.items_sent;
  }
  outcome_.stats.batch_bytes +=
      write_frame(connection, repl::SyncFrame::BatchEnd,
                  serialize_knowledge(batch.source_knowledge), b);
}

void SourceSession::serve_opener(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::Idle);
  SessionBudget& b = budget();
  try {
    // With summaries off this side speaks the legacy protocol exactly:
    // only a Request opener is admitted.
    const bool summaries =
        options_.summary_mode != repl::SummaryMode::Off;
    const Frame opener =
        summaries ? read_frame(connection, b)
                  : expect_frame(connection, repl::SyncFrame::Request, b);
    outcome_.stats.request_bytes += opener.wire_bytes;

    if (opener.type == repl::SyncFrame::Request) {
      ByteReader reader(opener.payload);
      reader.set_element_budget(b.limits().max_decode_elements);
      const repl::SyncRequest request =
          repl::SyncRequest::deserialize(reader);
      PFRDTN_REQUIRE(reader.done());
      check_knowledge_weight(request.knowledge, b.limits());
      check_routing_blob(request.routing_state, b.limits());
      stream_batch(connection, repl::build_batch(*source_, policy_,
                                                 request, now_, options_));
      state_ = State::Done;
      return;
    }

    PFRDTN_REQUIRE(opener.type == repl::SyncFrame::SummaryRequest);
    ByteReader reader(opener.payload);
    reader.set_element_budget(b.limits().max_decode_elements);
    const repl::SummaryRequestInfo request =
        repl::SummaryRequestInfo::deserialize(reader);
    PFRDTN_REQUIRE(reader.done());
    check_routing_blob(request.routing_state, b.limits());
    const repl::SummaryAnswer answer =
        repl::answer_summary(*source_, policy_, request, now_, options_);
    switch (answer.kind) {
      case repl::SummaryAnswer::Kind::Match:
        outcome_.stats.batch_bytes +=
            write_frame(connection, repl::SyncFrame::SummaryMatch,
                        repl::encode_summary_reply(source_->id()), b);
        outcome_.stats.complete = true;
        state_ = State::Done;
        return;
      case repl::SummaryAnswer::Kind::Batch:
        stream_batch(connection, answer.batch);
        state_ = State::Done;
        return;
      case repl::SummaryAnswer::Kind::Miss:
        outcome_.stats.batch_bytes +=
            write_frame(connection, repl::SyncFrame::SummaryMiss,
                        repl::encode_summary_reply(source_->id()), b);
        state_ = State::AwaitExact;
        return;
    }
    throw ContractViolation("invalid summary answer");
  } catch (const TransportError& failure) {
    fail(failure);
  }
}

void SourceSession::serve_exact(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::AwaitExact);
  SessionBudget& b = budget();
  try {
    const Frame request_frame =
        expect_frame(connection, repl::SyncFrame::Request, b);
    outcome_.stats.request_bytes += request_frame.wire_bytes;
    ByteReader reader(request_frame.payload);
    reader.set_element_budget(b.limits().max_decode_elements);
    const repl::SyncRequest request =
        repl::SyncRequest::deserialize(reader);
    PFRDTN_REQUIRE(reader.done());
    check_knowledge_weight(request.knowledge, b.limits());
    check_routing_blob(request.routing_state, b.limits());
    // The summary already carried this sync's routing state through
    // answer_summary; processing it again would double-charge stateful
    // policies.
    stream_batch(connection,
                 repl::build_batch(*source_, policy_, request, now_,
                                   options_,
                                   /*process_routing_state=*/false));
    state_ = State::Done;
  } catch (const TransportError& failure) {
    fail(failure);
  }
}

SourceStats run_source(Connection& connection, repl::Replica& source,
                       repl::ForwardingPolicy* source_policy, SimTime now,
                       const repl::SyncOptions& options,
                       SessionBudget* budget) {
  SourceSession session(source, source_policy, now, options, budget);
  session.serve_opener(connection);
  // On a live transport the peer's fallback Request is already on its
  // way when the miss reply lands, so blocking here is the whole drive.
  if (session.state() == SourceSession::State::AwaitExact)
    session.serve_exact(connection);
  return session.take_stats();
}

void TargetSession::send_request(Connection& connection,
                                 ReplicaId source_id, SimTime now) {
  PFRDTN_REQUIRE(state_ == State::Idle);
  try {
    if (options_.summary_mode != repl::SummaryMode::Off) {
      const repl::SummaryRequestInfo request = repl::make_summary_request(
          *target_, policy_, source_id, now, options_.summary);
      routing_state_ = request.routing_state;
      ByteWriter w;
      request.serialize(w);
      request_bytes_ = write_frame(
          connection, repl::SyncFrame::SummaryRequest, w.take(), budget());
      state_ = State::SummarySent;
    } else {
      const repl::SyncRequest request =
          repl::make_request(*target_, policy_, source_id, now);
      request_bytes_ = write_frame(connection, repl::SyncFrame::Request,
                                   serialize_request(request), budget());
      state_ = State::RequestSent;
    }
  } catch (const TransportError& failure) {
    state_ = State::Failed;
    error_ = failure.what();
  }
}

void TargetSession::send_exact_fallback(Connection& connection) {
  // The fallback reuses the routing state the summary carried, so the
  // source's policy hooks see exactly one request for this sync.
  const repl::SyncRequest request{target_->id(), target_->filter(),
                                  target_->knowledge(), routing_state_};
  request_bytes_ += write_frame(connection, repl::SyncFrame::Request,
                                serialize_request(request), budget());
  state_ = State::RequestSent;
}

void TargetSession::send_fallback(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::SummarySent);
  try {
    const Frame miss =
        expect_frame(connection, repl::SyncFrame::SummaryMiss, budget());
    pre_batch_bytes_ += miss.wire_bytes;
    repl::decode_summary_reply(miss.payload);
    send_exact_fallback(connection);
  } catch (const TransportError& failure) {
    state_ = State::Failed;
    error_ = failure.what();
  }
}

NetSyncResult TargetSession::receive(Connection& connection) {
  NetSyncResult outcome;
  repl::BatchApplier applier(*target_, options_);
  if (state_ == State::Failed) {
    outcome.result = applier.abandon();
    outcome.result.stats.request_bytes = request_bytes_;
    outcome.transport_failed = true;
    outcome.error = error_;
    return outcome;
  }
  PFRDTN_REQUIRE(state_ == State::RequestSent ||
                 state_ == State::SummarySent);
  const ResourceLimits& limits = budget().limits();
  std::size_t batch_bytes = pre_batch_bytes_;
  try {
    Frame begin_frame;
    if (state_ == State::SummarySent) {
      // Consume the source's summary reply: a Match ends the sync, a
      // Miss makes us send the exact fallback Request, and a direct
      // BatchBegin (Bloom proved us cold) just starts the batch.
      Frame first = read_frame(connection, budget());
      batch_bytes += first.wire_bytes;
      if (first.type == repl::SyncFrame::SummaryMatch) {
        repl::decode_summary_reply(first.payload);
        outcome.result = repl::apply_summary_match(*target_, options_);
        outcome.result.stats.request_bytes = request_bytes_;
        outcome.result.stats.batch_bytes = batch_bytes;
        state_ = State::Done;
        return outcome;
      }
      if (first.type == repl::SyncFrame::SummaryMiss) {
        repl::decode_summary_reply(first.payload);
        send_exact_fallback(connection);
        begin_frame = expect_frame(connection,
                                   repl::SyncFrame::BatchBegin, budget());
        batch_bytes += begin_frame.wire_bytes;
      } else {
        PFRDTN_REQUIRE(first.type == repl::SyncFrame::BatchBegin);
        begin_frame = std::move(first);
      }
    } else {
      begin_frame =
          expect_frame(connection, repl::SyncFrame::BatchBegin, budget());
      batch_bytes += begin_frame.wire_bytes;
    }
    const repl::BatchBeginInfo begin =
        repl::decode_batch_begin(begin_frame.payload);
    if (begin.count > limits.max_batch_items) {
      throw ResourceLimitError(
          "batch announces " + std::to_string(begin.count) +
          " items, above the " +
          std::to_string(limits.max_batch_items) + "-item cap");
    }
    std::uint64_t received = 0;
    for (;;) {
      const Frame frame = read_frame(connection, budget());
      batch_bytes += frame.wire_bytes;
      if (frame.type == repl::SyncFrame::BatchItem) {
        ByteReader reader(frame.payload);
        reader.set_element_budget(limits.max_decode_elements);
        const repl::Item item = repl::Item::deserialize(reader);
        PFRDTN_REQUIRE(reader.done());
        ++received;
        PFRDTN_REQUIRE(received <= begin.count);
        applier.apply(item);
        continue;
      }
      PFRDTN_REQUIRE(frame.type == repl::SyncFrame::BatchEnd);
      PFRDTN_REQUIRE(received == begin.count);
      ByteReader reader(frame.payload);
      reader.set_element_budget(limits.max_decode_elements);
      const repl::Knowledge source_knowledge =
          repl::Knowledge::deserialize(reader);
      PFRDTN_REQUIRE(reader.done());
      check_knowledge_weight(source_knowledge, limits);
      outcome.result = applier.finish(begin.complete, source_knowledge);
      state_ = State::Done;
      break;
    }
  } catch (const TransportError& failure) {
    outcome.result = applier.abandon();
    outcome.transport_failed = true;
    outcome.error = failure.what();
    state_ = State::Failed;
  }
  outcome.result.stats.request_bytes = request_bytes_;
  outcome.result.stats.batch_bytes = batch_bytes;
  return outcome;
}

namespace {

[[nodiscard]] bool opener_sent(const TargetSession& session) {
  return session.state() == TargetSession::State::RequestSent ||
         session.state() == TargetSession::State::SummarySent;
}

/// Interleave the source role with an opener-sent target on a
/// half-duplex sequential link: serve the opener, and on a summary
/// miss let the target read the miss and send the exact fallback
/// before the source serves it.
SourceStats drive_loopback_source(repl::Replica& source,
                                  repl::ForwardingPolicy* source_policy,
                                  TargetSession& target_session,
                                  Connection& source_end,
                                  Connection& target_end, SimTime now,
                                  const repl::SyncOptions& options) {
  SourceSession session(source, source_policy, now, options);
  session.serve_opener(source_end);
  if (session.state() == SourceSession::State::AwaitExact) {
    target_session.send_fallback(target_end);
    // Even if the fallback write died, let the source observe the dead
    // link itself so its stats report the failure the same way a live
    // transport would.
    session.serve_exact(source_end);
  }
  return session.take_stats();
}

}  // namespace

LoopbackSyncOutcome sync_over_loopback(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options, const LoopbackFaults& faults) {
  LoopbackSyncOutcome outcome;
  LoopbackLink link(faults);
  // Half-duplex sequential drive: the target writes its opener, the
  // source consumes it and streams the whole answer (with one extra
  // interleaving on a summary miss), then the target reads whatever
  // made it through the contact window.
  TargetSession session(target, target_policy, options);
  session.send_request(link.a(), source.id(), now);
  if (opener_sent(session)) {
    outcome.server =
        drive_loopback_source(source, source_policy, session, link.b(),
                              link.a(), now, options);
  } else {
    outcome.server.transport_failed = true;
    outcome.server.stats.complete = false;
    outcome.server.error = "request never arrived";
  }
  outcome.client = session.receive(link.a());
  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

LoopbackEncounterOutcome encounter_over_loopback(
    repl::Replica& a, repl::Replica& b,
    repl::ForwardingPolicy* a_policy, repl::ForwardingPolicy* b_policy,
    SimTime now, const repl::SyncOptions& options,
    const LoopbackFaults& faults) {
  LoopbackEncounterOutcome outcome;
  LoopbackLink link(faults);

  // Sync 1: a pulls from b.
  TargetSession pull(a, a_policy, options);
  pull.send_request(link.a(), b.id(), now);
  if (opener_sent(pull)) {
    outcome.b_served = drive_loopback_source(b, b_policy, pull, link.b(),
                                             link.a(), now, options);
  } else {
    outcome.b_served.transport_failed = true;
    outcome.b_served.stats.complete = false;
    outcome.b_served.error = "request never arrived";
  }
  outcome.a_pulled = pull.receive(link.a());

  // Sync 2: roles swap, b pulls from a, on the same contact.
  TargetSession push(b, b_policy, options);
  push.send_request(link.b(), a.id(), now);
  if (opener_sent(push)) {
    outcome.a_pushed = drive_loopback_source(a, a_policy, push, link.a(),
                                             link.b(), now, options);
  } else {
    outcome.a_pushed.transport_failed = true;
    outcome.a_pushed.stats.complete = false;
    outcome.a_pushed.error = "request never arrived";
  }
  outcome.b_applied = push.receive(link.b());

  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

ClientSessionOutcome run_client_session(Connection& connection,
                                        repl::Replica& self,
                                        repl::ForwardingPolicy* policy,
                                        SyncMode mode, SimTime now,
                                        const repl::SyncOptions& options,
                                        const ResourceLimits& limits) {
  ClientSessionOutcome outcome;
  SessionBudget budget(limits);
  repl::SyncOptions effective = options;
  try {
    const std::uint64_t features =
        options.summary_mode != repl::SummaryMode::Off
            ? kFeatureSummaryExchange
            : 0;
    outcome.overhead_bytes +=
        write_frame(connection, repl::SyncFrame::Hello,
                    encode_hello({self.id(), mode, features}), budget);
    const Frame answer =
        expect_frame(connection, repl::SyncFrame::Hello, budget);
    outcome.overhead_bytes += answer.wire_bytes;
    const HelloInfo server_hello = decode_hello(answer.payload);
    outcome.server = server_hello.replica;
    // Auto downgrades to the exact protocol against a server that did
    // not advertise summary support; On forces the fast path.
    effective.summary_mode = resolve_summary_mode(options.summary_mode,
                                                  server_hello.features);
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.error = failure.what();
    return outcome;
  }

  if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
    TargetSession session(self, policy, effective, &budget);
    session.send_request(connection, outcome.server, now);
    outcome.pull = session.receive(connection);
    if (outcome.pull.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.pull.error;
      if (mode == SyncMode::Encounter) return outcome;
    }
  }
  if (mode == SyncMode::Push || mode == SyncMode::Encounter) {
    outcome.push =
        run_source(connection, self, policy, now, effective, &budget);
    if (outcome.push.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.push.error;
    }
  }
  return outcome;
}

ServerSessionOutcome serve_session(Connection& connection,
                                   repl::Replica& self,
                                   repl::ForwardingPolicy* policy,
                                   SimTime now,
                                   const repl::SyncOptions& options,
                                   const ResourceLimits& limits) {
  ServerSessionOutcome outcome;
  SessionBudget budget(limits);
  repl::SyncOptions effective = options;
  try {
    const Frame hello =
        expect_frame(connection, repl::SyncFrame::Hello, budget);
    outcome.hello = decode_hello(hello.payload);
    // Echo our features only to a client that advertised some: a
    // legacy client's decoder rejects any bytes after the mode.
    const std::uint64_t features =
        options.summary_mode != repl::SummaryMode::Off &&
                outcome.hello.features != 0
            ? kFeatureSummaryExchange
            : 0;
    write_frame(
        connection, repl::SyncFrame::Hello,
        encode_hello({self.id(), outcome.hello.mode, features}), budget);
    effective.summary_mode = resolve_summary_mode(options.summary_mode,
                                                  outcome.hello.features);
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.error = failure.what();
    return outcome;
  }

  const SyncMode mode = outcome.hello.mode;
  if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
    outcome.served =
        run_source(connection, self, policy, now, effective, &budget);
    if (outcome.served.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.served.error;
      if (mode == SyncMode::Encounter) return outcome;
    }
  }
  if (mode == SyncMode::Push || mode == SyncMode::Encounter) {
    TargetSession session(self, policy, effective, &budget);
    session.send_request(connection, outcome.hello.replica, now);
    outcome.applied = session.receive(connection);
    if (outcome.applied.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.applied.error;
    }
  }
  return outcome;
}

}  // namespace pfrdtn::net
