#include "net/session.hpp"

namespace pfrdtn::net {

namespace {

std::vector<std::uint8_t> serialize_request(
    const repl::SyncRequest& request) {
  ByteWriter w;
  request.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_item(const repl::Item& item) {
  ByteWriter w;
  item.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_knowledge(
    const repl::Knowledge& knowledge) {
  ByteWriter w;
  knowledge.serialize(w);
  return w.take();
}

/// Semantic cap on a decoded peer knowledge, applied right after the
/// codec returns and before any of it is merged or stored.
void check_knowledge_weight(const repl::Knowledge& knowledge,
                            const ResourceLimits& limits) {
  const std::size_t weight = knowledge.weight();
  if (weight > limits.max_knowledge_entries) {
    throw ResourceLimitError(
        "peer knowledge weight " + std::to_string(weight) +
        " exceeds the " + std::to_string(limits.max_knowledge_entries) +
        "-entry cap");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloInfo& hello) {
  ByteWriter w;
  w.uvarint(hello.replica.value());
  w.u8(static_cast<std::uint8_t>(hello.mode));
  return w.take();
}

HelloInfo decode_hello(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HelloInfo hello;
  hello.replica = ReplicaId(r.uvarint());
  const std::uint8_t mode = r.u8();
  PFRDTN_REQUIRE(mode >= 1 && mode <= 3);
  hello.mode = static_cast<SyncMode>(mode);
  PFRDTN_REQUIRE(r.done());
  return hello;
}

SourceStats run_source(Connection& connection, repl::Replica& source,
                       repl::ForwardingPolicy* source_policy, SimTime now,
                       const repl::SyncOptions& options,
                       SessionBudget* budget) {
  SessionBudget local_budget;
  SessionBudget& b = budget != nullptr ? *budget : local_budget;
  SourceStats outcome;
  try {
    const Frame request_frame =
        expect_frame(connection, repl::SyncFrame::Request, b);
    outcome.stats.request_bytes = request_frame.wire_bytes;
    ByteReader reader(request_frame.payload);
    reader.set_element_budget(b.limits().max_decode_elements);
    const repl::SyncRequest request =
        repl::SyncRequest::deserialize(reader);
    PFRDTN_REQUIRE(reader.done());
    check_knowledge_weight(request.knowledge, b.limits());
    if (request.routing_state.size() > b.limits().max_policy_blob_bytes) {
      throw ResourceLimitError(
          "request policy blob of " +
          std::to_string(request.routing_state.size()) +
          " bytes exceeds the " +
          std::to_string(b.limits().max_policy_blob_bytes) + "-byte cap");
    }

    const repl::SyncBatch batch =
        repl::build_batch(source, source_policy, request, now, options);
    outcome.stats.complete = batch.complete;
    outcome.stats.batch_bytes +=
        write_frame(connection, repl::SyncFrame::BatchBegin,
                    repl::encode_batch_begin(batch), b);
    for (const repl::Item& item : batch.items) {
      outcome.stats.batch_bytes +=
          write_frame(connection, repl::SyncFrame::BatchItem,
                      serialize_item(item), b);
      ++outcome.stats.items_sent;
    }
    outcome.stats.batch_bytes +=
        write_frame(connection, repl::SyncFrame::BatchEnd,
                    serialize_knowledge(batch.source_knowledge), b);
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.stats.complete = false;
    outcome.error = failure.what();
  }
  return outcome;
}

void TargetSession::send_request(Connection& connection,
                                 ReplicaId source_id, SimTime now) {
  PFRDTN_REQUIRE(state_ == State::Idle);
  const repl::SyncRequest request =
      repl::make_request(*target_, policy_, source_id, now);
  try {
    request_bytes_ = write_frame(connection, repl::SyncFrame::Request,
                                 serialize_request(request), budget());
    state_ = State::RequestSent;
  } catch (const TransportError& failure) {
    state_ = State::Failed;
    error_ = failure.what();
  }
}

NetSyncResult TargetSession::receive(Connection& connection) {
  NetSyncResult outcome;
  repl::BatchApplier applier(*target_, options_);
  if (state_ == State::Failed) {
    outcome.result = applier.abandon();
    outcome.result.stats.request_bytes = request_bytes_;
    outcome.transport_failed = true;
    outcome.error = error_;
    return outcome;
  }
  PFRDTN_REQUIRE(state_ == State::RequestSent);
  const ResourceLimits& limits = budget().limits();
  std::size_t batch_bytes = 0;
  try {
    const Frame begin_frame =
        expect_frame(connection, repl::SyncFrame::BatchBegin, budget());
    batch_bytes += begin_frame.wire_bytes;
    const repl::BatchBeginInfo begin =
        repl::decode_batch_begin(begin_frame.payload);
    if (begin.count > limits.max_batch_items) {
      throw ResourceLimitError(
          "batch announces " + std::to_string(begin.count) +
          " items, above the " +
          std::to_string(limits.max_batch_items) + "-item cap");
    }
    std::uint64_t received = 0;
    for (;;) {
      const Frame frame = read_frame(connection, budget());
      batch_bytes += frame.wire_bytes;
      if (frame.type == repl::SyncFrame::BatchItem) {
        ByteReader reader(frame.payload);
        reader.set_element_budget(limits.max_decode_elements);
        const repl::Item item = repl::Item::deserialize(reader);
        PFRDTN_REQUIRE(reader.done());
        ++received;
        PFRDTN_REQUIRE(received <= begin.count);
        applier.apply(item);
        continue;
      }
      PFRDTN_REQUIRE(frame.type == repl::SyncFrame::BatchEnd);
      PFRDTN_REQUIRE(received == begin.count);
      ByteReader reader(frame.payload);
      reader.set_element_budget(limits.max_decode_elements);
      const repl::Knowledge source_knowledge =
          repl::Knowledge::deserialize(reader);
      PFRDTN_REQUIRE(reader.done());
      check_knowledge_weight(source_knowledge, limits);
      outcome.result = applier.finish(begin.complete, source_knowledge);
      state_ = State::Done;
      break;
    }
  } catch (const TransportError& failure) {
    outcome.result = applier.abandon();
    outcome.transport_failed = true;
    outcome.error = failure.what();
    state_ = State::Failed;
  }
  outcome.result.stats.request_bytes = request_bytes_;
  outcome.result.stats.batch_bytes = batch_bytes;
  return outcome;
}

LoopbackSyncOutcome sync_over_loopback(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options, const LoopbackFaults& faults) {
  LoopbackSyncOutcome outcome;
  LoopbackLink link(faults);
  // Half-duplex sequential drive: the target writes its request, the
  // source consumes it and streams the whole batch, then the target
  // reads whatever made it through the contact window.
  TargetSession session(target, target_policy, options);
  session.send_request(link.a(), source.id(), now);
  if (session.state() == TargetSession::State::RequestSent) {
    outcome.server = run_source(link.b(), source, source_policy, now,
                                options);
  } else {
    outcome.server.transport_failed = true;
    outcome.server.stats.complete = false;
    outcome.server.error = "request never arrived";
  }
  outcome.client = session.receive(link.a());
  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

LoopbackEncounterOutcome encounter_over_loopback(
    repl::Replica& a, repl::Replica& b,
    repl::ForwardingPolicy* a_policy, repl::ForwardingPolicy* b_policy,
    SimTime now, const repl::SyncOptions& options,
    const LoopbackFaults& faults) {
  LoopbackEncounterOutcome outcome;
  LoopbackLink link(faults);

  // Sync 1: a pulls from b.
  TargetSession pull(a, a_policy, options);
  pull.send_request(link.a(), b.id(), now);
  if (pull.state() == TargetSession::State::RequestSent) {
    outcome.b_served = run_source(link.b(), b, b_policy, now, options);
  } else {
    outcome.b_served.transport_failed = true;
    outcome.b_served.stats.complete = false;
    outcome.b_served.error = "request never arrived";
  }
  outcome.a_pulled = pull.receive(link.a());

  // Sync 2: roles swap, b pulls from a, on the same contact.
  TargetSession push(b, b_policy, options);
  push.send_request(link.b(), a.id(), now);
  if (push.state() == TargetSession::State::RequestSent) {
    outcome.a_pushed = run_source(link.a(), a, a_policy, now, options);
  } else {
    outcome.a_pushed.transport_failed = true;
    outcome.a_pushed.stats.complete = false;
    outcome.a_pushed.error = "request never arrived";
  }
  outcome.b_applied = push.receive(link.b());

  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

ClientSessionOutcome run_client_session(Connection& connection,
                                        repl::Replica& self,
                                        repl::ForwardingPolicy* policy,
                                        SyncMode mode, SimTime now,
                                        const repl::SyncOptions& options,
                                        const ResourceLimits& limits) {
  ClientSessionOutcome outcome;
  SessionBudget budget(limits);
  try {
    outcome.overhead_bytes +=
        write_frame(connection, repl::SyncFrame::Hello,
                    encode_hello({self.id(), mode}), budget);
    const Frame answer =
        expect_frame(connection, repl::SyncFrame::Hello, budget);
    outcome.overhead_bytes += answer.wire_bytes;
    outcome.server = decode_hello(answer.payload).replica;
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.error = failure.what();
    return outcome;
  }

  if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
    TargetSession session(self, policy, options, &budget);
    session.send_request(connection, outcome.server, now);
    outcome.pull = session.receive(connection);
    if (outcome.pull.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.pull.error;
      if (mode == SyncMode::Encounter) return outcome;
    }
  }
  if (mode == SyncMode::Push || mode == SyncMode::Encounter) {
    outcome.push =
        run_source(connection, self, policy, now, options, &budget);
    if (outcome.push.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.push.error;
    }
  }
  return outcome;
}

ServerSessionOutcome serve_session(Connection& connection,
                                   repl::Replica& self,
                                   repl::ForwardingPolicy* policy,
                                   SimTime now,
                                   const repl::SyncOptions& options,
                                   const ResourceLimits& limits) {
  ServerSessionOutcome outcome;
  SessionBudget budget(limits);
  try {
    const Frame hello =
        expect_frame(connection, repl::SyncFrame::Hello, budget);
    outcome.hello = decode_hello(hello.payload);
    write_frame(connection, repl::SyncFrame::Hello,
                encode_hello({self.id(), outcome.hello.mode}), budget);
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.error = failure.what();
    return outcome;
  }

  const SyncMode mode = outcome.hello.mode;
  if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
    outcome.served =
        run_source(connection, self, policy, now, options, &budget);
    if (outcome.served.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.served.error;
      if (mode == SyncMode::Encounter) return outcome;
    }
  }
  if (mode == SyncMode::Push || mode == SyncMode::Encounter) {
    TargetSession session(self, policy, options, &budget);
    session.send_request(connection, outcome.hello.replica, now);
    outcome.applied = session.receive(connection);
    if (outcome.applied.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.applied.error;
    }
  }
  return outcome;
}

}  // namespace pfrdtn::net
