#include "net/session.hpp"

#include "util/storage_error.hpp"

namespace pfrdtn::net {

namespace {

std::vector<std::uint8_t> serialize_request(
    const repl::SyncRequest& request) {
  ByteWriter w;
  request.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_item(const repl::Item& item) {
  ByteWriter w;
  item.serialize(w);
  return w.take();
}

std::vector<std::uint8_t> serialize_knowledge(
    const repl::Knowledge& knowledge) {
  ByteWriter w;
  knowledge.serialize(w);
  return w.take();
}

/// Semantic cap on a decoded peer knowledge, applied right after the
/// codec returns and before any of it is merged or stored.
void check_knowledge_weight(const repl::Knowledge& knowledge,
                            const ResourceLimits& limits) {
  const std::size_t weight = knowledge.weight();
  if (weight > limits.max_knowledge_entries) {
    throw ResourceLimitError(
        "peer knowledge weight " + std::to_string(weight) +
        " exceeds the " + std::to_string(limits.max_knowledge_entries) +
        "-entry cap");
  }
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloInfo& hello) {
  ByteWriter w;
  w.uvarint(hello.replica.value());
  w.u8(static_cast<std::uint8_t>(hello.mode));
  // Zero features encode as nothing: byte-identical to the legacy
  // hello, which legacy decoders require to end here.
  if (hello.features != 0) w.uvarint(hello.features);
  return w.take();
}

HelloInfo decode_hello(const std::vector<std::uint8_t>& payload) {
  ByteReader r(payload);
  HelloInfo hello;
  hello.replica = ReplicaId(r.uvarint());
  const std::uint8_t mode = r.u8();
  PFRDTN_REQUIRE(mode >= 1 && mode <= 3);
  hello.mode = static_cast<SyncMode>(mode);
  if (!r.done()) hello.features = r.uvarint();
  PFRDTN_REQUIRE(r.done());
  return hello;
}

repl::SummaryMode resolve_summary_mode(repl::SummaryMode requested,
                                       std::uint64_t peer_features) {
  switch (requested) {
    case repl::SummaryMode::Off:
      return repl::SummaryMode::Off;
    case repl::SummaryMode::On:
      return repl::SummaryMode::On;
    case repl::SummaryMode::Auto:
      return (peer_features & kFeatureSummaryExchange) != 0
                 ? repl::SummaryMode::On
                 : repl::SummaryMode::Off;
  }
  throw ContractViolation("invalid summary mode");
}

namespace {

/// Cap on the opaque policy blob, shared by both request forms.
void check_routing_blob(const std::vector<std::uint8_t>& blob,
                        const ResourceLimits& limits) {
  if (blob.size() > limits.max_policy_blob_bytes) {
    throw ResourceLimitError(
        "request policy blob of " + std::to_string(blob.size()) +
        " bytes exceeds the " +
        std::to_string(limits.max_policy_blob_bytes) + "-byte cap");
  }
}

}  // namespace

// ---- SourceSession ---------------------------------------------------

void SourceSession::fail(const TransportError& failure) {
  outcome_.transport_failed = true;
  outcome_.stats.complete = false;
  outcome_.error = failure.what();
  state_ = State::Failed;
}

void SourceSession::stream_batch(FrameSink& sink,
                                 const repl::SyncBatch& batch) {
  outcome_.stats.complete = batch.complete;
  outcome_.stats.batch_bytes += sink.send(
      repl::SyncFrame::BatchBegin, repl::encode_batch_begin(batch));
  for (const repl::Item& item : batch.items) {
    outcome_.stats.batch_bytes +=
        sink.send(repl::SyncFrame::BatchItem, serialize_item(item));
    ++outcome_.stats.items_sent;
  }
  outcome_.stats.batch_bytes += sink.send(
      repl::SyncFrame::BatchEnd,
      serialize_knowledge(batch.source_knowledge));
}

void SourceSession::serve_request_frame(const Frame& frame,
                                        FrameSink& sink,
                                        bool process_routing_state) {
  SessionBudget& b = budget();
  ByteReader reader(frame.payload);
  reader.set_element_budget(b.limits().max_decode_elements);
  const repl::SyncRequest request = repl::SyncRequest::deserialize(reader);
  PFRDTN_REQUIRE(reader.done());
  check_knowledge_weight(request.knowledge, b.limits());
  check_routing_blob(request.routing_state, b.limits());
  stream_batch(sink, repl::build_batch(*source_, policy_, request, now_,
                                       options_, process_routing_state));
}

void SourceSession::on_frame(const Frame& frame, FrameSink& sink) {
  PFRDTN_REQUIRE(wants_frame());
  SessionBudget& b = budget();

  if (state_ == State::AwaitExact) {
    PFRDTN_REQUIRE(frame.type == repl::SyncFrame::Request);
    outcome_.stats.request_bytes += frame.wire_bytes;
    // The summary already carried this sync's routing state through
    // answer_summary; processing it again would double-charge stateful
    // policies.
    serve_request_frame(frame, sink, /*process_routing_state=*/false);
    state_ = State::Done;
    return;
  }

  // Idle: the opener. A peer that cannot run its own pull (degraded
  // read-only after a storage fault) opens with an Error frame instead
  // of a request: a structured, transient refusal this role ends on
  // gracefully — never a protocol violation, never a strike.
  if (frame.type == repl::SyncFrame::Error) {
    const repl::SyncErrorInfo info =
        repl::decode_error_frame(frame.payload);
    outcome_.stats.request_bytes += frame.wire_bytes;
    outcome_.stats.complete = false;
    outcome_.refused = true;
    outcome_.error = "peer refused sync: " + info.message;
    state_ = State::Done;
    return;
  }

  // With summaries off this side speaks the legacy protocol exactly:
  // only a Request opener is admitted (the Error frame above is new
  // but strictly additive — a legacy peer never sends one).
  const bool summaries = options_.summary_mode != repl::SummaryMode::Off;
  if (!summaries) PFRDTN_REQUIRE(frame.type == repl::SyncFrame::Request);
  outcome_.stats.request_bytes += frame.wire_bytes;

  if (frame.type == repl::SyncFrame::Request) {
    serve_request_frame(frame, sink, /*process_routing_state=*/true);
    state_ = State::Done;
    return;
  }

  PFRDTN_REQUIRE(frame.type == repl::SyncFrame::SummaryRequest);
  ByteReader reader(frame.payload);
  reader.set_element_budget(b.limits().max_decode_elements);
  const repl::SummaryRequestInfo request =
      repl::SummaryRequestInfo::deserialize(reader);
  PFRDTN_REQUIRE(reader.done());
  check_routing_blob(request.routing_state, b.limits());
  const repl::SummaryAnswer answer =
      repl::answer_summary(*source_, policy_, request, now_, options_);
  switch (answer.kind) {
    case repl::SummaryAnswer::Kind::Match:
      outcome_.stats.batch_bytes +=
          sink.send(repl::SyncFrame::SummaryMatch,
                    repl::encode_summary_reply(source_->id()));
      outcome_.stats.complete = true;
      state_ = State::Done;
      return;
    case repl::SummaryAnswer::Kind::Batch:
      stream_batch(sink, answer.batch);
      state_ = State::Done;
      return;
    case repl::SummaryAnswer::Kind::Miss:
      outcome_.stats.batch_bytes +=
          sink.send(repl::SyncFrame::SummaryMiss,
                    repl::encode_summary_reply(source_->id()));
      state_ = State::AwaitExact;
      return;
  }
  throw ContractViolation("invalid summary answer");
}

void SourceSession::serve_opener(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::Idle);
  SessionBudget& b = budget();
  ConnectionFrameSink sink(connection, b);
  try {
    // Read any frame and let on_frame() validate it: with summaries
    // off it still admits only Request — or the Error refusal.
    const Frame opener = read_frame(connection, b);
    on_frame(opener, sink);
  } catch (const TransportError& failure) {
    fail(failure);
  }
}

void SourceSession::serve_exact(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::AwaitExact);
  SessionBudget& b = budget();
  ConnectionFrameSink sink(connection, b);
  try {
    const Frame request_frame =
        expect_frame(connection, repl::SyncFrame::Request, b);
    on_frame(request_frame, sink);
  } catch (const TransportError& failure) {
    fail(failure);
  }
}

SourceStats run_source(Connection& connection, repl::Replica& source,
                       repl::ForwardingPolicy* source_policy, SimTime now,
                       const repl::SyncOptions& options,
                       SessionBudget* budget) {
  SourceSession session(source, source_policy, now, options, budget);
  session.serve_opener(connection);
  // On a live transport the peer's fallback Request is already on its
  // way when the miss reply lands, so blocking here is the whole drive.
  if (session.state() == SourceSession::State::AwaitExact)
    session.serve_exact(connection);
  return session.take_stats();
}

// ---- TargetSession ---------------------------------------------------

repl::BatchApplier& TargetSession::ensure_applier() {
  if (!applier_) applier_.emplace(*target_, options_);
  return *applier_;
}

void TargetSession::start(FrameSink& sink, ReplicaId source_id,
                          SimTime now) {
  PFRDTN_REQUIRE(state_ == State::Idle);
  try {
    if (target_->read_only()) {
      // A pull mutates this replica, and degraded read-only mode
      // refuses every mutation up front — before the peer builds a
      // batch it would have streamed for nothing. The Error frame is
      // the structured form of that refusal; the peer classifies it
      // as transient and simply retries at a later contact.
      error_ = "replica " + target_->id().str() +
               " is degraded read-only after a storage fault";
      request_bytes_ = sink.send(
          repl::SyncFrame::Error,
          repl::encode_error_frame(repl::kSyncErrorReadOnly, error_));
      refused_ = true;
      result_.emplace();
      result_->stats.complete = false;
      state_ = State::Done;
      return;
    }
    if (options_.summary_mode != repl::SummaryMode::Off) {
      const repl::SummaryRequestInfo request = repl::make_summary_request(
          *target_, policy_, source_id, now, options_.summary);
      routing_state_ = request.routing_state;
      ByteWriter w;
      request.serialize(w);
      request_bytes_ =
          sink.send(repl::SyncFrame::SummaryRequest, w.take());
      state_ = State::SummarySent;
    } else {
      const repl::SyncRequest request =
          repl::make_request(*target_, policy_, source_id, now);
      request_bytes_ = sink.send(repl::SyncFrame::Request,
                                 serialize_request(request));
      state_ = State::RequestSent;
    }
  } catch (const TransportError& failure) {
    state_ = State::Failed;
    pre_receive_failure_ = true;
    error_ = failure.what();
  }
}

void TargetSession::send_request(Connection& connection,
                                 ReplicaId source_id, SimTime now) {
  ConnectionFrameSink sink(connection, budget());
  start(sink, source_id, now);
}

void TargetSession::send_exact_fallback(FrameSink& sink) {
  // The fallback reuses the routing state the summary carried, so the
  // source's policy hooks see exactly one request for this sync.
  const repl::SyncRequest request{target_->id(), target_->filter(),
                                  target_->knowledge(), routing_state_};
  request_bytes_ += sink.send(repl::SyncFrame::Request,
                              serialize_request(request));
  state_ = State::RequestSent;
}

void TargetSession::send_fallback(Connection& connection) {
  PFRDTN_REQUIRE(state_ == State::SummarySent);
  ConnectionFrameSink sink(connection, budget());
  try {
    const Frame miss =
        expect_frame(connection, repl::SyncFrame::SummaryMiss, budget());
    batch_bytes_ += miss.wire_bytes;
    repl::decode_summary_reply(miss.payload);
    send_exact_fallback(sink);
  } catch (const TransportError& failure) {
    state_ = State::Failed;
    pre_receive_failure_ = true;
    error_ = failure.what();
  }
}

void TargetSession::begin_batch(const Frame& frame) {
  const repl::BatchBeginInfo begin =
      repl::decode_batch_begin(frame.payload);
  const ResourceLimits& limits = budget().limits();
  if (begin.count > limits.max_batch_items) {
    throw ResourceLimitError(
        "batch announces " + std::to_string(begin.count) +
        " items, above the " + std::to_string(limits.max_batch_items) +
        "-item cap");
  }
  begin_ = begin;
  received_ = 0;
  ensure_applier();
  state_ = State::Receiving;
}

void TargetSession::on_frame(const Frame& frame, FrameSink& sink) {
  PFRDTN_REQUIRE(wants_frame());
  const ResourceLimits& limits = budget().limits();
  batch_bytes_ += frame.wire_bytes;

  if (state_ == State::SummarySent) {
    // The source's summary reply: a Match ends the sync, a Miss makes
    // us emit the exact fallback Request, and a direct BatchBegin
    // (the Bloom filter proved us cold) just starts the batch.
    if (frame.type == repl::SyncFrame::SummaryMatch) {
      repl::decode_summary_reply(frame.payload);
      result_ = repl::apply_summary_match(*target_, options_);
      state_ = State::Done;
      return;
    }
    if (frame.type == repl::SyncFrame::SummaryMiss) {
      repl::decode_summary_reply(frame.payload);
      send_exact_fallback(sink);
      return;
    }
    PFRDTN_REQUIRE(frame.type == repl::SyncFrame::BatchBegin);
    begin_batch(frame);
    return;
  }

  if (state_ == State::RequestSent) {
    PFRDTN_REQUIRE(frame.type == repl::SyncFrame::BatchBegin);
    begin_batch(frame);
    return;
  }

  // Receiving: the item stream, applied as each frame arrives.
  if (frame.type == repl::SyncFrame::BatchItem) {
    ByteReader reader(frame.payload);
    reader.set_element_budget(limits.max_decode_elements);
    const repl::Item item = repl::Item::deserialize(reader);
    PFRDTN_REQUIRE(reader.done());
    ++received_;
    PFRDTN_REQUIRE(received_ <= begin_->count);
    ensure_applier().apply(item);
    return;
  }
  PFRDTN_REQUIRE(frame.type == repl::SyncFrame::BatchEnd);
  PFRDTN_REQUIRE(received_ == begin_->count);
  ByteReader reader(frame.payload);
  reader.set_element_budget(limits.max_decode_elements);
  const repl::Knowledge source_knowledge =
      repl::Knowledge::deserialize(reader);
  PFRDTN_REQUIRE(reader.done());
  check_knowledge_weight(source_knowledge, limits);
  result_ = ensure_applier().finish(begin_->complete, source_knowledge);
  state_ = State::Done;
}

void TargetSession::on_transport_error(const std::string& what) {
  error_ = what;
  state_ = State::Failed;
}

NetSyncResult TargetSession::take_result() {
  PFRDTN_REQUIRE(finished());
  NetSyncResult outcome;
  if (state_ == State::Failed) {
    outcome.result = ensure_applier().abandon();
    outcome.transport_failed = true;
    outcome.error = error_;
  } else {
    outcome.result = std::move(*result_);
    result_.reset();
  }
  outcome.refused = refused_;
  if (refused_) outcome.error = error_;
  outcome.result.stats.request_bytes = request_bytes_;
  outcome.result.stats.batch_bytes =
      pre_receive_failure_ ? 0 : batch_bytes_;
  return outcome;
}

NetSyncResult TargetSession::receive(Connection& connection) {
  // Already finished before the receive phase: a failed opening write,
  // or a read-only refusal that ended the session at start().
  if (finished()) return take_result();
  PFRDTN_REQUIRE(wants_frame());
  ConnectionFrameSink sink(connection, budget());
  try {
    while (!finished()) {
      const Frame frame = read_frame(connection, budget());
      on_frame(frame, sink);
    }
  } catch (const TransportError& failure) {
    on_transport_error(failure.what());
  }
  return take_result();
}

// ---- loopback drives -------------------------------------------------

namespace {

[[nodiscard]] bool opener_sent(const TargetSession& session) {
  // A read-only refusal counts: the Error frame is on the link and the
  // source side must read it to end its role gracefully.
  return session.state() == TargetSession::State::RequestSent ||
         session.state() == TargetSession::State::SummarySent ||
         session.refused();
}

/// Interleave the source role with an opener-sent target on a
/// half-duplex sequential link: serve the opener, and on a summary
/// miss let the target read the miss and send the exact fallback
/// before the source serves it.
SourceStats drive_loopback_source(repl::Replica& source,
                                  repl::ForwardingPolicy* source_policy,
                                  TargetSession& target_session,
                                  Connection& source_end,
                                  Connection& target_end, SimTime now,
                                  const repl::SyncOptions& options) {
  SourceSession session(source, source_policy, now, options);
  session.serve_opener(source_end);
  if (session.state() == SourceSession::State::AwaitExact) {
    target_session.send_fallback(target_end);
    // Even if the fallback write died, let the source observe the dead
    // link itself so its stats report the failure the same way a live
    // transport would.
    session.serve_exact(source_end);
  }
  return session.take_stats();
}

}  // namespace

LoopbackSyncOutcome sync_over_loopback(
    repl::Replica& source, repl::Replica& target,
    repl::ForwardingPolicy* source_policy,
    repl::ForwardingPolicy* target_policy, SimTime now,
    const repl::SyncOptions& options, const LoopbackFaults& faults) {
  LoopbackSyncOutcome outcome;
  LoopbackLink link(faults);
  // Half-duplex sequential drive: the target writes its opener, the
  // source consumes it and streams the whole answer (with one extra
  // interleaving on a summary miss), then the target reads whatever
  // made it through the contact window.
  TargetSession session(target, target_policy, options);
  session.send_request(link.a(), source.id(), now);
  if (opener_sent(session)) {
    outcome.server =
        drive_loopback_source(source, source_policy, session, link.b(),
                              link.a(), now, options);
  } else {
    outcome.server.transport_failed = true;
    outcome.server.stats.complete = false;
    outcome.server.error = "request never arrived";
  }
  outcome.client = session.receive(link.a());
  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

LoopbackEncounterOutcome encounter_over_loopback(
    repl::Replica& a, repl::Replica& b,
    repl::ForwardingPolicy* a_policy, repl::ForwardingPolicy* b_policy,
    SimTime now, const repl::SyncOptions& options,
    const LoopbackFaults& faults) {
  LoopbackEncounterOutcome outcome;
  LoopbackLink link(faults);

  // Sync 1: a pulls from b.
  TargetSession pull(a, a_policy, options);
  pull.send_request(link.a(), b.id(), now);
  if (opener_sent(pull)) {
    outcome.b_served = drive_loopback_source(b, b_policy, pull, link.b(),
                                             link.a(), now, options);
  } else {
    outcome.b_served.transport_failed = true;
    outcome.b_served.stats.complete = false;
    outcome.b_served.error = "request never arrived";
  }
  outcome.a_pulled = pull.receive(link.a());

  // Sync 2: roles swap, b pulls from a, on the same contact.
  TargetSession push(b, b_policy, options);
  push.send_request(link.b(), a.id(), now);
  if (opener_sent(push)) {
    outcome.a_pushed = drive_loopback_source(a, a_policy, push, link.a(),
                                             link.b(), now, options);
  } else {
    outcome.a_pushed.transport_failed = true;
    outcome.a_pushed.stats.complete = false;
    outcome.a_pushed.error = "request never arrived";
  }
  outcome.b_applied = push.receive(link.b());

  outcome.bytes_delivered = link.bytes_delivered();
  outcome.simulated_seconds = link.simulated_seconds();
  return outcome;
}

// ---- whole sessions (TCP client/server) ------------------------------

ClientSessionOutcome run_client_session(Connection& connection,
                                        repl::Replica& self,
                                        repl::ForwardingPolicy* policy,
                                        SyncMode mode, SimTime now,
                                        const repl::SyncOptions& options,
                                        const ResourceLimits& limits) {
  ClientSessionOutcome outcome;
  SessionBudget budget(limits);
  repl::SyncOptions effective = options;
  bool await_ack = false;
  try {
    // Always advertise the push ack; the server echoes the bit iff it
    // supports it, so a legacy server just keeps the unacked protocol.
    const std::uint64_t features =
        kFeatureBatchAck | (options.summary_mode != repl::SummaryMode::Off
                                ? kFeatureSummaryExchange
                                : 0);
    outcome.overhead_bytes +=
        write_frame(connection, repl::SyncFrame::Hello,
                    encode_hello({self.id(), mode, features}), budget);
    const Frame answer = read_frame(connection, budget);
    outcome.overhead_bytes += answer.wire_bytes;
    if (answer.type == repl::SyncFrame::Error) {
      // The server refused the whole session in place of its Hello —
      // an overloaded serve shedding with Busy, or one draining. A
      // structured, transient refusal: back off and retry, never a
      // violation.
      const repl::SyncErrorInfo info =
          repl::decode_error_frame(answer.payload);
      outcome.refused = true;
      outcome.refusal_code = info.code;
      outcome.error = "server refused session (" +
                      repl::sync_error_code_name(info.code) +
                      "): " + info.message;
      return outcome;
    }
    PFRDTN_REQUIRE(answer.type == repl::SyncFrame::Hello);
    const HelloInfo server_hello = decode_hello(answer.payload);
    outcome.server = server_hello.replica;
    // Auto downgrades to the exact protocol against a server that did
    // not advertise summary support; On forces the fast path.
    effective.summary_mode = resolve_summary_mode(options.summary_mode,
                                                  server_hello.features);
    await_ack = (server_hello.features & kFeatureBatchAck) != 0;
  } catch (const TransportError& failure) {
    outcome.transport_failed = true;
    outcome.error = failure.what();
    return outcome;
  }

  if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
    TargetSession session(self, policy, effective, &budget);
    session.send_request(connection, outcome.server, now);
    outcome.pull = session.receive(connection);
    if (outcome.pull.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.pull.error;
      if (mode == SyncMode::Encounter) return outcome;
    }
  }
  if (mode == SyncMode::Push || mode == SyncMode::Encounter) {
    outcome.push =
        run_source(connection, self, policy, now, effective, &budget);
    if (outcome.push.transport_failed) {
      outcome.transport_failed = true;
      outcome.error = outcome.push.error;
    } else if (await_ack && !outcome.push.refused) {
      // The batch is written, but locally successful writes only prove
      // the bytes reached a socket buffer. Block on the server's
      // BatchAck: a link that died while the server was still reading
      // surfaces here as a transport failure the caller can retry,
      // instead of a silently dropped push.
      try {
        const Frame ack =
            expect_frame(connection, repl::SyncFrame::BatchAck, budget);
        outcome.overhead_bytes += ack.wire_bytes;
        repl::decode_batch_ack(ack.payload);
      } catch (const TransportError& failure) {
        outcome.transport_failed = true;
        outcome.error =
            std::string("push not acknowledged: ") + failure.what();
      }
    }
  }
  return outcome;
}

// ---- ServerSessionMachine --------------------------------------------

void ServerSessionMachine::on_frame(const Frame& frame, FrameSink& sink) {
  switch (state_) {
    case State::AwaitHello: {
      PFRDTN_REQUIRE(frame.type == repl::SyncFrame::Hello);
      outcome_.hello = decode_hello(frame.payload);
      // Echo our features only to a client that advertised some: a
      // legacy client's decoder rejects any bytes after the mode.
      std::uint64_t features = 0;
      if (outcome_.hello.features != 0) {
        if (options_.summary_mode != repl::SummaryMode::Off)
          features |= kFeatureSummaryExchange;
        if ((outcome_.hello.features & kFeatureBatchAck) != 0)
          features |= kFeatureBatchAck;
      }
      ack_negotiated_ = (features & kFeatureBatchAck) != 0;
      try {
        sink.send(
            repl::SyncFrame::Hello,
            encode_hello({self_->id(), outcome_.hello.mode, features}));
      } catch (const TransportError& failure) {
        outcome_.transport_failed = true;
        outcome_.error = failure.what();
        state_ = State::Done;
        return;
      }
      effective_.summary_mode = resolve_summary_mode(
          options_.summary_mode, outcome_.hello.features);
      const SyncMode mode = outcome_.hello.mode;
      if (mode == SyncMode::Pull || mode == SyncMode::Encounter) {
        source_.emplace(*self_, policy_, now_, effective_, &budget_);
        state_ = State::Source;
      } else {
        start_target(sink);
      }
      return;
    }
    case State::Source: {
      try {
        source_->on_frame(frame, sink);
      } catch (const TransportError& failure) {
        source_->on_transport_error(failure);
      }
      // A summary miss leaves the source owed the exact fallback
      // Request; everything else ends its role.
      if (source_->state() == SourceSession::State::AwaitExact) return;
      harvest_source(&sink);
      return;
    }
    case State::Target: {
      try {
        target_->on_frame(frame, sink);
      } catch (const TransportError& failure) {
        target_->on_transport_error(failure.what());
      }
      if (target_->finished()) harvest_target(&sink);
      return;
    }
    case State::Done:
      break;
  }
  throw ContractViolation("frame after session end");
}

void ServerSessionMachine::harvest_source(FrameSink* sink) {
  outcome_.served = source_->take_stats();
  source_.reset();
  if (outcome_.served.transport_failed) {
    outcome_.transport_failed = true;
    outcome_.error = outcome_.served.error;
    // A dead link never starts the push leg of an encounter.
    if (outcome_.hello.mode == SyncMode::Encounter) {
      state_ = State::Done;
      return;
    }
  }
  if (outcome_.hello.mode == SyncMode::Pull) {
    state_ = State::Done;
    return;
  }
  PFRDTN_REQUIRE(sink != nullptr);
  start_target(*sink);
}

void ServerSessionMachine::start_target(FrameSink& sink) {
  target_.emplace(*self_, policy_, effective_, &budget_);
  target_->start(sink, outcome_.hello.replica, now_);
  // start() absorbs a sink failure into the Failed state; harvest it
  // now so the host sees the session finished. A refusal (degraded
  // read-only) also finishes here, and never earns an ack.
  if (target_->finished()) {
    harvest_target(&sink);
  } else {
    state_ = State::Target;
  }
}

void ServerSessionMachine::harvest_target(FrameSink* sink) {
  outcome_.applied = target_->take_result();
  target_.reset();
  if (outcome_.applied.transport_failed) {
    outcome_.transport_failed = true;
    outcome_.error = outcome_.applied.error;
  } else if (sink != nullptr && ack_negotiated_ &&
             !outcome_.applied.refused) {
    // Confirm the applied push so the source can call it delivered;
    // received_events holds every item copy that fully arrived.
    try {
      sink->send(repl::SyncFrame::BatchAck,
                 repl::encode_batch_ack(
                     outcome_.applied.result.received_events.size()));
    } catch (const TransportError& failure) {
      // The batch itself landed; only the confirmation did not. The
      // source will retry and the versioned store dedups the re-push.
      outcome_.transport_failed = true;
      outcome_.error = failure.what();
    }
  }
  state_ = State::Done;
}

void ServerSessionMachine::on_transport_error(const std::string& what) {
  switch (state_) {
    case State::AwaitHello:
      outcome_.transport_failed = true;
      outcome_.error = what;
      state_ = State::Done;
      return;
    case State::Source:
      source_->on_transport_error(TransportError(what));
      // A failed source always ends the session: the encounter's push
      // leg is never attempted on a dead link.
      harvest_source(nullptr);
      return;
    case State::Target:
      target_->on_transport_error(what);
      harvest_target(nullptr);
      return;
    case State::Done:
      // Late notification after completion (e.g. the flush of the
      // final frames failed): the outcome is already sealed.
      return;
  }
}

ServerSessionOutcome ServerSessionMachine::take_outcome() {
  PFRDTN_REQUIRE(finished());
  return std::move(outcome_);
}

ServerSessionOutcome serve_session(Connection& connection,
                                   repl::Replica& self,
                                   repl::ForwardingPolicy* policy,
                                   SimTime now,
                                   const repl::SyncOptions& options,
                                   const ResourceLimits& limits) {
  ServerSessionMachine machine(self, policy, now, options, limits);
  ConnectionFrameSink sink(connection, machine.budget());
  try {
    while (machine.wants_frame()) {
      const Frame frame = read_frame(connection, machine.budget());
      machine.on_frame(frame, sink);
    }
  } catch (const StorageError& fault) {
    // A local disk fault, not peer misbehaviour: caught before the
    // ContractViolation base so the caller never quarantines the peer
    // over it. The session ends as this side's failure.
    machine.on_transport_error(std::string("local storage fault: ") +
                               fault.what());
  } catch (const TransportError& failure) {
    machine.on_transport_error(failure.what());
  }
  return machine.take_outcome();
}

}  // namespace pfrdtn::net
