#include "net/chaos.hpp"

#include <chrono>
#include <thread>

#include "net/session.hpp"
#include "repl/knowledge.hpp"
#include "repl/sync.hpp"
#include "util/byte_buffer.hpp"

namespace pfrdtn::net {

namespace {

struct AttackInfo {
  ChaosAttack attack;
  const char* name;
  bool violation;
};

constexpr AttackInfo kAttacks[kChaosAttackCount] = {
    {ChaosAttack::OversizeRequest, "oversize-request", true},
    {ChaosAttack::OversizeItem, "oversize-item", true},
    {ChaosAttack::LyingCountHuge, "lying-count-huge", true},
    {ChaosAttack::LyingCountShort, "lying-count-short", true},
    {ChaosAttack::OutOfOrderFrame, "out-of-order-frame", true},
    {ChaosAttack::GiantKnowledge, "giant-knowledge", true},
    {ChaosAttack::GiantPolicyBlob, "giant-policy-blob", true},
    {ChaosAttack::ByteTrickle, "byte-trickle", false},
    {ChaosAttack::BadMagic, "bad-magic", true},
    {ChaosAttack::CloseAfterHello, "close-after-hello", false},
    {ChaosAttack::CloseMidHeader, "close-mid-header", false},
    {ChaosAttack::CloseMidBatch, "close-mid-batch", false},
};

const AttackInfo& info_of(ChaosAttack attack) {
  for (const AttackInfo& info : kAttacks) {
    if (info.attack == attack) return info;
  }
  throw ContractViolation("unknown chaos attack");
}

/// The chaos peer writes raw frames directly — it deliberately does
/// not limit itself the way the budgeted framing helpers would.
std::size_t send_frame(Connection& connection, repl::SyncFrame type,
                       const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(type),
                      static_cast<std::uint32_t>(payload.size()), header);
  connection.write(header, kFrameHeaderSize);
  if (!payload.empty()) connection.write(payload.data(), payload.size());
  return framed_size(payload.size());
}

/// A header whose length field lies: claims `length` payload bytes the
/// attacker will never send. The whole point of admission-before-
/// allocation is that these 8 bytes must not buy an allocation.
std::size_t send_header_only(Connection& connection, repl::SyncFrame type,
                             std::uint32_t length) {
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(type), length, header);
  connection.write(header, kFrameHeaderSize);
  return kFrameHeaderSize;
}

std::vector<std::uint8_t> hello_payload(const ChaosPeerOptions& options,
                                        SyncMode mode) {
  return encode_hello({options.replica, mode});
}

std::vector<std::uint8_t> batch_begin_payload(ReplicaId source,
                                              std::uint64_t count) {
  ByteWriter w;
  w.uvarint(source.value());
  w.u8(1);  // complete
  w.uvarint(count);
  return w.take();
}

/// A minimal but well-formed BatchItem payload.
std::vector<std::uint8_t> tiny_item_payload(const ChaosPeerOptions& o) {
  ByteWriter w;
  w.uvarint(9001);                  // item id
  w.uvarint(o.replica.value());     // version author
  w.uvarint(1);                     // version counter
  w.uvarint(1);                     // version revision
  w.u8(0);                          // not deleted
  w.uvarint(0);                     // no metadata
  w.raw({0x68, 0x69});              // body "hi"
  w.uvarint(0);                     // no transients
  return w.take();
}

/// A Request whose knowledge weighs limits.max_knowledge_entries + 1:
/// even counters never compact into the vector prefix, so each stays
/// an extra and the decoded weight equals the entry count.
std::vector<std::uint8_t> giant_knowledge_request(
    const ChaosPeerOptions& o) {
  repl::Knowledge knowledge;
  for (std::size_t i = 1; i <= o.limits.max_knowledge_entries + 1; ++i)
    knowledge.add_exact(repl::Version{ReplicaId(7), 2 * i, 1});
  ByteWriter w;
  w.uvarint(o.replica.value());      // target
  repl::Filter::all().serialize(w);  // filter
  knowledge.serialize(w);
  w.raw({});                         // empty routing state
  return w.take();
}

std::vector<std::uint8_t> giant_blob_request(const ChaosPeerOptions& o) {
  ByteWriter w;
  w.uvarint(o.replica.value());
  repl::Filter::all().serialize(w);
  repl::Knowledge().serialize(w);
  w.raw(std::vector<std::uint8_t>(o.limits.max_policy_blob_bytes + 1,
                                  0xAB));
  return w.take();
}

void sleep_ms(unsigned ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

}  // namespace

const char* chaos_attack_name(ChaosAttack attack) {
  return info_of(attack).name;
}

std::optional<ChaosAttack> chaos_attack_from_name(std::string_view name) {
  for (const AttackInfo& info : kAttacks) {
    if (name == info.name) return info.attack;
  }
  return std::nullopt;
}

bool chaos_attack_is_violation(ChaosAttack attack) {
  return info_of(attack).violation;
}

ChaosOutcome run_chaos_attack(Connection& connection, ChaosAttack attack,
                              const ChaosPeerOptions& options) {
  ChaosOutcome outcome;
  const ResourceLimits& limits = options.limits;
  try {
    switch (attack) {
      case ChaosAttack::OversizeRequest:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Pull));
        outcome.bytes_sent += send_header_only(
            connection, repl::SyncFrame::Request,
            limits.max_request_bytes + 1);
        outcome.note = "claimed an over-cap Request payload";
        break;
      case ChaosAttack::OversizeItem:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Push));
        outcome.bytes_sent +=
            send_frame(connection, repl::SyncFrame::BatchBegin,
                       batch_begin_payload(options.replica, 1));
        outcome.bytes_sent += send_header_only(
            connection, repl::SyncFrame::BatchItem,
            limits.max_item_bytes + 1);
        outcome.note = "claimed an over-cap BatchItem payload";
        break;
      case ChaosAttack::LyingCountHuge:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Push));
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::BatchBegin,
            batch_begin_payload(options.replica,
                                limits.max_batch_items + 1));
        outcome.note = "announced an over-cap item count";
        break;
      case ChaosAttack::LyingCountShort: {
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Push));
        outcome.bytes_sent +=
            send_frame(connection, repl::SyncFrame::BatchBegin,
                       batch_begin_payload(options.replica, 3));
        outcome.bytes_sent +=
            send_frame(connection, repl::SyncFrame::BatchItem,
                       tiny_item_payload(options));
        ByteWriter knowledge;
        repl::Knowledge().serialize(knowledge);
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::BatchEnd, knowledge.take());
        outcome.note = "announced 3 items, delivered 1";
        break;
      }
      case ChaosAttack::OutOfOrderFrame:
        outcome.bytes_sent +=
            send_frame(connection, repl::SyncFrame::BatchItem,
                       tiny_item_payload(options));
        outcome.note = "opened with a BatchItem instead of Hello";
        break;
      case ChaosAttack::GiantKnowledge:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Pull));
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Request,
            giant_knowledge_request(options));
        outcome.note = "sent knowledge over the weight cap";
        break;
      case ChaosAttack::GiantPolicyBlob:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Pull));
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Request,
            giant_blob_request(options));
        outcome.note = "sent a policy blob over the byte cap";
        break;
      case ChaosAttack::ByteTrickle: {
        // The slow-loris: dribble a valid Hello frame one byte at a
        // time, then keep the contact open while sending nothing.
        std::uint8_t frame[kFrameHeaderSize + 8];
        const auto payload = hello_payload(options, SyncMode::Pull);
        encode_frame_header(
            static_cast<std::uint8_t>(repl::SyncFrame::Hello),
            static_cast<std::uint32_t>(payload.size()), frame);
        std::size_t total = kFrameHeaderSize;
        for (std::size_t i = 0; i < payload.size() && total < sizeof(frame);
             ++i)
          frame[total++] = payload[i];
        const std::size_t dribble =
            std::min(options.trickle_bytes, total);
        for (std::size_t i = 0; i < dribble; ++i) {
          connection.write(&frame[i], 1);
          ++outcome.bytes_sent;
          sleep_ms(options.trickle_delay_ms);
        }
        const std::uint8_t nothing = 0;
        for (std::size_t i = 0; i < options.trickle_stall_writes; ++i) {
          connection.write(&nothing, 0);
          sleep_ms(options.trickle_delay_ms);
        }
        outcome.note = "trickled " + std::to_string(dribble) +
                       " bytes, then stalled";
        break;
      }
      case ChaosAttack::BadMagic: {
        const std::uint8_t junk[kFrameHeaderSize] = {
            0xDE, 0xAD, 0xBE, 0xEF, 0xDE, 0xAD, 0xBE, 0xEF};
        connection.write(junk, sizeof(junk));
        outcome.bytes_sent += sizeof(junk);
        outcome.note = "sent garbage where a frame header belongs";
        break;
      }
      case ChaosAttack::CloseAfterHello:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Pull));
        connection.close();
        outcome.note = "closed right after Hello";
        break;
      case ChaosAttack::CloseMidHeader: {
        std::uint8_t header[kFrameHeaderSize];
        encode_frame_header(
            static_cast<std::uint8_t>(repl::SyncFrame::Hello), 3, header);
        connection.write(header, 3);
        outcome.bytes_sent += 3;
        connection.close();
        outcome.note = "closed three bytes into a frame header";
        break;
      }
      case ChaosAttack::CloseMidBatch:
        outcome.bytes_sent += send_frame(
            connection, repl::SyncFrame::Hello,
            hello_payload(options, SyncMode::Push));
        outcome.bytes_sent +=
            send_frame(connection, repl::SyncFrame::BatchBegin,
                       batch_begin_payload(options.replica, 2));
        connection.close();
        outcome.note = "closed after announcing a batch";
        break;
    }
  } catch (const TransportError& cut) {
    outcome.server_cut_us = true;
    if (!outcome.note.empty()) outcome.note += "; ";
    outcome.note += cut.what();
    return outcome;
  }
  if (options.read_replies) {
    // Observe the server's reaction by draining until EOF / reset: a
    // hardened server closes on us once the violation registers or the
    // deadline hits. Draining (instead of closing after one byte)
    // matters on TCP — an early close can race the server with an RST
    // that discards the hostile frame before it is ever processed,
    // turning a would-be violation into a mere transport failure.
    try {
      std::uint8_t reaction = 0;
      for (;;) connection.read(&reaction, 1);
    } catch (const TransportError&) {
      outcome.server_cut_us = true;
    }
  }
  return outcome;
}

}  // namespace pfrdtn::net
