#pragma once

/// \file server.hpp
/// SyncServer: the concurrent, non-blocking host for
/// ServerSessionMachine. One acceptor event loop (on the thread that
/// calls run()) owns the listening socket, performs the accept-time
/// quarantine check, and hands admitted fds to N worker threads; each
/// worker runs its own EventLoop and exclusively owns its connections
/// (Envoy-style per-worker dispatch) — connection state needs no
/// locking. The machines never block: bytes arrive through a
/// FrameDecoder, replies accumulate in a per-connection buffer that is
/// flushed as the socket drains (EPOLLOUT armed only while bytes are
/// pending).
///
/// Shared state and its locks:
///   - the replica (and anything the callbacks touch): state_mutex,
///     held across every machine.on_frame and every on_session /
///     on_violation callback;
///   - the QuarantineTable: its own mutex — admission happens on the
///     acceptor thread, strikes and rewards on workers.
///
/// Deadlines move onto the loop: each connection arms one timer that
/// enforces the absolute session deadline, the idle I/O timeout, and
/// the minimum-progress floor — the same three cuts the blocking
/// TcpConnection enforces per operation — and failures use the same
/// error strings, so log-driven tooling sees one vocabulary.
///
/// Graceful drain: shutdown() (or a readable options.shutdown_fd, for
/// signal handlers) stops accepting, lets in-flight sessions finish
/// within drain_deadline_ms, then force-fails the stragglers; run()
/// returns once the last session is gone.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/event_loop.hpp"
#include "net/fault_link.hpp"
#include "net/quarantine.hpp"
#include "net/session.hpp"
#include "net/tcp.hpp"

namespace pfrdtn::net {

struct SyncServerOptions {
  std::uint16_t port = 0;  ///< 0 = ephemeral; see SyncServer::port()
  int workers = 1;
  /// Stop accepting after this many admitted sessions and return from
  /// run() once they finish; 0 = serve until shutdown().
  std::size_t max_sessions = 0;
  /// How long shutdown() waits for in-flight sessions before
  /// force-failing them.
  int drain_deadline_ms = 5000;
  /// Optional fd that becomes readable to request a graceful drain
  /// (the CLI points a signal handler's self-pipe here); -1 = none.
  int shutdown_fd = -1;
  /// Consecutive accept failures before run() gives up (returns
  /// false). Reset every time a session runs to its end.
  std::size_t accept_failure_budget = 8;
  /// Overload shedding: with more than this many sessions in flight a
  /// new connection is answered with one transient Busy Error frame
  /// and closed — no strike, the client retries with backoff — instead
  /// of being adopted to starve into a deadline cut. 0 = no cap.
  std::size_t max_concurrent_sessions = 0;
  /// Seeded link-fault injection on accepted connections (cut/reset at
  /// a scheduled byte offset; rate 0 = no faults, no RNG draws). The
  /// server-side half of the flaky-contact test surface.
  LinkFaultPlan link_faults;
  /// The simulated timestamp sessions run at (serve uses 0).
  SimTime now = SimTime(0);
  TcpOptions tcp;
  repl::SyncOptions sync;
  ResourceLimits limits;
  QuarantineOptions quarantine;
};

/// Observation hooks, all optional. on_session and on_violation run on
/// worker threads WITH the server's state mutex held, so they may
/// touch the replica and shared streams; on_reject, on_accept_error,
/// and on_drain run on the acceptor thread.
struct SyncServerCallbacks {
  std::function<void(std::size_t session, const std::string& peer,
                     const ServerSessionOutcome& outcome)>
      on_session;
  std::function<void(std::size_t session, const std::string& peer,
                     bool limit_breach, const std::string& what,
                     std::size_t strikes, std::uint64_t window_ms)>
      on_violation;
  std::function<void(const std::string& peer,
                     const AdmitDecision& decision)>
      on_reject;
  /// `consecutive` accept failures so far without a completed session;
  /// `giving_up` on the one that exhausts the budget (run() then
  /// returns false).
  std::function<void(const std::string& what, std::size_t consecutive,
                     bool giving_up)>
      on_accept_error;
  std::function<void(std::size_t active)> on_drain;
  /// A connection was shed at the concurrency cap (acceptor thread).
  std::function<void(const std::string& peer, std::size_t active)>
      on_shed;
};

class SyncServer {
 public:
  SyncServer(repl::Replica& replica, repl::ForwardingPolicy* policy,
             SyncServerOptions options,
             SyncServerCallbacks callbacks = {});
  ~SyncServer();

  SyncServer(const SyncServer&) = delete;
  SyncServer& operator=(const SyncServer&) = delete;

  /// The bound port (resolves an ephemeral request).
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

  /// Serve until max_sessions complete or shutdown() is requested.
  /// Returns false iff the listener gave up (accept-failure budget).
  bool run();

  /// Request a graceful drain; thread- and signal-context-unsafe (use
  /// options.shutdown_fd from signal handlers). Safe to call from any
  /// thread or from inside a callback; idempotent.
  void shutdown();

  [[nodiscard]] std::size_t sessions_completed() const {
    return sessions_completed_.load();
  }

  /// Connections refused with a Busy frame at the concurrency cap.
  [[nodiscard]] std::size_t sessions_shed() const {
    return sessions_shed_.load();
  }

  /// Link faults injected into served connections so far.
  [[nodiscard]] std::size_t link_faults_injected() const {
    return link_faults_injected_.load();
  }

  /// Milliseconds since this server was constructed (the quarantine
  /// clock, as in the blocking serve loop).
  [[nodiscard]] std::uint64_t now_ms() const;

 private:
  struct Worker;
  struct Served;
  friend struct Worker;
  friend struct Served;

  void on_acceptable();
  /// Answer a connection with one transient Busy Error frame and close
  /// it (best-effort; the client retries with backoff either way).
  void shed(int fd, const std::string& peer);
  void begin_drain();
  void stop_accepting();
  void maybe_finish();
  /// Worker -> acceptor notification that one session ended.
  void session_complete();

  repl::Replica* replica_;
  repl::ForwardingPolicy* policy_;
  SyncServerOptions options_;
  SyncServerCallbacks callbacks_;
  TcpListener listener_;
  EventLoop acceptor_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::chrono::steady_clock::time_point started_;

  std::mutex state_mutex_;       ///< replica + on_session/on_violation
  std::mutex quarantine_mutex_;  ///< the table below
  QuarantineTable quarantine_;
  /// Schedules for accepted connections are drawn on the acceptor
  /// thread only; workers just consume the drawn schedule.
  LinkFaultInjector link_fault_injector_;

  // Acceptor-thread state.
  std::size_t sessions_started_ = 0;
  std::size_t active_ = 0;
  std::size_t accept_failures_ = 0;
  bool accepting_ = true;
  bool draining_ = false;
  bool listener_failed_ = false;

  std::atomic<std::size_t> sessions_completed_{0};
  std::atomic<std::size_t> sessions_shed_{0};
  std::atomic<std::size_t> link_faults_injected_{0};
};

}  // namespace pfrdtn::net
