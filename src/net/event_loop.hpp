#pragma once

/// \file event_loop.hpp
/// A minimal epoll event loop, one per server worker thread (the
/// Envoy-style per-worker dispatcher): fd readiness callbacks, a
/// steady-clock timer wheel, and a thread-safe post() for cross-thread
/// handoff (the acceptor posts freshly admitted fds to a worker; a
/// worker posts completions back). Everything except post()/stop() is
/// single-threaded: only the thread inside run() may touch watchers or
/// timers, which is what lets connection state live lock-free on its
/// owning worker.
///
/// Dispatch is level-triggered and deferred-deletion safe: a callback
/// may forget() its own fd (closing a connection mid-dispatch) — the
/// loop holds a reference to the watcher for the duration of the call
/// and checks liveness before invoking it.

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace pfrdtn::net {

class EventLoop {
 public:
  using Clock = std::chrono::steady_clock;
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerId = std::uint64_t;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` for `events` (EPOLLIN/EPOLLOUT ORed); the callback
  /// runs on the loop thread with the ready event mask (which also
  /// carries EPOLLERR/EPOLLHUP when the kernel reports them).
  void watch(int fd, std::uint32_t events, FdCallback callback);

  /// Change the event mask of a watched fd (e.g. arm EPOLLOUT only
  /// while there are buffered bytes to flush).
  void modify(int fd, std::uint32_t events);

  /// Stop watching `fd`. Safe to call from inside its own callback.
  /// The caller still owns (and closes) the fd.
  void forget(int fd);

  /// One-shot timer at `when`; returns an id for cancel().
  TimerId schedule(Clock::time_point when, std::function<void()> callback);
  void cancel(TimerId id);

  /// Enqueue `task` to run on the loop thread. Thread-safe; wakes the
  /// loop if it is blocked in epoll_wait.
  void post(std::function<void()> task);

  /// Dispatch until stop(). Runs posted tasks, due timers, and fd
  /// callbacks, in that order per iteration.
  void run();

  /// Ask run() to return; thread-safe, callable from callbacks.
  void stop();

 private:
  struct Watcher {
    FdCallback callback;
    bool alive = true;
  };
  struct Timer {
    TimerId id = 0;
    std::function<void()> callback;
  };

  void wake();
  void drain_posted();
  void fire_due_timers();
  [[nodiscard]] int next_timeout_ms() const;

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  bool stop_ = false;  ///< loop-thread copy, refreshed from stop_flag_
  std::unordered_map<int, std::shared_ptr<Watcher>> watchers_;
  std::multimap<Clock::time_point, Timer> timers_;
  std::unordered_map<TimerId, std::multimap<Clock::time_point,
                                            Timer>::iterator> timer_index_;
  TimerId next_timer_id_ = 1;

  std::mutex posted_mutex_;
  std::vector<std::function<void()>> posted_;
  bool stop_flag_ = false;  ///< guarded by posted_mutex_
};

}  // namespace pfrdtn::net
