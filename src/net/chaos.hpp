#pragma once

/// \file chaos.hpp
/// A scripted hostile peer for exercising the hardened session
/// boundary. Each ChaosAttack is one way a stranger can misbehave at
/// the wire: oversize frames, lying item counts, out-of-order frames,
/// giant knowledge, oversized policy blobs, byte-trickling, garbage
/// headers, and closing at every protocol state. The same scripts are
/// driven three ways — unit tests over a loopback link, check-harness
/// adversary events (`pfrdtn check --adversary-rate`), and
/// `pfrdtn chaos` against a live `serve` in tools/hostile_e2e.sh — so
/// every limit is proven to bite at every layer.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/limits.hpp"
#include "net/transport.hpp"
#include "util/ids.hpp"

namespace pfrdtn::net {

enum class ChaosAttack : std::uint8_t {
  OversizeRequest = 0,  ///< Request header claims a payload over the cap
  OversizeItem,         ///< push: BatchItem header over the item cap
  LyingCountHuge,       ///< push: BatchBegin count above max_batch_items
  LyingCountShort,      ///< push: count=3 but one item then BatchEnd
  OutOfOrderFrame,      ///< BatchItem where a Hello belongs
  GiantKnowledge,       ///< pull: Request knowledge over the weight cap
  GiantPolicyBlob,      ///< pull: Request routing blob over the byte cap
  ByteTrickle,          ///< dribbles a Hello byte by byte, then stalls
  BadMagic,             ///< 8 junk bytes where a frame header belongs
  CloseAfterHello,      ///< valid Hello, then immediate close
  CloseMidHeader,       ///< 3 bytes of a frame header, then close
  CloseMidBatch,        ///< push: BatchBegin announcing items, then close
};

inline constexpr std::size_t kChaosAttackCount = 12;

/// Stable CLI-friendly name ("oversize-request", "byte-trickle", ...).
[[nodiscard]] const char* chaos_attack_name(ChaosAttack attack);
[[nodiscard]] std::optional<ChaosAttack> chaos_attack_from_name(
    std::string_view name);

/// True for attacks a hardened server must REJECT (ContractViolation /
/// ResourceLimitError → the peer earns quarantine). False for attacks
/// indistinguishable from a dying link (closes, trickle): those end as
/// incomplete syncs and must NOT strike the peer.
[[nodiscard]] bool chaos_attack_is_violation(ChaosAttack attack);

struct ChaosPeerOptions {
  /// The limits the attacked server is believed to enforce; attacks
  /// size their payloads just past these caps so each one targets a
  /// specific budget.
  ResourceLimits limits;
  /// Replica id the chaos peer impersonates in its Hello.
  ReplicaId replica{66600};
  /// Wall-clock delay between trickled bytes (TCP drives); 0 = none.
  unsigned trickle_delay_ms = 0;
  /// How many bytes of the valid Hello frame ByteTrickle dribbles
  /// before stalling (must stay short of a full 8-byte header + 3-byte
  /// payload for the stall to leave the server mid-read).
  std::size_t trickle_bytes = 6;
  /// Zero-length writes after the dribble: free on TCP, but each one
  /// charges per-write latency on a LoopbackLink, modelling a peer
  /// that keeps the contact open while sending nothing.
  std::size_t trickle_stall_writes = 40;
  /// After the script, drain replies until EOF/reset to observe the
  /// server's reaction — and to keep our own close from racing the
  /// server with an RST that discards the hostile bytes unprocessed.
  /// Disable for sequential loopback drives, where the server has not
  /// run yet.
  bool read_replies = true;
};

struct ChaosOutcome {
  std::size_t bytes_sent = 0;
  /// A write or the final read failed: the server (or link) cut us.
  bool server_cut_us = false;
  std::string note;
};

/// Run one attack script as the connecting client on `connection`.
/// Never throws: transport failures are the expected server reaction
/// and are folded into the outcome.
ChaosOutcome run_chaos_attack(Connection& connection, ChaosAttack attack,
                              const ChaosPeerOptions& options = {});

}  // namespace pfrdtn::net
