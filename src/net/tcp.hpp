#pragma once

/// \file tcp.hpp
/// POSIX TCP transport: blocking sockets with connect/read/write
/// timeouts, so two `pfrdtn` processes can replicate over a real
/// network. All failures (refused, reset, timed out, EOF) surface as
/// TransportError; the session layer turns them into incomplete syncs.

#include <chrono>
#include <cstdint>
#include <string>

#include "net/transport.hpp"

namespace pfrdtn::net {

struct TcpOptions {
  int connect_timeout_ms = 5000;
  /// Per-read / per-write timeout; a peer that stalls longer than this
  /// mid-sync counts as a closed contact.
  int io_timeout_ms = 10000;
  /// Absolute session deadline, armed when the connection object is
  /// constructed; 0 disables. Per-op timeouts alone cannot stop a
  /// slow-loris peer — one byte every io_timeout_ms resets the per-op
  /// clock forever — so every read/write also polls against this
  /// wall-clock deadline and throws TransportError once it passes.
  int session_deadline_ms = 0;
  /// Minimum progress: after min_progress_grace_ms the session must
  /// have moved at least this many bytes per second (both directions
  /// combined) or the next I/O throws TransportError. 0 disables.
  std::size_t min_bytes_per_second = 0;
  int min_progress_grace_ms = 2000;
  /// listen(2) backlog. Deep enough by default that a connection storm
  /// (the concurrent e2e drives 100+ clients at once) queues instead
  /// of getting refused.
  int listen_backlog = 256;
};

/// Toggle O_NONBLOCK on a raw socket fd (the event-loop server runs
/// every connection non-blocking).
void set_nonblocking(int fd, bool enable);

/// Disable Nagle on a raw socket fd: sync frames are small and the
/// protocol alternates request/response.
void set_tcp_nodelay(int fd);

/// "ip:port" of the remote endpoint of a connected socket.
std::string peer_description_of(int fd);

/// An established TCP connection (takes ownership of the fd).
class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd, TcpOptions options = {});
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  void write(const std::uint8_t* data, std::size_t size) override;
  void read(std::uint8_t* data, std::size_t size) override;
  void close() override;
  /// "ip:port" of the remote endpoint, captured at construction (still
  /// meaningful after the peer disconnects mid-session).
  [[nodiscard]] std::string peer_description() const override {
    return peer_;
  }

 private:
  /// Poll fd_ for `events` (POLLIN/POLLOUT) within the per-op timeout
  /// AND the session deadline; also enforces the minimum-progress rate.
  /// `op` names the operation for error messages ("read"/"write").
  void wait_ready(short events, const char* op);

  int fd_;
  std::string peer_;
  TcpOptions options_;
  std::chrono::steady_clock::time_point started_;
  std::size_t bytes_moved_ = 0;
};

/// Listening socket. Port 0 binds an ephemeral port; port() reports
/// the actual one.
class TcpListener {
 public:
  explicit TcpListener(std::uint16_t port, TcpOptions options = {});
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Block until a client connects; throws TransportError on failure.
  ConnectionPtr accept();

  /// Non-blocking accept for event-loop servers (requires
  /// set_nonblocking(true) first): returns the raw connected fd, or -1
  /// when no connection is pending. Throws TransportError on real
  /// failures (EMFILE, ...). The caller owns the fd.
  int accept_raw();

  /// The listening socket fd, for registration with an event loop.
  [[nodiscard]] int fd() const { return fd_; }

  /// Toggle non-blocking mode on the listening socket.
  void set_nonblocking(bool enable);

 private:
  int fd_;
  TcpOptions options_;
  std::uint16_t port_ = 0;
};

/// Connect to host:port (numeric IP or resolvable name).
ConnectionPtr tcp_connect(const std::string& host, std::uint16_t port,
                          TcpOptions options = {});

}  // namespace pfrdtn::net
