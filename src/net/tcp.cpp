#include "net/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/require.hpp"

namespace pfrdtn::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw TransportError(what + ": " + std::strerror(errno));
}

void set_io_timeouts(int fd, const TcpOptions& options) {
  timeval tv{};
  tv.tv_sec = options.io_timeout_ms / 1000;
  tv.tv_usec = (options.io_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  // Sync frames are small; don't let Nagle add round trips to the
  // request/response alternation.
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

void set_nonblocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) fail("tcp: fcntl(F_GETFL) failed");
  const int wanted = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd, F_SETFL, wanted) != 0)
    fail("tcp: fcntl(F_SETFL) failed");
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string peer_description_of(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
      addr.sin_family == AF_INET) {
    char ip[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    return std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
  }
  return "unknown";
}

TcpConnection::TcpConnection(int fd, TcpOptions options)
    : fd_(fd),
      options_(options),
      started_(std::chrono::steady_clock::now()) {
  PFRDTN_REQUIRE(fd_ >= 0);
  set_io_timeouts(fd_, options);
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd_, reinterpret_cast<sockaddr*>(&addr), &len) == 0 &&
      addr.sin_family == AF_INET) {
    char ip[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &addr.sin_addr, ip, sizeof(ip));
    peer_ = std::string(ip) + ":" + std::to_string(ntohs(addr.sin_port));
  } else {
    peer_ = "unknown";
  }
}

TcpConnection::~TcpConnection() { close(); }

void TcpConnection::wait_ready(short events, const char* op) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  const auto elapsed = duration_cast<milliseconds>(
                           std::chrono::steady_clock::now() - started_)
                           .count();
  int budget = options_.io_timeout_ms;
  bool deadline_bounded = false;
  if (options_.session_deadline_ms > 0) {
    const long long remaining = options_.session_deadline_ms - elapsed;
    if (remaining <= 0)
      throw TransportError(std::string("tcp: ") + op +
                           " aborted: session deadline exceeded");
    if (remaining < budget) {
      budget = static_cast<int>(remaining);
      deadline_bounded = true;
    }
  }
  if (options_.min_bytes_per_second > 0 &&
      elapsed > options_.min_progress_grace_ms) {
    // Bytes-per-elapsed-second, evaluated before each op so a peer
    // that keeps the link "alive" with a trickle is still cut.
    const auto floor = options_.min_bytes_per_second *
                       static_cast<std::size_t>(elapsed) / 1000;
    if (bytes_moved_ < floor)
      throw TransportError(
          std::string("tcp: ") + op + " aborted: peer below minimum " +
          "progress (" + std::to_string(bytes_moved_) + " bytes in " +
          std::to_string(elapsed) + "ms)");
  }
  pollfd pfd{fd_, events, 0};
  for (;;) {
    const int ready = ::poll(&pfd, 1, budget);
    if (ready > 0) return;
    if (ready == 0) {
      if (deadline_bounded)
        throw TransportError(std::string("tcp: ") + op +
                             " aborted: session deadline exceeded");
      throw TransportError(std::string("tcp: ") + op + " timed out");
    }
    if (errno == EINTR) continue;
    fail(std::string("tcp: poll before ") + op + " failed");
  }
}

void TcpConnection::write(const std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) throw TransportError("tcp: write on closed connection");
  std::size_t sent = 0;
  while (sent < size) {
    wait_ready(POLLOUT, "write");
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("tcp: write timed out");
      fail("tcp: write failed");
    }
    sent += static_cast<std::size_t>(n);
    bytes_moved_ += static_cast<std::size_t>(n);
  }
}

void TcpConnection::read(std::uint8_t* data, std::size_t size) {
  if (fd_ < 0) throw TransportError("tcp: read on closed connection");
  std::size_t got = 0;
  while (got < size) {
    wait_ready(POLLIN, "read");
    const ssize_t n = ::recv(fd_, data + got, size - got, 0);
    if (n == 0)
      throw TransportError("tcp: connection closed by peer mid-read");
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw TransportError("tcp: read timed out");
      fail("tcp: read failed");
    }
    got += static_cast<std::size_t>(n);
    bytes_moved_ += static_cast<std::size_t>(n);
  }
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::TcpListener(std::uint16_t port, TcpOptions options)
    : fd_(::socket(AF_INET, SOCK_STREAM, 0)), options_(options) {
  if (fd_ < 0) fail("tcp: socket failed");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("tcp: bind failed");
  if (::listen(fd_, options.listen_backlog) != 0)
    fail("tcp: listen failed");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    fail("tcp: getsockname failed");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

ConnectionPtr TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpConnection>(fd, options_);
    if (errno == EINTR) continue;
    fail("tcp: accept failed");
  }
}

int TcpListener::accept_raw() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    fail("tcp: accept failed");
  }
}

void TcpListener::set_nonblocking(bool enable) {
  net::set_nonblocking(fd_, enable);
}

ConnectionPtr tcp_connect(const std::string& host, std::uint16_t port,
                          TcpOptions options) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string service = std::to_string(port);
  const int rc =
      ::getaddrinfo(host.c_str(), service.c_str(), &hints, &resolved);
  if (rc != 0)
    throw TransportError("tcp: cannot resolve " + host + ": " +
                         gai_strerror(rc));

  int fd = -1;
  std::string error = "tcp: no addresses for " + host;
  for (addrinfo* it = resolved; it != nullptr; it = it->ai_next) {
    fd = ::socket(it->ai_family, it->ai_socktype, it->ai_protocol);
    if (fd < 0) continue;
    // Bounded connect: non-blocking connect + poll, then back to
    // blocking with io timeouts.
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    int result = ::connect(fd, it->ai_addr, it->ai_addrlen);
    if (result != 0 && errno == EINPROGRESS) {
      pollfd pfd{fd, POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, options.connect_timeout_ms);
      if (ready == 1) {
        int so_error = 0;
        socklen_t len = sizeof(so_error);
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len);
        result = so_error == 0 ? 0 : -1;
        errno = so_error;
      } else {
        result = -1;
        errno = ETIMEDOUT;
      }
    }
    if (result == 0) {
      ::fcntl(fd, F_SETFL, flags);
      break;
    }
    error = "tcp: connect to " + host + ":" + service + " failed: " +
            std::strerror(errno);
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(resolved);
  if (fd < 0) throw TransportError(error);
  return std::make_unique<TcpConnection>(fd, options);
}

}  // namespace pfrdtn::net
