#include "net/quarantine.hpp"

#include <algorithm>

#include "util/backoff.hpp"

namespace pfrdtn::net {

void QuarantineTable::age(Entry& entry, std::uint64_t now_ms) const {
  while (!entry.history.empty() &&
         now_ms >= entry.history.front().at_ms +
                       options_.history_window_ms) {
    entry.history.pop_front();
  }
  if (options_.ejection_decay_ms == 0 || entry.ejections == 0) return;
  // Quiet time since the last violation (or the last decay step)
  // forgives past ejections one interval at a time.
  if (now_ms <= entry.decay_from_ms) return;
  const std::uint64_t quiet = now_ms - entry.decay_from_ms;
  const std::uint64_t steps = quiet / options_.ejection_decay_ms;
  if (steps == 0) return;
  const std::size_t forgiven =
      std::min<std::uint64_t>(steps, entry.ejections);
  entry.ejections -= forgiven;
  entry.decay_from_ms +=
      static_cast<std::uint64_t>(forgiven) * options_.ejection_decay_ms;
}

bool QuarantineTable::rate_trips(const Entry& entry) const {
  if (entry.history.size() < options_.error_rate_min_outcomes)
    return false;
  std::size_t violations = 0;
  for (const Outcome& outcome : entry.history)
    if (outcome.violation) violations += 1;
  const double rate = static_cast<double>(violations) /
                      static_cast<double>(entry.history.size());
  return rate >= options_.error_rate_threshold;
}

AdmitDecision QuarantineTable::admit(const std::string& peer,
                                     std::uint64_t now_ms) {
  AdmitDecision decision;
  const auto it = entries_.find(peer);
  if (it == entries_.end()) return decision;
  Entry& entry = it->second;
  age(entry, now_ms);
  decision.strikes = entry.ejections;
  if (now_ms >= entry.until_ms) {
    // Window elapsed: admit. The ejection count persists (decaying
    // with quiet time) so a repeat offender escalates instead of
    // starting over.
    decision.rejections = entry.rejections;
    if (entry.ejections == 0 && entry.consecutive == 0 &&
        entry.history.empty()) {
      entries_.erase(it);
    }
    return decision;
  }
  entry.rejections += 1;
  total_rejections_ += 1;
  decision.rejected = true;
  decision.retry_after_ms = entry.until_ms - now_ms;
  decision.rejections = entry.rejections;
  return decision;
}

std::uint64_t QuarantineTable::punish(const std::string& peer,
                                      std::uint64_t now_ms) {
  Entry& entry = entries_[peer];
  age(entry, now_ms);
  entry.history.push_back({now_ms, true});
  entry.consecutive += 1;
  // An active offender earns no quiet-time forgiveness.
  entry.decay_from_ms = now_ms;
  const bool tripped =
      entry.consecutive >= options_.consecutive_failure_threshold ||
      rate_trips(entry);
  if (!tripped) return 0;
  entry.ejections += 1;
  entry.consecutive = 0;
  total_ejections_ += 1;
  // min(base << (ejections-1), max), without shifting past 63 bits.
  const std::size_t doublings =
      std::min<std::size_t>(entry.ejections - 1, 40);
  std::uint64_t window = options_.base_backoff_ms;
  for (std::size_t i = 0;
       i < doublings && window < options_.max_backoff_ms; ++i) {
    window *= 2;
  }
  window = std::min(window, options_.max_backoff_ms);
  // Jitter in [window/2, window] de-synchronizes retry storms from
  // many peers punished at once.
  window = jittered_delay_ms(window, jitter_);
  entry.until_ms = now_ms + window;
  return window;
}

void QuarantineTable::reward(const std::string& peer,
                             std::uint64_t now_ms) {
  const auto it = entries_.find(peer);
  if (it == entries_.end()) return;  // clean peers stay off the books
  Entry& entry = it->second;
  age(entry, now_ms);
  entry.consecutive = 0;
  entry.history.push_back({now_ms, false});
  const bool any_violation = std::any_of(
      entry.history.begin(), entry.history.end(),
      [](const Outcome& outcome) { return outcome.violation; });
  if (entry.ejections == 0 && now_ms >= entry.until_ms &&
      !any_violation) {
    entries_.erase(it);
  }
}

std::size_t QuarantineTable::strikes(const std::string& peer) const {
  const auto it = entries_.find(peer);
  return it == entries_.end() ? 0 : it->second.ejections;
}

std::size_t QuarantineTable::consecutive_failures(
    const std::string& peer) const {
  const auto it = entries_.find(peer);
  return it == entries_.end() ? 0 : it->second.consecutive;
}

double QuarantineTable::error_rate(const std::string& peer,
                                   std::uint64_t now_ms) const {
  const auto it = entries_.find(peer);
  if (it == entries_.end()) return 0.0;
  std::size_t total = 0;
  std::size_t violations = 0;
  for (const Outcome& outcome : it->second.history) {
    if (now_ms >= outcome.at_ms + options_.history_window_ms) continue;
    total += 1;
    if (outcome.violation) violations += 1;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(violations) / static_cast<double>(total);
}

}  // namespace pfrdtn::net
