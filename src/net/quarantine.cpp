#include "net/quarantine.hpp"

#include <algorithm>

namespace pfrdtn::net {

AdmitDecision QuarantineTable::admit(const std::string& peer,
                                     std::uint64_t now_ms) {
  AdmitDecision decision;
  const auto it = entries_.find(peer);
  if (it == entries_.end()) return decision;
  Entry& entry = it->second;
  decision.strikes = entry.strikes;
  if (now_ms >= entry.until_ms) {
    // Window elapsed: admit, but keep the strike count so a repeat
    // offender escalates instead of starting over.
    decision.rejections = entry.rejections;
    return decision;
  }
  entry.rejections += 1;
  total_rejections_ += 1;
  decision.rejected = true;
  decision.retry_after_ms = entry.until_ms - now_ms;
  decision.rejections = entry.rejections;
  return decision;
}

std::uint64_t QuarantineTable::punish(const std::string& peer,
                                      std::uint64_t now_ms) {
  Entry& entry = entries_[peer];
  entry.strikes += 1;
  // min(base << (strikes-1), max), without shifting past 63 bits.
  const std::size_t doublings =
      std::min<std::size_t>(entry.strikes - 1, 40);
  std::uint64_t window = options_.base_backoff_ms;
  for (std::size_t i = 0; i < doublings && window < options_.max_backoff_ms;
       ++i) {
    window *= 2;
  }
  window = std::min(window, options_.max_backoff_ms);
  // Jitter in [window/2, window] de-synchronizes retry storms from
  // many peers punished at once.
  const std::uint64_t half = window / 2;
  window = half + (half > 0 ? jitter_.below(half + 1) : 0);
  entry.until_ms = now_ms + window;
  return window;
}

void QuarantineTable::reward(const std::string& peer) {
  entries_.erase(peer);
}

std::size_t QuarantineTable::strikes(const std::string& peer) const {
  const auto it = entries_.find(peer);
  return it == entries_.end() ? 0 : it->second.strikes;
}

}  // namespace pfrdtn::net
