#include "net/fault_link.hpp"

#include <chrono>
#include <thread>
#include <vector>

namespace pfrdtn::net {

std::string link_fault_kind_name(LinkFaultKind kind) {
  switch (kind) {
    case LinkFaultKind::Cut:
      return "cut";
    case LinkFaultKind::Stall:
      return "stall";
    case LinkFaultKind::Reset:
      return "reset";
    case LinkFaultKind::Truncate:
      return "truncate";
  }
  return "unknown";
}

LinkFaultSchedule LinkFaultInjector::draw() {
  LinkFaultSchedule schedule;
  if (plan_.fault_rate <= 0.0) return schedule;  // no draws at rate 0
  if (!rng_.chance(plan_.fault_rate)) return schedule;
  // Kind draw among the enabled kinds; everything disabled
  // degenerates to Cut (the most conservative fault).
  std::vector<LinkFaultKind> kinds;
  if (plan_.cut) kinds.push_back(LinkFaultKind::Cut);
  if (plan_.stall) kinds.push_back(LinkFaultKind::Stall);
  if (plan_.reset) kinds.push_back(LinkFaultKind::Reset);
  if (plan_.truncate) kinds.push_back(LinkFaultKind::Truncate);
  schedule.armed = true;
  schedule.kind =
      kinds.empty() ? LinkFaultKind::Cut : kinds[rng_.below(kinds.size())];
  const std::uint64_t lo = plan_.min_fault_bytes;
  const std::uint64_t hi =
      plan_.max_fault_bytes < lo ? lo : plan_.max_fault_bytes;
  schedule.at_bytes = lo + rng_.below(hi - lo + 1);
  faults_scheduled_ += 1;
  return schedule;
}

ConnectionPtr LinkFaultInjector::wrap(ConnectionPtr inner) {
  if (plan_.fault_rate <= 0.0) return inner;  // passthrough, no draws
  return std::make_unique<FaultInjectingConnection>(std::move(inner),
                                                    draw(), this);
}

void LinkFaultInjector::sleep_ms(std::uint64_t ms) const {
  if (sleep_hook_) {
    sleep_hook_(ms);
    return;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

std::size_t FaultInjectingConnection::budget_for(std::size_t size) const {
  if (bytes_ >= schedule_.at_bytes) return 0;
  const std::uint64_t room = schedule_.at_bytes - bytes_;
  return room < size ? static_cast<std::size_t>(room) : size;
}

void FaultInjectingConnection::fire(const char* op) {
  fired_ = true;
  injector_->note_injected();
  throw TransportError(
      "link fault: " + link_fault_kind_name(schedule_.kind) + " after " +
      std::to_string(bytes_) + " bytes (" + op + ")");
}

void FaultInjectingConnection::write(const std::uint8_t* data,
                                     std::size_t size) {
  if (fired_)
    throw TransportError("link fault: connection already failed");
  if (truncated_) {
    // Bytes the kernel accepted but the dead link never delivered:
    // claim success, deliver nothing.
    bytes_ += size;
    return;
  }
  const bool due = schedule_.armed && !stalled_ &&
                   bytes_ + size >= schedule_.at_bytes;
  if (!due) {
    inner_->write(data, size);
    bytes_ += size;
    return;
  }
  switch (schedule_.kind) {
    case LinkFaultKind::Stall:
      stalled_ = true;
      injector_->note_injected();
      injector_->sleep_ms(injector_->plan().stall_ms);
      inner_->write(data, size);
      bytes_ += size;
      return;
    case LinkFaultKind::Cut: {
      // The in-budget prefix reaches the peer — a real contact window
      // closes mid-stream, not at a frame boundary.
      const std::size_t budget = budget_for(size);
      if (budget > 0) inner_->write(data, budget);
      bytes_ += budget;
      fire("write");
    }
    case LinkFaultKind::Reset:
      // RST: buffered bytes dropped wholesale, nothing delivered.
      fire("write");
    case LinkFaultKind::Truncate: {
      const std::size_t budget = budget_for(size);
      if (budget > 0) inner_->write(data, budget);
      bytes_ += size;
      truncated_ = true;
      injector_->note_injected();
      return;
    }
  }
}

void FaultInjectingConnection::read(std::uint8_t* data, std::size_t size) {
  if (fired_)
    throw TransportError("link fault: connection already failed");
  if (truncated_) fire("read");
  const bool due = schedule_.armed && !stalled_ &&
                   bytes_ + size >= schedule_.at_bytes;
  if (!due) {
    inner_->read(data, size);
    bytes_ += size;
    return;
  }
  switch (schedule_.kind) {
    case LinkFaultKind::Stall:
      stalled_ = true;
      injector_->note_injected();
      injector_->sleep_ms(injector_->plan().stall_ms);
      inner_->read(data, size);
      bytes_ += size;
      return;
    case LinkFaultKind::Cut:
    case LinkFaultKind::Truncate: {
      // The link died mid-read: whatever prefix was in flight arrives,
      // then the stream ends.
      const std::size_t budget = budget_for(size);
      if (budget > 0) inner_->read(data, budget);
      bytes_ += budget;
      fire("read");
    }
    case LinkFaultKind::Reset:
      fire("read");
  }
}

}  // namespace pfrdtn::net
