#pragma once

/// \file fault_link.hpp
/// Seeded link-fault injection — the flaky radio contact, made
/// deterministic. The mirror of persist::FaultInjectingEnv for the
/// transport: a Connection decorator that cuts, stalls, resets, or
/// truncates a live byte stream at a scheduled cumulative byte offset.
/// The retrying contact discipline (sync-with --retry-max) and the
/// flaky-link e2e drive real sessions through it to prove that
/// repeated cut attempts converge byte-identically to a fault-free
/// control.
///
/// Fault semantics mirror what a dying contact actually does to a
/// stream:
///
///   - Cut: the operation that crosses the scheduled offset delivers
///     its in-budget prefix to the inner connection, then throws
///     TransportError — the mid-stream contact-window close. Further
///     operations throw immediately.
///   - Reset: the crossing operation delivers *nothing* and throws —
///     the RST case, where buffered bytes are dropped wholesale.
///   - Stall: the crossing operation sleeps `stall_ms`, then proceeds
///     normally — the radio fade the peer's deadline/min-progress
///     machinery must either tolerate or cut. One stall per
///     connection; the stream survives.
///   - Truncate: writes past the offset are silently discarded while
///     claiming success — bytes the kernel buffered but the link never
///     delivered. The next read throws (the peer is gone); the frame
///     layer on the far side sees a clean prefix and an incomplete
///     sync.
///
/// Determinism: schedules are drawn from a private xoshiro stream
/// seeded at construction — one `chance` draw per wrapped connection,
/// plus kind/offset draws only when the connection faults. At rate 0
/// there are NO draws at all and wrap() returns the inner connection
/// untouched, so zero-rate runs are bit-identical to runs without the
/// wrapper — the same replay contract FaultInjectingEnv keeps for the
/// disk.

#include <cstdint>
#include <functional>
#include <string>

#include "net/transport.hpp"
#include "util/rng.hpp"

namespace pfrdtn::net {

enum class LinkFaultKind : std::uint8_t {
  Cut = 0,
  Stall = 1,
  Reset = 2,
  Truncate = 3,
};

/// Log label for a fault kind ("cut", "stall", "reset", "truncate").
std::string link_fault_kind_name(LinkFaultKind kind);

struct LinkFaultPlan {
  std::uint64_t seed = 0;
  /// Per-connection probability that a fault is scheduled (0 =
  /// passthrough; no RNG draws at all, wrap() returns the inner
  /// connection unchanged).
  double fault_rate = 0.0;
  /// Scheduled offsets are drawn uniformly in
  /// [min_fault_bytes, max_fault_bytes], counted over the cumulative
  /// bytes moved in both directions. A session whose whole exchange
  /// fits under the drawn offset never faults — which is exactly how
  /// retries converge: monotone progress shrinks each attempt until
  /// one fits inside its contact window.
  std::uint64_t min_fault_bytes = 1;
  std::uint64_t max_fault_bytes = 4096;
  /// How long a Stall fault freezes the stream.
  std::uint64_t stall_ms = 50;
  /// Which kinds the kind-draw may pick (all off degenerates to Cut).
  bool cut = true;
  bool stall = true;
  bool reset = true;
  bool truncate = true;
};

/// One drawn fault schedule for one connection.
struct LinkFaultSchedule {
  bool armed = false;
  LinkFaultKind kind = LinkFaultKind::Cut;
  std::uint64_t at_bytes = 0;
};

/// Draws per-connection schedules from one seeded stream and wraps
/// Connections with them. Shared across the retry attempts of one
/// contact so every re-dial sees a fresh draw — the "cuts every sync
/// at least once" schedules of the flaky-link e2e are rate-1.0
/// injectors whose offsets this stream walks deterministically.
class LinkFaultInjector {
 public:
  explicit LinkFaultInjector(LinkFaultPlan plan)
      : plan_(plan), rng_(plan.seed) {}

  [[nodiscard]] const LinkFaultPlan& plan() const { return plan_; }

  /// Draw the next connection's schedule. No draws at rate 0.
  LinkFaultSchedule draw();

  /// Draw a schedule and wrap `inner` with it. At rate 0 the inner
  /// connection is returned untouched (no wrapper, no draws).
  ConnectionPtr wrap(ConnectionPtr inner);

  /// Connections whose draw armed a fault.
  [[nodiscard]] std::size_t faults_scheduled() const {
    return faults_scheduled_;
  }
  /// Faults that actually fired (the stream crossed its offset).
  [[nodiscard]] std::size_t faults_injected() const {
    return faults_injected_;
  }
  void note_injected() { faults_injected_ += 1; }

  /// Replace the stall sleep (tests record instead of sleeping).
  void set_sleep_hook(std::function<void(std::uint64_t)> hook) {
    sleep_hook_ = std::move(hook);
  }
  void sleep_ms(std::uint64_t ms) const;

 private:
  LinkFaultPlan plan_;
  Rng rng_;
  std::size_t faults_scheduled_ = 0;
  std::size_t faults_injected_ = 0;
  std::function<void(std::uint64_t)> sleep_hook_;
};

/// The Connection decorator enforcing one drawn schedule. The byte
/// counter covers both directions, so "cut after N bytes" means N
/// bytes of total session traffic through this endpoint.
class FaultInjectingConnection final : public Connection {
 public:
  /// `injector` must outlive the connection (it owns the stall hook
  /// and the injected-fault counter).
  FaultInjectingConnection(ConnectionPtr inner,
                           LinkFaultSchedule schedule,
                           LinkFaultInjector* injector)
      : inner_(std::move(inner)),
        schedule_(schedule),
        injector_(injector) {}

  void write(const std::uint8_t* data, std::size_t size) override;
  void read(std::uint8_t* data, std::size_t size) override;
  void close() override { inner_->close(); }
  [[nodiscard]] std::string peer_description() const override {
    return inner_->peer_description();
  }

  [[nodiscard]] std::uint64_t bytes_moved() const { return bytes_; }
  [[nodiscard]] bool fault_fired() const {
    return fired_ || stalled_ || truncated_;
  }

 private:
  /// Bytes this operation may move before crossing the offset;
  /// `size` when no fault is due.
  [[nodiscard]] std::size_t budget_for(std::size_t size) const;
  [[noreturn]] void fire(const char* op);

  ConnectionPtr inner_;
  LinkFaultSchedule schedule_;
  LinkFaultInjector* injector_;
  std::uint64_t bytes_ = 0;
  bool fired_ = false;    ///< terminal fault fired: all further ops throw
  bool stalled_ = false;  ///< the one stall already taken
  /// Truncating: writes silently discarded, next read throws.
  bool truncated_ = false;
};

}  // namespace pfrdtn::net
