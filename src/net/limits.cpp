#include "net/limits.hpp"

#include <limits>

namespace pfrdtn::net {

const char* frame_type_name(std::uint8_t type) {
  switch (static_cast<repl::SyncFrame>(type)) {
    case repl::SyncFrame::Hello:
      return "Hello";
    case repl::SyncFrame::Request:
      return "Request";
    case repl::SyncFrame::BatchBegin:
      return "BatchBegin";
    case repl::SyncFrame::BatchItem:
      return "BatchItem";
    case repl::SyncFrame::BatchEnd:
      return "BatchEnd";
    case repl::SyncFrame::SummaryRequest:
      return "SummaryRequest";
    case repl::SyncFrame::SummaryMatch:
      return "SummaryMatch";
    case repl::SyncFrame::SummaryMiss:
      return "SummaryMiss";
    case repl::SyncFrame::Error:
      return "Error";
    case repl::SyncFrame::BatchAck:
      return "BatchAck";
  }
  return "unknown";
}

std::uint32_t ResourceLimits::frame_payload_cap(std::uint8_t type) const {
  switch (static_cast<repl::SyncFrame>(type)) {
    case repl::SyncFrame::Hello:
      return max_hello_bytes;
    case repl::SyncFrame::Request:
      return max_request_bytes;
    case repl::SyncFrame::BatchBegin:
      return max_batch_begin_bytes;
    case repl::SyncFrame::BatchItem:
      return max_item_bytes;
    case repl::SyncFrame::BatchEnd:
      return max_batch_end_bytes;
    case repl::SyncFrame::SummaryRequest:
      return max_summary_bytes;
    case repl::SyncFrame::SummaryMatch:
    case repl::SyncFrame::SummaryMiss:
      return max_summary_reply_bytes;
    case repl::SyncFrame::Error:
      return max_error_bytes;
    case repl::SyncFrame::BatchAck:
      return max_batch_ack_bytes;
  }
  throw ContractViolation("unknown frame type " + std::to_string(type));
}

ResourceLimits ResourceLimits::unlimited() {
  ResourceLimits limits;
  limits.max_hello_bytes = kMaxFramePayload;
  limits.max_request_bytes = kMaxFramePayload;
  limits.max_batch_begin_bytes = kMaxFramePayload;
  limits.max_item_bytes = kMaxFramePayload;
  limits.max_batch_end_bytes = kMaxFramePayload;
  limits.max_summary_bytes = kMaxFramePayload;
  limits.max_summary_reply_bytes = kMaxFramePayload;
  limits.max_error_bytes = kMaxFramePayload;
  limits.max_batch_ack_bytes = kMaxFramePayload;
  limits.max_batch_items = std::numeric_limits<std::uint64_t>::max();
  limits.max_knowledge_entries = std::numeric_limits<std::size_t>::max();
  limits.max_policy_blob_bytes = std::numeric_limits<std::size_t>::max();
  limits.max_decode_elements = std::numeric_limits<std::size_t>::max();
  limits.session_byte_ceiling = std::numeric_limits<std::uint64_t>::max();
  return limits;
}

void SessionBudget::admit_frame(std::uint8_t type,
                                std::uint32_t payload_length) const {
  // frame_payload_cap rejects unknown type bytes before any cap check.
  const std::uint32_t cap = limits_.frame_payload_cap(type);
  if (payload_length > cap) {
    throw ResourceLimitError(
        std::string(frame_type_name(type)) + " frame of " +
        std::to_string(payload_length) + " bytes exceeds the " +
        std::to_string(cap) + "-byte cap");
  }
  const std::uint64_t framed = framed_size(payload_length);
  if (framed > limits_.session_byte_ceiling - bytes_) {
    throw ResourceLimitError(
        "frame would push the session past its " +
        std::to_string(limits_.session_byte_ceiling) +
        "-byte ceiling (" + std::to_string(bytes_) + " bytes used)");
  }
}

void SessionBudget::charge(std::size_t wire_bytes) {
  if (wire_bytes > limits_.session_byte_ceiling - bytes_) {
    throw ResourceLimitError(
        "session byte ceiling of " +
        std::to_string(limits_.session_byte_ceiling) + " bytes exceeded");
  }
  bytes_ += wire_bytes;
}

}  // namespace pfrdtn::net
