#include "net/loopback.hpp"

#include <algorithm>
#include <deque>
#include <string>

namespace pfrdtn::net {

struct LoopbackLink::State {
  LoopbackFaults faults;
  std::deque<std::uint8_t> to_a;
  std::deque<std::uint8_t> to_b;
  std::size_t delivered = 0;
  double seconds = 0.0;
  bool cut = false;  ///< contact window closed by the byte budget

  /// Remaining byte budget, if the contact window is bounded.
  [[nodiscard]] std::size_t budget_left() const {
    if (!faults.cut_after_bytes) return SIZE_MAX;
    return *faults.cut_after_bytes -
           std::min(*faults.cut_after_bytes, delivered);
  }

  void charge(std::size_t bytes) {
    seconds += faults.latency_seconds;
    if (faults.bytes_per_second > 0)
      seconds += static_cast<double>(bytes) /
                 static_cast<double>(faults.bytes_per_second);
  }

  [[nodiscard]] bool past_deadline() const {
    return faults.deadline_seconds && seconds > *faults.deadline_seconds;
  }
};

class LoopbackLink::Endpoint : public Connection {
 public:
  Endpoint(std::shared_ptr<State> state, bool is_a)
      : state_(std::move(state)), is_a_(is_a) {}

  void write(const std::uint8_t* data, std::size_t size) override {
    if (closed_ || state_->cut)
      throw TransportError("loopback: write on closed link");
    auto& inbox = is_a_ ? state_->to_b : state_->to_a;
    const std::size_t deliverable =
        std::min(size, state_->budget_left());
    inbox.insert(inbox.end(), data, data + deliverable);
    state_->delivered += deliverable;
    state_->charge(deliverable);
    if (deliverable < size) {
      state_->cut = true;
      throw TransportError(
          "loopback: contact window closed after " +
          std::to_string(state_->delivered) + " bytes");
    }
    // The write that pushes simulated time past the session deadline
    // still delivers (it was in flight), but the link is cut for
    // everything after it — the loopback analogue of the TCP deadline.
    if (state_->past_deadline()) {
      state_->cut = true;
      throw TransportError(
          "loopback: session deadline exceeded after " +
          std::to_string(state_->seconds) + " simulated seconds");
    }
  }

  void read(std::uint8_t* data, std::size_t size) override {
    if (closed_) throw TransportError("loopback: read on closed link");
    auto& inbox = is_a_ ? state_->to_a : state_->to_b;
    // Half-duplex discipline: by the time a side reads, the peer has
    // written everything it will write — missing bytes mean the link
    // was cut (or the peer failed) mid-message.
    if (inbox.size() < size)
      throw TransportError("loopback: link dropped mid-read (wanted " +
                           std::to_string(size) + " bytes, have " +
                           std::to_string(inbox.size()) + ")");
    std::copy_n(inbox.begin(), size, data);
    inbox.erase(inbox.begin(),
                inbox.begin() + static_cast<std::ptrdiff_t>(size));
  }

  void close() override { closed_ = true; }

 private:
  std::shared_ptr<State> state_;
  bool is_a_;
  bool closed_ = false;
};

LoopbackLink::LoopbackLink(LoopbackFaults faults)
    : state_(std::make_shared<State>()) {
  state_->faults = faults;
  a_ = std::make_unique<Endpoint>(state_, /*is_a=*/true);
  b_ = std::make_unique<Endpoint>(state_, /*is_a=*/false);
}

LoopbackLink::~LoopbackLink() = default;

Connection& LoopbackLink::a() { return *a_; }
Connection& LoopbackLink::b() { return *b_; }

std::size_t LoopbackLink::bytes_delivered() const {
  return state_->delivered;
}

double LoopbackLink::simulated_seconds() const {
  return state_->seconds;
}

}  // namespace pfrdtn::net
