#include "net/event_loop.hpp"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/require.hpp"

namespace pfrdtn::net {

EventLoop::EventLoop()
    : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)),
      wake_fd_(::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK)) {
  PFRDTN_REQUIRE(epoll_fd_ >= 0);
  PFRDTN_REQUIRE(wake_fd_ >= 0);
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  PFRDTN_REQUIRE(
      ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0);
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::watch(int fd, std::uint32_t events, FdCallback callback) {
  PFRDTN_REQUIRE(watchers_.find(fd) == watchers_.end());
  auto watcher = std::make_shared<Watcher>();
  watcher->callback = std::move(callback);
  watchers_.emplace(fd, std::move(watcher));
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  PFRDTN_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == 0);
}

void EventLoop::modify(int fd, std::uint32_t events) {
  PFRDTN_REQUIRE(watchers_.find(fd) != watchers_.end());
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  PFRDTN_REQUIRE(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0);
}

void EventLoop::forget(int fd) {
  const auto it = watchers_.find(fd);
  if (it == watchers_.end()) return;
  it->second->alive = false;  // in-flight dispatch skips it
  watchers_.erase(it);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

EventLoop::TimerId EventLoop::schedule(Clock::time_point when,
                                       std::function<void()> callback) {
  const TimerId id = next_timer_id_++;
  const auto it = timers_.emplace(when, Timer{id, std::move(callback)});
  timer_index_.emplace(id, it);
  return id;
}

void EventLoop::cancel(TimerId id) {
  const auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return;
  timers_.erase(it->second);
  timer_index_.erase(it);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::stop() {
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    stop_flag_ = true;
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // Best-effort: a full eventfd counter already guarantees wakeup.
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mutex_);
    tasks.swap(posted_);
    stop_ = stop_flag_;
  }
  for (auto& task : tasks) task();
}

void EventLoop::fire_due_timers() {
  const auto now = Clock::now();
  while (!timers_.empty() && timers_.begin()->first <= now) {
    auto it = timers_.begin();
    Timer timer = std::move(it->second);
    timer_index_.erase(timer.id);
    timers_.erase(it);
    timer.callback();
  }
}

int EventLoop::next_timeout_ms() const {
  if (timers_.empty()) return -1;
  const auto now = Clock::now();
  const auto when = timers_.begin()->first;
  if (when <= now) return 0;
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      when - now)
                      .count();
  // +1 so we never spin on a sub-millisecond remainder.
  return static_cast<int>(ms) + 1;
}

void EventLoop::run() {
  epoll_event events[64];
  for (;;) {
    drain_posted();
    if (stop_) return;
    fire_due_timers();
    const int n =
        ::epoll_wait(epoll_fd_, events, 64, next_timeout_ms());
    if (n < 0) {
      if (errno == EINTR) continue;
      throw ContractViolation(std::string("epoll_wait failed: ") +
                              std::strerror(errno));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t counter = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &counter, sizeof(counter));
        continue;
      }
      const auto it = watchers_.find(fd);
      if (it == watchers_.end()) continue;
      // Hold a reference across the call: the callback may forget(fd)
      // (or forget+close and watch a new fd with the same number —
      // the alive flag makes the stale dispatch a no-op).
      const std::shared_ptr<Watcher> watcher = it->second;
      if (!watcher->alive) continue;
      watcher->callback(events[i].events);
    }
  }
}

}  // namespace pfrdtn::net
