#pragma once

/// \file transport.hpp
/// The byte-stream abstraction the sync-session layer runs over. A
/// Connection is one end of an established, ordered, reliable-until-
/// it-isn't link: the in-memory loopback (src/net/loopback.hpp) for
/// emulation and fault-injection tests, POSIX TCP
/// (src/net/tcp.hpp) for real inter-process replication.
///
/// Link failures — peer gone, contact window closed, timeout — throw
/// TransportError. They are *environmental*, expected events the
/// session layer converts into incomplete syncs, unlike
/// ContractViolation which always means a bug or malformed wire data.

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

namespace pfrdtn::net {

/// A link failed: connection dropped, timed out, or was refused.
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One endpoint of an established bidirectional byte stream.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Write exactly `size` bytes or throw TransportError. A failing
  /// write may still have delivered a prefix to the peer (a real link
  /// cuts mid-stream); the frame layer makes truncation detectable.
  virtual void write(const std::uint8_t* data, std::size_t size) = 0;

  /// Read exactly `size` bytes or throw TransportError (EOF, link cut,
  /// or timeout).
  virtual void read(std::uint8_t* data, std::size_t size) = 0;

  /// Release the endpoint; further reads/writes throw TransportError.
  virtual void close() = 0;

  /// Human-readable remote endpoint ("10.0.0.2:9944") for log lines;
  /// transports without a meaningful address return a fixed label.
  [[nodiscard]] virtual std::string peer_description() const {
    return "peer";
  }
};

using ConnectionPtr = std::unique_ptr<Connection>;

}  // namespace pfrdtn::net
