#pragma once

/// \file framing.hpp
/// Length-prefixed frames over a Connection, using the header codec in
/// util/byte_buffer.hpp (magic, version, type, length, payload — see
/// docs/net.md). Every sync-protocol message travels as one frame;
/// batches travel as a frame sequence so a dropped connection truncates
/// at an item boundary the session layer can recover from.

#include <optional>
#include <vector>

#include "net/limits.hpp"
#include "net/transport.hpp"
#include "repl/sync.hpp"

namespace pfrdtn::net {

/// One received frame plus its wire footprint (header + payload).
struct Frame {
  repl::SyncFrame type{};
  std::vector<std::uint8_t> payload;
  std::size_t wire_bytes = 0;
};

/// Where a session state machine emits its frames. The machines in
/// session.hpp never touch a Connection directly: they call send() and
/// the host decides whether that blocks on a socket (the blocking and
/// loopback drives) or lands in an in-memory buffer the event loop
/// flushes as the peer drains it (src/net/server.hpp). Returns the
/// frame's wire footprint (header + payload bytes).
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual std::size_t send(repl::SyncFrame type,
                           const std::vector<std::uint8_t>& payload) = 0;
};

/// FrameSink writing straight to a Connection through the budgeted
/// write_frame. Throws TransportError when the link fails, exactly as
/// the pre-machine blocking code did.
class ConnectionFrameSink final : public FrameSink {
 public:
  ConnectionFrameSink(Connection& connection, SessionBudget& budget)
      : connection_(&connection), budget_(&budget) {}
  std::size_t send(repl::SyncFrame type,
                   const std::vector<std::uint8_t>& payload) override;

 private:
  Connection* connection_;
  SessionBudget* budget_;
};

/// FrameSink appending encoded frames to a byte buffer. Never blocks
/// and never throws TransportError — only ResourceLimitError when the
/// session's write side crosses the byte ceiling. The event-loop
/// server hands each connection's machine one of these and flushes the
/// buffer opportunistically.
class BufferFrameSink final : public FrameSink {
 public:
  BufferFrameSink(std::vector<std::uint8_t>& out, SessionBudget& budget)
      : out_(&out), budget_(&budget) {}
  std::size_t send(repl::SyncFrame type,
                   const std::vector<std::uint8_t>& payload) override;

 private:
  std::vector<std::uint8_t>* out_;
  SessionBudget* budget_;
};

/// Incremental frame decoder for non-blocking transports: feed() raw
/// bytes as they arrive, next() pulls complete frames out. The header
/// is admitted against the SessionBudget (unknown type, per-type
/// payload cap, session byte ceiling) as soon as its eight bytes are
/// buffered and BEFORE the payload is materialized as a Frame — the
/// same admission-before-allocation discipline as the budgeted
/// read_frame. Malformed headers and budget breaches throw exactly
/// what the blocking read path would (ContractViolation /
/// ResourceLimitError).
class FrameDecoder {
 public:
  explicit FrameDecoder(SessionBudget& budget) : budget_(&budget) {}

  void feed(const std::uint8_t* data, std::size_t size);

  /// The next complete frame, or nullopt until more bytes arrive.
  std::optional<Frame> next();

  /// Bytes buffered but not yet returned as frames.
  [[nodiscard]] std::size_t buffered() const {
    return pending_.size() - consumed_;
  }

 private:
  SessionBudget* budget_;
  std::vector<std::uint8_t> pending_;
  std::size_t consumed_ = 0;
  /// Set once the header of the in-progress frame passed admission.
  std::optional<FrameHeader> header_;
};

/// Write one frame; returns its wire footprint. Throws TransportError
/// if the link fails (possibly after a prefix was delivered).
std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload);

/// Read one frame. Throws TransportError if the link fails, and
/// ContractViolation if the peer sent bytes that are not a frame.
Frame read_frame(Connection& connection);

/// Read one frame and require the given type (protocol step mismatch
/// is a ContractViolation — the peer is broken, not the link).
Frame expect_frame(Connection& connection, repl::SyncFrame type);

// ---- budgeted variants -----------------------------------------------
//
// The hardened session boundary: the same operations, accounted against
// a SessionBudget. On read, the decoded header is admitted (per-type
// payload cap, unknown-type rejection, session byte ceiling) BEFORE the
// payload buffer is allocated — an eight-byte header from a hostile
// peer can no longer command a 64 MiB allocation. Writes charge the
// same ceiling so a session serving a greedy peer is bounded in both
// directions. Breaches throw ResourceLimitError.

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload,
                        SessionBudget& budget);

Frame read_frame(Connection& connection, SessionBudget& budget);

Frame expect_frame(Connection& connection, repl::SyncFrame type,
                   SessionBudget& budget);

}  // namespace pfrdtn::net
