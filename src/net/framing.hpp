#pragma once

/// \file framing.hpp
/// Length-prefixed frames over a Connection, using the header codec in
/// util/byte_buffer.hpp (magic, version, type, length, payload — see
/// docs/net.md). Every sync-protocol message travels as one frame;
/// batches travel as a frame sequence so a dropped connection truncates
/// at an item boundary the session layer can recover from.

#include <vector>

#include "net/limits.hpp"
#include "net/transport.hpp"
#include "repl/sync.hpp"

namespace pfrdtn::net {

/// One received frame plus its wire footprint (header + payload).
struct Frame {
  repl::SyncFrame type{};
  std::vector<std::uint8_t> payload;
  std::size_t wire_bytes = 0;
};

/// Write one frame; returns its wire footprint. Throws TransportError
/// if the link fails (possibly after a prefix was delivered).
std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload);

/// Read one frame. Throws TransportError if the link fails, and
/// ContractViolation if the peer sent bytes that are not a frame.
Frame read_frame(Connection& connection);

/// Read one frame and require the given type (protocol step mismatch
/// is a ContractViolation — the peer is broken, not the link).
Frame expect_frame(Connection& connection, repl::SyncFrame type);

// ---- budgeted variants -----------------------------------------------
//
// The hardened session boundary: the same operations, accounted against
// a SessionBudget. On read, the decoded header is admitted (per-type
// payload cap, unknown-type rejection, session byte ceiling) BEFORE the
// payload buffer is allocated — an eight-byte header from a hostile
// peer can no longer command a 64 MiB allocation. Writes charge the
// same ceiling so a session serving a greedy peer is bounded in both
// directions. Breaches throw ResourceLimitError.

std::size_t write_frame(Connection& connection, repl::SyncFrame type,
                        const std::vector<std::uint8_t>& payload,
                        SessionBudget& budget);

Frame read_frame(Connection& connection, SessionBudget& budget);

Frame expect_frame(Connection& connection, repl::SyncFrame type,
                   SessionBudget& budget);

}  // namespace pfrdtn::net
