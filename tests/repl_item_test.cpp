#include "repl/item.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::repl {
namespace {

Item sample_item() {
  return Item(ItemId(10), Version{ReplicaId(2), 5, 1},
              {{meta::kDest, "3,7"}, {meta::kType, "msg"}},
              {'h', 'i'});
}

TEST(HostEncoding, RoundTrip) {
  const std::vector<HostId> hosts{HostId(1), HostId(42), HostId(7)};
  EXPECT_EQ(decode_hosts(encode_hosts(hosts)), hosts);
  EXPECT_EQ(encode_hosts({}), "");
  EXPECT_TRUE(decode_hosts("").empty());
}

TEST(HostEncoding, IgnoresMalformedTokens) {
  const auto hosts = decode_hosts("1,x,3,,4y,5");
  EXPECT_EQ(hosts, (std::vector<HostId>{HostId(1), HostId(3), HostId(5)}));
}

TEST(Item, BasicAccessors) {
  const Item item = sample_item();
  EXPECT_EQ(item.id(), ItemId(10));
  EXPECT_EQ(item.version().counter, 5u);
  EXPECT_FALSE(item.deleted());
  EXPECT_EQ(item.meta(meta::kType), "msg");
  EXPECT_FALSE(item.meta("missing").has_value());
  EXPECT_EQ(item.body().size(), 2u);
}

TEST(Item, DestAddressesParsedAndCached) {
  const Item item = sample_item();
  const auto& dests = item.dest_addresses();
  EXPECT_EQ(dests, (std::vector<HostId>{HostId(3), HostId(7)}));
  // Second call returns the same cached object.
  EXPECT_EQ(&item.dest_addresses(), &dests);
}

TEST(Item, NoDestYieldsEmpty) {
  Item item(ItemId(1), Version{ReplicaId(1), 1, 1}, {}, {});
  EXPECT_TRUE(item.dest_addresses().empty());
}

TEST(Item, TransientMetadata) {
  Item item = sample_item();
  EXPECT_FALSE(item.transient("ttl").has_value());
  item.set_transient_int("ttl", 9);
  EXPECT_EQ(item.transient_int("ttl"), 9);
  EXPECT_EQ(item.transient("ttl"), "9");
  item.set_transient("tag", "x");
  EXPECT_EQ(item.transient_all().size(), 2u);
  item.clear_transient("ttl");
  EXPECT_FALSE(item.transient_int("ttl").has_value());
}

TEST(Item, TransientIntRejectsNonNumeric) {
  Item item = sample_item();
  item.set_transient("ttl", "abc");
  EXPECT_FALSE(item.transient_int("ttl").has_value());
  item.set_transient("ttl", "12x");
  EXPECT_FALSE(item.transient_int("ttl").has_value());
}

TEST(Item, SupersedeReplacesContentAndDropsTransient) {
  Item item = sample_item();
  item.set_transient_int("ttl", 3);
  const Version v2{ReplicaId(1), 9, 2};
  item.supersede(v2, {{meta::kDest, "8"}}, {'x'}, false);
  EXPECT_EQ(item.version(), v2);
  EXPECT_EQ(item.dest_addresses(), std::vector<HostId>{HostId(8)});
  EXPECT_FALSE(item.transient_int("ttl").has_value());
  EXPECT_EQ(item.body(), std::vector<std::uint8_t>{'x'});
}

TEST(Item, SupersedeRequiresDominance) {
  Item item = sample_item();  // revision 1, author 2
  const Version stale{ReplicaId(1), 1, 1};  // same revision, lower author
  EXPECT_THROW(item.supersede(stale, {}, {}, false), ContractViolation);
}

TEST(Item, TombstoneSupersede) {
  Item item = sample_item();
  item.supersede(Version{ReplicaId(3), 1, 2}, item.metadata(), {}, true);
  EXPECT_TRUE(item.deleted());
  // Tombstones keep metadata so filters still select them.
  EXPECT_EQ(item.dest_addresses(),
            (std::vector<HostId>{HostId(3), HostId(7)}));
}

TEST(Item, WireRoundTripIncludesTransient) {
  Item item = sample_item();
  item.set_transient_int("ttl", 4);
  ByteWriter w;
  item.serialize(w);
  ByteReader r(w.bytes());
  const Item got = Item::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(got.id(), item.id());
  EXPECT_EQ(got.version(), item.version());
  EXPECT_EQ(got.metadata(), item.metadata());
  EXPECT_EQ(got.body(), item.body());
  EXPECT_EQ(got.transient_int("ttl"), 4);
  EXPECT_EQ(got.deleted(), item.deleted());
}

TEST(Item, WireSizeGrowsWithBody) {
  Item small = sample_item();
  Item large(ItemId(10), Version{ReplicaId(2), 5, 1},
             {{meta::kDest, "3"}},
             std::vector<std::uint8_t>(1000, 'a'));
  EXPECT_GT(large.wire_size(), small.wire_size() + 900);
}

}  // namespace
}  // namespace pfrdtn::repl
