#include "util/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pfrdtn {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    saved_threshold_ = Log::threshold();
    saved_sink_ = Log::sink();
    Log::sink() = [this](LogLevel level, const std::string& message) {
      lines_.emplace_back(level, message);
    };
  }
  void TearDown() override {
    Log::threshold() = saved_threshold_;
    Log::sink() = saved_sink_;
  }

  std::vector<std::pair<LogLevel, std::string>> lines_;
  LogLevel saved_threshold_ = LogLevel::Warn;
  std::function<void(LogLevel, const std::string&)> saved_sink_;
};

TEST_F(LoggingTest, ThresholdFiltersLowLevels) {
  Log::threshold() = LogLevel::Warn;
  PFRDTN_LOG(Debug) << "hidden";
  PFRDTN_LOG(Warn) << "shown";
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].second, "shown");
}

TEST_F(LoggingTest, StreamComposition) {
  Log::threshold() = LogLevel::Info;
  PFRDTN_LOG(Info) << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(lines_.size(), 1u);
  EXPECT_EQ(lines_[0].second, "x=42 y=1.5");
}

TEST_F(LoggingTest, DisabledLevelDoesNotEvaluateSink) {
  Log::threshold() = LogLevel::Error;
  PFRDTN_LOG(Trace) << "no";
  PFRDTN_LOG(Info) << "no";
  PFRDTN_LOG(Warn) << "no";
  EXPECT_TRUE(lines_.empty());
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_STREQ(Log::level_name(LogLevel::Trace), "TRACE");
  EXPECT_STREQ(Log::level_name(LogLevel::Error), "ERROR");
}

TEST_F(LoggingTest, AllLevelsPassAtTraceThreshold) {
  Log::threshold() = LogLevel::Trace;
  PFRDTN_LOG(Trace) << "a";
  PFRDTN_LOG(Debug) << "b";
  PFRDTN_LOG(Info) << "c";
  PFRDTN_LOG(Warn) << "d";
  PFRDTN_LOG(Error) << "e";
  EXPECT_EQ(lines_.size(), 5u);
}

}  // namespace
}  // namespace pfrdtn
