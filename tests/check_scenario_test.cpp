/// The check harness checking itself: schedules and runs are
/// bit-deterministic from (config, seed), clean seeds satisfy every
/// substrate invariant, and the intentionally injected knowledge
/// corruption (learning from truncated syncs — the bug the PR 1
/// truncation guard exists to prevent) is caught and shrunk to a
/// handful of events.

#include <gtest/gtest.h>

#include "check/harness.hpp"

namespace pfrdtn::check {
namespace {

TEST(CheckScenario, SchedulesAreDeterministic) {
  ScenarioConfig config;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Scenario one = make_scenario(config, seed);
    const Scenario two = make_scenario(config, seed);
    ASSERT_EQ(one.events.size(), two.events.size());
    ASSERT_EQ(one.initial_filter_bits, two.initial_filter_bits);
    for (std::size_t i = 0; i < one.events.size(); ++i) {
      ASSERT_EQ(format_event(i, one.events[i]),
                format_event(i, two.events[i]))
          << "seed " << seed;
    }
  }
}

TEST(CheckScenario, RunsAreDeterministic) {
  ScenarioConfig config;
  config.steps = 60;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const Scenario scenario = make_scenario(config, seed);
    const RunResult one = run_scenario(scenario, /*keep_log=*/true);
    const RunResult two = run_scenario(scenario, /*keep_log=*/true);
    // Identical event logs (which embed every stat) and verdicts.
    EXPECT_EQ(one.log, two.log) << "seed " << seed;
    ASSERT_EQ(one.violation.has_value(), two.violation.has_value());
    if (one.violation) {
      EXPECT_EQ(one.violation->message, two.violation->message);
      EXPECT_EQ(one.violation->event_index, two.violation->event_index);
    }
  }
}

TEST(CheckScenario, CleanSeedsSatisfyAllInvariants) {
  ScenarioConfig config;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult result =
        run_scenario(make_scenario(config, seed));
    EXPECT_FALSE(result.violation.has_value())
        << "seed " << seed << ": [" << result.violation->probe << "] "
        << result.violation->message;
    EXPECT_GT(result.stats.syncs, 0u) << "seed " << seed;
  }
}

TEST(CheckScenario, FaultMixActuallyBites) {
  // The schedules must really exercise the fault space, or the clean
  // runs above prove nothing: across a few seeds we expect cut
  // contacts, incomplete syncs, and relay evictions to all occur.
  ScenarioConfig config;
  RunStats total;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const RunResult result =
        run_scenario(make_scenario(config, seed));
    ASSERT_FALSE(result.violation.has_value());
    total.syncs += result.stats.syncs;
    total.cuts += result.stats.cuts;
    total.incomplete += result.stats.incomplete;
    total.evictions += result.stats.evictions;
    total.items_moved += result.stats.items_moved;
  }
  EXPECT_GT(total.cuts, 0u);
  EXPECT_GT(total.incomplete, total.cuts);  // caps truncate too
  EXPECT_GT(total.evictions, 0u);
  EXPECT_GT(total.items_moved, 0u);
}

TEST(CheckScenario, InjectedKnowledgeCorruptionIsCaughtAndShrunk) {
  CheckOptions options;
  options.config.inject_learn_truncated = true;
  options.seed = 1;
  options.runs = 10;
  const CheckReport report = run_check(options);
  ASSERT_FALSE(report.passed) << "the reverted truncation guard must "
                                 "trip an invariant within 10 seeds";
  ASSERT_TRUE(report.violation.has_value());
  // The shrinker reduces the failure to a near-minimal reproduction.
  EXPECT_LE(report.shrunk.events.size(), 20u);
  EXPECT_FALSE(report.failing_log.empty());
  // The shrunk scenario is self-contained: re-running it re-fails
  // identically.
  const RunResult replay = run_scenario(report.shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, report.violation->message);
}

TEST(CheckScenario, CrashEventsRecoverCleanly) {
  // With the real (fsync-per-record) durability config, crash-restart
  // events must be invisible: every seed recovers the exact acknowledged
  // state and the run satisfies all invariants.
  ScenarioConfig config;
  config.crash_rate = 0.25;
  std::size_t crashes = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Scenario scenario = make_scenario(config, seed);
    for (const Event& event : scenario.events)
      crashes += event.kind == EventKind::CrashRestart ? 1 : 0;
    const RunResult result = run_scenario(scenario);
    EXPECT_FALSE(result.violation.has_value())
        << "seed " << seed << ": [" << result.violation->probe << "] "
        << result.violation->message;
  }
  // The schedules must actually exercise all torn-tail modes.
  EXPECT_GT(crashes, 20u);
}

TEST(CheckScenario, CrashRunsAreDeterministic) {
  ScenarioConfig config;
  config.crash_rate = 0.3;
  config.steps = 80;
  const Scenario scenario = make_scenario(config, 11);
  const RunResult one = run_scenario(scenario, /*keep_log=*/true);
  const RunResult two = run_scenario(scenario, /*keep_log=*/true);
  EXPECT_EQ(one.log, two.log);
}

TEST(CheckScenario, ZeroCrashRateKeepsLegacySchedules) {
  // crash_rate defaults to 0 and must consume no RNG draws there:
  // schedules generated before the crash band existed stay
  // bit-identical, so old replay seeds still reproduce.
  ScenarioConfig config;
  const Scenario scenario = make_scenario(config, 1);
  for (const Event& event : scenario.events)
    EXPECT_NE(event.kind, EventKind::CrashRestart);
}

TEST(CheckScenario, SkipFsyncBugIsCaughtAndShrunk) {
  // The durability oracle: a forgotten fsync must surface as a
  // digest-mismatch violation within a few seeds, and the shrinker
  // must reduce it to a near-minimal mutate-then-crash schedule.
  CheckOptions options;
  options.config.crash_rate = 0.3;
  options.config.inject_skip_fsync = true;
  options.seed = 1;
  options.runs = 10;
  const CheckReport report = run_check(options);
  ASSERT_FALSE(report.passed)
      << "skipping fsync must lose acknowledged state within 10 seeds";
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_TRUE(report.violation->probe == "durability" ||
              report.violation->probe == "crash-recovery")
      << report.violation->probe;
  EXPECT_LE(report.shrunk.events.size(), 20u);
  // The shrunk scenario re-fails identically on a fresh engine.
  const RunResult replay = run_scenario(report.shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, report.violation->message);
}

TEST(CheckScenario, CleanSeedsWithSummariesSatisfyAllInvariants) {
  // With summary syncs (and forced digest collisions) in the mix,
  // clean seeds must still satisfy every invariant — collisions may
  // defer items within one sync but quiescence proves nothing is lost.
  ScenarioConfig config;
  config.summary_rate = 0.5;
  config.summary_collision_rate = 0.3;
  std::size_t summaries = 0;
  std::size_t collisions = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const Scenario scenario = make_scenario(config, seed);
    for (const Event& event : scenario.events) {
      summaries += event.summary ? 1 : 0;
      collisions += event.summary_collide ? 1 : 0;
    }
    const RunResult result = run_scenario(scenario);
    EXPECT_FALSE(result.violation.has_value())
        << "seed " << seed << ": [" << result.violation->probe << "] "
        << result.violation->message;
  }
  // The schedules must actually exercise the summary band.
  EXPECT_GT(summaries, 20u);
  EXPECT_GT(collisions, 0u);
}

TEST(CheckScenario, SummaryRunsAreDeterministic) {
  ScenarioConfig config;
  config.summary_rate = 0.6;
  config.summary_collision_rate = 0.2;
  config.steps = 80;
  const Scenario scenario = make_scenario(config, 13);
  const RunResult one = run_scenario(scenario, /*keep_log=*/true);
  const RunResult two = run_scenario(scenario, /*keep_log=*/true);
  EXPECT_EQ(one.log, two.log);
}

TEST(CheckScenario, ZeroSummaryRateKeepsLegacySchedules) {
  // summary_rate defaults to 0 and must consume no RNG draws there:
  // schedules generated before the summary band existed stay
  // bit-identical, so old replay seeds still reproduce.
  ScenarioConfig config;
  const Scenario scenario = make_scenario(config, 1);
  for (const Event& event : scenario.events) {
    EXPECT_FALSE(event.summary);
    EXPECT_FALSE(event.summary_collide);
  }
}

TEST(CheckScenario, SummarySkipFallbackBugIsCaughtAndShrunk) {
  // The summary-protocol oracle: skipping the exact fallback after a
  // digest miss silently drops the transfer, which the quiescence /
  // equivalence probes must surface within a few seeds — and the
  // shrinker must reduce it to a near-minimal schedule.
  CheckOptions options;
  options.config.summary_rate = 0.6;
  options.config.inject_summary_skip_fallback = true;
  options.seed = 1;
  options.runs = 10;
  const CheckReport report = run_check(options);
  ASSERT_FALSE(report.passed)
      << "skipping the miss fallback must trip an invariant within 10 seeds";
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_TRUE(report.violation->probe == "knowledge-soundness" ||
              report.violation->probe == "summary-equivalence" ||
              report.violation->probe == "quiescence")
      << report.violation->probe;
  EXPECT_LE(report.shrunk.events.size(), 20u);
  // The shrunk scenario re-fails identically on a fresh engine.
  const RunResult replay = run_scenario(report.shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, report.violation->message);
}

TEST(CheckScenario, CleanSeedsWithDiskFaultsSatisfyAllInvariants) {
  // Under injected storage faults the correct stack degrades to
  // read-only, refuses what it can no longer acknowledge, and after
  // the heal-and-restart phase still converges on exactly the oracle's
  // ground truth — no clean seed may trip any probe.
  ScenarioConfig config;
  config.disk_fault_rate = 0.02;
  config.crash_rate = 0.15;
  RunStats total;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const RunResult result = run_scenario(make_scenario(config, seed));
    EXPECT_FALSE(result.violation.has_value())
        << "seed " << seed << ": [" << result.violation->probe << "] "
        << result.violation->message;
    total.disk_faults += result.stats.disk_faults;
    total.refused += result.stats.refused;
  }
  // The fault plan must actually bite, and bitten replicas must have
  // refused follow-up work — otherwise the clean runs prove nothing.
  EXPECT_GT(total.disk_faults, 0u);
  EXPECT_GT(total.refused, 0u);
}

TEST(CheckScenario, DiskFaultRunsAreDeterministic) {
  ScenarioConfig config;
  config.disk_fault_rate = 0.03;
  config.crash_rate = 0.2;
  config.steps = 80;
  const Scenario scenario = make_scenario(config, 17);
  const RunResult one = run_scenario(scenario, /*keep_log=*/true);
  const RunResult two = run_scenario(scenario, /*keep_log=*/true);
  EXPECT_EQ(one.log, two.log);
}

TEST(CheckScenario, DiskFaultRateConsumesNoScheduleDraws) {
  // Fault draws happen at run time inside FaultInjectingEnv, never at
  // generation time: a disk-fault config must produce bit-identical
  // schedules to the default config, so old replay seeds still
  // reproduce.
  ScenarioConfig with_faults;
  with_faults.disk_fault_rate = 0.5;
  const Scenario faulty = make_scenario(with_faults, 1);
  const Scenario baseline = make_scenario(ScenarioConfig{}, 1);
  ASSERT_EQ(faulty.events.size(), baseline.events.size());
  for (std::size_t i = 0; i < faulty.events.size(); ++i) {
    EXPECT_EQ(format_event(i, faulty.events[i]),
              format_event(i, baseline.events[i]));
  }
}

TEST(CheckScenario, TornTailsLandOnTheGenerationWal) {
  // Regression: the torn-tail injector used to append to the legacy
  // "wal.log", which the generation layout never reads — every torn
  // mode was a silent no-op. The crash notes report the truncated
  // bytes, so some crash across these seeds must observe a nonzero
  // torn tail.
  ScenarioConfig config;
  config.crash_rate = 0.3;
  bool torn_observed = false;
  for (std::uint64_t seed = 1; seed <= 6 && !torn_observed; ++seed) {
    const RunResult result =
        run_scenario(make_scenario(config, seed), /*keep_log=*/true);
    ASSERT_FALSE(result.violation.has_value());
    for (const std::string& line : result.log) {
      const auto pos = line.find("torn_bytes=");
      if (pos != std::string::npos && line[pos + 11] != '0') {
        torn_observed = true;
        break;
      }
    }
  }
  EXPECT_TRUE(torn_observed)
      << "no crash recovery ever truncated injected torn bytes";
}

TEST(CheckScenario, AckBeforeFsyncBugIsCaughtAndShrunk) {
  // The fsyncgate oracle: a stack that swallows fsync failures and
  // acknowledges anyway never degrades, so it faces the exact-digest
  // crash probe with records a failed fsync silently dropped — the
  // harness must catch the loss within a few seeds and shrink it to a
  // near-minimal mutate/fault/crash schedule.
  CheckOptions options;
  options.config.disk_fault_rate = 0.05;
  options.config.crash_rate = 0.3;
  options.config.inject_ack_before_fsync = true;
  options.seed = 1;
  options.runs = 10;
  const CheckReport report = run_check(options);
  ASSERT_FALSE(report.passed)
      << "acking before fsync must lose acknowledged state within 10 seeds";
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_TRUE(report.violation->probe == "durability" ||
              report.violation->probe == "crash-recovery")
      << report.violation->probe;
  EXPECT_LE(report.shrunk.events.size(), 20u);
  // The shrunk scenario re-fails identically on a fresh engine.
  const RunResult replay = run_scenario(report.shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, report.violation->message);
}

TEST(CheckScenario, RetryBandConvergesAndActuallyRetries) {
  // The retrying contact discipline under a hostile cut mix: every
  // seed must satisfy every invariant (retries re-deliver nothing
  // twice, knowledge stays sound, progress is monotone), and the
  // schedules must actually exercise re-dials or the clean runs prove
  // nothing.
  ScenarioConfig config;
  config.sync_retry_max = 3;
  config.cut_rate = 0.5;
  RunStats total;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const RunResult result = run_scenario(make_scenario(config, seed));
    EXPECT_FALSE(result.violation.has_value())
        << "seed " << seed << ": [" << result.violation->probe << "] "
        << result.violation->message;
    total.retries += result.stats.retries;
    total.cuts += result.stats.cuts;
    total.syncs += result.stats.syncs;
  }
  EXPECT_GT(total.cuts, 0u);
  EXPECT_GT(total.retries, 0u) << "no contact was ever re-dialed";
}

TEST(CheckScenario, RetryRunsAreDeterministic) {
  ScenarioConfig config;
  config.sync_retry_max = 3;
  config.cut_rate = 0.6;
  config.steps = 80;
  const Scenario scenario = make_scenario(config, 19);
  const RunResult one = run_scenario(scenario, /*keep_log=*/true);
  const RunResult two = run_scenario(scenario, /*keep_log=*/true);
  EXPECT_EQ(one.log, two.log);
}

TEST(CheckScenario, ZeroRetryMaxKeepsLegacySchedules) {
  // sync_retry_max defaults to 0 and must consume no RNG draws there:
  // schedules generated before the retry band existed stay
  // bit-identical, so old replay seeds still reproduce. With retries
  // on, budgets appear only on cut Sync events, one per re-attempt.
  ScenarioConfig config;
  const Scenario baseline = make_scenario(config, 1);
  for (const Event& event : baseline.events)
    EXPECT_TRUE(event.retry_cuts.empty());

  config.sync_retry_max = 3;
  const Scenario retrying = make_scenario(config, 1);
  std::size_t with_budgets = 0;
  for (const Event& event : retrying.events) {
    if (event.retry_cuts.empty()) continue;
    EXPECT_EQ(event.kind, EventKind::Sync);
    EXPECT_TRUE(event.fault.cut_after_bytes.has_value());
    EXPECT_EQ(event.retry_cuts.size(), 3u);
    with_budgets += 1;
  }
  EXPECT_GT(with_budgets, 0u);
}

TEST(CheckScenario, RetryForgetsProgressBugIsCaughtAndShrunk) {
  // The retry oracle: a client that rolls its partial work back
  // between attempts re-receives versions it already applied, which
  // the monotone-progress probe must catch — and the shrinker must
  // reduce it to a near-minimal create-then-cut-sync schedule.
  CheckOptions options;
  options.config.sync_retry_max = 3;
  options.config.inject_retry_forgets_progress = true;
  options.seed = 1876;
  options.runs = 10;
  const CheckReport report = run_check(options);
  ASSERT_FALSE(report.passed)
      << "forgetting retry progress must trip a probe within 10 seeds";
  ASSERT_TRUE(report.violation.has_value());
  EXPECT_TRUE(report.violation->probe == "monotone-progress" ||
              report.violation->probe == "at-most-once")
      << report.violation->probe;
  EXPECT_LE(report.shrunk.events.size(), 20u);
  // The shrunk scenario re-fails identically on a fresh engine.
  const RunResult replay = run_scenario(report.shrunk);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->message, report.violation->message);
}

TEST(CheckScenario, ShrinkingIsDeterministic) {
  CheckOptions options;
  options.config.inject_learn_truncated = true;
  options.seed = 1;
  options.runs = 1;
  const CheckReport one = run_check(options);
  const CheckReport two = run_check(options);
  ASSERT_FALSE(one.passed);
  ASSERT_FALSE(two.passed);
  ASSERT_EQ(one.shrunk.events.size(), two.shrunk.events.size());
  EXPECT_EQ(one.shrink_runs, two.shrink_runs);
  EXPECT_EQ(one.failing_log, two.failing_log);
  EXPECT_EQ(one.violation->message, two.violation->message);
}

}  // namespace
}  // namespace pfrdtn::check
