#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/require.hpp"

namespace pfrdtn {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleValue) {
  Summary s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Summary, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
}

TEST(Distribution, MeanAndCount) {
  Distribution d;
  for (double x : {1.0, 2.0, 3.0}) d.add(x);
  EXPECT_EQ(d.count(), 3u);
  EXPECT_DOUBLE_EQ(d.mean(), 2.0);
}

TEST(Distribution, QuantilesInterpolate) {
  Distribution d;
  for (double x : {10.0, 20.0, 30.0, 40.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 40.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 25.0);
}

TEST(Distribution, QuantileValidation) {
  Distribution d;
  EXPECT_THROW((void)d.quantile(0.5), ContractViolation);  // empty
  d.add(1.0);
  EXPECT_THROW((void)d.quantile(1.5), ContractViolation);
  EXPECT_THROW((void)d.quantile(-0.1), ContractViolation);
}

TEST(Distribution, CdfAt) {
  Distribution d;
  for (double x : {1.0, 2.0, 3.0, 4.0}) d.add(x);
  EXPECT_DOUBLE_EQ(d.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.5), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf_at(10.0), 1.0);
}

TEST(Distribution, CdfAfterInterleavedAdds) {
  Distribution d;
  d.add(3.0);
  EXPECT_DOUBLE_EQ(d.cdf_at(3.0), 1.0);  // forces a sort
  d.add(1.0);                            // must invalidate sortedness
  EXPECT_DOUBLE_EQ(d.cdf_at(1.0), 0.5);
  EXPECT_DOUBLE_EQ(d.cdf_at(2.0), 0.5);
}

TEST(Distribution, CdfSeriesGrid) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  const auto series = d.cdf_series(100.0, 5);
  ASSERT_EQ(series.size(), 5u);
  EXPECT_DOUBLE_EQ(series.front().first, 0.0);
  EXPECT_DOUBLE_EQ(series.back().first, 100.0);
  EXPECT_DOUBLE_EQ(series.back().second, 1.0);
  // Monotone non-decreasing.
  for (std::size_t i = 1; i < series.size(); ++i)
    EXPECT_GE(series[i].second, series[i - 1].second);
}

TEST(Distribution, EmptyCdfIsZero) {
  Distribution d;
  EXPECT_DOUBLE_EQ(d.cdf_at(1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.mean(), 0.0);
}

TEST(FormatRow, PadsCells) {
  const auto row = format_row({"ab", "c"}, 4);
  EXPECT_EQ(row, "ab   c    ");
}

TEST(FormatRow, LongCellsNotTruncated) {
  const auto row = format_row({"abcdef"}, 3);
  EXPECT_EQ(row, "abcdef ");
}

}  // namespace
}  // namespace pfrdtn
