#include "dtn/filter_strategy.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::dtn {
namespace {

std::vector<HostId> users(std::size_t n) {
  std::vector<HostId> out;
  for (std::size_t i = 0; i < n; ++i) out.emplace_back(i + 1);
  return out;
}

TEST(FilterPlan, SelfOnlyHasNoExtras) {
  Rng rng(1);
  const auto plan = FilterPlan::build(FilterStrategy::SelfOnly, 4,
                                      users(10), {}, rng);
  for (const HostId user : users(10))
    EXPECT_TRUE(plan.extras_for(user).empty());
}

TEST(FilterPlan, ZeroKHasNoExtras) {
  Rng rng(1);
  const auto plan =
      FilterPlan::build(FilterStrategy::Random, 0, users(10), {}, rng);
  EXPECT_TRUE(plan.extras_for(HostId(1)).empty());
}

TEST(FilterPlan, RandomPicksKDistinctOthers) {
  Rng rng(7);
  const auto all = users(20);
  const auto plan =
      FilterPlan::build(FilterStrategy::Random, 5, all, {}, rng);
  for (const HostId user : all) {
    const auto& extras = plan.extras_for(user);
    EXPECT_EQ(extras.size(), 5u);
    EXPECT_FALSE(extras.count(user)) << "self in own extras";
  }
}

TEST(FilterPlan, KClampedToPopulation) {
  Rng rng(7);
  const auto plan =
      FilterPlan::build(FilterStrategy::Random, 99, users(4), {}, rng);
  EXPECT_EQ(plan.extras_for(HostId(1)).size(), 3u);
}

TEST(FilterPlan, SelectedPicksMostEncountered) {
  Rng rng(7);
  const auto all = users(5);
  EncounterCounts counts;
  counts[HostId(1)][HostId(3)] = 50;
  counts[HostId(1)][HostId(4)] = 30;
  counts[HostId(1)][HostId(2)] = 10;
  counts[HostId(1)][HostId(5)] = 1;
  const auto plan =
      FilterPlan::build(FilterStrategy::Selected, 2, all, counts, rng);
  EXPECT_EQ(plan.extras_for(HostId(1)),
            (std::set<HostId>{HostId(3), HostId(4)}));
}

TEST(FilterPlan, SelectedTieBreaksDeterministically) {
  Rng rng(7);
  const auto all = users(4);
  // No counts at all: ties broken by ascending id.
  const auto plan =
      FilterPlan::build(FilterStrategy::Selected, 2, all, {}, rng);
  EXPECT_EQ(plan.extras_for(HostId(4)),
            (std::set<HostId>{HostId(1), HostId(2)}));
}

TEST(FilterPlan, RandomIsSeedDeterministic) {
  const auto all = users(30);
  Rng rng1(9), rng2(9);
  const auto p1 =
      FilterPlan::build(FilterStrategy::Random, 4, all, {}, rng1);
  const auto p2 =
      FilterPlan::build(FilterStrategy::Random, 4, all, {}, rng2);
  for (const HostId user : all)
    EXPECT_EQ(p1.extras_for(user), p2.extras_for(user));
}

TEST(FilterPlan, UnknownUserHasNoExtras) {
  Rng rng(7);
  const auto plan =
      FilterPlan::build(FilterStrategy::Random, 2, users(5), {}, rng);
  EXPECT_TRUE(plan.extras_for(HostId(999)).empty());
}

TEST(FilterStrategyName, Names) {
  EXPECT_STREQ(filter_strategy_name(FilterStrategy::SelfOnly), "self");
  EXPECT_STREQ(filter_strategy_name(FilterStrategy::Random), "random");
  EXPECT_STREQ(filter_strategy_name(FilterStrategy::Selected),
               "selected");
}

}  // namespace
}  // namespace pfrdtn::dtn
