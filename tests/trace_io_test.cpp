#include "trace/trace_io.hpp"

#include "trace/mobility.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

namespace pfrdtn::trace {
namespace {

TEST(TraceIo, MobilityStreamRoundTrip) {
  MobilityConfig config;
  config.days = 3;
  config.fleet_size = 8;
  config.buses_per_day = 5;
  const auto trace = generate_mobility(config);
  std::stringstream buffer;
  write_mobility(buffer, trace);
  const auto got = read_mobility(buffer);
  EXPECT_EQ(got.fleet_size, trace.fleet_size);
  EXPECT_EQ(got.active_buses, trace.active_buses);
  EXPECT_EQ(got.encounters, trace.encounters);
}

TEST(TraceIo, EmailStreamRoundTrip) {
  EmailConfig config;
  config.users = 10;
  config.total_messages = 25;
  config.inject_days = 2;
  const auto workload = generate_email(config);
  std::stringstream buffer;
  write_email(buffer, workload);
  const auto got = read_email(buffer);
  EXPECT_EQ(got.users, workload.users);
  EXPECT_EQ(got.messages, workload.messages);
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream buffer(
      "# comment\n\nfleet 4\nday 0 1 2\n# another\nenc 100 1 2 30\n");
  const auto trace = read_mobility(buffer);
  EXPECT_EQ(trace.fleet_size, 4u);
  ASSERT_EQ(trace.active_buses.size(), 1u);
  EXPECT_EQ(trace.active_buses[0],
            (std::vector<BusIndex>{1, 2}));
  ASSERT_EQ(trace.encounters.size(), 1u);
  EXPECT_EQ(trace.encounters[0].time.seconds(), 100);
  EXPECT_EQ(trace.encounters[0].duration_s, 30);
}

TEST(TraceIo, UnknownRecordThrows) {
  std::stringstream mobility("wat 1 2 3\n");
  EXPECT_THROW(read_mobility(mobility), ContractViolation);
  std::stringstream email("wat 1 2 3\n");
  EXPECT_THROW(read_email(email), ContractViolation);
}

TEST(TraceIo, MalformedEncounterThrows) {
  std::stringstream buffer("enc 100 1\n");
  EXPECT_THROW(read_mobility(buffer), ContractViolation);
}

TEST(TraceIo, FileRoundTrip) {
  const std::string mobility_path =
      ::testing::TempDir() + "/pfrdtn_mobility_test.txt";
  const std::string email_path =
      ::testing::TempDir() + "/pfrdtn_email_test.txt";
  MobilityConfig mconfig;
  mconfig.days = 2;
  mconfig.fleet_size = 6;
  mconfig.buses_per_day = 4;
  const auto trace = generate_mobility(mconfig);
  save_mobility(mobility_path, trace);
  EXPECT_EQ(load_mobility(mobility_path).encounters, trace.encounters);

  EmailConfig econfig;
  econfig.users = 5;
  econfig.total_messages = 7;
  econfig.inject_days = 1;
  const auto workload = generate_email(econfig);
  save_email(email_path, workload);
  EXPECT_EQ(load_email(email_path).messages, workload.messages);

  std::remove(mobility_path.c_str());
  std::remove(email_path.c_str());
}

TEST(TraceIo, MissingFileThrows) {
  EXPECT_THROW(load_mobility("/nonexistent/path/trace.txt"),
               ContractViolation);
  EXPECT_THROW(load_email("/nonexistent/path/email.txt"),
               ContractViolation);
}

}  // namespace
}  // namespace pfrdtn::trace
