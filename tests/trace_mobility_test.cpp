#include "trace/mobility.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace pfrdtn::trace {
namespace {

MobilityConfig small_config() {
  MobilityConfig config;
  config.days = 5;
  config.fleet_size = 12;
  config.buses_per_day = 8;
  return config;
}

TEST(Mobility, Deterministic) {
  const auto a = generate_mobility(small_config());
  const auto b = generate_mobility(small_config());
  EXPECT_EQ(a.encounters, b.encounters);
  EXPECT_EQ(a.active_buses, b.active_buses);
}

TEST(Mobility, SeedChangesTrace) {
  auto config = small_config();
  const auto a = generate_mobility(config);
  config.seed = 777;
  const auto b = generate_mobility(config);
  EXPECT_NE(a.encounters, b.encounters);
}

TEST(Mobility, EncountersSortedByTime) {
  const auto trace = generate_mobility(small_config());
  for (std::size_t i = 1; i < trace.encounters.size(); ++i)
    EXPECT_LE(trace.encounters[i - 1].time, trace.encounters[i].time);
}

TEST(Mobility, EncountersWithinDailyWindow) {
  const auto config = small_config();
  const auto trace = generate_mobility(config);
  for (const Encounter& encounter : trace.encounters) {
    const auto offset = encounter.time.seconds_into_day();
    EXPECT_GE(offset, config.day_start_s);
    EXPECT_LT(offset, config.day_end_s);
    EXPECT_GT(encounter.duration_s, 0);
  }
}

TEST(Mobility, EncountersOnlyBetweenScheduledBuses) {
  const auto trace = generate_mobility(small_config());
  for (const Encounter& encounter : trace.encounters) {
    const auto day = static_cast<std::size_t>(encounter.time.day_index());
    ASSERT_LT(day, trace.days());
    const auto& active = trace.active_buses[day];
    EXPECT_NE(std::find(active.begin(), active.end(), encounter.bus_a),
              active.end());
    EXPECT_NE(std::find(active.begin(), active.end(), encounter.bus_b),
              active.end());
    EXPECT_NE(encounter.bus_a, encounter.bus_b);
    EXPECT_LT(encounter.bus_a, encounter.bus_b);  // canonical order
  }
}

TEST(Mobility, DailyFleetSizeNearTarget) {
  const auto config = small_config();
  const auto trace = generate_mobility(config);
  ASSERT_EQ(trace.days(), config.days);
  for (const auto& day : trace.active_buses) {
    EXPECT_GE(day.size(), config.buses_per_day - 2);
    EXPECT_LE(day.size(), config.buses_per_day + 2);
    std::set<BusIndex> unique(day.begin(), day.end());
    EXPECT_EQ(unique.size(), day.size());
    for (const BusIndex bus : day) EXPECT_LT(bus, config.fleet_size);
  }
}

TEST(Mobility, RotationKeepsEveryBusServing) {
  auto config = small_config();
  config.days = 10;
  const auto trace = generate_mobility(config);
  std::map<BusIndex, int> activity;
  for (const auto& day : trace.active_buses) {
    for (const BusIndex bus : day) ++activity[bus];
  }
  // With 8 of 12 scheduled daily and rotation, every bus serves often.
  for (BusIndex bus = 0; bus < config.fleet_size; ++bus)
    EXPECT_GE(activity[bus], 3) << "bus " << bus << " mothballed";
}

TEST(Mobility, PaperScaleAggregates) {
  // The calibrated defaults must stay close to the paper's Section
  // VI-A: 17 days, ~23 buses/day, ~16k encounters, 8:00-23:00.
  const MobilityConfig config;  // defaults
  const auto trace = generate_mobility(config);
  EXPECT_EQ(trace.days(), 17u);
  double avg_buses = 0;
  for (const auto& day : trace.active_buses) avg_buses += day.size();
  avg_buses /= static_cast<double>(trace.days());
  EXPECT_NEAR(avg_buses, 23.0, 2.0);
  EXPECT_GT(trace.encounters.size(), 10000u);
  EXPECT_LT(trace.encounters.size(), 22000u);
}

TEST(Mobility, HeavyTailedPairContacts) {
  const auto trace = generate_mobility(MobilityConfig{});
  std::map<std::pair<BusIndex, BusIndex>, std::size_t> pair_counts;
  for (const Encounter& encounter : trace.encounters)
    ++pair_counts[{encounter.bus_a, encounter.bus_b}];
  // Some pairs meet very often (route mates), the median pair rarely —
  // the concentration DieselNet exhibits.
  std::vector<std::size_t> counts;
  for (const auto& [pair, n] : pair_counts) counts.push_back(n);
  std::sort(counts.begin(), counts.end());
  const std::size_t median = counts[counts.size() / 2];
  const std::size_t top = counts.back();
  EXPECT_GT(top, median * 4);
}

TEST(Mobility, EncountersOnDayHelper) {
  const auto trace = generate_mobility(small_config());
  std::size_t total = 0;
  for (std::size_t day = 0; day < trace.days(); ++day)
    total += trace.encounters_on_day(day);
  EXPECT_EQ(total, trace.encounters.size());
}

TEST(Mobility, InvalidConfigRejected) {
  MobilityConfig config = small_config();
  config.buses_per_day = config.fleet_size + 1;
  EXPECT_THROW(generate_mobility(config), ContractViolation);
  config = small_config();
  config.route_length = 1;
  EXPECT_THROW(generate_mobility(config), ContractViolation);
  config = small_config();
  config.day_start_s = config.day_end_s;
  EXPECT_THROW(generate_mobility(config), ContractViolation);
  config = small_config();
  config.interchange_hubs = 0;
  EXPECT_THROW(generate_mobility(config), ContractViolation);
}

}  // namespace
}  // namespace pfrdtn::trace
