#include "repl/store.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::repl {
namespace {

Item item(std::uint64_t id, std::uint64_t dest = 1) {
  return Item(ItemId(id), Version{ReplicaId(1), id, 1},
              {{meta::kDest, std::to_string(dest)}}, {});
}

TEST(ItemStore, PutAndFind) {
  ItemStore store;
  store.put(item(1), /*in_filter=*/true, /*local_origin=*/false);
  ASSERT_NE(store.find(ItemId(1)), nullptr);
  EXPECT_TRUE(store.find(ItemId(1))->in_filter);
  EXPECT_EQ(store.find(ItemId(2)), nullptr);
  EXPECT_TRUE(store.contains(ItemId(1)));
  EXPECT_EQ(store.size(), 1u);
}

TEST(ItemStore, LocalOriginSticksAcrossPuts) {
  ItemStore store;
  store.put(item(1), false, /*local_origin=*/true);
  store.put(item(1), false, /*local_origin=*/false);
  EXPECT_TRUE(store.find(ItemId(1))->local_origin);
}

TEST(ItemStore, RemoveMaintainsOrderIndex) {
  ItemStore store;
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  EXPECT_TRUE(store.remove(ItemId(1)));
  EXPECT_FALSE(store.remove(ItemId(1)));
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, std::vector<std::uint64_t>{2});
}

TEST(ItemStore, ForEachIsArrivalOrdered) {
  ItemStore store;
  store.put(item(3), true, false);
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 1, 2}));
}

TEST(ItemStore, RePutMovesToBackOfOrder) {
  ItemStore store;
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  store.put(item(1), true, false);  // re-put
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ItemStore, FifoEvictionOfRelayItems) {
  ItemStore store(ItemStore::Config{2, EvictionOrder::Fifo});
  store.put(item(1), false, false);
  store.put(item(2), false, false);
  auto evicted = store.put(item(3), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));  // oldest goes first
  EXPECT_FALSE(store.contains(ItemId(1)));
  EXPECT_TRUE(store.contains(ItemId(2)));
  EXPECT_TRUE(store.contains(ItemId(3)));
}

TEST(ItemStore, LifoEviction) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Lifo});
  store.put(item(1), false, false);
  auto evicted = store.put(item(2), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  // LIFO: the newest evictable entry goes (the incoming one).
  EXPECT_EQ(evicted[0].id(), ItemId(2));
  EXPECT_TRUE(store.contains(ItemId(1)));
}

TEST(ItemStore, InFilterItemsAreNeverEvicted) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Fifo});
  store.put(item(1), /*in_filter=*/true, false);
  store.put(item(2), /*in_filter=*/true, false);
  auto evicted = store.put(item(3), false, false);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(store.size(), 3u);
}

TEST(ItemStore, LocalOriginItemsAreNeverEvicted) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Fifo});
  store.put(item(1), false, /*local_origin=*/true);
  store.put(item(2), false, /*local_origin=*/true);
  auto evicted = store.put(item(3), false, false);
  EXPECT_TRUE(evicted.empty());  // only one evictable item stored
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, ZeroCapacityDropsEveryRelayItem) {
  ItemStore store(ItemStore::Config{0, EvictionOrder::Fifo});
  auto evicted = store.put(item(1), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ItemStore, UnboundedByDefault) {
  ItemStore store;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(store.put(item(i), false, false).empty());
  }
  EXPECT_EQ(store.size(), 100u);
}

TEST(ItemStore, RefilterFlagsAndReturnsNewMatches) {
  ItemStore store;
  store.put(item(1, /*dest=*/1), true, false);
  store.put(item(2, /*dest=*/2), false, false);
  std::vector<Item> evicted;
  // New filter: dest == 2 only.
  auto fresh = store.refilter(
      [](const Item& it) {
        return it.dest_addresses() == std::vector<HostId>{HostId(2)};
      },
      evicted);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].id(), ItemId(2));
  EXPECT_FALSE(store.find(ItemId(1))->in_filter);
  EXPECT_TRUE(store.find(ItemId(2))->in_filter);
  EXPECT_TRUE(evicted.empty());
}

TEST(ItemStore, RefilterCanTriggerEviction) {
  ItemStore store(ItemStore::Config{0, EvictionOrder::Fifo});
  store.put(item(1), /*in_filter=*/true, false);
  std::vector<Item> evicted;
  store.refilter([](const Item&) { return false; }, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ItemStore, Counters) {
  ItemStore store;
  store.put(item(1), true, false);   // filter store
  store.put(item(2), false, true);   // relay, exempt
  store.put(item(3), false, false);  // relay, evictable
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.relay_count(), 2u);
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, SetRelayCapacityLater) {
  ItemStore store;
  store.put(item(1), false, false);
  store.put(item(2), false, false);
  store.set_relay_capacity(1);
  // Capacity enforced on next mutation.
  auto evicted = store.put(item(3), false, false);
  EXPECT_EQ(evicted.size(), 2u);
}

}  // namespace
}  // namespace pfrdtn::repl
