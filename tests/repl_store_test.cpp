#include "repl/store.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::repl {
namespace {

Item item(std::uint64_t id, std::uint64_t dest = 1) {
  return Item(ItemId(id), Version{ReplicaId(1), id, 1},
              {{meta::kDest, std::to_string(dest)}}, {});
}

TEST(ItemStore, PutAndFind) {
  ItemStore store;
  store.put(item(1), /*in_filter=*/true, /*local_origin=*/false);
  ASSERT_NE(store.find(ItemId(1)), nullptr);
  EXPECT_TRUE(store.find(ItemId(1))->in_filter);
  EXPECT_EQ(store.find(ItemId(2)), nullptr);
  EXPECT_TRUE(store.contains(ItemId(1)));
  EXPECT_EQ(store.size(), 1u);
}

TEST(ItemStore, LocalOriginSticksAcrossPuts) {
  ItemStore store;
  store.put(item(1), false, /*local_origin=*/true);
  store.put(item(1), false, /*local_origin=*/false);
  EXPECT_TRUE(store.find(ItemId(1))->local_origin);
}

TEST(ItemStore, RemoveMaintainsOrderIndex) {
  ItemStore store;
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  EXPECT_TRUE(store.remove(ItemId(1)));
  EXPECT_FALSE(store.remove(ItemId(1)));
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, std::vector<std::uint64_t>{2});
}

TEST(ItemStore, ForEachIsArrivalOrdered) {
  ItemStore store;
  store.put(item(3), true, false);
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{3, 1, 2}));
}

TEST(ItemStore, RePutMovesToBackOfOrder) {
  ItemStore store;
  store.put(item(1), true, false);
  store.put(item(2), true, false);
  store.put(item(1), true, false);  // re-put
  std::vector<std::uint64_t> seen;
  store.for_each([&](const ItemStore::Entry& entry) {
    seen.push_back(entry.item.id().value());
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 1}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ItemStore, FifoEvictionOfRelayItems) {
  ItemStore store(ItemStore::Config{2, EvictionOrder::Fifo});
  store.put(item(1), false, false);
  store.put(item(2), false, false);
  auto evicted = store.put(item(3), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));  // oldest goes first
  EXPECT_FALSE(store.contains(ItemId(1)));
  EXPECT_TRUE(store.contains(ItemId(2)));
  EXPECT_TRUE(store.contains(ItemId(3)));
}

TEST(ItemStore, LifoEviction) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Lifo});
  store.put(item(1), false, false);
  auto evicted = store.put(item(2), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  // LIFO: the newest evictable entry goes (the incoming one).
  EXPECT_EQ(evicted[0].id(), ItemId(2));
  EXPECT_TRUE(store.contains(ItemId(1)));
}

TEST(ItemStore, InFilterItemsAreNeverEvicted) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Fifo});
  store.put(item(1), /*in_filter=*/true, false);
  store.put(item(2), /*in_filter=*/true, false);
  auto evicted = store.put(item(3), false, false);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(store.size(), 3u);
}

TEST(ItemStore, LocalOriginItemsAreNeverEvicted) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Fifo});
  store.put(item(1), false, /*local_origin=*/true);
  store.put(item(2), false, /*local_origin=*/true);
  auto evicted = store.put(item(3), false, false);
  EXPECT_TRUE(evicted.empty());  // only one evictable item stored
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, ZeroCapacityDropsEveryRelayItem) {
  ItemStore store(ItemStore::Config{0, EvictionOrder::Fifo});
  auto evicted = store.put(item(1), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ItemStore, UnboundedByDefault) {
  ItemStore store;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    EXPECT_TRUE(store.put(item(i), false, false).empty());
  }
  EXPECT_EQ(store.size(), 100u);
}

TEST(ItemStore, RefilterFlagsAndReturnsNewMatches) {
  ItemStore store;
  store.put(item(1, /*dest=*/1), true, false);
  store.put(item(2, /*dest=*/2), false, false);
  std::vector<Item> evicted;
  // New filter: dest == 2 only.
  auto fresh = store.refilter(
      [](const Item& it) {
        return it.dest_addresses() == std::vector<HostId>{HostId(2)};
      },
      evicted);
  ASSERT_EQ(fresh.size(), 1u);
  EXPECT_EQ(fresh[0].id(), ItemId(2));
  EXPECT_FALSE(store.find(ItemId(1))->in_filter);
  EXPECT_TRUE(store.find(ItemId(2))->in_filter);
  EXPECT_TRUE(evicted.empty());
}

TEST(ItemStore, RefilterCanTriggerEviction) {
  ItemStore store(ItemStore::Config{0, EvictionOrder::Fifo});
  store.put(item(1), /*in_filter=*/true, false);
  std::vector<Item> evicted;
  store.refilter([](const Item&) { return false; }, evicted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ItemStore, Counters) {
  ItemStore store;
  store.put(item(1), true, false);   // filter store
  store.put(item(2), false, true);   // relay, exempt
  store.put(item(3), false, false);  // relay, evictable
  EXPECT_EQ(store.size(), 3u);
  EXPECT_EQ(store.relay_count(), 2u);
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, SetRelayCapacityLater) {
  ItemStore store;
  store.put(item(1), false, false);
  store.put(item(2), false, false);
  store.set_relay_capacity(1);
  // Capacity enforced on next mutation.
  auto evicted = store.put(item(3), false, false);
  EXPECT_EQ(evicted.size(), 2u);
}

TEST(ItemStore, FifoEvictionSkipsInterleavedPinnedEntries) {
  ItemStore store(ItemStore::Config{2, EvictionOrder::Fifo});
  store.put(item(1), false, false);              // evictable, oldest
  store.put(item(2), /*in_filter=*/true, false); // pinned by filter
  store.put(item(3), false, /*local_origin=*/true);  // pinned by author
  store.put(item(4), false, false);              // evictable
  auto evicted = store.put(item(5), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(1));  // oldest *evictable*, not 2 or 3
  EXPECT_TRUE(store.contains(ItemId(2)));
  EXPECT_TRUE(store.contains(ItemId(3)));
  EXPECT_TRUE(store.contains(ItemId(4)));
  EXPECT_TRUE(store.contains(ItemId(5)));
}

TEST(ItemStore, LifoEvictionSkipsInterleavedPinnedEntries) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Lifo});
  store.put(item(1), false, false);              // evictable
  store.put(item(2), /*in_filter=*/true, false); // pinned, newest so far
  auto evicted = store.put(item(3), false, false);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].id(), ItemId(3));  // newest *evictable*, not 2
  EXPECT_TRUE(store.contains(ItemId(1)));
  EXPECT_TRUE(store.contains(ItemId(2)));
}

TEST(ItemStore, CountersStayConsistentAcrossMutations) {
  ItemStore store;
  store.put(item(1), true, false);
  store.put(item(2), false, false);
  store.put(item(3), false, true);
  EXPECT_EQ(store.relay_count(), 2u);
  EXPECT_EQ(store.evictable_count(), 1u);

  store.remove(ItemId(2));
  EXPECT_EQ(store.relay_count(), 1u);
  EXPECT_EQ(store.evictable_count(), 0u);

  // Re-put flips 1 out of the filter store; 3 stays pinned by origin.
  store.put(item(1), false, false);
  EXPECT_EQ(store.relay_count(), 2u);
  EXPECT_EQ(store.evictable_count(), 1u);

  std::vector<Item> evicted;
  store.refilter([](const Item&) { return true; }, evicted);
  EXPECT_TRUE(evicted.empty());
  EXPECT_EQ(store.relay_count(), 0u);
  EXPECT_EQ(store.evictable_count(), 0u);

  store.refilter([](const Item&) { return false; }, evicted);
  EXPECT_EQ(store.relay_count(), 2u);
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, SupersedeRefreshesDestIndexAndCounters) {
  ItemStore store;
  store.put(item(1, /*dest=*/7), /*in_filter=*/true, false);
  auto visit_ids = [&](const Filter& f) {
    std::vector<std::uint64_t> ids;
    store.for_filter_matches(f, [&](const ItemStore::Entry& entry) {
      ids.push_back(entry.item.id().value());
      return true;
    });
    return ids;
  };
  EXPECT_EQ(visit_ids(Filter::addresses({HostId(7)})),
            std::vector<std::uint64_t>{1});

  // Supersede with a payload addressed elsewhere: the inverted index
  // must follow the new dest, and the counters the new verdict.
  auto payload = Item::Payload::make(
      ItemId(1), Version{ReplicaId(1), 99, 2},
      {{meta::kDest, "8"}}, {}, /*deleted=*/false);
  store.supersede(ItemId(1), std::move(payload), /*in_filter=*/false,
                  /*make_local_origin=*/false);
  EXPECT_TRUE(visit_ids(Filter::addresses({HostId(7)})).empty());
  EXPECT_EQ(visit_ids(Filter::addresses({HostId(8)})),
            std::vector<std::uint64_t>{1});
  EXPECT_EQ(store.relay_count(), 1u);
  EXPECT_EQ(store.evictable_count(), 1u);
}

TEST(ItemStore, SupersedeDropsTransientAndDoesNotEvict) {
  ItemStore store(ItemStore::Config{1, EvictionOrder::Fifo});
  store.put(item(1), /*in_filter=*/true, false);
  store.put(item(2), false, false);  // the one evictable copy
  store.transient_mutable(ItemId(1))->set_int("ttl", 4);

  // Turning 1 into a relay copy takes the evictable count to 2, but
  // supersede is not an eviction point — capacity applies at the next
  // put/refilter, so deterministic schedules replay unchanged.
  auto payload = Item::Payload::make(ItemId(1),
                                     Version{ReplicaId(1), 99, 2},
                                     {{meta::kDest, "1"}}, {}, false);
  store.supersede(ItemId(1), std::move(payload), /*in_filter=*/false,
                  /*make_local_origin=*/false);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.evictable_count(), 2u);
  EXPECT_FALSE(
      store.find(ItemId(1))->item.transient_int("ttl").has_value());

  auto evicted = store.put(item(3), false, false);
  EXPECT_EQ(evicted.size(), 2u);  // now capacity catches up
}

TEST(ItemStore, FilterMatchVisitsAreIndexedOnlyForAddressFilters) {
  ItemStore store;
  store.put(item(1, /*dest=*/1), true, false);
  const auto visit_all = [](const ItemStore::Entry&) { return true; };
  EXPECT_TRUE(
      store.for_filter_matches(Filter::addresses({HostId(1)}), visit_all));
  EXPECT_TRUE(store.for_filter_matches(Filter::none(), visit_all));
  EXPECT_FALSE(store.for_filter_matches(Filter::all(), visit_all));
  EXPECT_FALSE(store.for_filter_matches(Filter::tags({"a"}), visit_all));
}

TEST(ItemStore, MultiAddressFilterVisitsSharedItemOnce) {
  ItemStore store;
  store.put(Item(ItemId(1), Version{ReplicaId(1), 1, 1},
                 {{meta::kDest, encode_hosts({HostId(1), HostId(2)})}}, {}),
            true, false);
  store.put(item(2, /*dest=*/2), true, false);
  std::size_t visits_of_1 = 0;
  std::size_t total = 0;
  store.for_filter_matches(
      Filter::addresses({HostId(1), HostId(2)}),
      [&](const ItemStore::Entry& entry) {
        ++total;
        if (entry.item.id() == ItemId(1)) ++visits_of_1;
        return true;
      });
  EXPECT_EQ(visits_of_1, 1u);
  EXPECT_EQ(total, 2u);
}

TEST(ItemStore, IndexedAndScanPathsAgreeOnMatches) {
  ItemStore store;
  for (std::uint64_t i = 1; i <= 40; ++i)
    store.put(item(i, /*dest=*/i % 3), i % 2 == 0, false);
  const Filter indexed = Filter::addresses({HostId(1)});
  std::set<std::uint64_t> via_index;
  EXPECT_TRUE(store.for_filter_matches(
      indexed, [&](const ItemStore::Entry& entry) {
        via_index.insert(entry.item.id().value());
        return true;
      }));
  std::set<std::uint64_t> via_scan;
  store.for_each([&](const ItemStore::Entry& entry) {
    if (indexed.matches(entry.item))
      via_scan.insert(entry.item.id().value());
  });
  EXPECT_EQ(via_index, via_scan);
  EXPECT_FALSE(via_index.empty());
}

TEST(ItemStore, RefilterOutputIsArrivalOrdered) {
  // Regression: refilter used to iterate the entry hash map, so the
  // newly-matching list (surfaced to applications as deliveries) came
  // out in nondeterministic order. The contract is arrival order.
  ItemStore store;
  std::vector<std::uint64_t> arrivals;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    const std::uint64_t id = (i * 37) % 64 + 1;  // shuffled ids
    if (store.contains(ItemId(id))) continue;
    store.put(item(id, /*dest=*/2), false, false);
    arrivals.push_back(id);
  }
  std::vector<Item> evicted;
  auto fresh = store.refilter(
      [](const Item& it) { return !it.dest_addresses().empty(); },
      evicted);
  std::vector<std::uint64_t> fresh_ids;
  for (const Item& it : fresh) fresh_ids.push_back(it.id().value());
  EXPECT_EQ(fresh_ids, arrivals);
}

}  // namespace
}  // namespace pfrdtn::repl
