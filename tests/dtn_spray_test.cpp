#include "dtn/spray_wait.hpp"

#include <gtest/gtest.h>

#include "dtn/message.hpp"
#include "dtn/messaging.hpp"
#include "util/rng.hpp"

namespace pfrdtn::dtn {
namespace {

repl::Item message_item(std::uint64_t id = 1) {
  return repl::Item(ItemId(id), repl::Version{ReplicaId(1), id, 1},
                    message_metadata(HostId(1), {HostId(2)}, SimTime(0)),
                    {});
}

repl::SyncContext ctx() {
  return {ReplicaId(1), ReplicaId(2), SimTime(0)};
}

TEST(SprayWait, InitializesCopyBudget) {
  SprayWaitPolicy policy(SprayWaitParams{8, true});
  repl::Item stored = message_item();
  EXPECT_TRUE(policy.to_send(ctx(), repl::TransientView(stored)).send());
  EXPECT_EQ(stored.transient_int(SprayWaitPolicy::kCopiesKey), 8);
}

TEST(SprayWait, WaitPhaseWithSingleCopy) {
  SprayWaitPolicy policy;
  repl::Item stored = message_item();
  stored.set_transient_int(SprayWaitPolicy::kCopiesKey, 1);
  EXPECT_FALSE(
      policy.to_send(ctx(), repl::TransientView(stored)).send());
}

TEST(SprayWait, BinaryHalving) {
  SprayWaitPolicy policy(SprayWaitParams{8, true});
  repl::Item stored = message_item();
  stored.set_transient_int(SprayWaitPolicy::kCopiesKey, 8);
  repl::Item outgoing = stored;
  policy.on_forward(ctx(), repl::TransientView(stored),
                    repl::TransientView(outgoing));
  EXPECT_EQ(stored.transient_int(SprayWaitPolicy::kCopiesKey), 4);
  EXPECT_EQ(outgoing.transient_int(SprayWaitPolicy::kCopiesKey), 4);
}

TEST(SprayWait, OddBudgetSplitsConservatively) {
  SprayWaitPolicy policy(SprayWaitParams{8, true});
  repl::Item stored = message_item();
  stored.set_transient_int(SprayWaitPolicy::kCopiesKey, 5);
  repl::Item outgoing = stored;
  policy.on_forward(ctx(), repl::TransientView(stored),
                    repl::TransientView(outgoing));
  EXPECT_EQ(stored.transient_int(SprayWaitPolicy::kCopiesKey), 3);
  EXPECT_EQ(outgoing.transient_int(SprayWaitPolicy::kCopiesKey), 2);
}

TEST(SprayWait, VanillaHandsOverOneCopy) {
  SprayWaitPolicy policy(SprayWaitParams{8, false});
  repl::Item stored = message_item();
  stored.set_transient_int(SprayWaitPolicy::kCopiesKey, 8);
  repl::Item outgoing = stored;
  policy.on_forward(ctx(), repl::TransientView(stored),
                    repl::TransientView(outgoing));
  EXPECT_EQ(stored.transient_int(SprayWaitPolicy::kCopiesKey), 7);
  EXPECT_EQ(outgoing.transient_int(SprayWaitPolicy::kCopiesKey), 1);
}

TEST(SprayWait, BudgetConservedAcrossSplits) {
  SprayWaitPolicy policy(SprayWaitParams{16, true});
  repl::Item stored = message_item();
  stored.set_transient_int(SprayWaitPolicy::kCopiesKey, 16);
  std::int64_t total = 16;
  std::vector<repl::Item> copies{stored};
  // Spray every sprayable copy repeatedly; total copies must stay 16.
  for (int round = 0; round < 6; ++round) {
    std::vector<repl::Item> next;
    for (auto& copy : copies) {
      if (policy.to_send(ctx(), repl::TransientView(copy)).send()) {
        repl::Item out = copy;
        policy.on_forward(ctx(), repl::TransientView(copy),
                          repl::TransientView(out));
        next.push_back(out);
      }
    }
    copies.insert(copies.end(), next.begin(), next.end());
    std::int64_t sum = 0;
    for (auto& copy : copies)
      sum += copy.transient_int(SprayWaitPolicy::kCopiesKey).value_or(0);
    ASSERT_EQ(sum, total);
  }
  // Eventually everyone is in the Wait phase.
  for (auto& copy : copies) {
    EXPECT_FALSE(policy.to_send(ctx(), repl::TransientView(copy)).send());
    EXPECT_EQ(copy.transient_int(SprayWaitPolicy::kCopiesKey), 1);
  }
  EXPECT_EQ(copies.size(), 16u);
}

/// End-to-end: with the full sync stack, the number of replicas ever
/// holding a spray message is bounded by the copy budget (plus the
/// destination, which receives via filter matching).
TEST(SprayWait, NetworkWideCopyBound) {
  constexpr std::int64_t kBudget = 4;
  constexpr std::size_t kNodes = 12;
  std::vector<std::unique_ptr<DtnNode>> nodes;
  for (std::size_t i = 0; i < kNodes; ++i) {
    auto node = std::make_unique<DtnNode>(ReplicaId(i + 1));
    node->set_policy(std::make_shared<SprayWaitPolicy>(
        SprayWaitParams{kBudget, true}));
    node->set_addresses({HostId(i + 1)}, {}, SimTime(0));
    nodes.push_back(std::move(node));
  }
  // Message from node 0's user to node kNodes-1's user.
  const MessageId id =
      nodes[0]->send(HostId(1), {HostId(kNodes)}, "m", SimTime(0));
  // Random encounters among the first kNodes-1 nodes (the destination
  // never participates, so delivery can't absorb copies).
  Rng rng(5);
  for (int step = 0; step < 200; ++step) {
    const auto a = rng.below(kNodes - 1);
    const auto b = rng.below(kNodes - 1);
    if (a == b) continue;
    run_encounter(*nodes[a], *nodes[b], SimTime(step));
  }
  std::size_t holders = 0;
  for (const auto& node : nodes) {
    if (node->replica().store().contains(id)) ++holders;
  }
  EXPECT_LE(holders, static_cast<std::size_t>(kBudget));
  EXPECT_GE(holders, 2u);  // it did spray
}

TEST(SprayWait, NameAndSummary) {
  SprayWaitPolicy policy;
  EXPECT_EQ(policy.name(), "spray");
  EXPECT_NE(policy.summary().find("half"), std::string::npos);
}

}  // namespace
}  // namespace pfrdtn::dtn
