#include "net/tcp.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/session.hpp"

namespace pfrdtn::net {
namespace {

using repl::Filter;
using repl::Replica;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

TEST(Tcp, RoundTripBytes) {
  TcpListener listener(0);
  std::thread server([&] {
    auto connection = listener.accept();
    std::uint8_t buffer[5] = {};
    connection->read(buffer, 5);
    connection->write(buffer, 5);
  });
  auto client = tcp_connect("127.0.0.1", listener.port());
  const std::uint8_t out[5] = {1, 2, 3, 4, 5};
  client->write(out, 5);
  std::uint8_t echoed[5] = {};
  client->read(echoed, 5);
  EXPECT_EQ(echoed[4], 5);
  server.join();
}

TEST(Tcp, ConnectRefusedThrows) {
  std::uint16_t dead_port = 0;
  {
    TcpListener listener(0);  // grab an ephemeral port, then free it
    dead_port = listener.port();
  }
  TcpOptions options;
  options.connect_timeout_ms = 2000;
  EXPECT_THROW(tcp_connect("127.0.0.1", dead_port, options),
               TransportError);
}

TEST(Tcp, ReadTimesOutWhenPeerStalls) {
  TcpListener listener(0);
  std::thread server([&] {
    auto connection = listener.accept();
    // Accept and then say nothing.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
  });
  TcpOptions options;
  options.io_timeout_ms = 100;
  auto client = tcp_connect("127.0.0.1", listener.port(), options);
  std::uint8_t byte = 0;
  EXPECT_THROW(client->read(&byte, 1), TransportError);
  server.join();
}

TEST(Tcp, EofMidFrameIsTransportError) {
  TcpListener listener(0);
  std::thread server([&] {
    auto connection = listener.accept();
    const std::uint8_t half[3] = {0x46, 0x50, 1};
    connection->write(half, 3);
    connection->close();
  });
  auto client = tcp_connect("127.0.0.1", listener.port());
  EXPECT_THROW(read_frame(*client), TransportError);
  server.join();
}

/// Full session over real sockets: client pushes a filter-matching
/// item into the serving replica.
TEST(TcpSession, PushDeliversToServer) {
  Replica server_replica(ReplicaId(1), Filter::addresses({HostId(42)}));
  Replica client_replica(ReplicaId(2), Filter::addresses({HostId(7)}));
  client_replica.create(to(42), {'h', 'i'});

  TcpListener listener(0);
  ServerSessionOutcome server_outcome;
  std::thread server([&] {
    auto connection = listener.accept();
    server_outcome = serve_session(*connection, server_replica, nullptr,
                                   SimTime(0));
  });
  auto connection = tcp_connect("127.0.0.1", listener.port());
  const auto client_outcome = run_client_session(
      *connection, client_replica, nullptr, SyncMode::Push, SimTime(0));
  server.join();

  EXPECT_FALSE(client_outcome.transport_failed);
  EXPECT_FALSE(server_outcome.transport_failed);
  EXPECT_EQ(server_outcome.hello.replica, client_replica.id());
  EXPECT_EQ(client_outcome.server, server_replica.id());
  EXPECT_EQ(client_outcome.push.stats.items_sent, 1u);
  ASSERT_EQ(server_outcome.applied.result.delivered.size(), 1u);
  EXPECT_TRUE(server_outcome.applied.result.stats.complete);
  EXPECT_EQ(server_replica.store().size(), 1u);
  EXPECT_EQ(server_replica.check_invariants(), "");
}

/// Encounter mode runs both directions on one connection — each side
/// ends up with the other's filter-matching items.
TEST(TcpSession, EncounterSynchronizesBothWays) {
  Replica server_replica(ReplicaId(1), Filter::addresses({HostId(42)}));
  Replica client_replica(ReplicaId(2), Filter::addresses({HostId(7)}));
  server_replica.create(to(7), {'a'});   // for the client
  client_replica.create(to(42), {'b'});  // for the server

  TcpListener listener(0);
  ServerSessionOutcome server_outcome;
  std::thread server([&] {
    auto connection = listener.accept();
    server_outcome = serve_session(*connection, server_replica, nullptr,
                                   SimTime(0));
  });
  auto connection = tcp_connect("127.0.0.1", listener.port());
  const auto client_outcome =
      run_client_session(*connection, client_replica, nullptr,
                         SyncMode::Encounter, SimTime(0));
  server.join();

  EXPECT_FALSE(client_outcome.transport_failed);
  EXPECT_FALSE(server_outcome.transport_failed);
  EXPECT_EQ(client_outcome.pull.result.delivered.size(), 1u);
  EXPECT_EQ(server_outcome.applied.result.delivered.size(), 1u);
  EXPECT_EQ(client_replica.store().size(), 2u);
  EXPECT_EQ(server_replica.store().size(), 2u);
  EXPECT_EQ(client_replica.check_invariants(), "");
  EXPECT_EQ(server_replica.check_invariants(), "");
  // A second encounter moves nothing: at-most-once across sessions.
  TcpListener listener2(0);
  ServerSessionOutcome repeat_server;
  std::thread server2([&] {
    auto connection2 = listener2.accept();
    repeat_server = serve_session(*connection2, server_replica, nullptr,
                                  SimTime(1));
  });
  auto connection2 = tcp_connect("127.0.0.1", listener2.port());
  const auto repeat = run_client_session(
      *connection2, client_replica, nullptr, SyncMode::Encounter,
      SimTime(1));
  server2.join();
  EXPECT_EQ(repeat.pull.result.stats.items_sent, 0u);
  EXPECT_EQ(repeat_server.applied.result.stats.items_sent, 0u);
}

TEST(TcpSession, PullRespectsBandwidthCap) {
  Replica server_replica(ReplicaId(1), Filter::addresses({HostId(42)}));
  Replica client_replica(ReplicaId(2), Filter::addresses({HostId(7)}));
  for (int i = 0; i < 5; ++i) server_replica.create(to(7), {});

  repl::SyncOptions cap;
  cap.max_items = 2;
  TcpListener listener(0);
  std::thread server([&] {
    auto connection = listener.accept();
    serve_session(*connection, server_replica, nullptr, SimTime(0), cap);
  });
  auto connection = tcp_connect("127.0.0.1", listener.port());
  const auto outcome = run_client_session(
      *connection, client_replica, nullptr, SyncMode::Pull, SimTime(0));
  server.join();
  EXPECT_EQ(outcome.pull.result.stats.items_sent, 2u);
  EXPECT_FALSE(outcome.pull.result.stats.complete);
  EXPECT_TRUE(client_replica.knowledge().fragments().empty());
}

}  // namespace
}  // namespace pfrdtn::net
