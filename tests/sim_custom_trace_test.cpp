/// The emulator driven by hand-built traces (the constructor real
/// converted CRAWDAD/Enron data would use): precise control over who
/// meets whom lets us assert exact delivery behaviour.

#include <gtest/gtest.h>

#include "sim/emulator.hpp"

namespace pfrdtn::sim {
namespace {

/// Two buses, two users (user 1 on bus 0, user 2 on bus 1 with an
/// assignment seed chosen below), one message, one encounter.
trace::MobilityTrace two_bus_trace(int encounters_on_day0) {
  trace::MobilityTrace trace;
  trace.fleet_size = 2;
  trace.active_buses = {{0, 1}, {0, 1}};
  for (int i = 0; i < encounters_on_day0; ++i) {
    trace::Encounter encounter;
    encounter.time = at(0, 10 + i);
    encounter.bus_a = 0;
    encounter.bus_b = 1;
    encounter.duration_s = 60;
    trace.encounters.push_back(encounter);
  }
  return trace;
}

trace::EmailWorkload one_message() {
  trace::EmailWorkload workload;
  workload.users = {HostId(1), HostId(2)};
  workload.messages = {{at(0, 9), HostId(1), HostId(2)}};
  return workload;
}

EmulationConfig config_for(std::size_t days) {
  EmulationConfig config;
  config.mobility.days = days;
  config.user_errand_prob = 0.0;  // deterministic placement aside from
                                  // the shuffle itself
  return config;
}

TEST(CustomTrace, MessageDeliveredOnFirstContact) {
  // Try a few assignment seeds until the two users ride different
  // buses on day 0 (the interesting case), then assert delivery at the
  // first encounter (10:00) exactly.
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto config = config_for(2);
    config.assignment_seed = seed;
    Emulation emulation(config, two_bus_trace(3), one_message());
    if (emulation.assignment()[0][0] == emulation.assignment()[0][1])
      continue;  // same bus: delivered at injection, not interesting
    const auto result = emulation.run();
    ASSERT_EQ(result.metrics.delivered_count(), 1u);
    const auto& record = result.metrics.records().begin()->second;
    ASSERT_TRUE(record.delivered.has_value());
    EXPECT_EQ(*record.delivered, at(0, 10));
    EXPECT_DOUBLE_EQ(record.delay_hours(), 1.0);
    EXPECT_EQ(record.copies_at_delivery, 2u);
    return;
  }
  FAIL() << "no seed separated the two users";
}

TEST(CustomTrace, CoLocatedSenderDeliversInstantly) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto config = config_for(2);
    config.assignment_seed = seed;
    Emulation emulation(config, two_bus_trace(1), one_message());
    if (emulation.assignment()[0][0] != emulation.assignment()[0][1])
      continue;
    const auto result = emulation.run();
    const auto& record = result.metrics.records().begin()->second;
    ASSERT_TRUE(record.delivered.has_value());
    EXPECT_DOUBLE_EQ(record.delay_hours(), 0.0);
    return;
  }
  FAIL() << "no seed co-located the two users";
}

TEST(CustomTrace, NoEncountersMeansNoCrossBusDelivery) {
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto config = config_for(1);
    config.assignment_seed = seed;
    trace::MobilityTrace trace;
    trace.fleet_size = 2;
    trace.active_buses = {{0, 1}};
    Emulation emulation(config, std::move(trace), one_message());
    if (emulation.assignment()[0][0] == emulation.assignment()[0][1])
      continue;
    const auto result = emulation.run();
    EXPECT_EQ(result.metrics.delivered_count(), 0u);
    // The sender still holds the only copy.
    for (const auto& [id, record] : result.metrics.records())
      EXPECT_EQ(record.copies_at_end, 1u);
    return;
  }
  FAIL() << "no seed separated the two users";
}

TEST(CustomTrace, DayBoundaryReassignmentDelivers) {
  // No encounters at all, but on day 1 the recipient may be assigned
  // to the sender's bus — the stored message delivers at the boundary.
  auto config = config_for(4);
  config.user_errand_prob = 0.9;  // aggressive churn
  trace::MobilityTrace trace;
  trace.fleet_size = 2;
  trace.active_buses = {{0, 1}, {0, 1}, {0, 1}, {0, 1}};
  Emulation emulation(config, std::move(trace), one_message());
  const auto result = emulation.run();
  if (result.metrics.delivered_count() == 1) {
    const auto& record = result.metrics.records().begin()->second;
    // Delivery can only have happened at a midnight reassignment (or
    // instantly at injection if co-located on day 0).
    const auto seconds = record.delivered->seconds_into_day();
    EXPECT_TRUE(seconds == 0 || *record.delivered == record.injected);
  }
}

}  // namespace
}  // namespace pfrdtn::sim
