#include "repl/knowledge.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::repl {
namespace {

Item message_to(std::uint64_t dest, std::uint64_t id = 1) {
  return Item(ItemId(id), Version{ReplicaId(1), 1, 1},
              {{meta::kDest, std::to_string(dest)}}, {});
}

Version v(std::uint64_t author, std::uint64_t counter) {
  return Version{ReplicaId(author), counter, 1};
}

TEST(Knowledge, ExactEventsAreScopeFree) {
  Knowledge k;
  k.add_exact(v(2, 7));
  // The exact event is known for any item shape.
  EXPECT_TRUE(k.knows(message_to(1), v(2, 7)));
  EXPECT_TRUE(k.knows(message_to(9), v(2, 7)));
  EXPECT_FALSE(k.knows(message_to(1), v(2, 8)));
}

TEST(Knowledge, ForgetExactPinned) {
  Knowledge k;
  k.add_exact_pinned(v(2, 7));
  EXPECT_TRUE(k.knows(message_to(1), v(2, 7)));
  EXPECT_TRUE(k.forget_exact(v(2, 7)));
  EXPECT_FALSE(k.knows(message_to(1), v(2, 7)));
}

TEST(Knowledge, FoldedExactCannotBeForgotten) {
  Knowledge k;
  k.add_exact(v(2, 1));  // folds into the vector immediately
  EXPECT_FALSE(k.forget_exact(v(2, 1)));
  EXPECT_TRUE(k.knows(message_to(1), v(2, 1)));
}

TEST(Knowledge, ScopedMergeRestrictsClaims) {
  Knowledge source;
  source.add_exact(v(3, 1));
  Knowledge target;
  target.merge_scoped(source, Filter::addresses({HostId(5)}));
  // Claim applies to items addressed to 5 only.
  EXPECT_TRUE(target.knows(message_to(5), v(3, 1)));
  EXPECT_FALSE(target.knows(message_to(6), v(3, 1)));
}

TEST(Knowledge, ScopedMergeIntersectsFragmentScopes) {
  Knowledge a;
  a.add_exact(v(3, 1));
  Knowledge b;
  b.merge_scoped(a, Filter::addresses({HostId(1), HostId(2)}));
  Knowledge c;
  c.merge_scoped(b, Filter::addresses({HostId(2), HostId(4)}));
  // Only the intersection {2} survives the double scoping.
  EXPECT_TRUE(c.knows(message_to(2), v(3, 1)));
  EXPECT_FALSE(c.knows(message_to(1), v(3, 1)));
  EXPECT_FALSE(c.knows(message_to(4), v(3, 1)));
}

TEST(Knowledge, MergeWithEmptyScopeIsNoop) {
  Knowledge source;
  source.add_exact(v(3, 1));
  Knowledge target;
  target.merge_scoped(source, Filter::none());
  EXPECT_FALSE(target.knows(message_to(1), v(3, 1)));
  EXPECT_TRUE(target.fragments().empty());
}

TEST(Knowledge, FragmentsWithEqualScopeUnion) {
  Knowledge s1, s2;
  s1.add_exact(v(3, 5));
  s2.add_exact(v(4, 6));
  Knowledge target;
  const auto scope = Filter::addresses({HostId(1)});
  target.merge_scoped(s1, scope);
  target.merge_scoped(s2, scope);
  EXPECT_EQ(target.fragments().size(), 1u);
  EXPECT_TRUE(target.knows(message_to(1), v(3, 5)));
  EXPECT_TRUE(target.knows(message_to(1), v(4, 6)));
}

TEST(Knowledge, SubsumedFragmentIsDropped) {
  Knowledge source;
  source.add_exact(v(3, 5));
  Knowledge target;
  target.merge_scoped(source, Filter::addresses({HostId(1)}));
  target.merge_scoped(source, Filter::addresses({HostId(1), HostId(2)}));
  // The narrow fragment is covered by the wide one.
  EXPECT_EQ(target.fragments().size(), 1u);
  EXPECT_TRUE(target.knows(message_to(2), v(3, 5)));
}

TEST(Knowledge, UniversalCoverageSkipsFragmentCreation) {
  Knowledge source;
  source.add_exact(v(3, 5));
  Knowledge target;
  target.add_exact(v(3, 5));
  target.merge_scoped(source, Filter::addresses({HostId(1)}));
  EXPECT_TRUE(target.fragments().empty());
}

TEST(Knowledge, DropFragmentsMatchingItem) {
  Knowledge source;
  source.add_exact(v(3, 5));
  Knowledge target;
  target.merge_scoped(source, Filter::addresses({HostId(1)}));
  ASSERT_TRUE(target.knows(message_to(1), v(3, 5)));
  target.drop_fragments_matching(message_to(1));
  EXPECT_FALSE(target.knows(message_to(1), v(3, 5)));
}

TEST(Knowledge, FragmentCapEnforced) {
  Knowledge target;
  for (std::uint64_t i = 0; i < Knowledge::kMaxFragments + 10; ++i) {
    Knowledge source;
    // Distinct authors so universal coverage can't absorb them.
    source.add_exact(v(100 + i, 2));
    target.merge_scoped(source, Filter::addresses({HostId(i + 1)}));
  }
  EXPECT_LE(target.fragments().size(), Knowledge::kMaxFragments);
}

TEST(Knowledge, WireRoundTrip) {
  Knowledge k;
  k.add_exact(v(1, 1));
  k.add_exact_pinned(v(2, 9));
  Knowledge source;
  source.add_exact(v(3, 4));
  k.merge_scoped(source, Filter::addresses({HostId(7)}));
  ByteWriter w;
  k.serialize(w);
  ByteReader r(w.bytes());
  const Knowledge got = Knowledge::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_TRUE(got.knows(message_to(1), v(1, 1)));
  EXPECT_TRUE(got.knows(message_to(1), v(2, 9)));
  EXPECT_TRUE(got.knows(message_to(7), v(3, 4)));
  EXPECT_FALSE(got.knows(message_to(8), v(3, 4)));
}

TEST(Knowledge, SizeBytesTracksContent) {
  Knowledge empty;
  Knowledge loaded;
  for (std::uint64_t i = 1; i <= 50; ++i) loaded.add_exact(v(i, 3));
  EXPECT_GT(loaded.size_bytes(), empty.size_bytes());
  EXPECT_EQ(loaded.weight(), 50u * 1u);
}

TEST(Knowledge, WeightCountsFragments) {
  Knowledge k;
  Knowledge source;
  source.add_exact(v(5, 2));
  k.merge_scoped(source, Filter::addresses({HostId(1)}));
  EXPECT_GE(k.weight(), 1u);
}

}  // namespace
}  // namespace pfrdtn::repl
