#include "trace/random_waypoint.hpp"

#include <gtest/gtest.h>

#include <map>

#include "dtn/registry.hpp"
#include "sim/emulator.hpp"
#include "util/stats.hpp"

namespace pfrdtn::trace {
namespace {

RandomWaypointConfig small_config() {
  RandomWaypointConfig config;
  config.nodes = 10;
  config.days = 1;
  config.field_width_m = 1000;
  config.field_height_m = 1000;
  config.radio_range_m = 120;
  config.tick_s = 10;
  return config;
}

TEST(RandomWaypoint, Deterministic) {
  const auto a = generate_random_waypoint(small_config());
  const auto b = generate_random_waypoint(small_config());
  EXPECT_EQ(a.encounters, b.encounters);
}

TEST(RandomWaypoint, SeedChangesTrace) {
  auto config = small_config();
  const auto a = generate_random_waypoint(config);
  config.seed = 1234;
  const auto b = generate_random_waypoint(config);
  EXPECT_NE(a.encounters, b.encounters);
}

TEST(RandomWaypoint, ProducesContacts) {
  const auto trace = generate_random_waypoint(small_config());
  EXPECT_GT(trace.encounters.size(), 10u);
  EXPECT_EQ(trace.fleet_size, 10u);
  ASSERT_EQ(trace.days(), 1u);
  EXPECT_EQ(trace.active_buses[0].size(), 10u);
}

TEST(RandomWaypoint, EncountersWellFormedAndSorted) {
  const auto config = small_config();
  const auto trace = generate_random_waypoint(config);
  SimTime prev(-1);
  for (const Encounter& encounter : trace.encounters) {
    EXPECT_GE(encounter.time, prev);
    prev = encounter.time;
    EXPECT_LT(encounter.bus_a, encounter.bus_b);
    EXPECT_LT(encounter.bus_b, config.nodes);
    EXPECT_GT(encounter.duration_s, 0);
    EXPECT_GE(encounter.time.seconds(), 0);
  }
}

TEST(RandomWaypoint, DenserFieldYieldsMoreContacts) {
  auto sparse = small_config();
  auto dense = small_config();
  dense.field_width_m = 400;
  dense.field_height_m = 400;
  const auto sparse_trace = generate_random_waypoint(sparse);
  const auto dense_trace = generate_random_waypoint(dense);
  EXPECT_GT(dense_trace.encounters.size(),
            sparse_trace.encounters.size());
}

TEST(RandomWaypoint, LargerRangeYieldsLongerContacts) {
  auto narrow = small_config();
  auto wide = small_config();
  wide.radio_range_m = 300;
  const auto narrow_trace = generate_random_waypoint(narrow);
  const auto wide_trace = generate_random_waypoint(wide);
  Summary narrow_durations;
  for (const auto& encounter : narrow_trace.encounters)
    narrow_durations.add(static_cast<double>(encounter.duration_s));
  Summary wide_durations;
  for (const auto& encounter : wide_trace.encounters)
    wide_durations.add(static_cast<double>(encounter.duration_s));
  EXPECT_GT(wide_durations.mean(), narrow_durations.mean());
}

TEST(RandomWaypoint, InvalidConfigRejected) {
  auto config = small_config();
  config.nodes = 1;
  EXPECT_THROW(generate_random_waypoint(config), ContractViolation);
  config = small_config();
  config.tick_s = 0;
  EXPECT_THROW(generate_random_waypoint(config), ContractViolation);
  config = small_config();
  config.speed_max_mps = config.speed_min_mps / 2;
  EXPECT_THROW(generate_random_waypoint(config), ContractViolation);
}

TEST(RandomWaypoint, DrivesTheEmulatorEndToEnd) {
  // The random-waypoint trace plugs into the same emulation harness:
  // run the DTN application over it and check deliveries happen.
  auto config = small_config();
  config.days = 2;
  auto trace = generate_random_waypoint(config);

  EmailConfig email;
  email.users = 12;
  email.total_messages = 24;
  email.inject_days = 1;
  auto workload = generate_email(email);

  sim::EmulationConfig emulation_config;
  emulation_config.policy = "epidemic";
  emulation_config.invariant_check_every = 200;
  sim::Emulation emulation(emulation_config, std::move(trace),
                           std::move(workload));
  const auto result = emulation.run();
  EXPECT_EQ(result.metrics.injected_count(), 24u);
  EXPECT_GT(result.metrics.delivered_count(), 12u);
}

}  // namespace
}  // namespace pfrdtn::trace
