// The one jittered-exponential backoff shared by the CLI's connect
// retries, sync-with's contact re-dials, and the peer-health monitor's
// ejection windows: delays stay in [window/2, window], the window
// doubles per attempt up to the cap, same seed means same schedule,
// and differently seeded clients cut by the same fault spread out
// instead of re-dialing in lockstep.

#include "util/backoff.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pfrdtn {
namespace {

TEST(Backoff, JitteredDelayStaysInTheUpperHalfWindow) {
  Rng rng(1);
  for (const std::uint64_t window : {1u, 2u, 3u, 100u, 4096u}) {
    for (int i = 0; i < 200; ++i) {
      const std::uint64_t delay = jittered_delay_ms(window, rng);
      EXPECT_GE(delay, window / 2) << "window " << window;
      EXPECT_LE(delay, window) << "window " << window;
    }
  }
}

TEST(Backoff, JitteredDelayMatchesTheLegacyQuarantineDraw) {
  // The helper replaced an inline `half + rng.below(half + 1)` in the
  // quarantine table; drawing byte-identically is what keeps every
  // pre-existing seed and e2e expectation replaying unchanged.
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 50; ++i) {
    const std::uint64_t window = 1000ull << (i % 5);
    const std::uint64_t half = window / 2;
    EXPECT_EQ(jittered_delay_ms(window, a), half + b.below(half + 1));
  }
}

TEST(Backoff, WindowDoublesPerAttemptAndCaps) {
  JitteredBackoff backoff(BackoffOptions{100, 800}, 7);
  EXPECT_EQ(backoff.current_window_ms(), 100u);
  (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.current_window_ms(), 200u);
  (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.current_window_ms(), 400u);
  (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.current_window_ms(), 800u);
  // Far past any sane attempt count (and past the 40-doubling shift
  // guard): the window pins to the cap and delays stay bounded.
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t delay = backoff.next_delay_ms();
    EXPECT_GE(delay, 400u);
    EXPECT_LE(delay, 800u);
  }
  EXPECT_EQ(backoff.current_window_ms(), 800u);
}

TEST(Backoff, DelaysComeFromTheCurrentWindow) {
  JitteredBackoff backoff(BackoffOptions{200, 10000}, 3);
  for (int i = 0; i < 6; ++i) {
    const std::uint64_t window = backoff.current_window_ms();
    const std::uint64_t delay = backoff.next_delay_ms();
    EXPECT_GE(delay, window / 2);
    EXPECT_LE(delay, window);
  }
}

TEST(Backoff, ResetRestartsTheEscalation) {
  JitteredBackoff backoff(BackoffOptions{100, 10000}, 7);
  (void)backoff.next_delay_ms();
  (void)backoff.next_delay_ms();
  EXPECT_EQ(backoff.attempts(), 2u);
  EXPECT_EQ(backoff.current_window_ms(), 400u);
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  EXPECT_EQ(backoff.current_window_ms(), 100u);
}

TEST(Backoff, SameSeedSameSchedule) {
  JitteredBackoff a(BackoffOptions{200, 10000}, 99);
  JitteredBackoff b(BackoffOptions{200, 10000}, 99);
  for (int i = 0; i < 20; ++i)
    EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms());
}

TEST(Backoff, SeededJitterDesynchronizesARetryStorm) {
  // Fifty clients cut by the same link fault at the same instant, each
  // seeded differently (in the CLI: from its own clock reading). If
  // jitter did its job their first re-dial delays spread across the
  // [100, 200] band instead of thundering back in lockstep.
  constexpr std::size_t kClients = 50;
  std::vector<std::uint64_t> delays;
  std::set<std::uint64_t> distinct;
  delays.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    JitteredBackoff backoff(BackoffOptions{200, 10000}, 1000 + c);
    delays.push_back(backoff.next_delay_ms());
    distinct.insert(delays.back());
  }
  for (const std::uint64_t delay : delays) {
    EXPECT_GE(delay, 100u);
    EXPECT_LE(delay, 200u);
  }
  // Uniform draws over 101 values: ~40 distinct expected; 20 is a
  // conservative floor that still rules out lockstep decisively.
  EXPECT_GE(distinct.size(), 20u);
  const auto [lo, hi] = std::minmax_element(delays.begin(), delays.end());
  EXPECT_GE(*hi - *lo, 50u) << "delays clustered in a narrow band";
}

}  // namespace
}  // namespace pfrdtn
