#include "net/session.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "net/tcp.hpp"

namespace pfrdtn::net {
namespace {

using repl::Filter;
using repl::ForwardingPolicy;
using repl::Item;
using repl::Priority;
using repl::PriorityClass;
using repl::Replica;
using repl::SyncContext;
using repl::SyncOptions;
using repl::TransientView;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

/// Forward everything, and touch per-copy transient state so the test
/// exercises the on_forward mutation path in both sync paths.
class ForwardAll : public ForwardingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "all"; }
  std::vector<std::uint8_t> generate_request(
      const SyncContext&) override {
    return {0x11, 0x22};
  }
  Priority to_send(const SyncContext&, TransientView) override {
    return Priority::at(PriorityClass::Normal);
  }
  void on_forward(const SyncContext&, TransientView stored,
                  TransientView outgoing) override {
    stored.set_int("hops", stored.get_int("hops").value_or(0) + 1);
    outgoing.set_int("hops", stored.get_int("hops").value_or(0));
  }
};

/// One reproducible two-replica world.
struct World {
  Replica source;
  Replica target;
  ForwardAll source_policy;
  ForwardAll target_policy;

  World()
      : source(ReplicaId(1), Filter::addresses({HostId(5)})),
        target(ReplicaId(2), Filter::addresses({HostId(9)})) {
    source.create(to(9), {'a'});           // matches target filter
    source.create(to(9), {'b', 'b'});      // matches target filter
    source.create(to(7), {'c'});           // policy extra
    const Item& doomed = source.create(to(9), {'d'});
    source.erase(doomed.id());             // tombstone travels too
  }
};

/// Serialized store + knowledge fingerprint for byte-identity checks.
std::vector<std::uint8_t> snapshot(const Replica& replica) {
  ByteWriter w;
  replica.store().for_each([&](const repl::ItemStore::Entry& entry) {
    entry.item.serialize(w);
  });
  replica.knowledge().serialize(w);
  return w.take();
}

void expect_same_stats(const repl::SyncStats& a,
                       const repl::SyncStats& b) {
  EXPECT_EQ(a.items_sent, b.items_sent);
  EXPECT_EQ(a.items_new, b.items_new);
  EXPECT_EQ(a.items_stale, b.items_stale);
  EXPECT_EQ(a.evictions, b.evictions);
  EXPECT_EQ(a.request_bytes, b.request_bytes);
  EXPECT_EQ(a.batch_bytes, b.batch_bytes);
  EXPECT_EQ(a.complete, b.complete);
}

TEST(SyncSession, LoopbackMatchesInProcessByteForByte) {
  World in_process;
  World transported;
  const auto direct = repl::run_sync(
      in_process.source, in_process.target, &in_process.source_policy,
      &in_process.target_policy, SimTime(0));
  const auto over_wire = sync_over_loopback(
      transported.source, transported.target,
      &transported.source_policy, &transported.target_policy,
      SimTime(0));

  ASSERT_FALSE(over_wire.client.transport_failed);
  expect_same_stats(direct.stats, over_wire.client.result.stats);
  EXPECT_EQ(direct.delivered.size(),
            over_wire.client.result.delivered.size());
  EXPECT_EQ(snapshot(in_process.source), snapshot(transported.source));
  EXPECT_EQ(snapshot(in_process.target), snapshot(transported.target));
}

TEST(SyncSession, LoopbackMatchesInProcessUnderBandwidthCap) {
  World in_process;
  World transported;
  SyncOptions options;
  options.max_items = 1;
  const auto direct = repl::run_sync(
      in_process.source, in_process.target, &in_process.source_policy,
      &in_process.target_policy, SimTime(0), options);
  const auto over_wire = sync_over_loopback(
      transported.source, transported.target,
      &transported.source_policy, &transported.target_policy,
      SimTime(0), options);
  expect_same_stats(direct.stats, over_wire.client.result.stats);
  EXPECT_FALSE(direct.stats.complete);
  EXPECT_EQ(snapshot(in_process.target), snapshot(transported.target));
}

TEST(SyncSession, ReportedBytesMatchWireSizeHelpers) {
  World world;
  const repl::SyncRequest request = repl::make_request(
      world.target, &world.target_policy, world.source.id(), SimTime(0));
  World fresh;  // request generation above consumed no state, but keep
                // the measured sync pristine anyway
  const auto outcome = sync_over_loopback(
      fresh.source, fresh.target, &fresh.source_policy,
      &fresh.target_policy, SimTime(0));
  EXPECT_EQ(outcome.client.result.stats.request_bytes,
            repl::wire_size(request));
  // Request + batch frames are everything that crossed the link.
  EXPECT_EQ(outcome.bytes_delivered,
            outcome.client.result.stats.request_bytes +
                outcome.client.result.stats.batch_bytes);
}

/// The heart of the fault-injection coverage: kill the contact after
/// every possible byte budget (which includes every frame boundary)
/// and require the target's invariants, partial-application semantics
/// and no-knowledge-from-incomplete-sync guarantee to hold throughout.
TEST(SyncSession, SurvivesLinkCutAtEveryByte) {
  std::size_t total = 0;
  std::size_t expected_items = 0;
  {
    World world;
    const auto fault_free = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(0));
    total = fault_free.bytes_delivered;
    expected_items = fault_free.client.result.stats.items_sent;
  }
  ASSERT_GT(total, 0u);
  ASSERT_GT(expected_items, 0u);

  for (std::size_t cut = 0; cut <= total; ++cut) {
    World world;
    LoopbackFaults faults;
    faults.cut_after_bytes = cut;
    const auto outcome = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(0), {}, faults);
    const auto& stats = outcome.client.result.stats;

    if (cut < total) {
      EXPECT_TRUE(outcome.client.transport_failed) << "cut=" << cut;
      EXPECT_FALSE(stats.complete) << "cut=" << cut;
      // Knowledge is never learned from an incomplete sync.
      EXPECT_TRUE(world.target.knowledge().fragments().empty())
          << "cut=" << cut;
    } else {
      EXPECT_FALSE(outcome.client.transport_failed);
      EXPECT_TRUE(stats.complete);
    }
    // Only fully received items were applied.
    EXPECT_LE(stats.items_sent, expected_items) << "cut=" << cut;
    // Store/knowledge soundness holds at both ends regardless of
    // where the contact died.
    EXPECT_EQ(world.target.check_invariants(), "") << "cut=" << cut;
    EXPECT_EQ(world.source.check_invariants(), "") << "cut=" << cut;

    // A later, unconstrained contact repairs everything: the withheld
    // items are re-sent (at-most-once still holds for what arrived).
    const auto repair =
        repl::run_sync(world.source, world.target, &world.source_policy,
                       &world.target_policy, SimTime(1));
    EXPECT_TRUE(repair.stats.complete);
    EXPECT_EQ(stats.items_new + repair.stats.items_new, expected_items)
        << "cut=" << cut;
    EXPECT_EQ(repair.stats.items_stale, 0u)
        << "cut=" << cut << " (duplicate transmission)";
    EXPECT_EQ(world.target.check_invariants(), "");
  }
}

TEST(SyncSession, FailedRequestMeansNoSyncAtAll) {
  World world;
  LoopbackFaults faults;
  faults.cut_after_bytes = 0;  // nothing crosses
  const auto outcome = sync_over_loopback(
      world.source, world.target, &world.source_policy,
      &world.target_policy, SimTime(0), {}, faults);
  EXPECT_TRUE(outcome.client.transport_failed);
  EXPECT_TRUE(outcome.server.transport_failed);
  EXPECT_EQ(outcome.client.result.stats.items_sent, 0u);
  EXPECT_FALSE(outcome.client.result.stats.complete);
  EXPECT_EQ(world.target.store().size(), 0u);
}

TEST(SyncSession, LearnKnowledgeOptionRespectedOverLoopback) {
  World world;
  SyncOptions options;
  options.learn_knowledge = false;
  const auto outcome = sync_over_loopback(
      world.source, world.target, &world.source_policy,
      &world.target_policy, SimTime(0), options);
  EXPECT_TRUE(outcome.client.result.stats.complete);
  EXPECT_TRUE(world.target.knowledge().fragments().empty());
}

TEST(SummaryNegotiation, FeatureFreeHelloIsByteIdenticalToLegacy) {
  HelloInfo legacy;
  legacy.replica = ReplicaId(5);
  legacy.mode = SyncMode::Encounter;
  const auto bare = encode_hello(legacy);
  HelloInfo advertising = legacy;
  advertising.features = kFeatureSummaryExchange;
  const auto with_features = encode_hello(advertising);
  // Features append one uvarint; a zero-features hello stays byte-
  // identical to the pre-summary wire format, so legacy peers (whose
  // decoder requires the payload to end after the mode byte) are
  // never shown bytes they cannot parse.
  EXPECT_EQ(with_features.size(), bare.size() + 1);
  EXPECT_EQ(std::vector<std::uint8_t>(with_features.begin(),
                                      with_features.end() - 1),
            bare);
  EXPECT_EQ(decode_hello(bare).features, 0u);
  EXPECT_EQ(decode_hello(with_features).features,
            kFeatureSummaryExchange);
  EXPECT_EQ(decode_hello(with_features).replica, legacy.replica);
}

TEST(SummaryNegotiation, ResolveSummaryModeMatrix) {
  using repl::SummaryMode;
  const std::uint64_t none = 0;
  const std::uint64_t feat = kFeatureSummaryExchange;
  EXPECT_EQ(resolve_summary_mode(SummaryMode::On, none), SummaryMode::On);
  EXPECT_EQ(resolve_summary_mode(SummaryMode::On, feat), SummaryMode::On);
  EXPECT_EQ(resolve_summary_mode(SummaryMode::Off, none),
            SummaryMode::Off);
  EXPECT_EQ(resolve_summary_mode(SummaryMode::Off, feat),
            SummaryMode::Off);
  EXPECT_EQ(resolve_summary_mode(SummaryMode::Auto, none),
            SummaryMode::Off);
  EXPECT_EQ(resolve_summary_mode(SummaryMode::Auto, feat),
            SummaryMode::On);
}

/// One full TCP session under a (client mode, server mode) pair.
struct SessionEnds {
  ClientSessionOutcome client;
  ServerSessionOutcome server;
};

SessionEnds run_modes(Replica& client_replica, Replica& server_replica,
                      repl::SummaryMode client_mode,
                      repl::SummaryMode server_mode, SimTime now) {
  SessionEnds ends;
  SyncOptions client_options;
  client_options.summary_mode = client_mode;
  SyncOptions server_options;
  server_options.summary_mode = server_mode;
  TcpListener listener(0);
  std::thread server([&] {
    auto connection = listener.accept();
    ends.server = serve_session(*connection, server_replica, nullptr,
                                now, server_options);
  });
  auto connection = tcp_connect("127.0.0.1", listener.port());
  ends.client =
      run_client_session(*connection, client_replica, nullptr,
                         SyncMode::Encounter, now, client_options);
  server.join();
  return ends;
}

TEST(SummaryNegotiation, EveryCompatibleModePairingConverges) {
  using repl::SummaryMode;
  // On forces the fast path, so On-vs-Off is a misconfiguration; every
  // other pairing must negotiate a working protocol and converge.
  const std::pair<SummaryMode, SummaryMode> pairings[] = {
      {SummaryMode::Off, SummaryMode::Off},
      {SummaryMode::Off, SummaryMode::Auto},
      {SummaryMode::Auto, SummaryMode::Off},
      {SummaryMode::Auto, SummaryMode::Auto},
      {SummaryMode::On, SummaryMode::Auto},
      {SummaryMode::Auto, SummaryMode::On},
      {SummaryMode::On, SummaryMode::On},
  };
  for (const auto& [client_mode, server_mode] : pairings) {
    Replica server_replica(ReplicaId(1), Filter::addresses({HostId(5)}));
    Replica client_replica(ReplicaId(2), Filter::addresses({HostId(9)}));
    server_replica.create(to(9), {'s'});
    client_replica.create(to(5), {'c'});
    const SessionEnds ends = run_modes(client_replica, server_replica,
                                       client_mode, server_mode,
                                       SimTime(0));
    const std::string where =
        "client=" + std::to_string(static_cast<int>(client_mode)) +
        " server=" + std::to_string(static_cast<int>(server_mode));
    EXPECT_FALSE(ends.client.transport_failed) << where;
    EXPECT_FALSE(ends.server.transport_failed) << where;
    EXPECT_EQ(client_replica.store().size(), 2u) << where;
    EXPECT_EQ(server_replica.store().size(), 2u) << where;
    EXPECT_EQ(client_replica.check_invariants(), "") << where;
    EXPECT_EQ(server_replica.check_invariants(), "") << where;
  }
}

TEST(SummaryNegotiation, AutoUsesTheFastPathOnceConverged) {
  // Two universal-filter replicas converge, then sync again under
  // Auto/Auto and Off/Off: the negotiated summary session must spend
  // fewer request bytes (a digest instead of the full knowledge),
  // proving the fast path really engaged through the handshake.
  using repl::SummaryMode;
  // Enough accumulated history that the exact knowledge dwarfs a
  // fixed-size digest — the fast path's advantage only exists at
  // scale, and authored prefixes collapse into O(authors) bytes, so
  // the bulk must come from sparse exact events (the shape eviction
  // and out-of-order arrival leave behind).
  const auto converged_pair = [](Replica& a, Replica& b) {
    a.create(to(9), {'a'});
    b.create(to(5), {'b'});
    for (std::uint64_t c = 1; c <= 300; ++c) {
      const repl::Version seen{ReplicaId(7), 2 * c, 1};
      a.knowledge_mutable().add_exact(seen);
      b.knowledge_mutable().add_exact(seen);
    }
    (void)encounter_over_loopback(a, b, nullptr, nullptr, SimTime(0));
  };
  Replica auto_server(ReplicaId(1), Filter::all());
  Replica auto_client(ReplicaId(2), Filter::all());
  converged_pair(auto_server, auto_client);
  Replica off_server(ReplicaId(1), Filter::all());
  Replica off_client(ReplicaId(2), Filter::all());
  converged_pair(off_server, off_client);
  ASSERT_EQ(auto_client.knowledge().wire_digest(),
            auto_server.knowledge().wire_digest());

  const SessionEnds fast =
      run_modes(auto_client, auto_server, SummaryMode::Auto,
                SummaryMode::Auto, SimTime(1));
  const SessionEnds exact =
      run_modes(off_client, off_server, SummaryMode::Off,
                SummaryMode::Off, SimTime(1));
  ASSERT_FALSE(fast.client.transport_failed);
  ASSERT_FALSE(exact.client.transport_failed);
  EXPECT_EQ(fast.client.pull.result.stats.items_sent, 0u);
  EXPECT_LT(fast.client.pull.result.stats.request_bytes,
            exact.client.pull.result.stats.request_bytes);
  EXPECT_LT(fast.client.pull.result.stats.batch_bytes,
            exact.client.pull.result.stats.batch_bytes);
}

TEST(SyncSession, ThrottledLinkAccumulatesTransferTime) {
  World world;
  LoopbackFaults faults;
  faults.bytes_per_second = 1000;
  const auto outcome = sync_over_loopback(
      world.source, world.target, &world.source_policy,
      &world.target_policy, SimTime(0), {}, faults);
  EXPECT_GT(outcome.simulated_seconds, 0.0);
  EXPECT_DOUBLE_EQ(
      outcome.simulated_seconds,
      static_cast<double>(outcome.bytes_delivered) / 1000.0);
}

}  // namespace
}  // namespace pfrdtn::net
