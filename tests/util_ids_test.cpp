#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace pfrdtn {
namespace {

TEST(StrongId, DefaultIsInvalid) {
  ReplicaId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.value(), ReplicaId::kInvalid);
}

TEST(StrongId, ConstructedIsValid) {
  ReplicaId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7u);
}

TEST(StrongId, Ordering) {
  EXPECT_LT(ReplicaId(1), ReplicaId(2));
  EXPECT_EQ(ReplicaId(3), ReplicaId(3));
  EXPECT_NE(ReplicaId(3), ReplicaId(4));
  EXPECT_GT(ReplicaId(9), ReplicaId(2));
}

TEST(StrongId, DistinctTagTypesAreDistinctTypes) {
  static_assert(!std::is_same_v<ReplicaId, HostId>);
  static_assert(!std::is_same_v<ItemId, HostId>);
  static_assert(!std::is_same_v<ReplicaId, ItemId>);
}

TEST(StrongId, StringRendering) {
  EXPECT_EQ(ReplicaId(5).str(), "r5");
  EXPECT_EQ(ItemId(12).str(), "i12");
  EXPECT_EQ(HostId(3).str(), "h3");
}

TEST(StrongId, Hashable) {
  std::unordered_set<HostId> hosts;
  hosts.insert(HostId(1));
  hosts.insert(HostId(2));
  hosts.insert(HostId(1));
  EXPECT_EQ(hosts.size(), 2u);
  EXPECT_TRUE(hosts.count(HostId(2)));
  EXPECT_FALSE(hosts.count(HostId(3)));
}

TEST(StrongId, InvalidComparesEqualToInvalid) {
  EXPECT_EQ(ReplicaId{}, ReplicaId{});
}

}  // namespace
}  // namespace pfrdtn
