#include "sim/metrics.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::sim {
namespace {

TEST(Metrics, InjectionAndDelivery) {
  Metrics metrics;
  metrics.on_injected(ItemId(1), HostId(10), HostId(20), at(0, 8));
  EXPECT_EQ(metrics.injected_count(), 1u);
  EXPECT_EQ(metrics.delivered_count(), 0u);
  EXPECT_TRUE(metrics.on_delivered(ItemId(1), at(0, 10), 3));
  EXPECT_EQ(metrics.delivered_count(), 1u);
  const auto& record = metrics.records().at(ItemId(1));
  EXPECT_DOUBLE_EQ(record.delay_hours(), 2.0);
  EXPECT_EQ(record.copies_at_delivery, 3u);
}

TEST(Metrics, OnlyFirstDeliveryCounts) {
  Metrics metrics;
  metrics.on_injected(ItemId(1), HostId(1), HostId(2), at(0, 8));
  EXPECT_TRUE(metrics.on_delivered(ItemId(1), at(0, 9), 2));
  EXPECT_FALSE(metrics.on_delivered(ItemId(1), at(0, 12), 5));
  EXPECT_DOUBLE_EQ(metrics.records().at(ItemId(1)).delay_hours(), 1.0);
}

TEST(Metrics, UnknownMessageDeliveryIgnored) {
  Metrics metrics;
  EXPECT_FALSE(metrics.on_delivered(ItemId(9), at(0, 9), 1));
}

TEST(Metrics, DelayDistributionAndWithin) {
  Metrics metrics;
  metrics.on_injected(ItemId(1), HostId(1), HostId(2), at(0, 8));
  metrics.on_injected(ItemId(2), HostId(1), HostId(3), at(0, 8));
  metrics.on_injected(ItemId(3), HostId(1), HostId(4), at(0, 8));
  metrics.on_delivered(ItemId(1), at(0, 9), 2);    // 1 h
  metrics.on_delivered(ItemId(2), at(1, 8), 2);    // 24 h
  // ItemId(3) never delivered.
  const auto delays = metrics.delay_distribution();
  EXPECT_EQ(delays.count(), 2u);
  EXPECT_DOUBLE_EQ(delays.mean(), 12.5);
  // Percent of *injected* messages.
  EXPECT_NEAR(metrics.delivered_within_hours(12), 100.0 / 3.0, 1e-9);
  EXPECT_NEAR(metrics.delivered_within_hours(24), 200.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(metrics.max_delay_hours(), 24.0);
}

TEST(Metrics, CopiesAggregates) {
  Metrics metrics;
  metrics.on_injected(ItemId(1), HostId(1), HostId(2), SimTime(0));
  metrics.on_injected(ItemId(2), HostId(1), HostId(3), SimTime(0));
  metrics.on_delivered(ItemId(1), SimTime(100), 2);
  metrics.set_copies_at_end(ItemId(1), 4);
  metrics.set_copies_at_end(ItemId(2), 1);
  EXPECT_DOUBLE_EQ(metrics.mean_copies_at_delivery(), 2.0);
  EXPECT_DOUBLE_EQ(metrics.mean_copies_at_end(), 2.5);
}

TEST(Metrics, TrafficAccumulates) {
  Metrics metrics;
  repl::SyncStats stats;
  stats.items_sent = 3;
  stats.batch_bytes = 100;
  metrics.on_sync(stats);
  metrics.on_sync(stats);
  metrics.on_encounter();
  EXPECT_EQ(metrics.traffic().items_sent, 6u);
  EXPECT_EQ(metrics.traffic().batch_bytes, 200u);
  EXPECT_EQ(metrics.sync_count(), 2u);
  EXPECT_EQ(metrics.encounter_count(), 1u);
}

TEST(Metrics, KnowledgeSamples) {
  Metrics metrics;
  metrics.sample_knowledge_bytes(100);
  metrics.sample_knowledge_bytes(300);
  EXPECT_DOUBLE_EQ(metrics.knowledge_bytes().mean(), 200.0);
  EXPECT_EQ(metrics.knowledge_bytes().count(), 2u);
}

TEST(Metrics, DelayOnUndeliveredThrows) {
  MessageRecord record;
  record.injected = SimTime(0);
  EXPECT_THROW((void)record.delay_hours(), ContractViolation);
}

TEST(Metrics, EmptyMetricsSafeDefaults) {
  Metrics metrics;
  EXPECT_DOUBLE_EQ(metrics.delivered_within_hours(12), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_copies_at_delivery(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.mean_copies_at_end(), 0.0);
  EXPECT_DOUBLE_EQ(metrics.max_delay_hours(), 0.0);
}

}  // namespace
}  // namespace pfrdtn::sim
