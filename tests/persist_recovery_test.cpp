// The Durability sink end to end on MemEnv: the acknowledgement
// contract (crash after any fsynced record recovers exactly the state
// at that record), fsync batching semantics, checkpoint rotation with
// the epoch guard, stale-log rejection, torn-tail resume, and the
// skip-fsync injected bug actually losing acknowledged state.

#include "persist/durability.hpp"

#include <gtest/gtest.h>

#include "repl/sync.hpp"
#include "util/byte_buffer.hpp"

namespace pfrdtn::persist {
namespace {

using repl::Filter;
using repl::Item;
using repl::Replica;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

Replica make_replica(std::uint64_t id, std::uint64_t addr) {
  return Replica(ReplicaId(id), Filter::addresses({HostId(addr)}));
}

std::uint64_t recovered_digest(MemEnv env /* by value: crash a copy */) {
  env.crash();
  const auto recovered = recover(env);
  EXPECT_TRUE(recovered.has_value());
  return state_digest(recovered->replica);
}

TEST(Recovery, FreshAttachWritesInitialCheckpoint) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);
  EXPECT_EQ(durability.epoch(), 1u);
  EXPECT_TRUE(env.exists(kManifestFile));
  EXPECT_TRUE(env.exists(checkpoint_file(1)));
  EXPECT_TRUE(env.exists(wal_file(1)));

  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(state_digest(recovered->replica), state_digest(replica));
  EXPECT_EQ(recovered->stats.epoch, 1u);
  EXPECT_EQ(recovered->stats.wal_records_replayed, 0u);
}

TEST(Recovery, NoCheckpointMeansFreshStart) {
  MemEnv env;
  EXPECT_FALSE(recover(env).has_value());
}

TEST(Recovery, CrashAfterEveryMutationRecoversThatExactState) {
  // The acknowledgement contract, exhaustively: after each funnel
  // mutation returns (sync_every_records=1, so each record is fsynced),
  // a crash at that instant must recover the exact post-mutation state.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Replica peer = make_replica(2, 5);
  Durability durability(env);
  durability.attach(replica);

  std::vector<Item> evicted;
  const auto check = [&](const char* what) {
    ASSERT_EQ(recovered_digest(env), state_digest(replica)) << what;
  };

  const Item& a = replica.create(to(5), {'a'});
  check("create in filter");
  const Item& b = replica.create(to(9), {'b'});
  check("create relay");
  replica.update(a.id(), to(5), {'a', '2'});
  check("update");
  replica.erase(b.id());
  check("erase");
  const Item& remote = peer.create(to(5), {'r'});
  replica.apply_remote(remote, evicted);
  check("apply_remote");
  const Item& passing = peer.create(to(7), {'p'});
  replica.apply_remote(passing, evicted);
  replica.discard_relay(passing.id());
  check("discard_relay");
  replica.set_filter(Filter::addresses({HostId(5), HostId(6)}));
  check("set_filter");
  replica.learn(peer.knowledge());
  check("learn");
}

TEST(Recovery, FsyncBatchingAcksOnlySyncedRecords) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  DurabilityOptions options;
  options.sync_every_records = 3;
  Durability durability(env, options);
  durability.attach(replica);

  replica.create(to(5), {'1'});
  replica.create(to(5), {'2'});
  const std::uint64_t digest_after_two = state_digest(replica);
  replica.create(to(5), {'3'});  // completes the batch: fsync
  const std::uint64_t digest_after_three = state_digest(replica);
  replica.create(to(5), {'4'});  // pending, not yet durable
  replica.create(to(5), {'5'});  // pending

  // A crash now forgets the two unsynced records — they were never
  // acknowledged — but keeps the full synced batch.
  EXPECT_EQ(recovered_digest(env), digest_after_three);
  EXPECT_NE(digest_after_three, digest_after_two);

  // flush() extends the contract to everything appended.
  durability.flush();
  EXPECT_EQ(recovered_digest(env), state_digest(replica));
}

TEST(Recovery, SkipFsyncBugLosesAcknowledgedState) {
  // The injectable bug behind `check --inject-bug skip-fsync`: hooks
  // acknowledge records that were never made durable, so a crash rolls
  // the replica back to the initial checkpoint.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  const std::uint64_t empty_digest = state_digest(replica);
  DurabilityOptions options;
  options.unsafe_skip_fsync = true;
  Durability durability(env, options);
  durability.attach(replica);

  replica.create(to(5), {'a'});
  durability.flush();
  ASSERT_NE(state_digest(replica), empty_digest);
  EXPECT_EQ(recovered_digest(env), empty_digest);  // state lost
}

TEST(Recovery, CheckpointRotationAdvancesEpochAndResetsLog) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  DurabilityOptions options;
  options.checkpoint_every_bytes = 1;  // request a roll per mutation
  Durability durability(env, options);
  durability.attach(replica);
  ASSERT_EQ(durability.checkpoints_written(), 1u);

  // Hooks log write-ahead (record first, mutation second), so a roll
  // triggered by an append is deferred to the next safe point — the
  // start of the following log() or an explicit flush() — where memory
  // and log agree. Two creates therefore roll once (at the second
  // create's entry), leaving the second record in the live segment.
  replica.create(to(5), {'a'});
  replica.create(to(5), {'b'});
  EXPECT_EQ(durability.epoch(), 2u);
  EXPECT_EQ(durability.checkpoints_written(), 2u);
  {
    const auto recovered = recover(env);
    ASSERT_TRUE(recovered.has_value());
    EXPECT_EQ(recovered->stats.epoch, 2u);
    EXPECT_EQ(recovered->stats.wal_records_replayed, 1u);
    EXPECT_EQ(state_digest(recovered->replica), state_digest(replica));
  }

  // flush() consumes the pending roll: the deferred checkpoint lands
  // and the fresh segment is empty.
  durability.flush();
  EXPECT_EQ(durability.epoch(), 3u);
  EXPECT_EQ(durability.checkpoints_written(), 3u);
  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->stats.epoch, 3u);
  EXPECT_EQ(recovered->stats.wal_records_replayed, 0u);
  EXPECT_EQ(state_digest(recovered->replica), state_digest(replica));
}

TEST(Recovery, ExplicitCheckpointNowIsCrashSafe) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);
  replica.create(to(5), {'a'});
  durability.checkpoint_now();
  replica.create(to(5), {'b'});

  EXPECT_EQ(recovered_digest(env), state_digest(replica));
  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->stats.epoch, 2u);
  EXPECT_EQ(recovered->stats.wal_records_replayed, 1u);  // only 'b'
}

TEST(Recovery, StaleEpochLogIsIgnored) {
  // Epoch guard: a log left over from before a checkpoint roll (crash
  // between checkpoint publish and WAL reset) must not replay on top
  // of the newer checkpoint.
  MemEnv env;
  Replica old_state = make_replica(1, 5);
  {
    Durability durability(env);
    durability.attach(old_state);
    old_state.create(to(5), {'a'});  // epoch-1 WAL record
    durability.detach();
  }
  Replica new_state =
      decode_replica_state(encode_replica_state(old_state));
  new_state.create(to(5), {'b'});
  // Publish the epoch-2 checkpoint and manifest but "crash" before the
  // epoch-2 WAL segment is created: wal.1.log with its record is still
  // on disk, but everything in it is already folded into checkpoint 2.
  env.write_file_durable(checkpoint_file(2),
                         encode_checkpoint(2, new_state));
  env.write_file_durable(kManifestFile, encode_manifest({1, 2}));

  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->stats.wal_stale);
  EXPECT_EQ(recovered->stats.wal_records_replayed, 0u);
  EXPECT_EQ(state_digest(recovered->replica), state_digest(new_state));
}

TEST(Recovery, TornTailIsTruncatedAndLoggingResumes) {
  MemEnv env;
  std::uint64_t digest_before_crash = 0;
  {
    Replica replica = make_replica(1, 5);
    Durability durability(env);
    durability.attach(replica);
    replica.create(to(5), {'a'});
    digest_before_crash = state_digest(replica);
    durability.detach();
  }
  // Power cut mid-append: garbage bytes after the valid prefix.
  env.crash();
  env.corrupt_append(wal_file(1), {0x13, 0x37, 0xFF, 0x00, 0xAB});

  auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->stats.wal_bytes_truncated, 5u);
  EXPECT_EQ(state_digest(recovered->replica), digest_before_crash);

  // attach() truncates the tail; the next record lands cleanly.
  Replica replica = std::move(recovered->replica);
  Durability durability(env);
  durability.attach(replica);
  replica.create(to(5), {'b'});
  EXPECT_EQ(recovered_digest(env), state_digest(replica));
}

TEST(Recovery, RecoveredReplicaSyncsByteIdentically) {
  // Crash + recovery must be invisible to the peer: the recovered
  // replica answers a sync request with the byte-identical batch the
  // never-crashed replica would send.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);
  for (int i = 0; i < 4; ++i)
    replica.create(to(5), {static_cast<std::uint8_t>('a' + i)});

  env.crash();
  auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());

  Replica target = make_replica(9, 5);
  const repl::SyncRequest request =
      repl::make_request(target, nullptr, replica.id(), SimTime(0));
  ByteWriter a, b;
  repl::build_batch(replica, nullptr, request, SimTime(0)).serialize(a);
  repl::build_batch(recovered->replica, nullptr, request, SimTime(0))
      .serialize(b);
  EXPECT_EQ(a.bytes(), b.bytes());
}

TEST(Recovery, DeliveredLedgerSurvivesCrash) {
  // note_delivered is acknowledged like any mutation: once it returns,
  // a crash must recover the full ledger so the application never
  // re-reports those messages (exactly-once across restarts).
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);

  const Item& a = replica.create(to(5), {'a'});
  const Item& b = replica.create(to(5), {'b'});
  durability.note_delivered(a.id());
  durability.note_delivered(b.id());
  durability.note_delivered(a.id());  // idempotent: no duplicate record

  env.crash();
  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->delivered,
            (std::set<ItemId>{a.id(), b.id()}));
  EXPECT_EQ(state_digest(recovered->replica), state_digest(replica));
}

TEST(Recovery, DeliveredLedgerSurvivesCheckpointRotation) {
  // Ledger entries logged before a checkpoint roll move into the
  // checkpoint; entries logged after ride the fresh WAL. Recovery and
  // a re-attach both see the union.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);

  const Item& a = replica.create(to(5), {'a'});
  durability.note_delivered(a.id());
  durability.checkpoint_now();
  const Item& b = replica.create(to(5), {'b'});
  durability.note_delivered(b.id());
  durability.detach();

  env.crash();
  auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  const std::set<ItemId> expect{a.id(), b.id()};
  EXPECT_EQ(recovered->delivered, expect);

  // A fresh Durability restores the same ledger (checkpoint + log),
  // so its next checkpoint carries the complete set forward.
  Durability reborn(env);
  reborn.attach(recovered->replica);
  EXPECT_EQ(reborn.delivered(), expect);
}

TEST(Recovery, CorruptNewestCheckpointFallsBackAtEveryByteOffset) {
  // The generation guarantee, exhaustively: whatever single byte of
  // the newest checkpoint a hostile disk flips, recovery lands on the
  // previous generation and rebuilds the identical state by replaying
  // the full wal.1 segment plus the wal.2 prefix.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);
  replica.create(to(5), {'a'});  // folded into checkpoint 2
  durability.checkpoint_now();
  replica.create(to(5), {'b'});  // lives in wal.2.log
  durability.detach();
  const std::uint64_t expect = state_digest(replica);

  const std::string newest = checkpoint_file(2);
  const std::vector<std::uint8_t> good = env.read_file(newest);
  for (std::size_t off = 0; off < good.size(); ++off) {
    MemEnv copy = env;
    std::vector<std::uint8_t> bad = good;
    bad[off] ^= 0xFF;
    copy.write_file_durable(newest, bad);
    const auto recovered = recover(copy);
    ASSERT_TRUE(recovered.has_value()) << "offset " << off;
    EXPECT_TRUE(recovered->stats.fallback) << "offset " << off;
    EXPECT_EQ(recovered->stats.epoch, 1u) << "offset " << off;
    EXPECT_EQ(recovered->stats.newest_epoch, 2u) << "offset " << off;
    EXPECT_EQ(recovered->stats.generations_tried, 2u) << "offset " << off;
    EXPECT_EQ(recovered->stats.segments_replayed, 2u) << "offset " << off;
    ASSERT_EQ(state_digest(recovered->replica), expect)
        << "offset " << off;
  }

  // Control: the untouched directory recovers without falling back.
  const auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_FALSE(recovered->stats.fallback);
  EXPECT_EQ(recovered->stats.epoch, 2u);
  EXPECT_EQ(state_digest(recovered->replica), expect);
}

TEST(Recovery, CorruptNewestGenerationIsRepairedOnAttach) {
  MemEnv env;
  std::set<ItemId> expect_delivered;
  std::uint64_t expect_digest = 0;
  {
    Replica replica = make_replica(1, 5);
    Durability durability(env);
    durability.attach(replica);
    const Item& a = replica.create(to(5), {'a'});
    durability.note_delivered(a.id());
    expect_delivered.insert(a.id());
    durability.checkpoint_now();
    const Item& b = replica.create(to(5), {'b'});
    durability.note_delivered(b.id());
    expect_delivered.insert(b.id());
    expect_digest = state_digest(replica);
    durability.detach();
  }
  std::vector<std::uint8_t> bad = env.read_file(checkpoint_file(2));
  bad[bad.size() / 2] ^= 0xFF;
  env.write_file_durable(checkpoint_file(2), bad);

  auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  ASSERT_TRUE(recovered->stats.fallback);
  EXPECT_EQ(state_digest(recovered->replica), expect_digest);
  EXPECT_EQ(recovered->delivered, expect_delivered);

  // attach() repairs: a fresh checkpoint one epoch past the corrupt
  // generation, the unreadable one dropped, the ledger recomputed.
  Durability reborn(env);
  reborn.attach(recovered->replica);
  EXPECT_EQ(reborn.epoch(), 3u);
  EXPECT_TRUE(env.exists(checkpoint_file(3)));
  EXPECT_FALSE(env.exists(checkpoint_file(2)));
  EXPECT_EQ(reborn.delivered(), expect_delivered);
  EXPECT_EQ(reborn.generations(),
            (std::vector<std::uint64_t>{1, 3}));

  // The repaired directory keeps its acknowledgement contract.
  recovered->replica.create(to(5), {'c'});
  EXPECT_EQ(recovered_digest(env), state_digest(recovered->replica));
}

TEST(Recovery, PruneKeepsConfiguredGenerationCount) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  DurabilityOptions options;
  options.checkpoint_generations = 2;
  Durability durability(env, options);
  durability.attach(replica);
  for (int i = 0; i < 5; ++i) {
    replica.create(to(5), {static_cast<std::uint8_t>('a' + i)});
    durability.checkpoint_now();
  }
  EXPECT_EQ(durability.epoch(), 6u);
  EXPECT_EQ(durability.generations(),
            (std::vector<std::uint64_t>{5, 6}));
  EXPECT_EQ(durability.counters().generations_pruned, 4u);
  EXPECT_FALSE(env.exists(checkpoint_file(4)));
  EXPECT_FALSE(env.exists(wal_file(4)));
  EXPECT_TRUE(env.exists(checkpoint_file(5)));
  EXPECT_TRUE(env.exists(checkpoint_file(6)));
  EXPECT_EQ(recovered_digest(env), state_digest(replica));
}

TEST(Recovery, LegacyLayoutMigratesOnAttach) {
  // A pre-generation state directory (checkpoint.bin + wal.log) must
  // recover unchanged and convert to the manifest layout on the first
  // attach, byte-preserving the checkpoint and the WAL's valid prefix.
  MemEnv env;
  Replica replica = make_replica(1, 5);
  env.write_file_durable(kCheckpointFile, encode_checkpoint(1, replica));
  const Item& a = replica.create(to(5), {'a'});
  std::vector<std::uint8_t> wal = encode_wal_header(1);
  const auto record = encode_wal_record(encode_local_put(a));
  wal.insert(wal.end(), record.begin(), record.end());
  env.append(kWalFile, wal.data(), wal.size());
  env.sync(kWalFile);

  auto recovered = recover(env);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->stats.wal_records_replayed, 1u);
  ASSERT_EQ(state_digest(recovered->replica), state_digest(replica));

  Durability durability(env);
  durability.attach(recovered->replica);
  EXPECT_TRUE(env.exists(kManifestFile));
  EXPECT_TRUE(env.exists(checkpoint_file(1)));
  EXPECT_TRUE(env.exists(wal_file(1)));
  EXPECT_FALSE(env.exists(kCheckpointFile));
  EXPECT_FALSE(env.exists(kWalFile));

  // Logging resumes into the migrated segment under the same contract.
  recovered->replica.create(to(5), {'b'});
  EXPECT_EQ(recovered_digest(env), state_digest(recovered->replica));
}

TEST(Recovery, CorruptManifestIsRejected) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  {
    Durability durability(env);
    durability.attach(replica);
    replica.create(to(5), {'a'});
    durability.detach();
  }
  std::vector<std::uint8_t> bad = env.read_file(kManifestFile);
  bad.back() ^= 0xFF;  // break the CRC
  env.write_file_durable(kManifestFile, bad);
  EXPECT_THROW(recover(env), ContractViolation);
}

TEST(Recovery, AllGenerationsCorruptIsRejected) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  {
    Durability durability(env);
    durability.attach(replica);
    replica.create(to(5), {'a'});
    durability.checkpoint_now();
    replica.create(to(5), {'b'});
    durability.detach();
  }
  for (const std::uint64_t epoch : {1u, 2u}) {
    std::vector<std::uint8_t> bad =
        env.read_file(checkpoint_file(epoch));
    bad[8] ^= 0xFF;
    env.write_file_durable(checkpoint_file(epoch), bad);
  }
  EXPECT_THROW(recover(env), ContractViolation);
}

TEST(Recovery, DetachStopsLogging) {
  MemEnv env;
  Replica replica = make_replica(1, 5);
  Durability durability(env);
  durability.attach(replica);
  replica.create(to(5), {'a'});
  const std::uint64_t digest_at_detach = state_digest(replica);
  durability.detach();
  EXPECT_FALSE(durability.attached());
  replica.create(to(5), {'b'});  // unobserved: not durable

  EXPECT_EQ(recovered_digest(env), digest_at_detach);
}

}  // namespace
}  // namespace pfrdtn::persist
