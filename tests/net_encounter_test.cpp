/// Encounter mode over the loopback transport: both roles alternate on
/// one contact (a pulls from b, then b pulls from a) and every metric
/// matches the in-process path running the same two syncs in the same
/// order — stats, delivered items, and final replica state.

#include <gtest/gtest.h>

#include "net/session.hpp"

namespace pfrdtn::net {
namespace {

using repl::Filter;
using repl::ForwardingPolicy;
using repl::Priority;
using repl::PriorityClass;
using repl::Replica;
using repl::SyncContext;
using repl::SyncOptions;
using repl::TransientView;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

/// Forward everything and mutate per-copy state, so parity covers the
/// policy callbacks in both directions of the encounter.
class ForwardAll : public ForwardingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "all"; }
  Priority to_send(const SyncContext&, TransientView) override {
    return Priority::at(PriorityClass::Normal);
  }
  void on_forward(const SyncContext&, TransientView stored,
                  TransientView outgoing) override {
    stored.set_int("hops", stored.get_int("hops").value_or(0) + 1);
    outgoing.set_int("hops", stored.get_int("hops").value_or(0));
  }
};

/// Two replicas with traffic flowing both ways plus relay extras.
struct World {
  Replica a;
  Replica b;
  ForwardAll a_policy;
  ForwardAll b_policy;

  World()
      : a(ReplicaId(1), Filter::addresses({HostId(5)})),
        b(ReplicaId(2), Filter::addresses({HostId(9)})) {
    a.create(to(9), {'x'});       // delivered b-ward
    a.create(to(7), {'r'});       // relay extra for b
    b.create(to(5), {'y'});       // delivered a-ward
    b.create(to(5), {'z', 'z'});  // delivered a-ward
    b.create(to(3), {'q'});       // relay extra for a
  }
};

std::vector<std::uint8_t> snapshot(const Replica& replica) {
  ByteWriter w;
  replica.store().for_each([&](const repl::ItemStore::Entry& entry) {
    entry.item.serialize(w);
    for (const auto& [key, value] : entry.item.transient_all()) {
      w.str(key);
      w.str(value);
    }
  });
  replica.knowledge().serialize(w);
  return w.take();
}

void expect_same_stats(const repl::SyncStats& direct,
                       const repl::SyncStats& wire) {
  EXPECT_EQ(direct.items_sent, wire.items_sent);
  EXPECT_EQ(direct.items_new, wire.items_new);
  EXPECT_EQ(direct.items_stale, wire.items_stale);
  EXPECT_EQ(direct.evictions, wire.evictions);
  EXPECT_EQ(direct.request_bytes, wire.request_bytes);
  EXPECT_EQ(direct.batch_bytes, wire.batch_bytes);
  EXPECT_EQ(direct.complete, wire.complete);
}

void run_parity_check(const SyncOptions& options) {
  World wire_world;
  const auto wire = encounter_over_loopback(
      wire_world.a, wire_world.b, &wire_world.a_policy,
      &wire_world.b_policy, SimTime(0), options, {});
  ASSERT_FALSE(wire.a_pulled.transport_failed);
  ASSERT_FALSE(wire.b_applied.transport_failed);

  // The in-process path runs the same two syncs in the same order:
  // a pulls from b, then b pulls from a on the updated state.
  World direct_world;
  const auto direct_pull = repl::run_sync(
      direct_world.b, direct_world.a, &direct_world.b_policy,
      &direct_world.a_policy, SimTime(0), options);
  const auto direct_push = repl::run_sync(
      direct_world.a, direct_world.b, &direct_world.a_policy,
      &direct_world.b_policy, SimTime(0), options);

  expect_same_stats(direct_pull.stats, wire.a_pulled.result.stats);
  expect_same_stats(direct_push.stats, wire.b_applied.result.stats);
  EXPECT_EQ(direct_pull.delivered.size(),
            wire.a_pulled.result.delivered.size());
  EXPECT_EQ(direct_push.delivered.size(),
            wire.b_applied.result.delivered.size());
  EXPECT_EQ(snapshot(direct_world.a), snapshot(wire_world.a));
  EXPECT_EQ(snapshot(direct_world.b), snapshot(wire_world.b));
  EXPECT_EQ(wire_world.a.check_invariants(), "");
  EXPECT_EQ(wire_world.b.check_invariants(), "");
}

TEST(Encounter, BothRolesAlternateWithInProcessParity) {
  run_parity_check({});
}

TEST(Encounter, ParityHoldsUnderBandwidthCap) {
  SyncOptions options;
  options.max_items = 1;
  run_parity_check(options);
}

TEST(Encounter, SecondDirectionSeesFirstDirectionsState) {
  // After a pulls b's items, the push direction must not echo them
  // back (b authored them and still knows them), and items a newly
  // holds must not be offered to b unless b asks.
  World world;
  const auto outcome = encounter_over_loopback(
      world.a, world.b, &world.a_policy, &world.b_policy, SimTime(0),
      {}, {});
  ASSERT_FALSE(outcome.a_pulled.transport_failed);
  ASSERT_FALSE(outcome.b_applied.transport_failed);
  // Pull moved b's three offerings; push moved a's two. Nothing that
  // just traveled a-ward comes back b-ward.
  EXPECT_EQ(outcome.a_pulled.result.stats.items_new, 3u);
  EXPECT_EQ(outcome.b_applied.result.stats.items_new, 2u);
  EXPECT_EQ(outcome.b_applied.result.stats.items_stale, 0u);
  // One contact, one link: both directions share the byte account.
  EXPECT_EQ(outcome.bytes_delivered,
            outcome.a_pulled.result.stats.request_bytes +
                outcome.a_pulled.result.stats.batch_bytes +
                outcome.b_applied.result.stats.request_bytes +
                outcome.b_applied.result.stats.batch_bytes);
}

}  // namespace
}  // namespace pfrdtn::net
