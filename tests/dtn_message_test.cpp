#include "dtn/message.hpp"

#include <gtest/gtest.h>

namespace pfrdtn::dtn {
namespace {

TEST(Message, MetadataRoundTrip) {
  const auto md = message_metadata(HostId(3), {HostId(7), HostId(9)},
                                   at(1, 9, 30));
  repl::Item item(ItemId(1), repl::Version{ReplicaId(1), 1, 1}, md,
                  {'h', 'i'});
  ASSERT_TRUE(is_message(item));
  const auto message = Message::from_item(item);
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->id, ItemId(1));
  EXPECT_EQ(message->source, HostId(3));
  EXPECT_EQ(message->destinations,
            (std::vector<HostId>{HostId(7), HostId(9)}));
  EXPECT_EQ(message->created, at(1, 9, 30));
  EXPECT_EQ(message->body, "hi");
}

TEST(Message, NonMessageItemRejected) {
  repl::Item item(ItemId(1), repl::Version{ReplicaId(1), 1, 1},
                  {{repl::meta::kType, "photo"}}, {});
  EXPECT_FALSE(is_message(item));
  EXPECT_FALSE(Message::from_item(item).has_value());
}

TEST(Message, MissingTypeRejected) {
  repl::Item item(ItemId(1), repl::Version{ReplicaId(1), 1, 1},
                  {{repl::meta::kDest, "1"}}, {});
  EXPECT_FALSE(Message::from_item(item).has_value());
}

TEST(Message, EmptyBodyAndSingleDest) {
  const auto md = message_metadata(HostId(1), {HostId(2)}, SimTime(0));
  repl::Item item(ItemId(5), repl::Version{ReplicaId(1), 1, 1}, md, {});
  const auto message = Message::from_item(item);
  ASSERT_TRUE(message.has_value());
  EXPECT_TRUE(message->body.empty());
  EXPECT_EQ(message->destinations, std::vector<HostId>{HostId(2)});
}

TEST(Message, MetadataUsesWellKnownKeys) {
  const auto md = message_metadata(HostId(1), {HostId(2)}, at(0, 8));
  EXPECT_EQ(md.at(repl::meta::kType), kMessageType);
  EXPECT_EQ(md.at(repl::meta::kSource), "1");
  EXPECT_EQ(md.at(repl::meta::kDest), "2");
  EXPECT_EQ(md.at(repl::meta::kCreated), std::to_string(8 * 3600));
}

}  // namespace
}  // namespace pfrdtn::dtn
