// FsEnv's advisory state-directory lock: two processes (or two FsEnv
// instances — flock(2) is per open file description, so one process
// opening the directory twice conflicts the same way two processes do)
// must never run durability against the same directory concurrently,
// or interleaved WAL appends corrupt the log. The kernel releases the
// lock automatically when the holder exits — including SIGKILL, which
// is why the crash e2e can restart into the same directory.

#include "persist/env.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>

#include "util/require.hpp"

namespace pfrdtn::persist {
namespace {

std::string fresh_dir(const char* tag) {
  std::string dir = ::testing::TempDir() + "pfrdtn_lock_" + tag + "_" +
                    std::to_string(::getpid());
  std::remove((dir + "/LOCK").c_str());
  return dir;
}

TEST(StateDirLock, SecondOpenerFailsWithAClearError) {
  const std::string dir = fresh_dir("second");
  FsEnv first(dir);
  try {
    FsEnv second(dir);
    FAIL() << "second FsEnv on the same directory must not open";
  } catch (const ContractViolation& locked) {
    // The message must tell the operator what is wrong and hint at the
    // likely cause (another pfrdtn already serving this directory).
    const std::string what = locked.what();
    EXPECT_NE(what.find("locked by another process"), std::string::npos)
        << what;
    EXPECT_NE(what.find(dir), std::string::npos) << what;
  }
}

TEST(StateDirLock, ReleasedOnDestructionSoRestartsWork) {
  const std::string dir = fresh_dir("restart");
  { FsEnv holder(dir); }  // destructor releases the flock
  EXPECT_NO_THROW(FsEnv reopened(dir));
}

TEST(StateDirLock, DistinctDirectoriesDoNotConflict) {
  FsEnv a(fresh_dir("a"));
  EXPECT_NO_THROW(FsEnv b(fresh_dir("b")));
}

}  // namespace
}  // namespace pfrdtn::persist
