#include "repl/filter.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pfrdtn::repl {
namespace {

Item make_item(std::map<std::string, std::string> md) {
  return Item(ItemId(1), Version{ReplicaId(1), 1, 1}, std::move(md), {});
}

Item message_to(std::vector<HostId> dests) {
  return make_item({{meta::kDest, encode_hosts(dests)}});
}

TEST(Filter, TrueAndFalse) {
  const Item item = message_to({HostId(1)});
  EXPECT_TRUE(Filter::all().matches(item));
  EXPECT_FALSE(Filter::none().matches(item));
  EXPECT_FALSE(Filter().matches(item));  // default = none
}

TEST(Filter, AddressSetMatching) {
  const auto f = Filter::addresses({HostId(1), HostId(2)});
  EXPECT_TRUE(f.matches(message_to({HostId(1)})));
  EXPECT_TRUE(f.matches(message_to({HostId(3), HostId(2)})));
  EXPECT_FALSE(f.matches(message_to({HostId(3)})));
  EXPECT_FALSE(f.matches(make_item({})));  // no dest attribute
}

TEST(Filter, EmptyAddressSetIsNone) {
  EXPECT_TRUE(Filter::addresses({}).provably_empty());
}

TEST(Filter, TagMatching) {
  const auto f = Filter::tags({"work", "photos"});
  EXPECT_TRUE(f.matches(make_item({{meta::kTags, "photos"}})));
  EXPECT_TRUE(f.matches(make_item({{meta::kTags, "a,work,b"}})));
  EXPECT_FALSE(f.matches(make_item({{meta::kTags, "home"}})));
  EXPECT_FALSE(f.matches(make_item({})));
}

TEST(Filter, MetaEquals) {
  const auto f = Filter::meta_equals("type", "msg");
  EXPECT_TRUE(f.matches(make_item({{"type", "msg"}})));
  EXPECT_FALSE(f.matches(make_item({{"type", "photo"}})));
  EXPECT_FALSE(f.matches(make_item({})));
}

TEST(Filter, Composites) {
  const auto dest = Filter::addresses({HostId(1)});
  const auto type = Filter::meta_equals("type", "msg");
  const Item both = make_item(
      {{meta::kDest, encode_hosts({HostId(1)})}, {"type", "msg"}});
  const Item only_dest = message_to({HostId(1)});
  EXPECT_TRUE(Filter::conj(dest, type).matches(both));
  EXPECT_FALSE(Filter::conj(dest, type).matches(only_dest));
  EXPECT_TRUE(Filter::disj(dest, type).matches(only_dest));
  EXPECT_FALSE(Filter::negate(dest).matches(only_dest));
  EXPECT_TRUE(Filter::negate(type).matches(only_dest));
}

TEST(Filter, CompositeSimplifications) {
  const auto f = Filter::addresses({HostId(1)});
  EXPECT_TRUE(Filter::conj(Filter::all(), f).equals(f));
  EXPECT_TRUE(Filter::conj(f, Filter::none()).provably_empty());
  EXPECT_TRUE(Filter::disj(Filter::none(), f).equals(f));
  EXPECT_TRUE(Filter::disj(f, Filter::all()).equals(Filter::all()));
  EXPECT_TRUE(Filter::negate(Filter::negate(f)).equals(f));
}

TEST(Filter, DisjunctionOfAddressSetsStaysCanonical) {
  const auto f = Filter::disj(Filter::addresses({HostId(1)}),
                              Filter::addresses({HostId(2)}));
  EXPECT_TRUE(f.is_address_filter());
  EXPECT_EQ(f.address_set(),
            (std::set<HostId>{HostId(1), HostId(2)}));
}

TEST(Filter, IntersectAddressSets) {
  const auto a = Filter::addresses({HostId(1), HostId(2)});
  const auto b = Filter::addresses({HostId(2), HostId(3)});
  const auto i = a.intersect(b);
  EXPECT_TRUE(i.is_address_filter());
  EXPECT_EQ(i.address_set(), std::set<HostId>{HostId(2)});
  const auto disjoint =
      Filter::addresses({HostId(1)}).intersect(Filter::addresses({HostId(9)}));
  EXPECT_TRUE(disjoint.provably_empty());
}

TEST(Filter, IntersectWithTrueAndFalse) {
  const auto f = Filter::addresses({HostId(1)});
  EXPECT_TRUE(Filter::all().intersect(f).equals(f));
  EXPECT_TRUE(f.intersect(Filter::all()).equals(f));
  EXPECT_TRUE(f.intersect(Filter::none()).provably_empty());
}

TEST(Filter, IntersectMetaEquals) {
  const auto a = Filter::meta_equals("k", "1");
  EXPECT_TRUE(a.intersect(Filter::meta_equals("k", "1")).equals(a));
  EXPECT_TRUE(
      a.intersect(Filter::meta_equals("k", "2")).provably_empty());
}

TEST(Filter, SubsumptionRules) {
  const auto wide = Filter::addresses({HostId(1), HostId(2), HostId(3)});
  const auto narrow = Filter::addresses({HostId(2)});
  EXPECT_TRUE(Filter::all().subsumes(wide));
  EXPECT_TRUE(wide.subsumes(narrow));
  EXPECT_FALSE(narrow.subsumes(wide));
  EXPECT_TRUE(wide.subsumes(Filter::none()));
  EXPECT_TRUE(wide.subsumes(wide));
  // Tags vs addresses: conservatively false.
  EXPECT_FALSE(wide.subsumes(Filter::tags({"x"})));
}

TEST(Filter, Equality) {
  EXPECT_TRUE(Filter::addresses({HostId(1), HostId(2)})
                  .equals(Filter::addresses({HostId(2), HostId(1)})));
  EXPECT_FALSE(Filter::addresses({HostId(1)})
                   .equals(Filter::addresses({HostId(2)})));
  EXPECT_TRUE(Filter::all() == Filter::all());
  EXPECT_FALSE(Filter::all() == Filter::none());
}

TEST(Filter, WireRoundTrip) {
  const std::vector<Filter> filters = {
      Filter::all(),
      Filter::none(),
      Filter::addresses({HostId(1), HostId(42)}),
      Filter::tags({"a", "b"}),
      Filter::meta_equals("k", "v"),
      Filter::conj(Filter::addresses({HostId(1)}),
                   Filter::meta_equals("t", "m")),
      Filter::negate(Filter::tags({"x"})),
      Filter::disj(Filter::meta_equals("a", "1"),
                   Filter::meta_equals("b", "2")),
  };
  for (const Filter& f : filters) {
    ByteWriter w;
    f.serialize(w);
    ByteReader r(w.bytes());
    const Filter got = Filter::deserialize(r);
    EXPECT_TRUE(r.done());
    EXPECT_TRUE(got.equals(f)) << f.str() << " vs " << got.str();
  }
}

TEST(Filter, StringRendering) {
  EXPECT_EQ(Filter::all().str(), "true");
  EXPECT_EQ(Filter::meta_equals("k", "v").str(), "k=v");
  EXPECT_NE(Filter::addresses({HostId(3)}).str().find("h3"),
            std::string::npos);
}

/// Random filters + random items. Two soundness properties:
///  - intersect(a,b) matches only items both a and b match;
///  - a.subsumes(b) implies every matched-by-b item is matched by a.
class FilterPropertyTest : public ::testing::TestWithParam<int> {};

Filter random_filter(Rng& rng, int depth = 0) {
  const auto pick = rng.below(depth >= 2 ? 5 : 7);
  switch (pick) {
    case 0:
      return Filter::all();
    case 1:
      return Filter::none();
    case 2: {
      std::set<HostId> addrs;
      const auto n = rng.below(4);
      for (std::uint64_t i = 0; i < n; ++i)
        addrs.insert(HostId(1 + rng.below(6)));
      return Filter::addresses(std::move(addrs));
    }
    case 3: {
      std::set<std::string> tags;
      const auto n = rng.below(3);
      for (std::uint64_t i = 0; i < n; ++i)
        tags.insert("t" + std::to_string(rng.below(4)));
      return Filter::tags(std::move(tags));
    }
    case 4:
      return Filter::meta_equals("k" + std::to_string(rng.below(2)),
                                 "v" + std::to_string(rng.below(2)));
    case 5:
      return Filter::conj(random_filter(rng, depth + 1),
                          random_filter(rng, depth + 1));
    default:
      return Filter::disj(random_filter(rng, depth + 1),
                          random_filter(rng, depth + 1));
  }
}

Item random_item(Rng& rng) {
  std::map<std::string, std::string> md;
  if (rng.chance(0.8)) {
    std::vector<HostId> dests;
    const auto n = 1 + rng.below(2);
    for (std::uint64_t i = 0; i < n; ++i)
      dests.push_back(HostId(1 + rng.below(6)));
    md[meta::kDest] = encode_hosts(dests);
  }
  if (rng.chance(0.5))
    md[meta::kTags] = "t" + std::to_string(rng.below(4));
  if (rng.chance(0.5))
    md["k" + std::to_string(rng.below(2))] =
        "v" + std::to_string(rng.below(2));
  return make_item(std::move(md));
}

TEST_P(FilterPropertyTest, IntersectIsSoundUnderApproximation) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 7);
  for (int trial = 0; trial < 200; ++trial) {
    const Filter a = random_filter(rng);
    const Filter b = random_filter(rng);
    const Filter i = a.intersect(b);
    for (int k = 0; k < 10; ++k) {
      const Item item = random_item(rng);
      if (i.matches(item)) {
        ASSERT_TRUE(a.matches(item))
            << i.str() << " matched but " << a.str() << " did not";
        ASSERT_TRUE(b.matches(item))
            << i.str() << " matched but " << b.str() << " did not";
      }
    }
  }
}

TEST_P(FilterPropertyTest, SubsumptionIsSound) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  for (int trial = 0; trial < 200; ++trial) {
    const Filter a = random_filter(rng);
    const Filter b = random_filter(rng);
    if (!a.subsumes(b)) continue;
    for (int k = 0; k < 10; ++k) {
      const Item item = random_item(rng);
      if (b.matches(item)) {
        ASSERT_TRUE(a.matches(item))
            << a.str() << " claimed to subsume " << b.str();
      }
    }
  }
}

TEST_P(FilterPropertyTest, SerializationPreservesSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 13);
  for (int trial = 0; trial < 100; ++trial) {
    const Filter f = random_filter(rng);
    ByteWriter w;
    f.serialize(w);
    ByteReader r(w.bytes());
    const Filter got = Filter::deserialize(r);
    for (int k = 0; k < 10; ++k) {
      const Item item = random_item(rng);
      ASSERT_EQ(f.matches(item), got.matches(item)) << f.str();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterPropertyTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace pfrdtn::repl
