// FaultInjectingEnv semantics (determinism, the ENOSPC budget, short
// writes, zero-rate passthrough) and the degraded read-only mode it
// triggers in Durability: a hard storage fault refuses the mutation,
// flips the replica read-only, and never loses acknowledged state —
// while the ack-before-fsync mutant observably breaks that contract.

#include "persist/fault_env.hpp"

#include <gtest/gtest.h>

#include "persist/durability.hpp"
#include "util/storage_error.hpp"

namespace pfrdtn::persist {
namespace {

using repl::Filter;
using repl::Item;
using repl::Replica;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

Replica make_replica(std::uint64_t id, std::uint64_t addr) {
  return Replica(ReplicaId(id), Filter::addresses({HostId(addr)}));
}

TEST(FaultEnv, ZeroRateIsExactPassthrough) {
  MemEnv plain;
  MemEnv inner;
  FaultInjectingEnv wrapped(inner, FaultPlan{.seed = 42});
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  for (StorageEnv* env : {static_cast<StorageEnv*>(&plain),
                          static_cast<StorageEnv*>(&wrapped)}) {
    env->append("log", bytes, sizeof(bytes));
    env->sync("log");
    env->write_file_durable("blob", {9, 9});
    env->truncate("log", 2);
  }
  EXPECT_EQ(wrapped.faults_injected(), 0u);
  EXPECT_EQ(inner.read_file("log"), plain.read_file("log"));
  EXPECT_EQ(inner.read_file("blob"), plain.read_file("blob"));
}

TEST(FaultEnv, FaultsAreSeedDeterministic) {
  const auto run = [](std::uint64_t seed) {
    MemEnv inner;
    FaultInjectingEnv env(inner,
                          FaultPlan{.seed = seed, .fault_rate = 0.5});
    std::size_t caught = 0;
    const std::uint8_t bytes[] = {7, 7, 7, 7, 7, 7, 7, 7};
    for (int i = 0; i < 64; ++i) {
      try {
        env.append("log", bytes, sizeof(bytes));
        env.sync("log");
      } catch (const StorageError&) {
        ++caught;
      }
    }
    return std::make_pair(caught, env.faults_injected());
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_GT(run(7).second, 0u);
}

TEST(FaultEnv, ShortWriteLeavesOnlyAPrefix) {
  MemEnv inner;
  FaultPlan plan{.seed = 3, .fault_rate = 1.0};
  plan.fail_syncs = false;
  plan.fail_durable_writes = false;
  plan.fail_truncates = false;
  FaultInjectingEnv env(inner, plan);
  const std::uint8_t bytes[] = {1, 2, 3, 4, 5, 6, 7, 8};
  for (int i = 0; i < 16; ++i) {
    const std::size_t before = inner.file_size("log");
    try {
      env.append("log", bytes, sizeof(bytes));
      FAIL() << "rate-1.0 append must fault";
    } catch (const StorageError& err) {
      EXPECT_EQ(err.op(), "write");
      EXPECT_TRUE(err.error_code() == EIO || err.error_code() == ENOSPC);
      // Full failure or a short write: never more than a proper prefix.
      EXPECT_LT(inner.file_size("log") - before, sizeof(bytes));
    }
  }
}

TEST(FaultEnv, EnospcBudgetTripsAndClears) {
  MemEnv inner;
  FaultInjectingEnv env(inner,
                        FaultPlan{.seed = 1, .enospc_after_bytes = 10});
  const std::uint8_t bytes[] = {0, 1, 2, 3};
  env.append("log", bytes, sizeof(bytes));  // 4 bytes
  env.append("log", bytes, sizeof(bytes));  // 8 bytes
  env.sync("log");
  try {
    env.append("log", bytes, sizeof(bytes));  // would cross 10
    FAIL() << "budget crossing must fault";
  } catch (const StorageError& err) {
    EXPECT_EQ(err.error_code(), ENOSPC);
  }
  EXPECT_EQ(inner.read_file("log").size(), 8u);  // nothing partial
  // The operator clears space: writes flow again.
  env.clear_enospc_budget();
  env.append("log", bytes, sizeof(bytes));
  env.sync("log");
  EXPECT_EQ(inner.read_file("log").size(), 12u);
}

TEST(FaultEnv, HardFaultDegradesToReadOnlyWithoutLosingAckedState) {
  MemEnv inner;
  FaultPlan plan{.seed = 11};
  plan.fail_syncs = false;
  plan.fail_durable_writes = false;
  plan.fail_truncates = false;
  FaultInjectingEnv fault_env(inner, plan);

  Replica replica = make_replica(1, 5);
  int degrade_calls = 0;
  DurabilityOptions options;
  options.on_degrade = [&](const StorageError&) { ++degrade_calls; };
  Durability durability(fault_env, options);
  durability.attach(replica);

  replica.create(to(5), {'a'});
  replica.create(to(5), {'b'});
  const std::uint64_t acked = state_digest(replica);

  // The disk turns hostile: the next WAL append faults.
  fault_env.set_fault_rate(1.0);
  EXPECT_THROW(replica.create(to(5), {'c'}), StorageError);
  EXPECT_TRUE(durability.degraded());
  EXPECT_TRUE(durability.counters().degraded);
  EXPECT_TRUE(replica.read_only());
  EXPECT_EQ(degrade_calls, 1);
  // The marker is written through the (append-faulting) env's durable
  // path, which this plan leaves healthy.
  EXPECT_TRUE(inner.exists(kDegradedMarkerFile));

  // Every further mutation is refused as read-only — before any
  // in-memory change, and with no second degrade callback.
  EXPECT_THROW(replica.create(to(5), {'d'}), ReadOnlyError);
  EXPECT_THROW(replica.set_filter(Filter::addresses({HostId(6)})),
               ReadOnlyError);
  EXPECT_THROW(durability.note_delivered(ItemId(1)), ReadOnlyError);
  EXPECT_EQ(degrade_calls, 1);

  // Nothing a caller was told is durable may be lost: recovery lands
  // exactly on the acknowledged state.
  inner.crash();
  const auto recovered = recover(inner);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(state_digest(recovered->replica), acked);
}

TEST(FaultEnv, CleanRestartClearsDegradedMarker) {
  MemEnv inner;
  {
    FaultPlan plan{.seed = 11};
    plan.fail_syncs = false;
    plan.fail_durable_writes = false;
    plan.fail_truncates = false;
    FaultInjectingEnv fault_env(inner, plan);
    Replica replica = make_replica(1, 5);
    Durability durability(fault_env);
    durability.attach(replica);
    replica.create(to(5), {'a'});
    fault_env.set_fault_rate(1.0);
    EXPECT_THROW(replica.create(to(5), {'b'}), StorageError);
    ASSERT_TRUE(inner.exists(kDegradedMarkerFile));
  }
  // Restart on a healthy disk: recover + attach clears the marker.
  inner.crash();
  auto recovered = recover(inner);
  ASSERT_TRUE(recovered.has_value());
  Durability reborn(inner);
  reborn.attach(recovered->replica);
  EXPECT_FALSE(inner.exists(kDegradedMarkerFile));
  EXPECT_FALSE(reborn.degraded());
  recovered->replica.create(to(5), {'c'});  // writable again
}

TEST(FaultEnv, AckBeforeFsyncMutantLosesAcknowledgedState) {
  // The fsyncgate mutant: with unsafe_ack_before_fsync the failed
  // fsync is swallowed and the mutation acknowledged anyway — no
  // throw, no degrade — so a crash loses state a caller was promised.
  // This is the bug `check --inject-bug ack-before-fsync` must catch.
  MemEnv inner;
  FaultPlan plan{.seed = 5, .fault_rate = 1.0};
  plan.fail_appends = false;
  plan.fail_durable_writes = false;
  plan.fail_truncates = false;
  FaultInjectingEnv fault_env(inner, plan);

  Replica replica = make_replica(1, 5);
  DurabilityOptions options;
  options.unsafe_ack_before_fsync = true;
  Durability durability(fault_env, options);
  durability.attach(replica);
  const std::uint64_t before = state_digest(replica);

  replica.create(to(5), {'a'});  // "acknowledged" — fsync failed
  EXPECT_FALSE(durability.degraded());
  EXPECT_FALSE(replica.read_only());

  inner.crash();
  const auto recovered = recover(inner);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(state_digest(recovered->replica), before);  // lost
  EXPECT_NE(state_digest(replica), before);
}

TEST(FaultEnv, CorrectCodeDegradesOnFsyncFault) {
  // Control for the mutant: without the bug the same fsync fault is
  // fail-stop — the mutation is refused and the layer degrades.
  MemEnv inner;
  FaultPlan plan{.seed = 5};
  plan.fail_appends = false;
  plan.fail_durable_writes = false;
  plan.fail_truncates = false;
  FaultInjectingEnv fault_env(inner, plan);

  Replica replica = make_replica(1, 5);
  Durability durability(fault_env);
  durability.attach(replica);
  fault_env.set_fault_rate(1.0);  // every fsync from here on faults
  EXPECT_THROW(replica.create(to(5), {'a'}), StorageError);
  EXPECT_TRUE(durability.degraded());
  EXPECT_TRUE(replica.read_only());
}

TEST(FaultEnv, SoftCheckpointFailureKeepsLogging) {
  // A failing checkpoint write must not degrade anything: logging
  // continues against the current segment and the roll is retried
  // once another checkpoint_every_bytes accumulates.
  MemEnv inner;
  FaultPlan plan{.seed = 9};
  plan.fail_appends = false;
  plan.fail_syncs = false;
  plan.fail_truncates = false;
  FaultInjectingEnv fault_env(inner, plan);

  Replica replica = make_replica(1, 5);
  DurabilityOptions options;
  options.checkpoint_every_bytes = 1;  // roll after every mutation
  Durability durability(fault_env, options);
  durability.attach(replica);

  fault_env.set_fault_rate(1.0);  // every durable write now faults
  replica.create(to(5), {'a'});
  replica.create(to(5), {'b'});
  EXPECT_FALSE(durability.degraded());
  EXPECT_FALSE(replica.read_only());
  EXPECT_EQ(durability.epoch(), 1u);  // no roll succeeded
  EXPECT_GE(durability.counters().checkpoint_failures, 1u);

  // The disk heals: the next mutation's roll succeeds and recovery
  // sees the full state.
  fault_env.set_fault_rate(0.0);
  replica.create(to(5), {'c'});
  EXPECT_GT(durability.epoch(), 1u);
  inner.crash();
  const auto recovered = recover(inner);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(state_digest(recovered->replica), state_digest(replica));
}

}  // namespace
}  // namespace pfrdtn::persist
