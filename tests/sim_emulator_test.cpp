#include "sim/emulator.hpp"

#include <gtest/gtest.h>

#include "sim/experiment.hpp"

namespace pfrdtn::sim {
namespace {

EmulationConfig tiny_config(const std::string& policy = "cimbiosys") {
  EmulationConfig config = small_config(0.15);
  config.policy = policy;
  config.invariant_check_every = 50;
  return config;
}

TEST(Emulation, RunsAndInjectsAllMessages) {
  Emulation emulation(tiny_config());
  const auto result = emulation.run();
  EXPECT_EQ(result.metrics.injected_count(),
            tiny_config().email.total_messages);
  EXPECT_GT(result.metrics.encounter_count(), 0u);
  EXPECT_EQ(result.days, tiny_config().mobility.days);
}

TEST(Emulation, DeterministicAcrossRuns) {
  const auto a = Emulation(tiny_config("epidemic")).run();
  const auto b = Emulation(tiny_config("epidemic")).run();
  EXPECT_EQ(a.metrics.delivered_count(), b.metrics.delivered_count());
  EXPECT_EQ(a.metrics.traffic().items_sent,
            b.metrics.traffic().items_sent);
  ASSERT_EQ(a.metrics.records().size(), b.metrics.records().size());
  auto it_b = b.metrics.records().begin();
  for (const auto& [id, record] : a.metrics.records()) {
    EXPECT_EQ(record.delivered, it_b->second.delivered);
    ++it_b;
  }
}

TEST(Emulation, EpidemicDeliversMoreThanDirect) {
  const auto direct = Emulation(tiny_config("cimbiosys")).run();
  const auto epidemic = Emulation(tiny_config("epidemic")).run();
  EXPECT_GE(epidemic.metrics.delivered_count(),
            direct.metrics.delivered_count());
  if (direct.metrics.delivered_count() > 0 &&
      epidemic.metrics.delivered_count() > 0) {
    EXPECT_LE(epidemic.metrics.delay_distribution().mean(),
              direct.metrics.delay_distribution().mean());
  }
}

TEST(Emulation, AssignmentCoversAllUsersEveryDay) {
  EmulationConfig config = tiny_config();
  Emulation emulation(config);
  const auto& assignment = emulation.assignment();
  ASSERT_EQ(assignment.size(), config.mobility.days);
  const auto mobility = trace::generate_mobility(config.mobility);
  for (std::size_t day = 0; day < assignment.size(); ++day) {
    ASSERT_EQ(assignment[day].size(), config.email.users);
    const auto& active = mobility.active_buses[day];
    for (const auto bus : assignment[day]) {
      EXPECT_NE(std::find(active.begin(), active.end(), bus),
                active.end())
          << "user assigned to unscheduled bus";
    }
  }
}

TEST(Emulation, EncounterCountsAreSymmetric) {
  Emulation emulation(tiny_config());
  const auto& counts = emulation.encounter_counts();
  for (const auto& [a, row] : counts) {
    for (const auto& [b, n] : row) {
      const auto it = counts.find(b);
      ASSERT_NE(it, counts.end());
      const auto cell = it->second.find(a);
      ASSERT_NE(cell, it->second.end());
      EXPECT_EQ(cell->second, n);
    }
  }
}

TEST(Emulation, StorageConstraintRespected) {
  EmulationConfig config = tiny_config("epidemic");
  config.relay_capacity = 2;
  Emulation emulation(config);
  emulation.run();
  // The invariant oracle ran during the emulation; additionally the
  // final stores must respect the cap.
  // (Store state is internal; the invariant_check_every oracle plus
  // the absence of throws is the primary assertion here.)
  SUCCEED();
}

TEST(Emulation, BandwidthConstraintLimitsTraffic) {
  EmulationConfig unconstrained = tiny_config("epidemic");
  EmulationConfig constrained = tiny_config("epidemic");
  constrained.encounter_budget = 1;
  const auto full = Emulation(unconstrained).run();
  const auto limited = Emulation(constrained).run();
  EXPECT_LE(limited.metrics.traffic().items_sent,
            limited.metrics.encounter_count());
  EXPECT_LT(limited.metrics.traffic().items_sent,
            full.metrics.traffic().items_sent);
  EXPECT_LE(limited.metrics.delivered_count(),
            full.metrics.delivered_count());
}

TEST(Emulation, DeleteAfterDeliveryReducesEndCopies) {
  EmulationConfig keep = tiny_config("epidemic");
  EmulationConfig del = tiny_config("epidemic");
  del.delete_after_delivery = true;
  const auto kept = Emulation(keep).run();
  const auto deleted = Emulation(del).run();
  EXPECT_LT(deleted.metrics.mean_copies_at_end(),
            kept.metrics.mean_copies_at_end());
}

TEST(Emulation, SingleSyncModeStillDelivers) {
  EmulationConfig config = tiny_config("epidemic");
  config.single_sync_per_encounter = true;
  const auto result = Emulation(config).run();
  EXPECT_GT(result.metrics.delivered_count(), 0u);
}

TEST(Emulation, CopiesAtDeliveryForDirectIsTwo) {
  // With the null policy only sender and receiver ever hold a copy at
  // delivery time (Figure 8's observation).
  EmulationConfig config = tiny_config("cimbiosys");
  const auto result = Emulation(config).run();
  for (const auto& [id, record] : result.metrics.records()) {
    if (record.delivered && record.copies_at_delivery > 0) {
      EXPECT_LE(record.copies_at_delivery, 2u);
    }
  }
}

TEST(Emulation, AllPoliciesRunCleanly) {
  for (const char* policy :
       {"cimbiosys", "epidemic", "spray", "prophet", "maxprop"}) {
    EmulationConfig config = tiny_config(policy);
    EXPECT_NO_THROW(Emulation(config).run()) << policy;
  }
}

TEST(Emulation, SelectedStrategyBuildsFilters) {
  EmulationConfig config = tiny_config("cimbiosys");
  config.strategy = dtn::FilterStrategy::Selected;
  config.filter_k = 2;
  const auto with_extras = Emulation(config).run();
  config.strategy = dtn::FilterStrategy::SelfOnly;
  config.filter_k = 0;
  const auto self_only = Emulation(config).run();
  EXPECT_GE(with_extras.metrics.delivered_count(),
            self_only.metrics.delivered_count());
}

TEST(Emulation, LoopbackTransportMatchesInProcess) {
  // Routing every encounter's syncs through the loopback transport
  // must be observationally equivalent to the in-process fast path.
  EmulationConfig in_process = tiny_config("epidemic");
  EmulationConfig over_wire = tiny_config("epidemic");
  over_wire.loopback_transport = true;
  const auto a = Emulation(in_process).run();
  const auto b = Emulation(over_wire).run();
  EXPECT_EQ(a.metrics.delivered_count(), b.metrics.delivered_count());
  EXPECT_EQ(a.metrics.traffic().items_sent,
            b.metrics.traffic().items_sent);
  EXPECT_EQ(a.metrics.traffic().request_bytes,
            b.metrics.traffic().request_bytes);
  EXPECT_EQ(a.metrics.traffic().batch_bytes,
            b.metrics.traffic().batch_bytes);
  ASSERT_EQ(a.metrics.records().size(), b.metrics.records().size());
  auto it_b = b.metrics.records().begin();
  for (const auto& [id, record] : a.metrics.records()) {
    EXPECT_EQ(record.delivered, it_b->second.delivered);
    EXPECT_EQ(record.copies_at_delivery, it_b->second.copies_at_delivery);
    ++it_b;
  }
}

TEST(Emulation, LoopbackTransportSurvivesFaultyContacts) {
  // Cut every contact a little way into the exchange; syncs end
  // incomplete but replica invariants (checked every 50 events by
  // tiny_config) must keep holding.
  EmulationConfig config = tiny_config("epidemic");
  config.loopback_transport = true;
  config.loopback_faults.cut_after_bytes = 200;
  EmulationResult result;
  EXPECT_NO_THROW(result = Emulation(config).run());
  // A crippled network delivers no more than a healthy one.
  EmulationConfig healthy = tiny_config("epidemic");
  const auto baseline = Emulation(healthy).run();
  EXPECT_LE(result.metrics.delivered_count(),
            baseline.metrics.delivered_count());
}

}  // namespace
}  // namespace pfrdtn::sim
