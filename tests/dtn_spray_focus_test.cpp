#include "dtn/spray_focus.hpp"

#include <gtest/gtest.h>

#include "dtn/message.hpp"
#include "dtn/messaging.hpp"
#include "dtn/registry.hpp"

namespace pfrdtn::dtn {
namespace {

repl::Item message_to(std::uint64_t dest, std::uint64_t id = 1) {
  return repl::Item(
      ItemId(id), repl::Version{ReplicaId(1), id, 1},
      message_metadata(HostId(99), {HostId(dest)}, SimTime(0)), {});
}

repl::SyncContext ctx(std::uint64_t self, std::uint64_t peer,
                      SimTime now = SimTime(0)) {
  return {ReplicaId(self), ReplicaId(peer), now};
}

/// Exchange routing state b -> a (a is the sync source).
void meet(SprayFocusPolicy& a, SprayFocusPolicy& b, std::uint64_t a_id,
          std::uint64_t b_id, SimTime now) {
  a.process_request(ctx(a_id, b_id, now),
                    b.generate_request(ctx(b_id, a_id, now)));
}

TEST(SprayFocus, SprayPhaseMatchesSprayAndWait) {
  SprayFocusPolicy policy;
  repl::Item stored = message_to(5);
  EXPECT_TRUE(policy.to_send(ctx(1, 2), repl::TransientView(stored)).send());
  EXPECT_EQ(stored.transient_int(SprayFocusPolicy::kCopiesKey), 8);
  repl::Item outgoing = stored;
  policy.on_forward(ctx(1, 2), repl::TransientView(stored),
                    repl::TransientView(outgoing));
  EXPECT_EQ(stored.transient_int(SprayFocusPolicy::kCopiesKey), 4);
  EXPECT_EQ(outgoing.transient_int(SprayFocusPolicy::kCopiesKey), 4);
}

TEST(SprayFocus, MeetingAHostStampsTimers) {
  SprayFocusPolicy a, host5;
  host5.set_hosted({HostId(5)}, SimTime(0));
  EXPECT_EQ(a.last_seen(HostId(5)).seconds(), -1);
  meet(a, host5, 1, 3, at(0, 9));
  EXPECT_EQ(a.last_seen(HostId(5)), at(0, 9));
}

TEST(SprayFocus, FocusHandsOverToFresherPeer) {
  SprayFocusPolicy source, target, host5;
  host5.set_hosted({HostId(5)}, SimTime(0));
  // Target met the destination's host recently; source never did.
  meet(target, host5, 2, 3, at(0, 10));
  meet(source, target, 1, 2, at(0, 11));

  repl::Item copy = message_to(5);
  copy.set_transient_int(SprayFocusPolicy::kCopiesKey, 1);
  const auto priority = source.to_send(ctx(1, 2, at(0, 11)),
                                       repl::TransientView(copy));
  ASSERT_TRUE(priority.send());

  // The handover migrates the copy: local side stops offering.
  repl::Item outgoing = copy;
  source.on_forward(ctx(1, 2, at(0, 11)), repl::TransientView(copy),
                    repl::TransientView(outgoing));
  EXPECT_EQ(copy.transient_int(SprayFocusPolicy::kCopiesKey), 0);
  EXPECT_EQ(outgoing.transient_int(SprayFocusPolicy::kCopiesKey), 1);
  EXPECT_FALSE(source
                   .to_send(ctx(1, 2, at(0, 12)),
                            repl::TransientView(copy))
                   .send());
}

TEST(SprayFocus, FocusRespectsUtilityMargin) {
  SprayFocusParams params;
  params.utility_margin_s = 3600;
  SprayFocusPolicy source(params), target(params), host5(params);
  host5.set_hosted({HostId(5)}, SimTime(0));
  // Source met the host at 9:00, target at 9:30 — under the 1 h margin.
  meet(source, host5, 1, 3, at(0, 9));
  meet(target, host5, 2, 3, at(0, 9, 30));
  meet(source, target, 1, 2, at(0, 10));
  repl::Item copy = message_to(5);
  copy.set_transient_int(SprayFocusPolicy::kCopiesKey, 1);
  EXPECT_FALSE(source
                   .to_send(ctx(1, 2, at(0, 10)),
                            repl::TransientView(copy))
                   .send());
}

TEST(SprayFocus, NoHandoverToStalePeer) {
  SprayFocusPolicy source, target, host5;
  host5.set_hosted({HostId(5)}, SimTime(0));
  meet(source, host5, 1, 3, at(0, 12));  // source is fresher
  meet(target, host5, 2, 3, at(0, 8));
  meet(source, target, 1, 2, at(0, 13));
  repl::Item copy = message_to(5);
  copy.set_transient_int(SprayFocusPolicy::kCopiesKey, 1);
  EXPECT_FALSE(source
                   .to_send(ctx(1, 2, at(0, 13)),
                            repl::TransientView(copy))
                   .send());
}

TEST(SprayFocus, EndToEndDeliveryThroughFocusChain) {
  // source sprays down to one copy, then focuses it toward a node
  // that recently met the destination.
  DtnNode source(ReplicaId(1)), courier(ReplicaId(2)),
      dest(ReplicaId(3));
  for (auto* node : {&source, &courier, &dest}) {
    node->set_policy(std::make_shared<SprayFocusPolicy>(
        SprayFocusParams{2, 60}));
  }
  source.set_addresses({HostId(1)}, {}, SimTime(0));
  courier.set_addresses({HostId(2)}, {}, SimTime(0));
  dest.set_addresses({HostId(5)}, {}, SimTime(0));

  const MessageId id = source.send(HostId(1), {HostId(5)}, "m", at(0, 8));
  // Courier meets the destination (gains freshness), then the source.
  run_encounter(courier, dest, at(0, 9));
  run_encounter(source, courier, at(0, 10));
  ASSERT_TRUE(courier.replica().store().contains(id));
  // Courier meets the destination again: direct delivery.
  run_encounter(courier, dest, at(0, 11));
  EXPECT_TRUE(dest.has_delivered(id));
}

TEST(SprayFocus, RegistryWiring) {
  const auto policy = std::dynamic_pointer_cast<SprayFocusPolicy>(
      make_policy("spray-focus", {{"copies", 4.0},
                                  {"utility_margin_s", 120.0}}));
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->params().copies, 4);
  EXPECT_EQ(policy->params().utility_margin_s, 120);
  EXPECT_NE(policy->summary().find("focus"), std::string::npos);
}

}  // namespace
}  // namespace pfrdtn::dtn
