#include "net/framing.hpp"

#include <gtest/gtest.h>

#include "net/loopback.hpp"

namespace pfrdtn::net {
namespace {

TEST(FrameHeader, RoundTrip) {
  std::uint8_t buffer[kFrameHeaderSize];
  encode_frame_header(7, 123456, buffer);
  const FrameHeader header = decode_frame_header(buffer);
  EXPECT_EQ(header.type, 7);
  EXPECT_EQ(header.length, 123456u);
}

TEST(FrameHeader, RejectsBadMagic) {
  std::uint8_t buffer[kFrameHeaderSize];
  encode_frame_header(1, 4, buffer);
  buffer[0] ^= 0xFF;
  EXPECT_THROW(decode_frame_header(buffer), ContractViolation);
}

TEST(FrameHeader, RejectsUnknownVersion) {
  std::uint8_t buffer[kFrameHeaderSize];
  encode_frame_header(1, 4, buffer);
  buffer[2] = kFrameVersion + 1;
  EXPECT_THROW(decode_frame_header(buffer), ContractViolation);
}

TEST(FrameHeader, RejectsImplausibleLength) {
  std::uint8_t buffer[kFrameHeaderSize];
  encode_frame_header(1, 4, buffer);
  buffer[7] = 0xFF;  // length high byte -> ~4 GiB
  EXPECT_THROW(decode_frame_header(buffer), ContractViolation);
}

TEST(Framing, RoundTripOverLoopback) {
  LoopbackLink link;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  const std::size_t written =
      write_frame(link.a(), repl::SyncFrame::Request, payload);
  EXPECT_EQ(written, framed_size(payload.size()));
  const Frame frame = read_frame(link.b());
  EXPECT_EQ(frame.type, repl::SyncFrame::Request);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(frame.wire_bytes, written);
}

TEST(Framing, EmptyPayload) {
  LoopbackLink link;
  write_frame(link.a(), repl::SyncFrame::BatchEnd, {});
  const Frame frame = read_frame(link.b());
  EXPECT_EQ(frame.type, repl::SyncFrame::BatchEnd);
  EXPECT_TRUE(frame.payload.empty());
  EXPECT_EQ(frame.wire_bytes, kFrameHeaderSize);
}

TEST(Framing, ExpectFrameRejectsWrongType) {
  LoopbackLink link;
  write_frame(link.a(), repl::SyncFrame::BatchItem, {9});
  EXPECT_THROW(expect_frame(link.b(), repl::SyncFrame::Request),
               ContractViolation);
}

TEST(Framing, TruncatedHeaderIsTransportError) {
  LoopbackLink link;
  const std::uint8_t half[3] = {0x46, 0x50, 1};
  link.a().write(half, sizeof(half));
  EXPECT_THROW(read_frame(link.b()), TransportError);
}

TEST(Framing, TruncatedPayloadIsTransportError) {
  LoopbackFaults faults;
  faults.cut_after_bytes = kFrameHeaderSize + 2;  // header + 2 of 5
  LoopbackLink link(faults);
  EXPECT_THROW(
      write_frame(link.a(), repl::SyncFrame::BatchItem, {1, 2, 3, 4, 5}),
      TransportError);
  EXPECT_THROW(read_frame(link.b()), TransportError);
}

}  // namespace
}  // namespace pfrdtn::net
