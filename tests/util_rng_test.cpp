#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace pfrdtn {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowZeroIsContractViolation) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), ContractViolation);
}

TEST(Rng, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values hit
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double total = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double total = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double x = rng.exponential(3.0);
    ASSERT_GE(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total / kSamples, 3.0, 0.15);
}

TEST(Rng, ExponentialRequiresPositiveMean) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(23);
  for (std::size_t k : {0u, 1u, 3u, 10u, 50u, 100u}) {
    const auto sample = rng.sample_without_replacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<std::size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (const std::size_t index : sample) EXPECT_LT(index, 100u);
  }
}

TEST(Rng, SampleRejectsOversizedK) {
  Rng rng(23);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), ContractViolation);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.fork();
  // The fork must not replay the parent's stream.
  Rng parent2(31);
  parent2.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child() == parent()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(ZipfSampler, RanksAreBiasedTowardZero) {
  Rng rng(37);
  ZipfSampler zipf(50, 1.1);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 20000; ++i) ++counts[zipf(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 20000 / 50);  // clearly above uniform share
  for (const auto& [rank, n] : counts) EXPECT_LT(rank, 50u);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(41);
  ZipfSampler zipf(10, 0.0);
  std::map<std::size_t, int> counts;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf(rng)];
  for (std::size_t rank = 0; rank < 10; ++rank) {
    EXPECT_NEAR(counts[rank], kSamples / 10, kSamples / 50);
  }
}

TEST(ZipfSampler, SingleElement) {
  Rng rng(43);
  ZipfSampler zipf(1, 2.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf(rng), 0u);
}

TEST(Splitmix, DeterministicExpansion) {
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
}

}  // namespace
}  // namespace pfrdtn
