// The hardened session boundary in isolation: resource budgets reject
// hostile frame headers before any allocation, the decode element
// budget bounds codec work, the quarantine table escalates and decays
// deterministically, and both transports cut slow-loris peers via the
// absolute session deadline that per-op timeouts alone cannot provide.

#include "net/limits.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "net/framing.hpp"
#include "net/loopback.hpp"
#include "net/quarantine.hpp"
#include "net/tcp.hpp"

namespace pfrdtn::net {
namespace {

ResourceLimits tight_limits() {
  ResourceLimits limits;
  limits.max_request_bytes = 128;
  limits.max_item_bytes = 64;
  limits.max_batch_items = 4;
  limits.max_knowledge_entries = 8;
  limits.max_policy_blob_bytes = 16;
  limits.max_decode_elements = 32;
  limits.session_byte_ceiling = 1024;
  return limits;
}

TEST(Limits, PerTypePayloadCaps) {
  const ResourceLimits limits = tight_limits();
  EXPECT_EQ(limits.frame_payload_cap(
                static_cast<std::uint8_t>(repl::SyncFrame::Request)),
            128u);
  EXPECT_EQ(limits.frame_payload_cap(
                static_cast<std::uint8_t>(repl::SyncFrame::BatchItem)),
            64u);
  // A frame type outside the protocol is itself a violation.
  EXPECT_THROW(limits.frame_payload_cap(0x77), ContractViolation);
}

TEST(Limits, AdmitFrameRejectsOverCapHeaders) {
  SessionBudget budget(tight_limits());
  const auto request =
      static_cast<std::uint8_t>(repl::SyncFrame::Request);
  EXPECT_NO_THROW(budget.admit_frame(request, 128));
  EXPECT_THROW(budget.admit_frame(request, 129), ResourceLimitError);
  // ResourceLimitError stays inside the ContractViolation taxonomy so
  // existing containment (serve's catch, the harness) already handles
  // it; the distinct type is for quarantine logging.
  EXPECT_THROW(budget.admit_frame(request, 129), ContractViolation);
}

TEST(Limits, SessionByteCeilingAccumulatesAcrossFrames) {
  ResourceLimits limits = tight_limits();
  limits.session_byte_ceiling = 100;
  SessionBudget budget(limits);
  budget.charge(60);
  budget.charge(40);  // exactly at the ceiling: still fine
  EXPECT_EQ(budget.bytes_used(), 100u);
  EXPECT_THROW(budget.charge(1), ResourceLimitError);
}

TEST(Limits, OversizeHeaderRejectedBeforePayloadIsRead) {
  // The attacker sends ONLY an eight-byte header claiming an over-cap
  // payload — not a single payload byte follows. On the sequential
  // loopback a read past the buffered bytes would surface as a
  // transport error, so getting ResourceLimitError proves the header
  // was rejected before any payload read or buffer allocation.
  LoopbackLink link;
  std::uint8_t header[kFrameHeaderSize];
  encode_frame_header(static_cast<std::uint8_t>(repl::SyncFrame::Request),
                      129, header);
  link.a().write(header, sizeof(header));

  SessionBudget budget(tight_limits());
  try {
    read_frame(link.b(), budget);
    FAIL() << "over-cap header was not rejected";
  } catch (const ResourceLimitError& rejected) {
    EXPECT_NE(std::string(rejected.what()).find("Request"),
              std::string::npos);
  }
}

TEST(Limits, ElementBudgetBoundsDecodeWork) {
  const std::vector<std::uint8_t> payload(16, 0);
  ByteReader r(payload);
  r.set_element_budget(2);
  r.charge_elements();
  r.charge_elements();
  EXPECT_THROW(r.charge_elements(), ContractViolation);
}

TEST(Quarantine, StrikesEscalateAndWindowsDecay) {
  QuarantineOptions options;
  options.base_backoff_ms = 1000;
  options.max_backoff_ms = 8000;
  QuarantineTable table(options);

  // Unknown peers sail through.
  EXPECT_FALSE(table.admit("10.0.0.1", 0).rejected);

  const std::uint64_t first = table.punish("10.0.0.1", 0);
  EXPECT_GE(first, 500u);  // window/2 + jitter in [0, window/2]
  EXPECT_LE(first, 1000u);
  EXPECT_EQ(table.strikes("10.0.0.1"), 1u);

  // Inside the window: rejected, and the rejection is counted.
  const AdmitDecision rejected = table.admit("10.0.0.1", first - 1);
  EXPECT_TRUE(rejected.rejected);
  EXPECT_EQ(rejected.strikes, 1u);
  EXPECT_EQ(rejected.rejections, 1u);
  EXPECT_EQ(rejected.retry_after_ms, 1u);
  EXPECT_EQ(table.total_rejections(), 1u);

  // After the window: admitted, but strikes persist so a repeat
  // offender escalates instead of starting over.
  EXPECT_FALSE(table.admit("10.0.0.1", first).rejected);
  const std::uint64_t second = table.punish("10.0.0.1", first);
  EXPECT_GE(second, 1000u);  // doubled base, same jitter band
  EXPECT_LE(second, 2000u);

  // Escalation is capped: many strikes never exceed max_backoff_ms.
  std::uint64_t window = 0;
  for (int i = 0; i < 20; ++i) window = table.punish("10.0.0.1", 0);
  EXPECT_LE(window, options.max_backoff_ms);
  EXPECT_GE(window, options.max_backoff_ms / 2);

  // A clean session resets the consecutive-failure count but not the
  // ejection record — one good sync must not launder a long rap sheet.
  table.reward("10.0.0.1", options.max_backoff_ms);
  EXPECT_EQ(table.consecutive_failures("10.0.0.1"), 0u);
  EXPECT_GT(table.strikes("10.0.0.1"), 0u);

  // Quiet time is what forgives: after enough violation-free decay
  // intervals the ejection count reaches zero and the peer is clean.
  const std::uint64_t much_later = 10'000'000;
  EXPECT_FALSE(table.admit("10.0.0.1", much_later).rejected);
  EXPECT_EQ(table.strikes("10.0.0.1"), 0u);
}

TEST(Quarantine, DeterministicUnderSeededJitter) {
  QuarantineTable a;  // default jitter_seed
  QuarantineTable b;
  for (int i = 0; i < 5; ++i)
    EXPECT_EQ(a.punish("peer", 0), b.punish("peer", 0));
}

QuarantineOptions outlier_options() {
  QuarantineOptions options;
  options.consecutive_failure_threshold = 3;
  // Silence the rate monitor so each test isolates one monitor.
  options.error_rate_min_outcomes = 100;
  return options;
}

TEST(Quarantine, ConsecutiveFailureThresholdGatesEjection) {
  QuarantineTable table(outlier_options());
  // Two violations in a row: recorded, but below the threshold — the
  // peer is still admitted and holds no ejection.
  EXPECT_EQ(table.punish("peer", 0), 0u);
  EXPECT_EQ(table.punish("peer", 10), 0u);
  EXPECT_EQ(table.consecutive_failures("peer"), 2u);
  EXPECT_EQ(table.strikes("peer"), 0u);
  EXPECT_FALSE(table.admit("peer", 20).rejected);
  // The third trips the monitor.
  EXPECT_GT(table.punish("peer", 30), 0u);
  EXPECT_EQ(table.strikes("peer"), 1u);
  EXPECT_TRUE(table.admit("peer", 31).rejected);
}

TEST(Quarantine, CleanSessionsBreakAConsecutiveRun) {
  QuarantineTable table(outlier_options());
  // fail, fail, clean, fail, fail, clean, ... — never three in a row,
  // never ejected, no matter how long it goes on.
  std::uint64_t now = 0;
  for (int round = 0; round < 8; ++round) {
    EXPECT_EQ(table.punish("peer", now++), 0u);
    EXPECT_EQ(table.punish("peer", now++), 0u);
    table.reward("peer", now++);
    EXPECT_EQ(table.consecutive_failures("peer"), 0u);
  }
  EXPECT_EQ(table.strikes("peer"), 0u);
  EXPECT_FALSE(table.admit("peer", now).rejected);
}

TEST(Quarantine, ErrorRateEjectsAFlappingPeer) {
  // The peer the consecutive monitor alone can never catch: it
  // interleaves a clean session after every violation, so the run
  // length is always 1 — but half its sessions are violations.
  QuarantineOptions options;
  options.consecutive_failure_threshold = 100;  // effectively off
  options.error_rate_threshold = 0.5;
  options.error_rate_min_outcomes = 10;
  QuarantineTable table(options);
  std::uint64_t ejected_at = 0;
  std::uint64_t now = 10;
  for (int round = 0; round < 8 && ejected_at == 0; ++round) {
    const std::uint64_t window = table.punish("peer", now);
    if (window > 0) ejected_at = now;
    table.reward("peer", now + 5);  // run length never exceeds 1
    EXPECT_LE(table.consecutive_failures("peer"), 1u);
    now += 10;
  }
  EXPECT_GT(ejected_at, 0u) << "flapping peer was never ejected";
  EXPECT_GE(table.error_rate("peer", ejected_at), 0.5);
  EXPECT_EQ(table.strikes("peer"), 1u);
}

TEST(Quarantine, ErrorRateNeedsEnoughOutcomes) {
  // A 100% violation rate over too few sessions is not yet a verdict:
  // below error_rate_min_outcomes the rate monitor stays silent.
  QuarantineOptions options;
  options.consecutive_failure_threshold = 100;
  options.error_rate_min_outcomes = 10;
  QuarantineTable table(options);
  for (int i = 0; i < 9; ++i)
    EXPECT_EQ(table.punish("peer", static_cast<std::uint64_t>(i)), 0u);
  EXPECT_EQ(table.error_rate("peer", 9), 1.0);
  EXPECT_EQ(table.strikes("peer"), 0u);
  // The tenth outcome completes the sample and trips it.
  EXPECT_GT(table.punish("peer", 9), 0u);
}

TEST(Quarantine, OldOutcomesFallOutOfTheRateWindow) {
  QuarantineOptions options;
  options.consecutive_failure_threshold = 100;
  options.error_rate_min_outcomes = 10;
  options.history_window_ms = 1000;
  QuarantineTable table(options);
  for (int i = 0; i < 9; ++i) EXPECT_EQ(table.punish("peer", 0), 0u);
  EXPECT_EQ(table.error_rate("peer", 0), 1.0);
  // The whole burst ages out of the window: the rate view is clean,
  // and a single fresh violation does not trip the monitor (the nine
  // expired outcomes no longer count toward min_outcomes either).
  EXPECT_EQ(table.error_rate("peer", 2000), 0.0);
  EXPECT_EQ(table.punish("peer", 2000), 0u);
  EXPECT_EQ(table.strikes("peer"), 0u);
}

TEST(Quarantine, EjectionsDecayOneIntervalAtATime) {
  QuarantineOptions options;
  options.base_backoff_ms = 100;
  options.ejection_decay_ms = 1000;
  options.history_window_ms = 500;
  QuarantineTable table(options);
  // Three ejections (threshold 1 = legacy strike-per-violation).
  table.punish("peer", 0);
  table.punish("peer", 0);
  table.punish("peer", 0);
  EXPECT_EQ(table.strikes("peer"), 3u);
  // Quiet time forgives stepwise: one interval, one ejection.
  EXPECT_FALSE(table.admit("peer", 1500).rejected);
  EXPECT_EQ(table.strikes("peer"), 2u);
  EXPECT_FALSE(table.admit("peer", 2500).rejected);
  EXPECT_EQ(table.strikes("peer"), 1u);
  EXPECT_FALSE(table.admit("peer", 3500).rejected);
  EXPECT_EQ(table.strikes("peer"), 0u);
  // Fully neutral entries are dropped from the table entirely.
  EXPECT_EQ(table.quarantined_peers(), 0u);
  // The next violation starts the ladder from the bottom window.
  const std::uint64_t window = table.punish("peer", 4000);
  EXPECT_GE(window, 50u);
  EXPECT_LE(window, 100u);
}

TEST(Quarantine, ActiveOffendersEarnNoDecay) {
  QuarantineOptions options;
  options.base_backoff_ms = 1;
  options.ejection_decay_ms = 1000;
  QuarantineTable table(options);
  // A violation every half interval: decay_from_ms advances with each
  // offense, so the quiet clock never completes an interval and the
  // ejection count only climbs.
  std::uint64_t now = 0;
  for (int i = 0; i < 6; ++i) {
    table.punish("peer", now);
    now += 500;
  }
  EXPECT_EQ(table.strikes("peer"), 6u);
}

TEST(Loopback, SessionDeadlineCutsTrickledWrites) {
  // Simulated-time twin of the TCP slow-loris cut: each write charges
  // 0.1s of latency, the deadline is 0.35s, so the fourth write is the
  // one whose charge crosses the deadline and dies.
  LoopbackFaults faults;
  faults.latency_seconds = 0.1;
  faults.deadline_seconds = 0.35;
  LoopbackLink link(faults);
  const std::uint8_t byte = 0x55;
  link.a().write(&byte, 1);
  link.a().write(&byte, 1);
  link.a().write(&byte, 1);
  try {
    link.a().write(&byte, 1);
    FAIL() << "write past the deadline was not cut";
  } catch (const TransportError& cut) {
    EXPECT_NE(std::string(cut.what()).find("deadline"),
              std::string::npos);
  }
  // The link is dead from here on, in both directions.
  EXPECT_THROW(link.b().write(&byte, 1), TransportError);
}

TEST(Tcp, SlowLorisIsCutByTheSessionDeadline) {
  // The attack the per-op timeout cannot stop: one byte well inside
  // io_timeout_ms, forever. Only the absolute session deadline ends it.
  TcpOptions server_options;
  server_options.io_timeout_ms = 5000;
  server_options.session_deadline_ms = 400;
  TcpListener listener(0, server_options);

  std::string error;
  std::thread server([&] {
    const auto connection = listener.accept();
    std::uint8_t sink[64];
    try {
      connection->read(sink, sizeof(sink));
    } catch (const TransportError& cut) {
      error = cut.what();
    }
  });

  const auto client = tcp_connect("127.0.0.1", listener.port());
  const auto started = std::chrono::steady_clock::now();
  const std::uint8_t byte = 0x00;
  try {
    for (int i = 0; i < 50; ++i) {
      client->write(&byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  } catch (const TransportError&) {
    // Server hung up on us: exactly the point.
  }
  server.join();
  const auto elapsed = std::chrono::steady_clock::now() - started;
  EXPECT_NE(error.find("session deadline exceeded"), std::string::npos)
      << "server read ended with: " << error;
  // Cut by the 400ms deadline, nowhere near the 5s per-op timeout.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            3000);
}

TEST(Tcp, MinimumProgressCutsAnIdlePeer) {
  // A peer that connects and then moves (almost) nothing: after the
  // grace period the required byte rate is unmet and the read dies,
  // even though the per-op timeout and deadline are both far away.
  TcpOptions server_options;
  server_options.io_timeout_ms = 10000;
  server_options.session_deadline_ms = 10000;
  server_options.min_bytes_per_second = 100000;
  server_options.min_progress_grace_ms = 200;
  TcpListener listener(0, server_options);

  std::string error;
  std::thread server([&] {
    const auto connection = listener.accept();
    std::uint8_t sink[64];
    try {
      connection->read(sink, sizeof(sink));
    } catch (const TransportError& cut) {
      error = cut.what();
    }
  });

  const auto client = tcp_connect("127.0.0.1", listener.port());
  const std::uint8_t byte = 0x00;
  try {
    for (int i = 0; i < 20; ++i) {
      client->write(&byte, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  } catch (const TransportError&) {
  }
  server.join();
  EXPECT_NE(error.find("minimum"), std::string::npos)
      << "server read ended with: " << error;
}

}  // namespace
}  // namespace pfrdtn::net
