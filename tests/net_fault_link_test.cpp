// The seeded link-fault decorator (net/fault_link.hpp): rate 0 is a
// true passthrough (wrap() hands the inner connection back untouched,
// no RNG draws, no counters), schedules replay deterministically from
// the plan seed, and each fault kind does to the byte stream exactly
// what its real-world counterpart would — cut delivers the in-budget
// prefix then dies, reset delivers nothing, stall sleeps once and the
// stream survives, truncate claims writes it silently drops.

#include "net/fault_link.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace pfrdtn::net {
namespace {

/// Inner endpoint for the decorator: reads serve a fixed script
/// (TransportError past the end, like a link that died) and writes are
/// recorded for inspection.
class ScriptedConnection : public Connection {
 public:
  explicit ScriptedConnection(std::vector<std::uint8_t> script = {})
      : script_(std::move(script)) {}

  void write(const std::uint8_t* data, std::size_t size) override {
    written_.insert(written_.end(), data, data + size);
  }
  void read(std::uint8_t* data, std::size_t size) override {
    if (size > script_.size() - position_)
      throw TransportError("scripted stream ended");
    std::copy_n(script_.begin() + static_cast<std::ptrdiff_t>(position_),
                size, data);
    position_ += size;
  }
  void close() override {}

  [[nodiscard]] const std::vector<std::uint8_t>& written() const {
    return written_;
  }

 private:
  std::vector<std::uint8_t> script_;
  std::size_t position_ = 0;
  std::vector<std::uint8_t> written_;
};

LinkFaultSchedule armed(LinkFaultKind kind, std::uint64_t at_bytes) {
  LinkFaultSchedule schedule;
  schedule.armed = true;
  schedule.kind = kind;
  schedule.at_bytes = at_bytes;
  return schedule;
}

std::vector<std::uint8_t> bytes(std::size_t n, std::uint8_t fill = 0x5A) {
  return std::vector<std::uint8_t>(n, fill);
}

TEST(LinkFault, RateZeroIsAPassthroughWithNoDraws) {
  LinkFaultPlan plan;  // fault_rate defaults to 0
  plan.seed = 7;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>();
  const Connection* raw = inner.get();
  const ConnectionPtr out = injector.wrap(std::move(inner));
  // The exact same object comes back: no wrapper allocated, no
  // schedule drawn — zero-rate runs are bit-identical to runs without
  // the injector, the replay contract FaultInjectingEnv keeps for the
  // disk.
  EXPECT_EQ(out.get(), raw);
  EXPECT_EQ(injector.faults_scheduled(), 0u);
  EXPECT_EQ(injector.faults_injected(), 0u);
  const LinkFaultSchedule schedule = injector.draw();
  EXPECT_FALSE(schedule.armed);
}

TEST(LinkFault, SchedulesAreDeterministicFromTheSeed) {
  LinkFaultPlan plan;
  plan.seed = 11;
  plan.fault_rate = 0.6;
  LinkFaultInjector a(plan);
  LinkFaultInjector b(plan);
  bool any_armed = false;
  for (int i = 0; i < 200; ++i) {
    const LinkFaultSchedule one = a.draw();
    const LinkFaultSchedule two = b.draw();
    EXPECT_EQ(one.armed, two.armed);
    EXPECT_EQ(one.kind, two.kind);
    EXPECT_EQ(one.at_bytes, two.at_bytes);
    any_armed = any_armed || one.armed;
  }
  EXPECT_TRUE(any_armed);
  EXPECT_EQ(a.faults_scheduled(), b.faults_scheduled());
  EXPECT_GT(a.faults_scheduled(), 0u);
}

TEST(LinkFault, OffsetsStayInsideTheConfiguredBand) {
  LinkFaultPlan plan;
  plan.seed = 13;
  plan.fault_rate = 1.0;
  plan.min_fault_bytes = 32;
  plan.max_fault_bytes = 96;
  LinkFaultInjector injector(plan);
  for (int i = 0; i < 200; ++i) {
    const LinkFaultSchedule schedule = injector.draw();
    ASSERT_TRUE(schedule.armed);  // rate 1.0: every connection faults
    EXPECT_GE(schedule.at_bytes, 32u);
    EXPECT_LE(schedule.at_bytes, 96u);
  }
  EXPECT_EQ(injector.faults_scheduled(), 200u);
}

TEST(LinkFault, CutDeliversThePrefixThenDies) {
  LinkFaultPlan plan;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>();
  const ScriptedConnection* peer_view = inner.get();
  FaultInjectingConnection link(std::move(inner),
                                armed(LinkFaultKind::Cut, 4), &injector);
  const auto data = bytes(8);
  EXPECT_THROW(link.write(data.data(), data.size()), TransportError);
  // The peer got exactly the in-budget prefix — a contact window
  // closes mid-stream, not at a frame boundary.
  EXPECT_EQ(peer_view->written().size(), 4u);
  EXPECT_EQ(link.bytes_moved(), 4u);
  EXPECT_TRUE(link.fault_fired());
  EXPECT_EQ(injector.faults_injected(), 1u);
  // The connection is dead from here on, both directions.
  EXPECT_THROW(link.write(data.data(), 1), TransportError);
  std::uint8_t byte = 0;
  EXPECT_THROW(link.read(&byte, 1), TransportError);
}

TEST(LinkFault, ResetDeliversNothing) {
  LinkFaultPlan plan;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>();
  const ScriptedConnection* peer_view = inner.get();
  FaultInjectingConnection link(std::move(inner),
                                armed(LinkFaultKind::Reset, 4), &injector);
  const auto data = bytes(8);
  EXPECT_THROW(link.write(data.data(), data.size()), TransportError);
  // RST semantics: buffered bytes dropped wholesale.
  EXPECT_TRUE(peer_view->written().empty());
  EXPECT_TRUE(link.fault_fired());
  EXPECT_EQ(injector.faults_injected(), 1u);
}

TEST(LinkFault, StallSleepsOnceAndTheStreamSurvives) {
  LinkFaultPlan plan;
  plan.stall_ms = 75;
  LinkFaultInjector injector(plan);
  std::vector<std::uint64_t> sleeps;
  injector.set_sleep_hook(
      [&sleeps](std::uint64_t ms) { sleeps.push_back(ms); });
  auto inner = std::make_unique<ScriptedConnection>();
  const ScriptedConnection* peer_view = inner.get();
  FaultInjectingConnection link(std::move(inner),
                                armed(LinkFaultKind::Stall, 4), &injector);
  const auto data = bytes(8);
  link.write(data.data(), data.size());  // crosses the offset: stalls
  link.write(data.data(), data.size());  // past it: no second stall
  EXPECT_EQ(peer_view->written().size(), 16u);
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], 75u);
  EXPECT_TRUE(link.fault_fired());
  EXPECT_EQ(injector.faults_injected(), 1u);
}

TEST(LinkFault, TruncateClaimsWritesItSilentlyDrops) {
  LinkFaultPlan plan;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>();
  const ScriptedConnection* peer_view = inner.get();
  FaultInjectingConnection link(std::move(inner),
                                armed(LinkFaultKind::Truncate, 4),
                                &injector);
  const auto data = bytes(8);
  // The crossing write "succeeds" but only the in-budget prefix ever
  // reaches the peer — bytes the kernel buffered and the dead link
  // never delivered.
  link.write(data.data(), data.size());
  EXPECT_EQ(peer_view->written().size(), 4u);
  link.write(data.data(), data.size());  // claimed, delivered nowhere
  EXPECT_EQ(peer_view->written().size(), 4u);
  EXPECT_EQ(link.bytes_moved(), 16u);  // the caller believes all 16 moved
  // The peer is gone: the next read surfaces the death.
  std::uint8_t byte = 0;
  EXPECT_THROW(link.read(&byte, 1), TransportError);
  EXPECT_TRUE(link.fault_fired());
}

TEST(LinkFault, CutOnReadDeliversTheInFlightPrefix) {
  LinkFaultPlan plan;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>(bytes(8, 0xC3));
  FaultInjectingConnection link(std::move(inner),
                                armed(LinkFaultKind::Cut, 4), &injector);
  std::uint8_t buffer[8] = {};
  link.read(buffer, 3);  // under the offset: clean
  EXPECT_EQ(buffer[2], 0xC3);
  // The crossing read pulls the last in-budget byte, then the link
  // dies mid-read.
  EXPECT_THROW(link.read(buffer, 3), TransportError);
  EXPECT_EQ(link.bytes_moved(), 4u);
  EXPECT_TRUE(link.fault_fired());
}

TEST(LinkFault, UnarmedScheduleNeverInterferes) {
  LinkFaultPlan plan;
  LinkFaultInjector injector(plan);
  auto inner = std::make_unique<ScriptedConnection>(bytes(64));
  const ScriptedConnection* peer_view = inner.get();
  FaultInjectingConnection link(std::move(inner), LinkFaultSchedule{},
                                &injector);
  const auto data = bytes(64);
  link.write(data.data(), data.size());
  std::uint8_t buffer[64];
  link.read(buffer, sizeof(buffer));
  EXPECT_EQ(peer_view->written().size(), 64u);
  EXPECT_EQ(link.bytes_moved(), 128u);
  EXPECT_FALSE(link.fault_fired());
  EXPECT_EQ(injector.faults_injected(), 0u);
}

}  // namespace
}  // namespace pfrdtn::net
