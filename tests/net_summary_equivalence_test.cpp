/// The differential suite behind the summary fast path: every sync
/// shape — pull, push, encounter, mid-cut resume, forced digest
/// collision, hostile peer, crash-restart — runs twice, once with the
/// exact legacy protocol (SummaryMode::Off) and once with summaries
/// on, and the two runs must end in byte-identical replica state
/// (persist::state_digest covers store bytes, arrival order, knowledge
/// and policy state) with identical delivered ledgers. Summaries are
/// an optimization of wire bytes only; any observable divergence is a
/// protocol bug.

#include <gtest/gtest.h>

#include "net/chaos.hpp"
#include "net/session.hpp"
#include "persist/checkpoint.hpp"
#include "persist/durability.hpp"

namespace pfrdtn::net {
namespace {

using repl::Filter;
using repl::ForwardingPolicy;
using repl::Priority;
using repl::PriorityClass;
using repl::Replica;
using repl::SummaryMode;
using repl::SyncContext;
using repl::SyncOptions;
using repl::TransientView;

std::map<std::string, std::string> to(std::uint64_t dest) {
  return {{repl::meta::kDest, std::to_string(dest)}};
}

repl::SyncOptions with_mode(SummaryMode mode, SyncOptions base = {}) {
  base.summary_mode = mode;
  return base;
}

/// Forward everything, touching per-copy transient state so policy
/// side effects are part of the compared state.
class ForwardAll : public ForwardingPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "all"; }
  std::vector<std::uint8_t> generate_request(
      const SyncContext&) override {
    return {0x11, 0x22};
  }
  Priority to_send(const SyncContext&, TransientView) override {
    return Priority::at(PriorityClass::Normal);
  }
  void on_forward(const SyncContext&, TransientView stored,
                  TransientView outgoing) override {
    stored.set_int("hops", stored.get_int("hops").value_or(0) + 1);
    outgoing.set_int("hops", stored.get_int("hops").value_or(0));
  }
};

/// One reproducible two-replica world; both sides hold items so
/// encounters move data in both directions.
struct World {
  Replica source;
  Replica target;
  ForwardAll source_policy;
  ForwardAll target_policy;

  World()
      : source(ReplicaId(1), Filter::addresses({HostId(5)})),
        target(ReplicaId(2), Filter::addresses({HostId(9)})) {
    source.create(to(9), {'a'});
    source.create(to(9), {'b', 'b'});
    source.create(to(7), {'c'});  // relay copy for the target
    const repl::Item& doomed = source.create(to(9), {'d'});
    source.erase(doomed.id());  // tombstone travels too
    target.create(to(5), {'x'});
    target.create(to(5), {'y', 'y'});
  }
};

std::uint64_t digest(const Replica& replica) {
  return persist::state_digest(replica);
}

std::vector<ItemId> delivered_ids(const repl::SyncResult& result) {
  std::vector<ItemId> ids;
  for (const repl::Item& item : result.delivered) ids.push_back(item.id());
  return ids;
}

void expect_worlds_identical(const World& off, const World& on,
                             const char* where) {
  EXPECT_EQ(digest(off.target), digest(on.target)) << where;
  EXPECT_EQ(digest(off.source), digest(on.source)) << where;
}

TEST(SummaryEquivalence, ColdPullIsByteIdenticalToExact) {
  World off;
  World on;
  const auto exact = sync_over_loopback(off.source, off.target,
                                        &off.source_policy,
                                        &off.target_policy, SimTime(0),
                                        with_mode(SummaryMode::Off));
  const auto fast = sync_over_loopback(on.source, on.target,
                                       &on.source_policy,
                                       &on.target_policy, SimTime(0),
                                       with_mode(SummaryMode::On));
  ASSERT_FALSE(exact.client.transport_failed);
  ASSERT_FALSE(fast.client.transport_failed);
  // A cold target's (empty) Bloom filter proves it knows nothing, so
  // the source streams the batch directly — same items, same outcome.
  EXPECT_EQ(exact.client.result.stats.items_sent,
            fast.client.result.stats.items_sent);
  EXPECT_EQ(exact.client.result.stats.items_new,
            fast.client.result.stats.items_new);
  EXPECT_EQ(exact.client.result.stats.batch_bytes,
            fast.client.result.stats.batch_bytes);
  EXPECT_EQ(delivered_ids(exact.client.result),
            delivered_ids(fast.client.result));
  expect_worlds_identical(off, on, "after cold pull");
}

TEST(SummaryEquivalence, WarmTargetFallsBackThroughMissIdentically) {
  World off;
  World on;
  // Shared warm-up (exact in both worlds, so the differential part is
  // only the second sync): the target now knows one of the source's
  // items, its Bloom filter hits, and the summary path must take the
  // Miss -> exact-fallback route.
  SyncOptions capped;
  capped.max_items = 1;
  (void)sync_over_loopback(off.source, off.target, &off.source_policy,
                           &off.target_policy, SimTime(0), capped);
  (void)sync_over_loopback(on.source, on.target, &on.source_policy,
                           &on.target_policy, SimTime(0), capped);
  ASSERT_EQ(digest(off.target), digest(on.target));

  const auto exact = sync_over_loopback(off.source, off.target,
                                        &off.source_policy,
                                        &off.target_policy, SimTime(1),
                                        with_mode(SummaryMode::Off));
  const auto fast = sync_over_loopback(on.source, on.target,
                                       &on.source_policy,
                                       &on.target_policy, SimTime(1),
                                       with_mode(SummaryMode::On));
  ASSERT_FALSE(fast.client.transport_failed);
  EXPECT_EQ(exact.client.result.stats.items_sent,
            fast.client.result.stats.items_sent);
  EXPECT_EQ(delivered_ids(exact.client.result),
            delivered_ids(fast.client.result));
  // The fallback costs extra wire bytes (summary + miss frames) but
  // must change nothing observable.
  EXPECT_GT(fast.bytes_delivered, exact.bytes_delivered);
  expect_worlds_identical(off, on, "after warm fallback pull");
}

/// Two replicas with the same (universal) filter whose knowledge
/// becomes wire-identical after one encounter — the converged steady
/// state where the digest Match fires.
struct ConvergedPair {
  Replica a;
  Replica b;

  ConvergedPair()
      : a(ReplicaId(1), Filter::all()), b(ReplicaId(2), Filter::all()) {
    a.create(to(9), {'a'});
    a.create(to(9), {'b', 'b'});
    b.create(to(5), {'x'});
    (void)encounter_over_loopback(a, b, nullptr, nullptr, SimTime(0));
  }
};

TEST(SummaryEquivalence, ConvergedRepeatSyncIsO1Bytes) {
  ConvergedPair off;
  ConvergedPair on;
  // The premise of the Match fast path: converged peers hold
  // wire-identical knowledge.
  ASSERT_EQ(off.a.knowledge().wire_digest(),
            off.b.knowledge().wire_digest());

  const auto exact =
      sync_over_loopback(off.b, off.a, nullptr, nullptr, SimTime(1),
                         with_mode(SummaryMode::Off));
  const auto fast =
      sync_over_loopback(on.b, on.a, nullptr, nullptr, SimTime(1),
                         with_mode(SummaryMode::On));
  EXPECT_EQ(fast.client.result.stats.items_sent, 0u);
  EXPECT_EQ(exact.client.result.stats.items_sent, 0u);
  EXPECT_TRUE(fast.client.result.stats.complete);
  // Nothing-new with summaries: one SummaryRequest + one SummaryMatch,
  // independent of how much knowledge has accumulated. The exact flow
  // re-ships the full knowledge both ways.
  EXPECT_LT(fast.bytes_delivered, exact.bytes_delivered);
  EXPECT_LT(fast.bytes_delivered, 80u);
  EXPECT_EQ(digest(off.a), digest(on.a));
  EXPECT_EQ(digest(off.b), digest(on.b));
}

TEST(SummaryEquivalence, EncounterIsByteIdenticalToExact) {
  World off;
  World on;
  const auto exact = encounter_over_loopback(
      off.target, off.source, &off.target_policy, &off.source_policy,
      SimTime(0), with_mode(SummaryMode::Off));
  const auto fast = encounter_over_loopback(
      on.target, on.source, &on.target_policy, &on.source_policy,
      SimTime(0), with_mode(SummaryMode::On));
  ASSERT_FALSE(exact.a_pulled.transport_failed);
  ASSERT_FALSE(fast.a_pulled.transport_failed);
  ASSERT_FALSE(fast.b_applied.transport_failed);
  EXPECT_EQ(delivered_ids(exact.a_pulled.result),
            delivered_ids(fast.a_pulled.result));
  EXPECT_EQ(delivered_ids(exact.b_applied.result),
            delivered_ids(fast.b_applied.result));
  expect_worlds_identical(off, on, "after encounter");
}

/// Mid-cut resume: cut the contact at every byte in both modes. Cuts
/// landing in the (byte-identical) batch region must leave the two
/// modes in byte-identical states; after any cut, a fault-free repair
/// sync must converge both modes to the same final state — deferral is
/// allowed, loss is not.
TEST(SummaryEquivalence, CutAtEveryByteNeverDivergesOrLosesItems) {
  std::size_t total_off = 0;
  std::size_t total_on = 0;
  std::size_t req_off = 0;
  std::size_t req_on = 0;
  std::size_t batch_bytes = 0;
  std::size_t expected_new = 0;
  std::uint64_t final_target = 0;
  std::uint64_t final_source = 0;
  {
    World off;
    const auto exact = sync_over_loopback(
        off.source, off.target, &off.source_policy, &off.target_policy,
        SimTime(0), with_mode(SummaryMode::Off));
    total_off = exact.bytes_delivered;
    req_off = exact.client.result.stats.request_bytes;
    batch_bytes = exact.client.result.stats.batch_bytes;
    expected_new = exact.client.result.stats.items_new;
    final_target = digest(off.target);
    final_source = digest(off.source);
    World on;
    const auto fast = sync_over_loopback(
        on.source, on.target, &on.source_policy, &on.target_policy,
        SimTime(0), with_mode(SummaryMode::On));
    total_on = fast.bytes_delivered;
    req_on = fast.client.result.stats.request_bytes;
    // The cold-target batch region is byte-identical in both modes;
    // the preambles (exact Request vs SummaryRequest) differ.
    ASSERT_EQ(digest(on.target), final_target);
    ASSERT_EQ(total_off - req_off, batch_bytes);
    ASSERT_EQ(total_on - req_on, batch_bytes);
  }

  const auto cut_run = [](SummaryMode mode, std::size_t cut) {
    World world;
    LoopbackFaults faults;
    faults.cut_after_bytes = cut;
    const auto outcome = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(0), with_mode(mode), faults);
    const std::uint64_t cut_target = digest(world.target);
    const std::uint64_t cut_source = digest(world.source);
    const std::size_t applied = outcome.client.result.stats.items_sent;
    const std::size_t new_before = outcome.client.result.stats.items_new;
    // Repair with a fault-free sync in the same mode.
    const auto repair = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(1), with_mode(mode));
    EXPECT_TRUE(repair.client.result.stats.complete) << "cut=" << cut;
    EXPECT_EQ(repair.client.result.stats.items_stale, 0u)
        << "cut=" << cut << " (duplicate transmission)";
    struct Result {
      std::uint64_t cut_target, cut_source, end_target, end_source;
      std::size_t applied, total_new;
    };
    return Result{cut_target,
                  cut_source,
                  digest(world.target),
                  digest(world.source),
                  applied,
                  new_before + repair.client.result.stats.items_new};
  };

  // Batch-region cuts line up across modes after shifting by the
  // preamble delta: the same delivered batch prefix leaves the same
  // post-cut state, and the repair converges both modes to one final
  // state. (Repair after a mid-batch cut legitimately differs from the
  // single fault-free sync — policy forwarding state was charged twice
  // — but it must not differ *between modes*.)
  for (std::size_t b = 0; b <= batch_bytes; ++b) {
    const auto exact = cut_run(SummaryMode::Off, req_off + b);
    const auto fast = cut_run(SummaryMode::On, req_on + b);
    EXPECT_EQ(exact.applied, fast.applied) << "batch offset " << b;
    EXPECT_EQ(exact.cut_target, fast.cut_target) << "batch offset " << b;
    EXPECT_EQ(exact.cut_source, fast.cut_source) << "batch offset " << b;
    EXPECT_EQ(exact.end_target, fast.end_target) << "batch offset " << b;
    EXPECT_EQ(exact.end_source, fast.end_source) << "batch offset " << b;
    // Every item arrives exactly once across cut + repair: deferred,
    // never lost, never duplicated.
    EXPECT_EQ(exact.total_new, expected_new) << "batch offset " << b;
    EXPECT_EQ(fast.total_new, expected_new) << "batch offset " << b;
  }
  // Preamble cuts kill the sync before the source processed anything;
  // the repair is then the first effective sync and must land exactly
  // on the fault-free state in both modes.
  for (std::size_t cut = 0; cut < req_on; ++cut) {
    const auto fast = cut_run(SummaryMode::On, cut);
    EXPECT_EQ(fast.applied, 0u) << "cut=" << cut;
    EXPECT_EQ(fast.end_target, final_target) << "cut=" << cut;
    EXPECT_EQ(fast.end_source, final_source) << "cut=" << cut;
  }
}

TEST(SummaryEquivalence, ForcedCollisionDefersButNeverLoses) {
  World off;
  World on;
  // A simulated 64-bit digest collision: the source answers Match even
  // though the states differ, so this sync moves nothing...
  SyncOptions collide = with_mode(SummaryMode::On);
  collide.summary_force_collision = true;
  const auto fast = sync_over_loopback(on.source, on.target,
                                       &on.source_policy,
                                       &on.target_policy, SimTime(0),
                                       collide);
  ASSERT_FALSE(fast.client.transport_failed);
  EXPECT_EQ(fast.client.result.stats.items_sent, 0u);
  EXPECT_TRUE(fast.client.result.stats.complete);
  // ...and must not corrupt knowledge: a Match teaches the target only
  // knowledge wire-identical to its own.
  EXPECT_EQ(on.target.check_invariants(), "");
  EXPECT_TRUE(on.target.knowledge().fragments().empty());

  // The items are deferred, not lost: the next collision-free sync
  // delivers everything and re-joins the exact-mode world.
  const auto exact = sync_over_loopback(off.source, off.target,
                                        &off.source_policy,
                                        &off.target_policy, SimTime(1));
  const auto recover = sync_over_loopback(on.source, on.target,
                                          &on.source_policy,
                                          &on.target_policy, SimTime(1),
                                          with_mode(SummaryMode::On));
  EXPECT_EQ(delivered_ids(exact.client.result),
            delivered_ids(recover.client.result));
  expect_worlds_identical(off, on, "after collision recovery");
}

/// Every chaos attack must be classified exactly the same way with
/// summaries on as off — the hardened boundary is mode-independent —
/// and the server's replica must stay byte-identical through both.
TEST(SummaryEquivalence, ChaosAttacksContainedIdenticallyInBothModes) {
  ResourceLimits tight;
  tight.max_request_bytes = 4096;
  tight.max_item_bytes = 2048;
  tight.max_batch_end_bytes = 2048;
  tight.max_batch_items = 8;
  tight.max_knowledge_entries = 64;
  tight.max_policy_blob_bytes = 256;
  tight.max_decode_elements = 512;
  tight.session_byte_ceiling = 16u << 10;

  const auto attack_rejected = [&](Replica& server, ChaosAttack attack,
                                   SummaryMode mode) {
    LoopbackLink link;
    ChaosPeerOptions chaos;
    chaos.limits = tight;
    chaos.read_replies = false;  // sequential drive: server runs after us
    run_chaos_attack(link.a(), attack, chaos);
    try {
      serve_session(link.b(), server, nullptr, SimTime(0),
                    with_mode(mode), tight);
    } catch (const ContractViolation&) {
      return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < kChaosAttackCount; ++i) {
    const auto attack = static_cast<ChaosAttack>(i);
    World off;
    World on;
    const std::uint64_t before = digest(off.source);
    ASSERT_EQ(before, digest(on.source));
    const bool exact_rejected =
        attack_rejected(off.source, attack, SummaryMode::Off);
    const bool fast_rejected =
        attack_rejected(on.source, attack, SummaryMode::On);
    EXPECT_EQ(exact_rejected, fast_rejected)
        << "attack " << chaos_attack_name(attack)
        << " classified differently across summary modes";
    EXPECT_EQ(exact_rejected, chaos_attack_is_violation(attack))
        << "attack " << chaos_attack_name(attack);
    // Push attacks may legitimately land a prefix of items before the
    // lie is detected (streaming application); what matters here is
    // that the summary-mode server ends byte-identical to the exact
    // one under every attack.
    EXPECT_EQ(digest(off.source), digest(on.source))
        << chaos_attack_name(attack)
        << " left the two modes in different states";
  }
}

/// Crash-restart: a durable target syncs, crashes, recovers from its
/// WAL+checkpoint, and syncs again — with summaries on the recovered
/// state and the post-recovery convergence must match the exact
/// protocol byte for byte.
TEST(SummaryEquivalence, CrashRestartRecoversIdenticallyInBothModes) {
  struct DurableRun {
    std::uint64_t recovered_digest = 0;
    std::uint64_t final_target = 0;
    std::uint64_t final_source = 0;
    std::vector<ItemId> delivered;
  };
  const auto run = [](SummaryMode mode) {
    DurableRun out;
    persist::MemEnv env;
    World world;
    persist::Durability durability(env);
    durability.attach(world.target);

    const auto first = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(0), with_mode(mode));
    auto ids = delivered_ids(first.client.result);
    out.delivered.insert(out.delivered.end(), ids.begin(), ids.end());

    // Crash: volatile state is gone, recovery rebuilds from the env.
    durability.detach();
    auto recovered = persist::recover(env);
    EXPECT_TRUE(recovered.has_value());
    world.target = std::move(recovered->replica);
    durability.attach(world.target);
    out.recovered_digest = digest(world.target);

    // New work after the restart, then a second sync in the same mode.
    world.source.create(to(9), {'p', 'q'});
    const auto second = sync_over_loopback(
        world.source, world.target, &world.source_policy,
        &world.target_policy, SimTime(1), with_mode(mode));
    ids = delivered_ids(second.client.result);
    out.delivered.insert(out.delivered.end(), ids.begin(), ids.end());
    out.final_target = digest(world.target);
    out.final_source = digest(world.source);
    EXPECT_EQ(world.target.check_invariants(), "");
    return out;
  };

  const DurableRun exact = run(SummaryMode::Off);
  const DurableRun fast = run(SummaryMode::On);
  EXPECT_EQ(exact.recovered_digest, fast.recovered_digest);
  EXPECT_EQ(exact.final_target, fast.final_target);
  EXPECT_EQ(exact.final_source, fast.final_source);
  EXPECT_EQ(exact.delivered, fast.delivered);
}

}  // namespace
}  // namespace pfrdtn::net
