/// Unit coverage for the knowledge-summary machinery behind the
/// sub-linear anti-entropy fast path: the Bloom filter (no false
/// negatives ever, false-positive rate in the tuned ballpark, codec
/// hardened against malformed input), the revision-keyed digest and
/// Bloom caches on Knowledge (precise bumps: no-op mutations must not
/// invalidate a warm cache), and the summarize() inclusion rule that
/// keeps summaries strictly smaller than the exact knowledge.

#include "repl/summary.hpp"

#include <gtest/gtest.h>

#include "repl/filter.hpp"
#include "util/rng.hpp"

namespace pfrdtn::repl {
namespace {

TEST(BloomFilter, NeverForgetsAnInsertedEvent) {
  SummaryParams params;
  BloomFilter filter = BloomFilter::sized_for(1000, params);
  Rng rng(1);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> events;
  for (int i = 0; i < 1000; ++i) {
    events.emplace_back(1 + rng.below(50), 1 + rng.below(1u << 20));
    filter.insert(ReplicaId(events.back().first), events.back().second);
  }
  for (const auto& [author, counter] : events) {
    EXPECT_TRUE(filter.maybe_contains(ReplicaId(author), counter))
        << "false negative for (" << author << ", " << counter << ")";
  }
}

TEST(BloomFilter, FalsePositiveRateNearTheTunedTarget) {
  // 10 bits/element with 7 hashes targets ~0.8% false positives
  // (Marandi et al.); allow generous slack for hash-quality noise.
  SummaryParams params;
  BloomFilter filter = BloomFilter::sized_for(1000, params);
  for (std::uint64_t c = 1; c <= 1000; ++c)
    filter.insert(ReplicaId(7), c);
  std::size_t hits = 0;
  const std::size_t probes = 20000;
  for (std::size_t i = 0; i < probes; ++i) {
    // Authors never inserted: every hit is a false positive.
    if (filter.maybe_contains(ReplicaId(1000 + i), i + 1)) ++hits;
  }
  const double rate = static_cast<double>(hits) / probes;
  EXPECT_LT(rate, 0.05) << "false-positive rate " << rate;
  EXPECT_GT(rate, 0.0001) << "implausibly perfect filter (hash bug?)";
}

TEST(BloomFilter, OptimalHashCountFollowsLn2Rule) {
  EXPECT_EQ(SummaryParams::optimal_hash_count(10), 7u);   // round(6.93)
  EXPECT_EQ(SummaryParams::optimal_hash_count(1), 1u);    // round(.69)->1
  EXPECT_EQ(SummaryParams::optimal_hash_count(16), 11u);  // round(11.09)
  EXPECT_EQ(SummaryParams::optimal_hash_count(100), 32u);  // clamp high
}

TEST(BloomFilter, CodecRoundTripsExactly) {
  SummaryParams params;
  BloomFilter filter = BloomFilter::sized_for(64, params);
  for (std::uint64_t c = 1; c <= 64; ++c)
    filter.insert(ReplicaId(c % 5 + 1), c);
  ByteWriter w;
  filter.serialize(w);
  ByteReader r(w.bytes());
  const BloomFilter copy = BloomFilter::deserialize(r);
  EXPECT_TRUE(r.done());
  EXPECT_EQ(copy, filter);
}

TEST(BloomFilter, DecoderRejectsStructurallyInvalidEncodings) {
  const auto reject = [](const std::function<void(ByteWriter&)>& emit) {
    ByteWriter w;
    emit(w);
    ByteReader r(w.bytes());
    EXPECT_THROW((void)BloomFilter::deserialize(r), ContractViolation);
  };
  // Zero hash count.
  reject([](ByteWriter& w) {
    w.u8(0);
    w.uvarint(8);
    w.raw(std::vector<std::uint8_t>(1, 0));
  });
  // Hash count over the decode ceiling.
  reject([](ByteWriter& w) {
    w.u8(33);
    w.uvarint(8);
    w.raw(std::vector<std::uint8_t>(1, 0));
  });
  // Zero bits.
  reject([](ByteWriter& w) {
    w.u8(7);
    w.uvarint(0);
  });
  // bit_count chosen so (bit_count + 7) / 8 wraps to 0 in 64 bits: the
  // decoder must reject it before the length check can be fooled.
  reject([](ByteWriter& w) {
    w.u8(7);
    w.uvarint(0xffffffffffffffffull);
  });
  // Bit/byte length mismatch.
  reject([](ByteWriter& w) {
    w.u8(7);
    w.uvarint(64);
    w.raw(std::vector<std::uint8_t>(3, 0));
  });
}

Knowledge small_knowledge() {
  Knowledge k;
  k.add_authored_prefix(ReplicaId(3), 5);
  k.add_exact(Version{ReplicaId(9), 44, 2});
  k.add_exact_pinned(Version{ReplicaId(5), 8, 1});
  return k;
}

TEST(KnowledgeRevision, MutationsBumpAndNoOpsDoNot) {
  Knowledge k;
  const std::uint64_t fresh = k.revision();
  k.add_exact(Version{ReplicaId(9), 44, 2});
  const std::uint64_t after_add = k.revision();
  EXPECT_GT(after_add, fresh);
  // Re-adding a known event is a no-op and must not invalidate caches.
  k.add_exact(Version{ReplicaId(9), 44, 2});
  EXPECT_EQ(k.revision(), after_add);
  k.add_authored_prefix(ReplicaId(9), 44);
  const std::uint64_t after_prefix = k.revision();
  EXPECT_GT(after_prefix, after_add);
  // A shorter or equal prefix is already covered: no bump.
  k.add_authored_prefix(ReplicaId(9), 40);
  k.add_authored_prefix(ReplicaId(9), 44);
  EXPECT_EQ(k.revision(), after_prefix);
}

TEST(KnowledgeRevision, NoOpScopedMergeKeepsCachesWarm) {
  // The converged steady state: learning knowledge you already hold
  // must not bump the revision, or every sync would recompute the
  // digest and the "O(1) when converged" claim dies.
  Knowledge k = small_knowledge();
  Knowledge peer = small_knowledge();
  const std::uint64_t digest = k.wire_digest();
  const std::uint64_t revision = k.revision();
  k.merge_scoped(peer, Filter::all());
  EXPECT_EQ(k.revision(), revision);
  EXPECT_EQ(k.wire_digest(), digest);
}

TEST(KnowledgeDigest, EqualsIffWireBytesEqual) {
  Knowledge a = small_knowledge();
  Knowledge b = small_knowledge();
  EXPECT_EQ(a.wire_digest(), b.wire_digest());
  b.add_exact(Version{ReplicaId(2), 1, 1});
  EXPECT_NE(a.wire_digest(), b.wire_digest());
  ByteWriter wa;
  a.serialize(wa);
  ByteWriter wb;
  b.serialize(wb);
  EXPECT_NE(wa.bytes(), wb.bytes());
}

TEST(KnowledgeBloom, CachedPerRevisionAndParams) {
  Knowledge k = small_knowledge();
  SummaryParams params;
  const auto first = k.bloom(params);
  ASSERT_NE(first, nullptr);
  // Same revision + same params: the cached filter object is reused.
  EXPECT_EQ(k.bloom(params), first);
  // Different params invalidate; same params re-cache. (Narrower, not
  // wider: a wider filter would fail the smaller-than-exact-knowledge
  // inclusion rule on this tiny corpus.)
  SummaryParams wider = params;
  wider.bits_per_element = 4;
  wider.hash_count = 3;
  const auto rebuilt = k.bloom(wider);
  ASSERT_NE(rebuilt, nullptr);
  EXPECT_NE(rebuilt, first);
  EXPECT_NE(rebuilt->bit_count(), first->bit_count());
  // A mutation invalidates the cache.
  k.add_exact(Version{ReplicaId(2), 1, 1});
  EXPECT_NE(k.bloom(wider), rebuilt);
}

TEST(KnowledgeBloom, CoversEveryKnownEvent) {
  Knowledge k = small_knowledge();
  SummaryParams params;
  const auto bloom = k.bloom(params);
  ASSERT_NE(bloom, nullptr);
  std::size_t events = 0;
  k.universal().for_each_event([&](ReplicaId author, std::uint64_t c) {
    ++events;
    EXPECT_TRUE(bloom->maybe_contains(author, c));
  });
  EXPECT_EQ(events, k.event_count());
  EXPECT_GT(events, 0u);
}

TEST(Summarize, SmallKnowledgeShipsDigestPlusBloom) {
  const Knowledge k = small_knowledge();
  SummaryParams params;
  const KnowledgeSummary summary = summarize(k, params);
  EXPECT_EQ(summary.digest, k.wire_digest());
  ASSERT_TRUE(summary.bloom.has_value());
  EXPECT_LT(summary.bloom->byte_size(), k.size_bytes());
}

TEST(Summarize, InclusionRuleDropsTheBloomWhenItCannotPay) {
  const Knowledge k = small_knowledge();
  // Too many events for the configured ceiling.
  SummaryParams few;
  few.max_bloom_elements = 2;
  EXPECT_FALSE(summarize(k, few).bloom.has_value());
  // Filter bytes over the byte ceiling.
  SummaryParams tiny;
  tiny.max_bloom_bytes = 0;
  EXPECT_FALSE(summarize(k, tiny).bloom.has_value());
  // Filter at least as large as the exact knowledge: pointless.
  SummaryParams fat;
  fat.bits_per_element = 10000;
  fat.max_bloom_bytes = 1u << 20;
  EXPECT_FALSE(summarize(k, fat).bloom.has_value());
  // The digest always ships regardless.
  EXPECT_EQ(summarize(k, few).digest, k.wire_digest());
}

TEST(Summarize, SummaryCodecRoundTripsWithAndWithoutBloom) {
  const Knowledge k = small_knowledge();
  SummaryParams params;
  for (const bool with_bloom : {true, false}) {
    SummaryParams p = params;
    if (!with_bloom) p.max_bloom_elements = 0;
    const KnowledgeSummary summary = summarize(k, p);
    ASSERT_EQ(summary.bloom.has_value(), with_bloom);
    ByteWriter w;
    summary.serialize(w);
    ByteReader r(w.bytes());
    const KnowledgeSummary copy = KnowledgeSummary::deserialize(r);
    EXPECT_TRUE(r.done());
    EXPECT_EQ(copy, summary);
  }
}

TEST(Summarize, EqualKnowledgeMeansEqualSummaries) {
  SummaryParams params;
  const KnowledgeSummary a = summarize(small_knowledge(), params);
  const KnowledgeSummary b = summarize(small_knowledge(), params);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pfrdtn::repl
